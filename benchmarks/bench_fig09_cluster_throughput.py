"""Figure 9 — BERT throughput on the four clusters, 8 GPUs each.

Paper content: two rows of panels — (D=1, P=8) and (D=2, P=4) — over
PC, FC, TACC and TC, with bars for GPipe (G), DAPPLE (D), Chimera-wave
(C) and Hanayo with 2/4/8 waves (H-2/H-4/H-8).  Reported gaps of the
best Hanayo over Chimera-wave: 15.7%, 30.4%, 23.2%, 29.9% (row 1) and
8.2%, 17.1%, 24.6%, 28.0% (row 2); G and D are ~20% below C.

Shape asserted here: Hanayo's best wave count beats Chimera-wave on
every cluster in both layouts; GPipe and DAPPLE are within a few
percent of each other and below Chimera-wave; on the NVLink clusters
throughput rises with the wave count while TACC's weaker interconnect
caps the useful wave count.

Since the collectives-in-the-IR refactor the D=2 row uses *simulated*
gradient-sync overlap (ring collectives compiled into the program)
instead of the paper-era 0.9 constant, so the D=2 gaps widen past the
paper's fixed-overlap estimates on clusters whose DP rings cross slow
links (PC's PCIe): 1F1B schemes cannot hide the sync their stage-0
device finishes last, while Hanayo's early-finishing wave chunks can.
The asserted band is therefore 2-70%.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import all_clusters
from repro.models import bert_64
from repro.sweep import SweepSpec, run_sweep

from _helpers import gap, sweep_opts, write_result

LAYOUTS = ((8, 1), (4, 2))               # (P, D)
WAVES = (2, 4, 8)

#: short scheme labels used in the figure
LABELS = {"gpipe": "G", "dapple": "D", "chimera-wave": "C"}


def compute():
    # One declarative grid over all four clusters; the total batch of 8
    # splits every layout into B = P micro-batches of one sequence, the
    # paper's regime.  Hanayo's wave dimension is expanded per layout.
    spec = SweepSpec(
        schemes=("gpipe", "dapple", "chimera-wave", "hanayo"),
        clusters=tuple(all_clusters(8)),
        models=(bert_64(),),
        layouts=LAYOUTS,
        total_batches=(8,),
        waves=WAVES,
    )
    table = run_sweep(spec, **sweep_opts())
    out: dict = {}
    for row in table:
        label = (f"H-{row.w}" if row.scheme == "hanayo"
                 else LABELS[row.scheme])
        out[(row.cluster, row.p, label)] = row.result
    return out


def test_fig09_cluster_throughput(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    best_gaps = {}
    for cname in ("PC", "FC", "TACC", "TC"):
        for p, d in LAYOUTS:
            row = [f"{cname}(D={d},P={p})"]
            c_tp = data[(cname, p, "C")].seq_per_s
            best_h = 0.0
            for label in ("G", "D", "C", "H-2", "H-4", "H-8"):
                r = data.get((cname, p, label))
                if r is None:
                    row.append("n/a")
                    continue
                row.append(f"{r.seq_per_s:.2f}")
                if label.startswith("H"):
                    best_h = max(best_h, r.seq_per_s)
            best_gaps[(cname, p)] = gap(best_h, c_tp)
            row.append(f"{best_gaps[(cname, p)]:+.1f}%")
            rows.append(row)
    write_result("fig09_cluster_throughput", format_table(
        ["layout", "G", "D", "C", "H-2", "H-4", "H-8", "best H vs C"],
        rows,
        title="Fig. 9 — BERT-64 seq/s on 8 GPUs of PC/FC/TACC/TC "
              "(paper gaps: 15.7/30.4/23.2/29.9% and 8.2/17.1/24.6/28.0%)",
    ))

    for cname in ("PC", "FC", "TACC", "TC"):
        for p, d in LAYOUTS:
            g = data[(cname, p, "G")].seq_per_s
            dd = data[(cname, p, "D")].seq_per_s
            c = data[(cname, p, "C")].seq_per_s
            # GPipe ~ DAPPLE; both below Chimera-wave
            assert abs(g - dd) / dd < 0.05, (cname, p)
            assert c > min(g, dd), (cname, p)
            # Hanayo's best wave beats Chimera-wave by a paper-like gap
            # (upper bound widened for simulated D=2 sync exposure)
            assert 2.0 < best_gaps[(cname, p)] < 70.0, (cname, p)
    # interconnect sensitivity: TACC gains less from waves than FC
    assert best_gaps[("FC", 8)] > best_gaps[("TACC", 8)]
    benchmark.extra_info["best_gaps_percent"] = {
        f"{k[0]}-P{k[1]}": round(v, 1) for k, v in best_gaps.items()
    }
