#!/usr/bin/env python
"""Perf harness for the lowered-plan event core (``BENCH_core.json``).

Measures wall time and events/second of the measurement hot path on two
canonical scenarios and compares against the retained pre-refactor
interpreter (:func:`repro.runtime.execute_program_reference`):

* ``fig09_sweep`` — a full fig09-style grid pass (4 clusters × 2
  layouts × {GPipe, DAPPLE, Chimera-wave, Hanayo-2/4}) through
  ``measure_throughput`` with a warm plan cache, i.e. what one sweep
  worker does per cost-axis cell.  The reference path re-runs the
  pre-refactor pipeline per cell: schedule build + program compilation
  + dict-walking event loop.
* ``families_prefetch`` — the raw event core on 8 schedule families ×
  prefetch on/off (abstract costs, P = B = 8): ``execute_plan`` over a
  pre-lowered plan vs the reference interpreter over the same program.
* ``fig09_batched`` — the same fig09 grid measured through
  ``measure_throughput_batch``: cells sharing a structure become lanes
  of one lockstep batch (``runtime/batched.py``), vs the reference
  per-cell pipeline.  Every lane is asserted bit-identical to the
  scalar harness before timing starts.
* ``fig11_hybrid_batched`` — a hybrid DP x TP grid (2 schemes x 4
  (TP, PP, DP) layouts x 16 clusters) through
  ``measure_hybrid_throughput_batch``, vs the pre-batching per-cell
  hybrid pipeline (schedule build + TP sharding + program compilation
  + ``with_tp_sync`` + reference core).  Lanes are parity-probed
  against scalar ``measure_hybrid_throughput`` first.
* ``contention_batched`` — ``contention=True`` lean lanes through the
  vectorized lockstep stepper vs a scalar ``execute_plan`` loop over
  the same plans.  The grid is restricted to shapes the stepper keeps
  in lockstep (wire grant order = structural order); the probe asserts
  **zero** scalar fallbacks before timing, so a regression that
  silently de-batches contention lanes fails loudly here.
* ``contention_divergent`` — contention lanes whose wire grant orders
  genuinely reorder across the microbatch axis, i.e. the shapes the
  lockstep stepper must refuse.  These ride the time-ordered vectorized
  replay (cohort pool over per-lane event cursors); the probe asserts
  zero scalar fallbacks, full recovered-lane accounting, per-lane
  bit-parity with the scalar core *and* real order divergence across
  the grid before timing.

Usage::

    python benchmarks/bench_perf_core.py            # run + print
    python benchmarks/bench_perf_core.py --write    # refresh baseline
    python benchmarks/bench_perf_core.py --check    # CI gate

``--check`` fails (exit 1) when a scenario's **speedup vs reference**
regresses more than :data:`REGRESSION_TOLERANCE` against the committed
``BENCH_core.json``, or when the fig09 speedup drops below the
:data:`SPEEDUP_FLOOR` the lowering refactor is required to hold.  The
speedup ratio is the machine-portable signal (both sides run in the
same process on the same data), so the gate works on CI runners of any
speed; absolute events/second is compared too but only *warns* when it
drifts, since it tracks the baseline host's hardware.  Baseline
protocol: see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

if __package__ is None or __package__ == "":  # direct script invocation
    _src = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

BASELINE_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_core.json"

#: --check fails when events/s or speedup fall below (1 - this) x baseline
REGRESSION_TOLERANCE = 0.30

#: the refactor's acceptance floor: fig09 must stay >= this much faster
#: than the pre-refactor core
SPEEDUP_FLOOR = 3.0

#: the batched-execution acceptance floor: the lockstep fig09 pass must
#: stay >= this much faster than the pre-refactor per-cell pipeline
BATCHED_SPEEDUP_FLOOR = 20.0

#: cross-structure batching floors: the hybrid DP x TP grid must stay
#: >= 8x faster than the pre-batching per-cell hybrid pipeline, and the
#: vectorized-contention grid >= 5x faster than the scalar contention
#: core looped over the same lanes
HYBRID_BATCHED_FLOOR = 8.0
CONTENTION_BATCHED_FLOOR = 5.0

#: time-ordered replay floor: the wire-divergent contention grid (the
#: lanes the lockstep stepper refuses) must stay >= 5x faster than the
#: scalar contention core looped over the same lanes
CONTENTION_DIVERGENT_FLOOR = 5.0

#: timing repeats (best-of is reported, to shed scheduler noise)
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> float:
    # collector pauses land inside individual repeats and best-of can't
    # shed them when the measured section is only tens of milliseconds,
    # so timing runs with gc parked (state restored afterwards)
    best = None
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            best = dt if best is None or dt < best else best
    finally:
        if was_enabled:
            gc.enable()
    return best


# -- scenario: fig09 sweep cells --------------------------------------------


def _fig09_cells():
    from repro.cluster import all_clusters

    cells = []
    for cluster in all_clusters(8):
        for p, d in ((8, 1), (4, 2)):
            b = 8 // d
            for scheme, w in (("gpipe", 1), ("dapple", 1),
                              ("chimera-wave", 1), ("hanayo", 2),
                              ("hanayo", 4)):
                cells.append((scheme, cluster, p, b, d, w))
    return cells


def _run_fig09_pass(model, cells) -> None:
    from repro.analysis import measure_throughput

    for scheme, cluster, p, b, d, w in cells:
        measure_throughput(scheme, cluster, model, p=p,
                           num_microbatches=b, d=d, w=w,
                           microbatch_size=1)


def _run_fig09_reference_pass(model, cells) -> None:
    """The pre-refactor per-cell pipeline, cell for cell.

    Rebuilds schedule + program every call and interprets the rich IR
    with the reference core — exactly what ``measure_throughput`` did
    before the lowering refactor.
    """
    from repro.analysis.throughput import (
        _pipeline_comm,
        compile_cluster_program,
        throughput_from_simulation,
    )
    from repro.config import PipelineConfig, RunConfig
    from repro.models.costs import stage_costs
    from repro.runtime import ConcreteCosts, execute_program_reference
    from repro.runtime.memory import MemoryStats
    from repro.runtime.simulator import SimResult
    from repro.schedules import build_schedule

    run = RunConfig()
    for scheme, cluster, p, b, d, w in cells:
        cfg = PipelineConfig(scheme=scheme, num_devices=p,
                             num_microbatches=b, num_waves=w,
                             data_parallel=d, microbatch_size=1)
        schedule = build_schedule(cfg)
        costs = stage_costs(model, schedule.num_stages, cluster.device, 1)
        program = compile_cluster_program(schedule, cluster, costs, d=d,
                                          run=run)
        oracle = ConcreteCosts(costs, _pipeline_comm(cluster, 0, p))
        ev = execute_program_reference(program, oracle, run)
        result = SimResult(
            schedule=schedule, timeline=ev.timeline,
            recv_busy=ev.recv_wait, program=program, comm=ev.comm,
            action_order=ev.order,
            memory=MemoryStats(static_bytes=dict(program.static_bytes),
                               peak_bytes=ev.mem_peak),
            mem_events=ev.mem_events, collectives=ev.collectives,
            device_end=ev.device_end,
        )
        throughput_from_simulation(cfg, cluster, model, schedule, costs,
                                   result, ring_p=p, overlap="simulated")


def bench_fig09() -> dict:
    from repro.analysis import plan_cache
    from repro.cluster import all_clusters
    from repro.models import bert_64

    model = bert_64()
    cells = _fig09_cells()
    plan_cache().clear()
    _run_fig09_pass(model, cells)        # warm the plan cache
    # the grid crosses every structure with every cluster, so one pass
    # executes each cached structure once per cluster
    actions = len(list(all_clusters(8))) * sum(
        e.plan.n_actions for e in plan_cache()._store.values())
    wall = _best_of(lambda: _run_fig09_pass(model, cells))
    ref_wall = _best_of(lambda: _run_fig09_reference_pass(model, cells))
    return {
        "cells": len(cells),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- scenario: fig09 grid through the lockstep batch path --------------------


def bench_fig09_batched() -> dict:
    from repro.analysis import measure_throughput, plan_cache
    from repro.analysis.throughput import (
        ThroughputRequest,
        measure_throughput_batch,
    )
    from repro.cluster import all_clusters
    from repro.models import bert_64

    model = bert_64()
    cells = _fig09_cells()
    requests = [
        ThroughputRequest(scheme=scheme, cluster=cluster, model=model,
                          p=p, num_microbatches=b, d=d, w=w,
                          microbatch_size=1)
        for scheme, cluster, p, b, d, w in cells
    ]
    plan_cache().clear()
    outcomes = measure_throughput_batch(requests)  # warm + parity probe
    # every lane must be *bit-identical* to the scalar harness; a batch
    # path that drifts would make this a benchmark of the wrong code
    for cell, out in zip(cells, outcomes):
        scheme, cluster, p, b, d, w = cell
        scalar = measure_throughput(scheme, cluster, model, p=p,
                                    num_microbatches=b, d=d, w=w,
                                    microbatch_size=1)
        if (out.seq_per_s, out.peak_mem_bytes, out.sync_s) != \
                (scalar.seq_per_s, scalar.peak_mem_bytes, scalar.sync_s):
            raise AssertionError(f"batched != scalar for {cell}")
    actions = len(list(all_clusters(8))) * sum(
        e.plan.n_actions for e in plan_cache()._store.values())
    # the measured section is ~25 ms, an order of magnitude shorter
    # than the other scenarios', so extra repeats are cheap and the
    # best-of needs them to converge under scheduler noise
    wall = _best_of(lambda: measure_throughput_batch(requests),
                    repeats=3 * REPEATS)
    ref_wall = _best_of(lambda: _run_fig09_reference_pass(model, cells))
    return {
        "cells": len(cells),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- scenario: hybrid DP x TP grid through the lockstep batch path ------------


def _fig11_cells():
    """A fig11-style hybrid grid: every (scheme, layout) crosses 16
    clusters, so each structural group carries 16 cost-only lanes."""
    from repro.cluster import make_fc, make_pc

    clusters = [factory(size)
                for size in (16, 24, 32, 48, 64, 96, 128, 192)
                for factory in (make_fc, make_pc)]
    cells = []
    for scheme, w in (("dapple", 1), ("hanayo", 2)):
        for tp, p, d in ((2, 4, 2), (4, 2, 2), (2, 2, 4), (4, 4, 1)):
            for cluster in clusters:
                cells.append((scheme, cluster, tp, p, d, 32, w))
    return cells


def _run_fig11_reference_pass(model, cells) -> None:
    """The pre-batching per-cell hybrid pipeline, cell for cell.

    Rebuilds the schedule, shards costs over the TP group, compiles the
    cluster program (+ TP boundary collectives) and interprets it with
    the reference core — what ``measure_hybrid_throughput`` amounted to
    before the lowering + batching refactors."""
    from repro.actions.collectives import with_tp_sync
    from repro.analysis.hybrid import (
        HybridLayout,
        _SpacedCosts,
        apply_tensor_parallel,
        tp_rank_groups,
    )
    from repro.analysis.throughput import (
        compile_cluster_program,
        throughput_from_simulation,
    )
    from repro.config import PipelineConfig, RunConfig
    from repro.models.costs import stage_costs
    from repro.runtime import execute_program_reference
    from repro.runtime.memory import MemoryStats
    from repro.runtime.simulator import SimResult
    from repro.schedules import build_schedule

    run = RunConfig()
    for scheme, cluster, tp, p, d, b, w in cells:
        layout = HybridLayout(tp=tp, p=p, d=d)
        cfg = PipelineConfig(scheme=scheme, num_devices=p,
                             num_microbatches=b, num_waves=w,
                             data_parallel=d, microbatch_size=1)
        schedule = build_schedule(cfg)
        base = stage_costs(model, schedule.num_stages, cluster.device, 1)
        layers_per_stage = (model.num_layers + 2) / schedule.num_stages
        costs = apply_tensor_parallel(base, cluster, model, tp, 1,
                                      layers_per_stage,
                                      include_comm=False)
        program = compile_cluster_program(schedule, cluster, costs, d=d,
                                          run=run, spacing=tp)
        program = with_tp_sync(program, tp_rank_groups(cluster, layout),
                               nbytes=model.boundary_bytes(1),
                               count_per_pass=2.0 * layers_per_stage)
        oracle = _SpacedCosts(costs, cluster, tp)
        ev = execute_program_reference(program, oracle, run)
        result = SimResult(
            schedule=schedule, timeline=ev.timeline,
            recv_busy=ev.recv_wait, program=program, comm=ev.comm,
            action_order=ev.order,
            memory=MemoryStats(static_bytes=dict(program.static_bytes),
                               peak_bytes=ev.mem_peak),
            mem_events=ev.mem_events, collectives=ev.collectives,
            device_end=ev.device_end,
        )
        throughput_from_simulation(cfg, cluster, model, schedule, costs,
                                   result, ring_p=p * tp,
                                   overlap="simulated")


def bench_fig11_hybrid_batched() -> dict:
    from repro.analysis import measure_hybrid_throughput, plan_cache
    from repro.analysis.hybrid import (
        HybridLayout,
        HybridRequest,
        measure_hybrid_throughput_batch,
    )
    from repro.models import bert_64

    model = bert_64()
    cells = _fig11_cells()
    requests = [
        HybridRequest(scheme=scheme, cluster=cluster, model=model,
                      layout=HybridLayout(tp=tp, p=p, d=d),
                      num_microbatches=b, w=w, microbatch_size=1)
        for scheme, cluster, tp, p, d, b, w in cells
    ]
    plan_cache().clear()
    outcomes = measure_hybrid_throughput_batch(requests)  # warm + probe
    # every lane must be bit-identical to the scalar hybrid harness
    for cell, out in zip(cells, outcomes):
        scheme, cluster, tp, p, d, b, w = cell
        scalar = measure_hybrid_throughput(
            scheme, cluster, model, HybridLayout(tp=tp, p=p, d=d), b,
            w=w, microbatch_size=1)
        if (out.seq_per_s, out.peak_mem_bytes, out.sync_s) != \
                (scalar.seq_per_s, scalar.peak_mem_bytes, scalar.sync_s):
            raise AssertionError(f"batched != scalar for {cell}")
    # 16 clusters per (scheme, layout) group: one pass executes each
    # cached hybrid structure once per cluster (cluster *objects* —
    # preset names collide across sizes)
    lanes_per_group = len({id(c) for _s, c, *_rest in cells})
    actions = lanes_per_group * sum(
        e.plan.n_actions for e in plan_cache()._store.values())
    wall = _best_of(lambda: measure_hybrid_throughput_batch(requests))
    ref_wall = _best_of(lambda: _run_fig11_reference_pass(model, cells))
    return {
        "cells": len(cells),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- scenario: contention=True lanes through the vectorized stepper -----------


def _contention_plans():
    """Cluster-concrete lanes the lockstep contention path keeps in the
    batch (wire grant order = structural order for these shapes;
    hanayo-style interleavings on shared-link topologies diverge and
    ride the time-ordered replay instead — ``contention_divergent``).
    Eight microbatch sizes per cluster make the cost-only lane axis."""
    from repro.actions import ExecutablePlan
    from repro.analysis.throughput import (
        _pipeline_comm,
        compile_cluster_program,
    )
    from repro.cluster import make_fc, make_pc, make_tacc, make_tc
    from repro.config import PipelineConfig
    from repro.models import bert_64
    from repro.models.costs import stage_costs
    from repro.runtime import ConcreteCosts
    from repro.schedules import build_schedule

    grid = [
        ("gpipe", 8, 1, 1,
         [make_fc(8), make_fc(16), make_pc(8), make_pc(16),
          make_tacc(8), make_tacc(16), make_tc(8), make_tc(16)]),
        ("dapple", 8, 1, 1,
         [make_fc(8), make_fc(16), make_tc(8), make_tc(16)]),
        ("dapple", 4, 1, 2,       # DP rings under wire arbitration
         [make_fc(8), make_fc(16)]),
    ]
    model = bert_64()
    plans = []
    for scheme, p, w, d, clusters in grid:
        cfg = PipelineConfig(scheme=scheme, num_devices=p,
                             num_microbatches=16, num_waves=w,
                             data_parallel=d)
        sched = build_schedule(cfg)
        for cluster in clusters:
            for mb in range(1, 9):
                costs = stage_costs(model, sched.num_stages,
                                    cluster.device, mb)
                program = compile_cluster_program(sched, cluster, costs,
                                                  d=d)
                oracle = ConcreteCosts(costs,
                                       _pipeline_comm(cluster, 0, p))
                plans.append(ExecutablePlan.lower(program).retime(oracle))
    return plans


def bench_contention_batched() -> dict:
    from repro import profiling
    from repro.config import RunConfig
    from repro.runtime import execute_plan
    from repro.runtime.batched import execute_many

    plans = _contention_plans()
    run = RunConfig(contention=True)
    items = [(plan, None) for plan in plans]
    stats = profiling.batching_stats()
    batches, scalar_cells = stats.batches, stats.scalar_cells
    batch = execute_many(items, run, detail="lean")  # warm + probe
    # the grid must stay fully vectorized: a lane silently de-batching
    # (wire-order divergence, congruence regression) re-runs the scalar
    # core and would turn this into a benchmark of the wrong code
    if stats.scalar_cells != scalar_cells or stats.batches == batches:
        raise AssertionError(
            f"contention lanes fell back to scalar: "
            f"{stats.fallback_reasons}")
    for plan, got, err in zip(plans, batch.results, batch.errors):
        if err is not None:
            raise AssertionError(f"unexpected OOM in {plan.name}")
        want = execute_plan(plan, run, detail="lean")
        if (got.timeline.spans != want.timeline.spans
                or got.device_end != want.device_end
                or got.recv_wait != want.recv_wait
                or got.collectives != want.collectives):
            raise AssertionError(f"batched != scalar for {plan.name}")
    actions = sum(plan.n_actions for plan in plans)

    def scalar_pass():
        for plan in plans:
            execute_plan(plan, run, detail="lean")

    wall = _best_of(lambda: execute_many(items, run, detail="lean"),
                    repeats=3 * REPEATS)
    ref_wall = _best_of(scalar_pass)
    return {
        "cells": len(plans),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- scenario: wire-divergent contention lanes, time-ordered replay -----------


def _divergent_plans():
    """One hanayo-2 structure retimed across 256 microbatch sizes.

    Compute scales with the microbatch but the wire launch latency does
    not, so lane grant orders genuinely reorder across the axis — the
    shapes the lockstep stepper must refuse and the time-ordered replay
    recovers.  One shared structure keeps the cohort pool dense, which
    is the replay's intended operating point (a sweep's cost axis)."""
    from repro.actions import ExecutablePlan
    from repro.analysis.throughput import (
        _pipeline_comm,
        compile_cluster_program,
    )
    from repro.cluster import make_fc
    from repro.config import PipelineConfig
    from repro.models import bert_64
    from repro.models.costs import stage_costs
    from repro.runtime import ConcreteCosts
    from repro.schedules import build_schedule

    model = bert_64()
    cluster = make_fc(16)
    cfg = PipelineConfig(scheme="hanayo", num_devices=4,
                         num_microbatches=16, num_waves=2,
                         data_parallel=2)
    sched = build_schedule(cfg)
    base = stage_costs(model, sched.num_stages, cluster.device, 1)
    program = compile_cluster_program(sched, cluster, base, d=2)
    plans = []
    for mb in range(1, 257):
        costs = stage_costs(model, sched.num_stages, cluster.device, mb)
        oracle = ConcreteCosts(costs, _pipeline_comm(cluster, 0, 4))
        plans.append(ExecutablePlan.lower(program).retime(oracle))
    return plans


def _span_order(result) -> tuple:
    """The lane's global compute order: span ids merged by start time."""
    events = []
    for dev, row in result.timeline.spans.items():
        for j, top in enumerate(row):
            events.append((top.start, str(dev), j))
    events.sort()
    return tuple((dev, j) for _at, dev, j in events)


def bench_contention_divergent() -> dict:
    from repro import profiling
    from repro.config import RunConfig
    from repro.runtime import execute_plan
    from repro.runtime.batched import execute_many

    plans = _divergent_plans()
    run = RunConfig(contention=True)
    items = [(plan, None) for plan in plans]
    stats = profiling.batching_stats()
    scalar_cells = stats.scalar_cells
    recovered = stats.recovered_lanes
    batch = execute_many(items, run, detail="lean")  # warm + probe
    # every lane must ride the time-ordered replay: zero scalar
    # fallbacks, and the recovered-lane counter must account for the
    # whole grid — a regression that quietly de-batches divergent
    # contention lanes fails here before any timing starts
    if stats.scalar_cells != scalar_cells:
        raise AssertionError(
            f"divergent contention lanes fell back to scalar: "
            f"{stats.fallback_reasons}")
    if stats.recovered_lanes - recovered < len(plans):
        raise AssertionError(
            f"only {stats.recovered_lanes - recovered} of {len(plans)} "
            f"lanes took the time-ordered replay")
    orders = set()
    for plan, got, err in zip(plans, batch.results, batch.errors):
        if err is not None:
            raise AssertionError(f"unexpected OOM in {plan.name}")
        want = execute_plan(plan, run, detail="lean")
        if (got.timeline.spans != want.timeline.spans
                or got.device_end != want.device_end
                or got.recv_wait != want.recv_wait
                or got.collectives != want.collectives):
            raise AssertionError(f"batched != scalar for {plan.name}")
        orders.add(_span_order(want))
    # the grid must actually diverge — identical grant orders would make
    # this a second lockstep benchmark under a misleading name
    if len(orders) < 2:
        raise AssertionError("grid is not wire-divergent: all lanes "
                             "share one global grant order")
    actions = sum(plan.n_actions for plan in plans)

    def scalar_pass():
        for plan in plans:
            execute_plan(plan, run, detail="lean")

    wall = _best_of(lambda: execute_many(items, run, detail="lean"),
                    repeats=3 * REPEATS)
    ref_wall = _best_of(scalar_pass)
    return {
        "cells": len(plans),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- scenario: 8 families x prefetch, raw event core -------------------------


def _family_plans():
    from repro.actions import ExecutablePlan, compile_program
    from repro.config import CostConfig, PipelineConfig
    from repro.runtime import AbstractCosts
    from repro.schedules import build_schedule

    families = [
        ("gpipe", {}), ("dapple", {}), ("interleaved", {"num_waves": 2}),
        ("gems", {}), ("chimera", {}), ("chimera-wave", {}),
        ("hanayo", {"num_waves": 2}), ("async-1f1b", {}),
    ]
    out = []
    for scheme, kw in families:
        for prefetch in (True, False):
            cfg = PipelineConfig(scheme=scheme, num_devices=8,
                                 num_microbatches=8, **kw)
            sched = build_schedule(cfg)
            program = compile_program(sched, prefetch=prefetch)
            costs = AbstractCosts(CostConfig(t_c=0.2), 8, sched.num_stages)
            out.append((program, costs,
                        ExecutablePlan.lower(program, costs)))
    return out


def bench_families() -> dict:
    from repro.config import RunConfig
    from repro.runtime import execute_plan, execute_program_reference

    triples = _family_plans()
    run = RunConfig()
    actions = sum(plan.n_actions for _p, _c, plan in triples)

    def new_pass():
        for _program, _costs, plan in triples:
            execute_plan(plan, run)

    def ref_pass():
        for program, costs, _plan in triples:
            execute_program_reference(program, costs, run)

    new_pass()  # warm (fills lazy duration columns)
    wall = _best_of(new_pass)
    ref_wall = _best_of(ref_pass)
    return {
        "cells": len(triples),
        "actions_per_pass": actions,
        "wall_s": round(wall, 6),
        "events_per_s": round(actions / wall, 1),
        "reference_wall_s": round(ref_wall, 6),
        "speedup_vs_reference": round(ref_wall / wall, 3),
    }


# -- driver -------------------------------------------------------------------


SCENARIOS = {
    "fig09_sweep": bench_fig09,
    "families_prefetch": bench_families,
    "fig09_batched": bench_fig09_batched,
    "fig11_hybrid_batched": bench_fig11_hybrid_batched,
    "contention_batched": bench_contention_batched,
    "contention_divergent": bench_contention_divergent,
}


def run_all() -> dict:
    # version 4: contention_divergent joins the baseline (time-ordered
    # vectorized replay of wire-divergent contention lanes)
    return {"version": 4,
            "scenarios": {name: fn() for name, fn in SCENARIOS.items()}}


def report(payload: dict) -> str:
    lines = ["perf core benchmark (lowered plan vs reference interpreter)"]
    for name, s in payload["scenarios"].items():
        lines.append(
            f"  {name:20s} {s['cells']:3d} cells  "
            f"{s['events_per_s']:12,.0f} events/s  "
            f"wall {s['wall_s'] * 1e3:8.1f} ms  "
            f"ref {s['reference_wall_s'] * 1e3:8.1f} ms  "
            f"speedup {s['speedup_vs_reference']:5.2f}x"
        )
    return "\n".join(lines)


def check(payload: dict, baseline: dict) -> tuple[list[str], list[str]]:
    """``(failures, warnings)`` vs the committed baseline.

    Failures gate CI: the machine-portable speedup ratio regressing
    past the tolerance, or fig09 dropping under the absolute floor.
    Absolute events/s drift only warns — it tracks the baseline host's
    hardware, not the code (docs/performance.md).
    """
    problems: list[str] = []
    warnings: list[str] = []
    floor = 1.0 - REGRESSION_TOLERANCE
    for name, s in payload["scenarios"].items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            problems.append(f"{name}: no committed baseline entry")
            continue
        if s["events_per_s"] < floor * base["events_per_s"]:
            warnings.append(
                f"{name}: events/s {s['events_per_s']:,.0f} is below "
                f"{floor:.0%} of the baseline host's "
                f"{base['events_per_s']:,.0f} (machine-dependent; "
                "gated via the speedup ratio instead)"
            )
        if (s["speedup_vs_reference"]
                < floor * base["speedup_vs_reference"]):
            problems.append(
                f"{name}: speedup vs reference regressed "
                f"{s['speedup_vs_reference']:.2f}x < {floor:.0%} of "
                f"baseline {base['speedup_vs_reference']:.2f}x"
            )
    fig09 = payload["scenarios"]["fig09_sweep"]["speedup_vs_reference"]
    if fig09 < SPEEDUP_FLOOR:
        problems.append(
            f"fig09_sweep: speedup {fig09:.2f}x below the required "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
    batched = payload["scenarios"]["fig09_batched"][
        "speedup_vs_reference"]
    if batched < BATCHED_SPEEDUP_FLOOR:
        problems.append(
            f"fig09_batched: speedup {batched:.2f}x below the required "
            f"{BATCHED_SPEEDUP_FLOOR:.0f}x floor"
        )
    hybrid = payload["scenarios"]["fig11_hybrid_batched"][
        "speedup_vs_reference"]
    if hybrid < HYBRID_BATCHED_FLOOR:
        problems.append(
            f"fig11_hybrid_batched: speedup {hybrid:.2f}x below the "
            f"required {HYBRID_BATCHED_FLOOR:.0f}x floor"
        )
    contention = payload["scenarios"]["contention_batched"][
        "speedup_vs_reference"]
    if contention < CONTENTION_BATCHED_FLOOR:
        problems.append(
            f"contention_batched: speedup {contention:.2f}x below the "
            f"required {CONTENTION_BATCHED_FLOOR:.0f}x floor"
        )
    divergent = payload["scenarios"]["contention_divergent"][
        "speedup_vs_reference"]
    if divergent < CONTENTION_DIVERGENT_FLOOR:
        problems.append(
            f"contention_divergent: speedup {divergent:.2f}x below the "
            f"required {CONTENTION_DIVERGENT_FLOOR:.0f}x floor"
        )
    return problems, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help=f"refresh {BASELINE_PATH.name}")
    mode.add_argument("--check", action="store_true",
                      help="fail on >30%% regression vs the committed "
                           "baseline")
    args = parser.parse_args(argv)

    payload = run_all()
    print(report(payload))
    if args.write:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        try:
            baseline = json.loads(BASELINE_PATH.read_text())
        except FileNotFoundError:
            print(f"error: no committed baseline at {BASELINE_PATH}",
                  file=sys.stderr)
            return 1
        problems, warnings = check(payload, baseline)
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"speedup within {REGRESSION_TOLERANCE:.0%} of the "
              f"committed baseline; floors held (fig09 "
              f"{SPEEDUP_FLOOR:.0f}x, batched {BATCHED_SPEEDUP_FLOOR:.0f}x, "
              f"hybrid {HYBRID_BATCHED_FLOOR:.0f}x, contention "
              f"{CONTENTION_BATCHED_FLOOR:.0f}x, divergent "
              f"{CONTENTION_DIVERGENT_FLOOR:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
