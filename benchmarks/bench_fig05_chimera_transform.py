"""Figure 5 — transforming a 4-stage Chimera into two one-wave pipelines.

Paper claim: swapping the bright-pipe blocks on the upper device half
with the dark-pipe blocks at symmetric positions yields two identical
one-wave pipelines (a 2-way data parallelism), removes the swapped
boundaries' communication, and is "at least as good" as the original.

Measured here: the block-swap transform's output is structurally valid,
the two groups are isomorphic, messages strictly drop, and wall time
for the same micro-batch set does not regress.
"""

from __future__ import annotations

from repro.actions import compile_schedule, count_messages
from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.runtime import AbstractCosts, simulate
from repro.schedules import chimera_schedule, chimera_to_wave, validate

from _helpers import write_result


def compute():
    out = {}
    for p, b in [(4, 4), (8, 8)]:
        chimera = chimera_schedule(PipelineConfig(
            scheme="chimera", num_devices=p, num_microbatches=b))
        w0, w1 = chimera_to_wave(chimera)
        validate(w0)
        validate(w1)
        costs = CostConfig(t_f=1.0, t_b=2.0, t_c=0.2)
        span_c = simulate(
            chimera, AbstractCosts(costs, p, chimera.num_stages)
        ).makespan
        span_w = max(
            simulate(w0, AbstractCosts(costs, p // 2, w0.num_stages)).makespan,
            simulate(w1, AbstractCosts(costs, p // 2, w1.num_stages)).makespan,
        )
        msgs_c = count_messages(compile_schedule(chimera))
        msgs_w = (count_messages(compile_schedule(w0))
                  + count_messages(compile_schedule(w1)))
        iso = all(
            [(o.kind, o.microbatch, o.stage) for o in w0.device_ops[d]]
            == [(o.kind, o.microbatch, o.stage) for o in w1.device_ops[d]]
            for d in range(p // 2)
        )
        out[(p, b)] = dict(span_c=span_c, span_w=span_w,
                           msgs_c=msgs_c, msgs_w=msgs_w, iso=iso)
    return out


def test_fig05_chimera_transform(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (p, b), d in data.items():
        rows.append([
            f"P={p},B={b}", f"{d['span_c']:.2f}", f"{d['span_w']:.2f}",
            d["msgs_c"], d["msgs_w"], "yes" if d["iso"] else "NO",
        ])
    write_result("fig05_chimera_transform", format_table(
        ["config", "Chimera span", "wave span", "Chimera msgs",
         "wave msgs", "halves identical"],
        rows,
        title="Fig. 5 — Chimera -> two one-wave pipelines (t_c=0.2)",
    ))
    for d in data.values():
        assert d["iso"]
        assert d["msgs_w"] < d["msgs_c"]
        assert d["span_w"] <= d["span_c"] * (1 + 1e-9)
