#!/usr/bin/env python
"""Load benchmark for the advisor daemon (``BENCH_serve.json``).

Drives a real in-process :class:`~repro.serve.server.AdvisorServer`
over HTTP (sockets, codec, micro-batcher — the full served path) and
measures three things:

* ``warm_vs_cold`` — the point of serving: one warmed-up served
  ``/advise`` answer versus a cold ``python -m repro advise --json``
  subprocess paying interpreter start, imports and plan compilation.
  The served answer is asserted byte-identical to the subprocess's
  before timing starts.
* ``concurrent_load`` — thousands of mixed advise queries (4 clusters
  x 3 batch sizes x 2 top-k, plus duplicate shapes to exercise
  single-flight) from concurrent client threads: p50/p99 latency and
  queries/second.
* ``batcher_on`` / ``batcher_off`` — the micro-batcher itself, HTTP
  stripped away: concurrent threads submit distinct advise queries'
  measurement lanes through one :class:`MicroBatcher` with coalescing
  on versus off.  ``batching_speedup`` is the on/off lane-throughput
  ratio — what cross-query lockstep stacking is worth (coalesced lanes
  from different queries share congruence groups and advance as one
  ``PlanBatch``; uncoalesced ones execute one query's list at a time).
  Measured at the executor level because HTTP client overhead — which
  lives in this process and shares the GIL — would otherwise drown the
  signal on small hosts.

Usage::

    python benchmarks/bench_serve.py            # run + print
    python benchmarks/bench_serve.py --write    # refresh baseline
    python benchmarks/bench_serve.py --check    # CI gate

``--check`` gates on machine-portable ratios so it works on CI runners
of any speed: the cold/warm speedup must hold :data:`COLD_SPEEDUP_FLOOR`
(the issue's 10x acceptance bar), the on/off throughput ratio must hold
:data:`BATCHING_RATIO_FLOOR`, and the normalized serving-quality ratios
(p99 as a multiple of the single-query warm latency; throughput as
effective concurrency, qps x warm seconds) must stay within
:data:`REGRESSION_TOLERANCE` of the committed baseline.  Raw
milliseconds are reported for humans but never gated.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import subprocess
import sys
import threading
import time
import urllib.request

if __package__ is None or __package__ == "":  # direct script invocation
    _src = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

BASELINE_PATH = (pathlib.Path(__file__).resolve().parents[1]
                 / "BENCH_serve.json")

#: --check fails when a normalized ratio regresses past (1 + this) /
#: falls below (1 - this) of the committed baseline
REGRESSION_TOLERANCE = 0.30

#: acceptance floor: a warmed served answer must beat a cold
#: ``repro advise`` process by at least this factor
COLD_SPEEDUP_FLOOR = 10.0

#: acceptance floor: cross-query coalescing must keep winning (it is
#: typically a 1.5-2x lane-throughput gain; a ratio near 1 means the
#: dispatcher stopped stacking lanes across queries)
BATCHING_RATIO_FLOOR = 1.2

#: the concurrent load: every distinct query shape is asked this many
#: times by round-robin client threads
QUERIES_PER_SHAPE = 42
CLIENT_THREADS = 8

#: cold-process and warm-serve timing repeats (best-of)
REPEATS = 3


def _mixed_queries(duplicates: bool):
    """The query workload: 24 distinct questions, optionally doubled.

    4 clusters x 3 total batches x 2 top-k = 24 distinct questions.
    With ``duplicates`` each appears twice *adjacently* in the cycle,
    so round-robin clients pick up identical queries concurrently and
    single-flight gets real duplicates to merge; without, every
    in-flight query is distinct — the pure micro-batching regime the
    on/off comparison isolates (dedup fires in both modes and would
    drown the batching signal otherwise).
    """
    from repro.serve import AdviseQuery

    shapes = [
        AdviseQuery.make(cluster, "bert", 8, batch, top=top)
        for cluster in ("PC", "FC", "TACC", "TC")
        for batch in (8, 16, 32)
        for top in (5, 10)
    ]
    if duplicates:
        return [s for shape in shapes for s in (shape, shape)]
    return shapes


def _post(url: str, body: bytes) -> bytes:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST")
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.read()


def _start_server(coalesce: bool = True):
    from repro.serve.server import AdvisorServer

    server = AdvisorServer(("127.0.0.1", 0), coalesce=coalesce)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop_server(server, thread) -> None:
    server.drain(timeout=60)
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# -- scenario: one warm served answer vs one cold process ---------------------


def bench_warm_vs_cold() -> dict:
    from repro.serve import AdviseQuery, dumps_canonical

    query = AdviseQuery.make("FC", "bert", 8, 8, top=5)
    body = dumps_canonical(query.to_payload())
    argv = [sys.executable, "-m", "repro", "advise", "--cluster", "FC",
            "-n", "8", "--batch", "8", "--top", "5", "--json"]
    env = {**os.environ,
           "PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[1]
                             / "src")}

    server, thread = _start_server()
    try:
        url = server.url + "/advise"
        served = _post(url, body)  # warm the caches
        cold_out = subprocess.run(argv, env=env, capture_output=True,
                                  check=True)
        # parity gate before timing: a fast wrong answer is worthless
        if cold_out.stdout != served:
            raise AssertionError("served answer != `repro advise --json`")
        warm = min(_timed(lambda: _post(url, body))
                   for _ in range(REPEATS * 3))
        cold = min(_timed(lambda: subprocess.run(
            argv, env=env, capture_output=True, check=True))
            for _ in range(REPEATS))
    finally:
        _stop_server(server, thread)
    return {
        "warm_ms": round(warm * 1e3, 3),
        "cold_ms": round(cold * 1e3, 3),
        "speedup_cold_vs_warm": round(cold / warm, 2),
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- scenario: mixed concurrent load ------------------------------------------


def _drive_load(server, duplicates: bool) -> dict:
    from repro import profiling
    from repro.serve import dumps_canonical

    cycle = _mixed_queries(duplicates)
    bodies = [dumps_canonical(q.to_payload()) for q in cycle]
    jobs = bodies * QUERIES_PER_SHAPE
    url = server.url + "/advise"
    for body in bodies:  # warm every shape's plans once
        _post(url, body)
    profiling.serve_stats().reset()

    latencies: list[list[float]] = [[] for _ in range(CLIENT_THREADS)]
    errors: list[BaseException] = []
    next_job = {"index": 0}
    pick = threading.Lock()

    def client(slot: int) -> None:
        try:
            while True:
                with pick:
                    index = next_job["index"]
                    if index >= len(jobs):
                        return
                    next_job["index"] = index + 1
                latencies[slot].append(_timed(
                    lambda: _post(url, jobs[index])))
        except BaseException as exc:  # noqa: BLE001 - fail the bench
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(slot,))
               for slot in range(CLIENT_THREADS)]
    wall = _timed(lambda: [
        [t.start() for t in threads], [t.join() for t in threads]])
    if errors:
        raise errors[0]
    samples = [s for per_client in latencies for s in per_client]
    assert len(samples) == len(jobs)
    stats = profiling.serve_stats().snapshot()
    return {
        "queries": len(jobs),
        "client_threads": CLIENT_THREADS,
        "wall_s": round(wall, 3),
        "qps": round(len(jobs) / wall, 1),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "dedup_hits": stats["dedup_hits"],
        "dispatches": stats["dispatches"],
        "mean_lanes_per_dispatch": round(
            sum(int(lanes) * count for lanes, count in
                stats["dispatch_occupancy"].items())
            / max(1, stats["dispatches"]), 2),
    }


def bench_concurrent_load(coalesce: bool = True,
                          duplicates: bool = True) -> dict:
    server, thread = _start_server(coalesce=coalesce)
    try:
        return _drive_load(server, duplicates)
    finally:
        _stop_server(server, thread)


# -- scenario: the micro-batcher itself, no HTTP ------------------------------


def bench_batcher(coalesce: bool) -> dict:
    """Concurrent submitters through one MicroBatcher, on vs off.

    Each job is one distinct advise query's full request list — what a
    handler thread hands the batcher per query.  With coalescing, lanes
    from different in-flight queries stack into shared congruence
    groups (an advise query's own cells all differ structurally, so
    within-query stacking is nil — the win only exists *across*
    queries, which is exactly what this isolates).  Timing runs with gc
    parked (same reasoning as ``bench_perf_core``): collector pauses
    land inside whichever dispatch happens to trigger them and punish
    the coalesced path's larger allocations disproportionately.
    """
    from repro.serve.batcher import MicroBatcher
    from repro.serve.queries import advise_requests

    queries = _mixed_queries(duplicates=False)
    request_lists = [advise_requests(q)[1] for q in queries]
    rounds = 8
    jobs = request_lists * rounds
    lanes = sum(len(rs) for rs in jobs)

    batcher = MicroBatcher(coalesce=coalesce)
    batcher_off = MicroBatcher(coalesce=False)
    batcher_off.measure_flat(request_lists[0])  # warm the plan cache
    for rs in request_lists:
        batcher_off.measure_flat(rs)
    batcher_off.close()

    next_job = {"index": 0}
    pick = threading.Lock()
    errors: list[BaseException] = []

    def submitter() -> None:
        try:
            while True:
                with pick:
                    index = next_job["index"]
                    if index >= len(jobs):
                        return
                    next_job["index"] = index + 1
                batcher.measure_flat(jobs[index])
        except BaseException as exc:  # noqa: BLE001 - fail the bench
            errors.append(exc)

    def drive() -> None:
        next_job["index"] = 0
        threads = [threading.Thread(target=submitter)
                   for _ in range(CLIENT_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        wall = min(_timed(drive) for _ in range(REPEATS))
    finally:
        if was_enabled:
            gc.enable()
    if errors:
        raise errors[0]
    batcher.close()
    return {
        "queries": len(jobs),
        "lanes": lanes,
        "wall_s": round(wall, 3),
        "lanes_per_s": round(lanes / wall, 1),
    }


# -- driver -------------------------------------------------------------------


def run_all() -> dict:
    warm_cold = bench_warm_vs_cold()
    load_mixed = bench_concurrent_load(coalesce=True, duplicates=True)
    batch_on = bench_batcher(coalesce=True)
    batch_off = bench_batcher(coalesce=False)
    warm_s = warm_cold["warm_ms"] / 1e3
    return {
        "version": 1,
        "scenarios": {
            "warm_vs_cold": warm_cold,
            "concurrent_load": load_mixed,
            "batcher_on": batch_on,
            "batcher_off": batch_off,
        },
        # machine-portable serving-quality ratios (what --check gates):
        # p99 as a multiple of the single-query warm latency, effective
        # concurrency (qps x warm seconds), and the coalescing on/off
        # lane-throughput ratio
        "ratios": {
            "p99_over_warm": round(
                load_mixed["p99_ms"] / warm_cold["warm_ms"], 3),
            "throughput_scale": round(load_mixed["qps"] * warm_s, 3),
            "batching_speedup": round(
                batch_on["lanes_per_s"] / batch_off["lanes_per_s"], 3),
        },
    }


def report(payload: dict) -> str:
    wc = payload["scenarios"]["warm_vs_cold"]
    mixed = payload["scenarios"]["concurrent_load"]
    on = payload["scenarios"]["batcher_on"]
    off = payload["scenarios"]["batcher_off"]
    ratios = payload["ratios"]
    return "\n".join([
        "advisor serving benchmark (warm daemon vs cold CLI, "
        "concurrent load)",
        f"  warm_vs_cold     warm {wc['warm_ms']:8.1f} ms   cold "
        f"{wc['cold_ms']:8.1f} ms   speedup "
        f"{wc['speedup_cold_vs_warm']:6.1f}x",
        f"  concurrent_load  {mixed['queries']} queries / "
        f"{mixed['client_threads']} clients   {mixed['qps']:6.1f} qps   "
        f"p50 {mixed['p50_ms']:6.1f} ms   p99 {mixed['p99_ms']:6.1f} ms   "
        f"{mixed['dedup_hits']} dedup hits   "
        f"{mixed['mean_lanes_per_dispatch']:.1f} lanes/dispatch",
        f"  batcher on/off   {on['lanes_per_s']:8.1f} vs "
        f"{off['lanes_per_s']:8.1f} lanes/s over {on['lanes']} lanes"
        f"   -> coalescing worth {ratios['batching_speedup']:.2f}x",
        f"  ratios           p99/warm {ratios['p99_over_warm']:.2f}   "
        f"effective concurrency {ratios['throughput_scale']:.2f}",
    ])


def check(payload: dict, baseline: dict) -> list[str]:
    """CI-gating failures vs floors and the committed baseline."""
    problems: list[str] = []
    speedup = payload["scenarios"]["warm_vs_cold"][
        "speedup_cold_vs_warm"]
    if speedup < COLD_SPEEDUP_FLOOR:
        problems.append(
            f"warm_vs_cold: served speedup {speedup:.1f}x below the "
            f"required {COLD_SPEEDUP_FLOOR:.0f}x floor")
    ratios = payload["ratios"]
    if ratios["batching_speedup"] < BATCHING_RATIO_FLOOR:
        problems.append(
            f"batching_speedup: micro-batching on/off throughput ratio "
            f"{ratios['batching_speedup']:.2f} fell below "
            f"{BATCHING_RATIO_FLOOR:.1f} (coalescing is losing)")
    base = baseline.get("ratios", {})
    p99 = ratios["p99_over_warm"]
    if "p99_over_warm" in base and \
            p99 > (1 + REGRESSION_TOLERANCE) * base["p99_over_warm"]:
        problems.append(
            f"p99_over_warm: tail latency ratio {p99:.2f} regressed "
            f">{REGRESSION_TOLERANCE:.0%} vs baseline "
            f"{base['p99_over_warm']:.2f}")
    scale = ratios["throughput_scale"]
    if "throughput_scale" in base and \
            scale < (1 - REGRESSION_TOLERANCE) * base["throughput_scale"]:
        problems.append(
            f"throughput_scale: effective concurrency {scale:.2f} "
            f"regressed >{REGRESSION_TOLERANCE:.0%} vs baseline "
            f"{base['throughput_scale']:.2f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help=f"refresh {BASELINE_PATH.name}")
    mode.add_argument("--check", action="store_true",
                      help="fail on floor violations or >30%% ratio "
                           "regressions vs the committed baseline")
    args = parser.parse_args(argv)

    payload = run_all()
    print(report(payload))
    if args.write:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        try:
            baseline = json.loads(BASELINE_PATH.read_text())
        except FileNotFoundError:
            print(f"error: no committed baseline at {BASELINE_PATH}",
                  file=sys.stderr)
            return 1
        problems = check(payload, baseline)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"floors held (cold/warm {COLD_SPEEDUP_FLOOR:.0f}x, "
              f"batching ratio {BATCHING_RATIO_FLOOR:.1f}); serving "
              f"ratios within {REGRESSION_TOLERANCE:.0%} of the "
              "committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
