"""Figure 4 — synchronous vs asynchronous pipeline parallelism.

Paper content: the synchronous 1F1B pipeline flushes each iteration and
pays fill/drain bubbles; the asynchronous version streams micro-batches
with no flush and reaches a bubble-free steady state, at the price of
weight staleness (the reason Sec. 2.3 gives for sticking to synchronous
schedules).  We reproduce both halves quantitatively:

* steady-state bubble ratio of async-1F1B ≈ 0 while sync > 0;
* async weight staleness grows with pipeline depth, sync staleness = 0.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.runtime import (
    AbstractCosts,
    bubble_stats,
    simulate,
    steady_state_bubble_ratio,
)
from repro.schedules import (
    async_1f1b_schedule,
    build_schedule,
    max_staleness,
)

from _helpers import write_result


def compute():
    p, b = 4, 4
    sync = build_schedule(PipelineConfig(
        scheme="dapple", num_devices=p, num_microbatches=b))
    sync_res = simulate(sync, AbstractCosts(CostConfig(), p, p))
    async_sched = async_1f1b_schedule(PipelineConfig(
        scheme="async-1f1b", num_devices=p, num_microbatches=b),
        iterations=8)
    async_res = simulate(async_sched, AbstractCosts(CostConfig(), p, p))
    return {
        "sync_full": bubble_stats(sync_res.timeline).bubble_ratio,
        "sync_steady": steady_state_bubble_ratio(sync_res.timeline),
        "async_steady": steady_state_bubble_ratio(async_res.timeline),
        "async_staleness": max_staleness(async_sched),
        "sync_staleness": 0,  # flush synchronises versions by definition
        "depth_staleness": {
            depth: max_staleness(async_1f1b_schedule(PipelineConfig(
                scheme="async-1f1b", num_devices=depth,
                num_microbatches=depth), iterations=4))
            for depth in (2, 4, 8)
        },
    }


def test_fig04_sync_vs_async(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ["sync 1F1B (flush)", f"{data['sync_full'] * 100:.1f}%",
         data["sync_staleness"]],
        ["async 1F1B (no flush)", f"{data['async_steady'] * 100:.1f}%",
         data["async_staleness"]],
    ]
    depth_rows = [[d, s] for d, s in data["depth_staleness"].items()]
    write_result("fig04_sync_vs_async", format_table(
        ["pipeline", "steady-state bubble", "max weight staleness"],
        rows, title="Fig. 4 — synchronous vs asynchronous (P=4, B=4)",
    ) + "\n\n" + format_table(
        ["pipeline depth", "async staleness"], depth_rows,
        title="Staleness growth with depth (why the paper stays synchronous)",
    ))

    assert data["sync_full"] > 0.2            # flush bubbles exist
    assert data["async_steady"] < 0.02        # async steady state ~free
    assert data["async_staleness"] > 0        # but weights are stale
    ds = data["depth_staleness"]
    assert ds[8] > ds[4] > ds[2]
