"""Figure 6 — scaling Hanayo to more devices and more waves.

Paper content: (a) a two-wave pipeline on 8 devices (each micro-batch's
forward traces two 'V's); (b) wave=2 vs wave=4 on 4 devices, where
doubling the waves halves each bubble.  Measured here:

* the wave count W produces exactly W V-turns per forward pass;
* simulated bubble ratio strictly decreases as waves double (T_C = 0);
* the improvement survives a moderate T_C, and large T_C flips the
  ordering back (the TACC effect of Sec. 5.2).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import build_schedule

from _helpers import write_result


def bubble(p: int, b: int, w: int, t_c: float) -> float:
    cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                         num_microbatches=b, num_waves=w)
    sched = build_schedule(cfg, CostConfig(t_c=t_c))
    res = simulate(sched, AbstractCosts(CostConfig(t_c=t_c), p,
                                        sched.num_stages))
    return bubble_stats(res.timeline).bubble_ratio


def turns_per_forward(p: int, w: int) -> int:
    cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                         num_microbatches=2, num_waves=w)
    sched = build_schedule(cfg)
    plc = sched.placement
    # A 'V' is one down-pass + one up-pass; the snake has 2W passes
    # joined by 2W-1 local turns, i.e. (turns + 1) / 2 V-shapes.
    local_turns = sum(
        plc.is_local_boundary(s) for s in range(sched.num_stages - 1)
    )
    return (local_turns + 1) // 2


def compute():
    ratios = {
        (p, w, t_c): bubble(p, 8, w, t_c)
        for p in (4, 8)
        for w in (1, 2, 4)
        for t_c in (0.0, 0.1, 1.0)
    }
    turns = {(p, w): turns_per_forward(p, w) for p in (4, 8)
             for w in (1, 2, 4)}
    return ratios, turns


def test_fig06_wave_scaling(benchmark):
    ratios, turns = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for p in (4, 8):
        for w in (1, 2, 4):
            rows.append([
                p, w, turns[(p, w)],
                f"{ratios[(p, w, 0.0)] * 100:.1f}%",
                f"{ratios[(p, w, 0.1)] * 100:.1f}%",
                f"{ratios[(p, w, 1.0)] * 100:.1f}%",
            ])
    write_result("fig06_wave_scaling", format_table(
        ["P", "W", "V-turns", "bubble (t_c=0)", "bubble (t_c=0.1)",
         "bubble (t_c=1.0)"],
        rows, title="Fig. 6 — more waves, more devices (B=8)",
    ))

    for p in (4, 8):
        # W waves = W 'V's per forward pass
        for w in (1, 2, 4):
            assert turns[(p, w)] == w
        # halving bubbles with free communication
        assert (ratios[(p, 1, 0.0)] > ratios[(p, 2, 0.0)]
                > ratios[(p, 4, 0.0)])
        # expensive comm erodes (and eventually reverses) the gain
        assert ratios[(p, 4, 1.0)] > ratios[(p, 4, 0.0)]
    assert ratios[(8, 4, 1.0)] > ratios[(8, 1, 1.0)] * 0.8
