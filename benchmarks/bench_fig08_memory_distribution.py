"""Figure 8 — peak-memory distribution over 32 GPUs on TACC Lonestar6.

Paper content: four panels (BERT-64 and GPT-128, each at (P=8, N=4) and
(P=16, N=2)) showing per-GPU peak memory for GPipe, DAPPLE, Chimera and
Hanayo on 40 GB A100s.  Text claims: GPipe and DAPPLE have comparable
highest peaks but GPipe OOMs in two settings; Chimera and Hanayo have
lower highest peaks; variances — GPipe 1.33, DAPPLE 16.85, Chimera
2.86, Hanayo 1.44 (DAPPLE's skew is the story, exact values are
cluster-specific).

Measured here: the per-device peak distribution of every scheme in all
four settings, the OOM verdicts against 40 GB, and the variance
ordering DAPPLE >> Chimera > Hanayo.
"""

from __future__ import annotations

from repro.actions import StageResources
from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.models import A100_40G, bert_64, gpt_128, stage_costs
from repro.runtime import AbstractCosts, simulate
from repro.schedules import build_schedule

from _helpers import write_result

#: (model, P, D, B, microbatch size); batches chosen to fill the 40 GB
#: cards the way the paper's batch-2/batch-4 settings do — the GPT
#: stack's deeper activation footprint is what pushes GPipe over the
#: limit in two of the four settings.
SETTINGS = [
    (bert_64, 8, 4, 16, 2),
    (bert_64, 16, 2, 32, 2),
    (gpt_128, 8, 4, 16, 3),
    (gpt_128, 16, 2, 32, 3),
]
SCHEMES = [("gpipe", 1), ("dapple", 1), ("chimera", 1), ("hanayo", 2)]


def measure(model_fn, scheme, p, b, w, mb_size):
    model = model_fn()
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=b,
                         num_waves=w, microbatch_size=mb_size)
    sched = build_schedule(cfg)
    costs = stage_costs(model, sched.num_stages, A100_40G, mb_size)
    # the event core tracks the watermarks live; the bench just reads
    # the per-device peaks off the simulation result
    res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages),
                   resources=StageResources.from_stage_costs(costs))
    return res.memory


def compute():
    out = {}
    for model_fn, p, d, b, mb in SETTINGS:
        for scheme, w in SCHEMES:
            mem = measure(model_fn, scheme, p, b, w, mb)
            out[(model_fn().name, p, scheme)] = mem
    return out


def test_fig08_memory_distribution(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    cap = A100_40G.memory_bytes
    rows = []
    oom_count = {s: 0 for s, _ in SCHEMES}
    for (model, p, scheme), mem in data.items():
        oom = not mem.fits(cap)
        if oom:
            oom_count[scheme] += 1
        rows.append([
            model, p, scheme,
            f"{mem.highest_peak / 2**30:.1f}",
            f"{mem.mean_peak / 2**30:.1f}",
            f"{mem.variance:.2f}",
            "OOM" if oom else "fits",
        ])
    write_result("fig08_memory_distribution", format_table(
        ["model", "P", "scheme", "highest peak GiB", "mean GiB",
         "variance GiB^2", "40GB verdict"],
        rows, title="Fig. 8 — peak memory across GPUs (TACC A100-40G)",
    ))

    # paper claims, per setting:
    for model_fn, p, d, b, mb in SETTINGS:
        name = model_fn().name
        gpipe = data[(name, p, "gpipe")]
        dapple = data[(name, p, "dapple")]
        chimera = data[(name, p, "chimera")]
        hanayo = data[(name, p, "hanayo")]
        # GPipe highest peak >= everyone (it retains all activations)
        assert gpipe.highest_peak >= dapple.highest_peak * 0.999
        # DAPPLE's skew dominates the variance ranking
        assert dapple.variance > chimera.variance
        assert dapple.variance > hanayo.variance
        # Hanayo's balance: variance within the GPipe..DAPPLE band,
        # near the flat end
        assert hanayo.variance < 0.5 * dapple.variance
    # GPipe OOMs in two settings while Hanayo never does (paper: "GPipe
    # caused Out of Memory errors in two settings")
    assert oom_count["gpipe"] == 2
    assert oom_count["hanayo"] == 0
    assert oom_count["dapple"] == 0 and oom_count["chimera"] == 0
    benchmark.extra_info["gpipe_oom_settings"] = oom_count["gpipe"]
