"""Figure 1 — theoretical bubble ratio of synchronous pipeline schemes.

Paper setting: bars for GPipe, DAPPLE, GEMS, Chimera (replica=2),
Hanayo (wave=2) and Hanayo (wave=4) at 8 and 32 devices, with
``B = P``, ``T_B = 2 T_F`` and communication ignored.

Expected shape (read off the figure): GEMS worst (≈75-80%), GPipe and
DAPPLE tied near 45-50%, Chimera clearly below them, Hanayo(2) below
Chimera, Hanayo(4) lowest (≈13%).  We print both the closed-form values
and the ratios measured by executing each schedule in the simulator.
"""

from __future__ import annotations

from repro.analysis import format_table, theoretical_bubble_ratio
from repro.config import CostConfig, PipelineConfig
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import build_schedule

from _helpers import write_result

SCHEMES = [
    ("gpipe", 1),
    ("dapple", 1),
    ("gems", 1),
    ("chimera", 1),
    ("hanayo", 2),
    ("hanayo", 4),
]


def simulated_ratio(scheme: str, p: int, w: int) -> float:
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=p,
                         num_waves=w)
    sched = build_schedule(cfg)
    res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages))
    return bubble_stats(res.timeline).bubble_ratio


def compute() -> dict:
    out = {}
    for p in (8, 32):
        for scheme, w in SCHEMES:
            out[(p, scheme, w)] = (
                theoretical_bubble_ratio(scheme, p, w=w),
                simulated_ratio(scheme, p, w),
            )
    return out


def test_fig01_theoretical_bubbles(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (p, scheme, w), (theory, sim) in sorted(data.items()):
        label = f"{scheme}" + (f"(w={w})" if scheme == "hanayo" else "")
        rows.append([p, label, f"{theory * 100:.1f}%", f"{sim * 100:.1f}%"])
    write_result("fig01_theoretical_bubbles", format_table(
        ["devices", "scheme", "closed form", "simulated"],
        rows,
        title="Fig. 1 — theoretical bubble ratio (B=P, T_B=2T_F, T_C=0)",
    ))

    for p in (8, 32):
        gems = data[(p, "gems", 1)]
        gpipe = data[(p, "gpipe", 1)]
        dapple = data[(p, "dapple", 1)]
        chimera = data[(p, "chimera", 1)]
        h2 = data[(p, "hanayo", 2)]
        h4 = data[(p, "hanayo", 4)]
        for i in (0, 1):  # both the closed form and the simulation
            assert gems[i] > gpipe[i] > chimera[i] > h2[i] > h4[i]
        assert abs(gpipe[i] - dapple[i]) < 0.02
        # paper's reduction claim: Hanayo(4) bubble is under half of
        # GPipe's at both device counts
        assert h4[0] < gpipe[0] / 2
    benchmark.extra_info["hanayo_w4_p8_simulated"] = data[(8, "hanayo", 4)][1]
