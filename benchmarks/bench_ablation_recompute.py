"""Extension — activation checkpointing x pipeline schedule.

Recomputation (Sec. 6's memory-saving family) is orthogonal to the
schedule: it shrinks every live activation to one boundary tensor and
stretches ``T_B`` from ``2 T_F`` to ``3 T_F``.  Memory-wise it is a
**Program-level transform**: ``StageResources.with_recompute()``
re-annotates the same action lists with the checkpointed footprint
(only the cost oracle changes on the time side).  This bench maps the
interaction: checkpointing rescues GPipe from its OOMs at a uniform
~25-30% throughput tax, while Hanayo gets GPipe-class memory *without*
the recompute tax — the scheduling-beats-recomputation argument.
"""

from __future__ import annotations

from repro.actions import StageResources
from repro.analysis import format_table
from repro.cluster import CommModel, make_tacc
from repro.config import PipelineConfig
from repro.models import bert_64, stage_costs
from repro.runtime import ConcreteCosts, simulate
from repro.schedules import build_schedule

from _helpers import gap, write_result

P, B, MB = 8, 16, 3


def run(scheme: str, w: int, recompute: bool):
    cluster = make_tacc(P)
    cfg = PipelineConfig(scheme=scheme, num_devices=P, num_microbatches=B,
                         num_waves=w, microbatch_size=MB)
    sched = build_schedule(cfg)
    costs = stage_costs(bert_64(), sched.num_stages, cluster.device,
                        MB, recompute=recompute)
    # the time side (T_B -> 3 T_F) comes from the cost oracle; the
    # memory side is the resource transform on the full footprint
    resources = StageResources.from_stage_costs(
        stage_costs(bert_64(), sched.num_stages, cluster.device, MB))
    if recompute:
        resources = resources.with_recompute()
    res = simulate(sched, ConcreteCosts(costs, CommModel.from_cluster(cluster)),
                   resources=resources)
    mem = res.memory
    seq_per_s = B * MB / res.makespan
    return seq_per_s, mem.highest_peak, mem.fits(cluster.device.memory_bytes)


def compute():
    out = {}
    for scheme, w in [("gpipe", 1), ("dapple", 1), ("hanayo", 2)]:
        for rc in (False, True):
            out[(scheme, w, rc)] = run(scheme, w, rc)
    return out


def test_ablation_recompute(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (scheme, w, rc), (tp, peak, fits) in sorted(data.items()):
        label = scheme + (f"(w={w})" if scheme == "hanayo" else "")
        rows.append([
            label, "ckpt" if rc else "full", f"{tp:.2f}",
            f"{peak / 2**30:.1f}", "fits" if fits else "OOM",
        ])
    write_result("ablation_recompute", format_table(
        ["schedule", "activations", "seq/s", "peak GiB", "40GB verdict"],
        rows,
        title=f"Ablation — activation checkpointing (P={P}, B={B}, "
              f"micro-batch {MB}, TACC A100-40G)",
    ))

    # checkpointing rescues GPipe's memory...
    assert not data[("gpipe", 1, False)][2]   # full GPipe OOMs
    assert data[("gpipe", 1, True)][2]        # checkpointed GPipe fits
    # ...at a throughput cost near the extra forward (20-35%)
    tax = 1 - data[("gpipe", 1, True)][0] / data[("gpipe", 1, False)][0]
    assert 0.15 < tax < 0.40
    # Hanayo fits *without* recompute and outruns checkpointed GPipe
    assert data[("hanayo", 2, False)][2]
    assert data[("hanayo", 2, False)][0] > data[("gpipe", 1, True)][0]
    # recompute slashes every scheme's peak
    for scheme, w in [("gpipe", 1), ("dapple", 1), ("hanayo", 2)]:
        assert data[(scheme, w, True)][1] < data[(scheme, w, False)][1]
