"""Extension — hybrid tensor x pipeline x data parallelism.

The paper frames Hanayo inside the Megatron recipe (Secs. 1 and 6):
tensor parallelism within a node, pipeline parallelism across nodes.
This bench sweeps every (TP, PP, DP) factorization of a 16-GPU TACC
slice and a 16-GPU NVLink (FC) slice and checks the recipe's two
predictions:

* on NVLink-rich nodes TP is cheap, so TP > 1 layouts are competitive
  and relieve memory;
* across slow node links TP collectives are expensive, so pure
  pipeline+data layouts win.
"""

from __future__ import annotations

from repro.analysis import format_table, hybrid_search
from repro.cluster import make_fc, make_tacc
from repro.models import bert_64

from _helpers import write_result


def compute():
    model = bert_64()
    return {
        "FC": hybrid_search("hanayo", make_fc(16), model,
                            total_batch=32, waves=(2,)),
        "TACC": hybrid_search("hanayo", make_tacc(16), model,
                              total_batch=32, waves=(2,)),
    }


def test_hybrid_parallelism(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    best = {}
    for cname, cells in data.items():
        ranked = sorted(cells, key=lambda c: (c[2].seq_per_s or 0),
                        reverse=True)
        best[cname] = ranked[0]
        for layout, w, r in ranked:
            rows.append([
                cname, layout.describe(), w,
                None if r.oom else f"{r.seq_per_s:.2f}",
                None if r.oom else f"{r.peak_mem_bytes / 2**30:.1f}",
            ])
    write_result("hybrid_parallelism", format_table(
        ["cluster", "layout", "W", "seq/s", "peak GiB"],
        rows, title="Hybrid 3D parallelism sweep, BERT-64 on 16 GPUs",
    ))

    # TACC: TP crosses PCIe/socket links -> pure PP x DP wins.
    tacc_best = best["TACC"][0]
    assert tacc_best.tp == 1
    # TP shards weights: every TP=2 layout peaks lower than its TP=1
    # sibling with the same (P, D) product per TP group.
    for cname, cells in data.items():
        by = {(l.tp, l.p, l.d): r for l, _, r in cells}
        for (tp, p, d), r in by.items():
            sibling = by.get((1, p, d))
            if tp == 2 and sibling is not None and not r.oom \
                    and not sibling.oom:
                assert r.peak_mem_bytes < sibling.peak_mem_bytes
    # FC: with NVLink everywhere, at least one TP>1 layout lands in the
    # top half of the ranking (TP is viable, even if PP wins outright).
    fc_ranked = sorted(data["FC"], key=lambda c: (c[2].seq_per_s or 0),
                       reverse=True)
    top_half = fc_ranked[: max(1, len(fc_ranked) // 2)]
    assert any(l.tp > 1 for l, _, _ in top_half)
