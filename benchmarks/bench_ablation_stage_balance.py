"""Ablation — stage balance (DESIGN.md: why costs default to balanced).

The paper's analysis assumes every stage costs ``T_F / (S/P)``.  Real
contiguous-layer partitions of a 66-layer stack into 2WP stages leave a
residual imbalance that hits wave schedules hardest (their critical path
crosses every stage 2W times).  This ablation quantifies the gap
between the balanced idealisation and the greedy partition, motivating
the library's default and the per-figure calibration note.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import CommModel
from repro.config import PipelineConfig
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import ConcreteCosts, bubble_stats, simulate
from repro.schedules import build_schedule

from _helpers import gap, write_result


def bubble(scheme: str, w: int, balanced: bool) -> float:
    p = b = 8
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=b,
                         num_waves=w)
    sched = build_schedule(cfg)
    costs = stage_costs(bert_64(), sched.num_stages, A100_40G,
                        balanced=balanced)
    res = simulate(sched, ConcreteCosts(costs, CommModel.uniform(0.0)))
    return bubble_stats(res.timeline).bubble_ratio


def compute():
    out = {}
    for scheme, w in [("gpipe", 1), ("dapple", 1), ("hanayo", 1),
                      ("hanayo", 2), ("hanayo", 4)]:
        out[(scheme, w)] = (bubble(scheme, w, True),
                            bubble(scheme, w, False))
    return out


def test_ablation_stage_balance(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (scheme, w), (bal, unbal) in sorted(data.items()):
        label = scheme + (f"(w={w})" if scheme == "hanayo" else "")
        rows.append([label, f"{bal * 100:.1f}%", f"{unbal * 100:.1f}%",
                     f"{(unbal - bal) * 100:+.1f}pp"])
    write_result("ablation_stage_balance", format_table(
        ["schedule", "balanced stages", "greedy partition", "penalty"],
        rows,
        title="Ablation — stage balance, BERT-64 on A100 (P=B=8, no comm)",
    ))

    for (scheme, w), (bal, unbal) in data.items():
        assert unbal >= bal - 1e-9, (scheme, w)
    # imbalance costs the fine-grained wave pipeline more than GPipe
    gpipe_pen = data[("gpipe", 1)][1] - data[("gpipe", 1)][0]
    h4_pen = data[("hanayo", 4)][1] - data[("hanayo", 4)][0]
    assert h4_pen > gpipe_pen
