"""Shared helpers for the figure-reproduction benchmarks.

Every bench writes its "paper vs measured" table to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so files are
the durable record) and also attaches headline numbers to
``benchmark.extra_info`` so they land in the pytest-benchmark JSON.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: shared on-disk cache for the sweep-engine benches (fig09-fig12):
#: overlapping cells — and re-runs — are measured exactly once
SWEEP_CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_SWEEP_CACHE",
                   pathlib.Path(__file__).parent / ".sweep_cache")
)


def sweep_opts() -> dict:
    """``cache``/``workers`` kwargs for the sweep-engine entry points.

    ``REPRO_SWEEP_WORKERS`` (int) turns on multiprocessing fan-out;
    ``REPRO_SWEEP_CACHE`` relocates the cache directory.
    """
    from repro.sweep import ResultCache

    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
    return {
        "cache": ResultCache(SWEEP_CACHE_DIR),
        "workers": workers if workers > 1 else None,
    }


def write_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo for -s runs.
    print(f"\n{text}\n[written to {path}]")
    return path


def gap(new: float, old: float) -> float:
    """Relative improvement of ``new`` over ``old`` in percent."""
    return (new / old - 1.0) * 100.0
