"""Shared helpers for the figure-reproduction benchmarks.

Every bench writes its "paper vs measured" table to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so files are
the durable record) and also attaches headline numbers to
``benchmark.extra_info`` so they land in the pytest-benchmark JSON.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo for -s runs.
    print(f"\n{text}\n[written to {path}]")
    return path


def gap(new: float, old: float) -> float:
    """Relative improvement of ``new`` over ``old`` in percent."""
    return (new / old - 1.0) * 100.0
