"""Figure 2 — the unified comparison of SOTA approaches.

The paper's Fig. 2 is a qualitative table: bubble ratio and memory
consumption per scheme (with K = P²/2 − P cross-communications charged
to Chimera).  We regenerate it quantitatively from the unified
performance model and assert the arrow directions the figure draws:

* GPipe: high bubble, high activation memory.
* DAPPLE: same bubble, lower (but skewed) activation memory.
* GEMS: lowest memory, worst bubble.
* Chimera: low bubble, 2x weight memory.
* Hanayo: low bubble, 1x weight memory, DAPPLE-level activations.
"""

from __future__ import annotations

from repro.analysis import chimera_k, compare_schemes, format_table

from _helpers import write_result


def compute():
    return compare_schemes(p=8, b=8, waves=(2, 4))


def test_fig02_comparison_table(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    by = {}
    table = []
    for i, r in enumerate(rows):
        key = r.scheme if r.scheme != "hanayo" else f"hanayo{i}"
        by[key] = r
        table.append([
            r.scheme, f"{r.bubble_ratio * 100:.1f}%",
            r.weight_memory_units, f"{r.activation_memory_units:.2f}",
            r.cross_comm_messages,
        ])
    write_result("fig02_comparison_table", format_table(
        ["scheme", "bubble", "Mw (units)", "Ma (units)", "x-comm msgs"],
        table,
        title=f"Fig. 2 — unified comparison at P=8, B=8 (K = {chimera_k(8):.0f})",
    ))

    gpipe, dapple, gems = by["gpipe"], by["dapple"], by["gems"]
    chimera, h2, h4 = by["chimera"], by["hanayo4"], by["hanayo5"]
    # bubble arrows
    assert gems.bubble_ratio > gpipe.bubble_ratio
    assert chimera.bubble_ratio < gpipe.bubble_ratio
    assert h2.bubble_ratio < chimera.bubble_ratio
    # memory arrows
    assert chimera.weight_memory_units == 2.0
    assert h2.weight_memory_units == 1.0
    assert gpipe.activation_memory_units >= dapple.activation_memory_units
    assert gems.activation_memory_units < h2.activation_memory_units
    assert h2.activation_memory_units <= dapple.activation_memory_units
