"""Figure 3 — the five schedule diagrams and their peak Mw/Ma axes.

Paper content: GPipe, DAPPLE, Chimera (P=8), Hanayo one-wave and
Hanayo two-wave schedules at P=4, B=4 (B=8 for Chimera), annotated with
per-device weight and activation unit counts.  We regenerate each
schedule, render its Gantt chart into the results file, and assert the
memory annotations:

* GPipe Ma peaks at B units on every device; DAPPLE at P on device 0
  declining to 1 on the last device.
* Chimera stores 2 weight units per device, everyone else 1.
* Hanayo's Ma (in bytes) never exceeds DAPPLE's worst device and is
  more balanced.
"""

from __future__ import annotations

from repro.actions import StageResources
from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import AbstractCosts, simulate
from repro.schedules import build_schedule
from repro.viz import render_gantt

from _helpers import write_result

CASES = [
    ("gpipe", 4, 4, 1),
    ("dapple", 4, 4, 1),
    ("chimera", 8, 8, 1),
    ("hanayo", 4, 4, 1),
    ("hanayo", 4, 4, 2),
]


def compute():
    out = {}
    model = bert_64()
    for scheme, p, b, w in CASES:
        cfg = PipelineConfig(scheme=scheme, num_devices=p,
                             num_microbatches=b, num_waves=w)
        sched = build_schedule(cfg)
        costs = stage_costs(model, sched.num_stages, A100_40G)
        # memory peaks come from the event core's live watermarks —
        # the program carries its own alloc/free effects
        res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages),
                       resources=StageResources.from_stage_costs(costs))
        out[(scheme, w, p)] = (sched, res, res.memory, costs)
    return out


def test_fig03_schedules_and_memory(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    chunks = []
    summary = []
    for (scheme, w, p), (sched, res, mem, costs) in data.items():
        label = f"{scheme}" + (f" (W={w})" if scheme == "hanayo" else "")
        chunks.append(f"--- {label}, P={p} ---")
        chunks.append(render_gantt(res.timeline, width=96))
        act_peaks = [
            (mem.peak_bytes[d] - mem.static_bytes[d])
            / costs.activation_bytes[0] / sched.placement.chunks_on(d)
            for d in sorted(mem.peak_bytes)
        ]
        summary.append([
            label,
            f"{mem.static_bytes[0] / 2**30:.1f}",
            " ".join(f"{a:.1f}" for a in act_peaks),
        ])
        chunks.append("")
    table = format_table(
        ["schedule", "Mw dev0 (GiB)", "Ma peaks (device-units)"],
        summary, title="Fig. 3 — peak memory annotations",
    )
    write_result("fig03_schedules_memory",
                 "\n".join(chunks) + "\n" + table)

    gpipe = data[("gpipe", 1, 4)][2]
    dapple = data[("dapple", 1, 4)][2]
    chimera = data[("chimera", 1, 8)][2]
    h1 = data[("hanayo", 1, 4)][2]

    # GPipe flat at B activations; DAPPLE declines from P to 1.
    gp_acts = [gpipe.peak_bytes[d] - gpipe.static_bytes[d] for d in range(4)]
    assert max(gp_acts) - min(gp_acts) < 1e-6
    da_acts = [dapple.peak_bytes[d] - dapple.static_bytes[d] for d in range(4)]
    assert da_acts == sorted(da_acts, reverse=True)
    # Chimera's static (weights) doubles everyone else's.
    assert chimera.static_bytes[0] > 1.9 * dapple.static_bytes[0] * (4 / 8)
    # Hanayo peak no worse than DAPPLE's worst device, variance lower.
    assert h1.highest_peak <= dapple.highest_peak * 1.001
    assert h1.variance < dapple.variance
