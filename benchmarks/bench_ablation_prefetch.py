"""Ablation — communication prefetching (paper Sec. 4.2).

The runtime's look-ahead posts the next receive before the current
compute slice so transport overlaps computation.  We ablate it in the
discrete-event simulator: with prefetch off, every cross-device tensor
blocks the receiver.  The win must grow with the communication cost and
with the wave count (more messages to hide).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.runtime import AbstractCosts, simulate
from repro.schedules import build_schedule

from _helpers import gap, write_result


def makespan(scheme: str, w: int, t_c: float, prefetch: bool) -> float:
    p = b = 8
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=b,
                         num_waves=w)
    sched = build_schedule(cfg, CostConfig(t_c=t_c))
    costs = AbstractCosts(CostConfig(t_c=t_c), p, sched.num_stages)
    return simulate(sched, costs, RunConfig(prefetch=prefetch)).makespan


def compute():
    out = {}
    for scheme, w in [("dapple", 1), ("hanayo", 1), ("hanayo", 2),
                      ("hanayo", 4)]:
        for t_c in (0.05, 0.2, 0.5):
            on = makespan(scheme, w, t_c, True)
            off = makespan(scheme, w, t_c, False)
            out[(scheme, w, t_c)] = (on, off)
    return out


def test_ablation_prefetch(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (scheme, w, t_c), (on, off) in sorted(data.items()):
        label = scheme + (f"(w={w})" if scheme == "hanayo" else "")
        rows.append([label, t_c, f"{on:.2f}", f"{off:.2f}",
                     f"{gap(off, on):+.1f}%"])
    write_result("ablation_prefetch", format_table(
        ["schedule", "t_c", "makespan (prefetch)", "makespan (blocking)",
         "blocking penalty"],
        rows, title="Ablation — prefetch / async communication (P=B=8)",
    ))

    for (scheme, w, t_c), (on, off) in data.items():
        assert on <= off + 1e-9
    # the penalty grows with t_c...
    for scheme, w in [("hanayo", 2)]:
        penalties = [
            data[(scheme, w, t_c)][1] - data[(scheme, w, t_c)][0]
            for t_c in (0.05, 0.2, 0.5)
        ]
        assert penalties == sorted(penalties)
    # ...and more waves leave more communication to hide
    p_w1 = data[("hanayo", 1, 0.5)][1] - data[("hanayo", 1, 0.5)][0]
    p_w4 = data[("hanayo", 4, 0.5)][1] - data[("hanayo", 4, 0.5)][0]
    assert p_w4 > p_w1
