"""Ablation — communication prefetching (paper Sec. 4.2).

The runtime's look-ahead posts the next receive before the current
compute slice so transport overlaps computation.  We ablate it in the
event-driven simulator: with prefetch off, every cross-device tensor
blocks the receiver.  The win must grow with the communication cost and
with the wave count (more messages to hide).

The event core accounts recv wait in **both** modes (``recv_busy``):
blocking runs charge each transfer's full duration to the receiving
device; prefetched runs charge only the residual stalls the overlap
could not hide.  The table reads those two numbers directly instead of
special-casing the prefetch mode.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.runtime import AbstractCosts, simulate
from repro.schedules import build_schedule

from _helpers import gap, write_result


def run_sim(scheme: str, w: int, t_c: float, prefetch: bool):
    p = b = 8
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=b,
                         num_waves=w)
    sched = build_schedule(cfg, CostConfig(t_c=t_c))
    costs = AbstractCosts(CostConfig(t_c=t_c), p, sched.num_stages)
    return simulate(sched, costs, RunConfig(prefetch=prefetch))


def compute():
    out = {}
    for scheme, w in [("dapple", 1), ("hanayo", 1), ("hanayo", 2),
                      ("hanayo", 4)]:
        for t_c in (0.05, 0.2, 0.5):
            on = run_sim(scheme, w, t_c, True)
            off = run_sim(scheme, w, t_c, False)
            out[(scheme, w, t_c)] = (
                on.makespan, off.makespan,
                sum(on.recv_busy.values()), sum(off.recv_busy.values()),
            )
    return out


def test_ablation_prefetch(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for (scheme, w, t_c), (on, off, wait_on, wait_off) in sorted(data.items()):
        label = scheme + (f"(w={w})" if scheme == "hanayo" else "")
        rows.append([label, t_c, f"{on:.2f}", f"{off:.2f}",
                     f"{gap(off, on):+.1f}%",
                     f"{wait_on:.2f}", f"{wait_off:.2f}"])
    write_result("ablation_prefetch", format_table(
        ["schedule", "t_c", "makespan (prefetch)", "makespan (blocking)",
         "blocking penalty", "recv wait (prefetch)", "recv wait (blocking)"],
        rows, title="Ablation — prefetch / async communication (P=B=8)",
    ))

    for (scheme, w, t_c), (on, off, wait_on, wait_off) in data.items():
        assert on <= off + 1e-9
        # recv wait is accounted in both modes, never silently empty
        # while communication costs anything
        assert wait_off > 0
        assert wait_on >= 0
        # blocking mode charges every transfer in full; the overlap can
        # only reduce what the device actually waits for
        assert wait_on <= wait_off + 1e-9
    # the penalty grows with t_c...
    for scheme, w in [("hanayo", 2)]:
        penalties = [
            data[(scheme, w, t_c)][1] - data[(scheme, w, t_c)][0]
            for t_c in (0.05, 0.2, 0.5)
        ]
        assert penalties == sorted(penalties)
    # ...and more waves leave more communication to hide
    p_w1 = data[("hanayo", 1, 0.5)][1] - data[("hanayo", 1, 0.5)][0]
    p_w4 = data[("hanayo", 4, 0.5)][1] - data[("hanayo", 4, 0.5)][0]
    assert p_w4 > p_w1
