"""Figure 12 — strong scaling: a fixed batch on 8 → 32 TACC GPUs.

Paper content: total batch fixed at 4 (the 40 GB limit); GPipe and
DAPPLE OOM at 8 GPUs; Hanayo wins all three sizes, beating Chimera by
~8-9%, with speedups of 188.4% (16 GPUs) and 337.5% (32 GPUs) over its
own 8-GPU result — the fine-tuning use case.

Shape asserted here: GPipe/DAPPLE OOM at 8 devices while Chimera-wave
and Hanayo fit (their balanced schedules peak lower); Hanayo is fastest
at 8 and 16 devices and within 1% of the best scheme at 32 (under the
Sec. 5.3 fairness rule every cell now processes the full batch, which
hands the 32-device layouts bigger micro-batches and puts GPipe's best
cell in a dead heat with Hanayo's); the 16- and 32-device speedups land
near the paper's super-linear-ish band (the extra devices also relieve
memory pressure).
"""

from __future__ import annotations

from repro.analysis import format_table, speedup, strong_scaling
from repro.cluster import make_tacc
from repro.models import bert_64

from _helpers import gap, sweep_opts, write_result

SCHEMES = ("gpipe", "dapple", "chimera-wave", "hanayo")
DEVICES = (8, 16, 32)


def compute():
    # A fixed batch of 48 sequences saturates the 40 GB cards at 8
    # devices (the paper's "batch size of 4 ... already reaches
    # Lonestar6's 40GB memory limit" in its batch units).
    return strong_scaling(
        SCHEMES, make_tacc, bert_64(),
        device_counts=DEVICES, total_batch=48,
        target_microbatches=16,
        **sweep_opts(),
    )


def test_fig12_strong_scaling(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for i, devices in enumerate(DEVICES):
        row = [devices]
        for scheme in SCHEMES:
            point = out[scheme][i]
            row.append(f"{point.throughput:.2f}" if point.throughput
                       else "OOM")
        rows.append(row)
    s = speedup(out["hanayo"])
    write_result("fig12_strong_scaling", format_table(
        ["devices", *SCHEMES],
        rows,
        title="Fig. 12 — strong scaling, fixed batch, BERT on TACC "
              "(paper: G/D OOM at 8 GPUs; Hanayo speedup 1.88x / 3.38x)\n"
              f"Hanayo speedup: "
              f"{', '.join(f'{x:.2f}x' for x in s)}",
    ))

    # GPipe OOMs at 8 devices (all B micro-batch activations resident on
    # 40 GB cards) while the wave schedules fit.  Paper also OOMs DAPPLE
    # here; our greedy Hanayo matches rather than undercuts DAPPLE's
    # worst-device activation peak, so DAPPLE survives — the deviation
    # is recorded in EXPERIMENTS.md.
    assert out["gpipe"][0].throughput is None
    assert out["hanayo"][0].throughput is not None
    assert out["chimera-wave"][0].throughput is not None
    # Hanayo wins outright at 8 and 16 devices; at 32 every scheme's
    # best cell converges (micro-batches grow under the fairness rule)
    # and Hanayo must stay within 1% of the front-runner.
    for i in range(len(DEVICES)):
        h = out["hanayo"][i].throughput
        for scheme in SCHEMES:
            t = out[scheme][i].throughput
            if scheme == "hanayo" or not t:
                continue
            if DEVICES[i] < 32:
                assert h > t, (scheme, DEVICES[i])
            else:
                assert h > 0.99 * t, (scheme, DEVICES[i])
    # speedup grows with devices, in a paper-like band
    assert 1.3 < s[1] < 2.5
    assert s[2] > s[1]
    assert 2.0 < s[2] < 4.5
    benchmark.extra_info["hanayo_speedup"] = [round(x, 2) for x in s]
