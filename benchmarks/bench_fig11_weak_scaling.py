"""Figure 11 — weak scaling of the BERT model on TACC, 8 → 32 GPUs.

Paper content: total batch grows with the device count (2 → 8 in the
paper's units); bars for GPipe, DAPPLE, Chimera-wave and Hanayo at 8,
16 and 32 devices.  Reported: Hanayo over Chimera by ~8.1-8.2%, over
DAPPLE/GPipe by ~33%, parallel efficiency ≈ 100%.

Shape asserted here: the scheme ordering holds at every size, Hanayo's
gap over Chimera-wave lands in a single-digit-to-30% band on this
interconnect, and Hanayo's parallel efficiency stays above 75%.

The efficiency floor is lower than the paper's ~100% because since the
collectives-in-the-IR refactor gradient sync is *simulated*: the 16-
and 32-GPU points run D > 1 layouts whose DP rings cross InfiniBand,
and the event core only hides the ring steps that pipeline bubbles can
actually cover (stage 0's bucket, finishing last, is exposed) — the
old 0.9 overlap constant assumed most of that time away.
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    parallel_efficiency,
    weak_scaling,
)
from repro.cluster import make_tacc
from repro.models import bert_64

from _helpers import gap, sweep_opts, write_result

SCHEMES = ("gpipe", "dapple", "chimera-wave", "hanayo")
DEVICES = (8, 16, 32)


def compute():
    # base batch 8 at 8 devices keeps every searched layout in the
    # B = P micro-batch regime the paper's tiny global batches imply.
    return weak_scaling(
        SCHEMES, make_tacc, bert_64(),
        device_counts=DEVICES, base_batch=8,
        **sweep_opts(),
    )


def test_fig11_weak_scaling(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for i, devices in enumerate(DEVICES):
        row = [devices]
        for scheme in SCHEMES:
            point = out[scheme][i]
            row.append(f"{point.throughput:.2f}" if point.throughput
                       else "OOM")
        h = out["hanayo"][i].throughput
        c = out["chimera-wave"][i].throughput
        d = out["dapple"][i].throughput
        row.append(f"{gap(h, c):+.1f}% / {gap(h, d):+.1f}%")
        rows.append(row)
    effs = parallel_efficiency(out["hanayo"])
    write_result("fig11_weak_scaling", format_table(
        ["devices", *SCHEMES, "H vs C / H vs D"],
        rows,
        title="Fig. 11 — weak scaling, BERT on TACC "
              "(paper: H over C ~8%, over D ~33%, efficiency ~100%)\n"
              f"Hanayo parallel efficiency: "
              f"{', '.join(f'{e * 100:.1f}%' for e in effs)}",
    ))

    for i in range(len(DEVICES)):
        tps = {s: out[s][i].throughput for s in SCHEMES}
        assert tps["hanayo"] > tps["chimera-wave"] > min(
            tps["gpipe"], tps["dapple"]
        )
        assert abs(tps["gpipe"] - tps["dapple"]) / tps["dapple"] < 0.06
        assert 2.0 < gap(tps["hanayo"], tps["chimera-wave"]) < 40.0
        assert gap(tps["hanayo"], tps["dapple"]) > 10.0
    # simulated sync exposure over IB lowers this vs the paper's ~100%
    assert all(e > 0.75 for e in effs)
    benchmark.extra_info["hanayo_efficiency"] = [round(e, 3) for e in effs]
