#!/usr/bin/env python
"""Search-quality harness for the schedule synthesizer (``BENCH_synth.json``).

Runs the two headline synthesis demos with pinned seeds and compares the
*best found makespan* against the committed baseline:

* ``rediscovery_hanayo`` — Hanayo-2 placement at ``P=4, B=4`` started
  from the deliberately bad all-forwards-first (GPipe-style) ordering.
  The searcher must rediscover wave-style interleaving: the pinned best
  is at least as fast as the hand-designed compiled hanayo-w2 schedule.
* ``beat_families`` — the ROADMAP item-3 question at ``P=4, B=6,
  t_c=0.25``: searching over Chimera's bidirectional placement finds an
  ordering faster than *every* compiled family schedule at that shape.

Usage::

    python benchmarks/bench_synthesis.py            # run + print
    python benchmarks/bench_synthesis.py --write    # refresh baseline
    python benchmarks/bench_synthesis.py --check    # CI gate

The search is deterministic (one seeded RNG, value-deduplicated
candidates, discovery-order tie breaks), so the best makespan is
machine-portable and gated *exactly*: ``--check`` fails when a scenario's
best makespan regresses above the committed value, or when
``beat_families`` stops beating the best compiled family.  Throughput
(candidates evaluated per second) **fails** too when it drops below
half the committed baseline: round scoring runs congruent candidate
sets through the lockstep batch stepper, and a regression that silently
de-batches the rounds would halve throughput without touching any
makespan.  The wide tolerance absorbs host-hardware drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ is None or __package__ == "":  # direct script invocation
    _src = pathlib.Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

BASELINE_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_synth.json"

#: --check *fails* when candidates/s fall below (1 - this) x baseline;
#: generous so only a de-batched scoring path trips it, not hardware
THROUGHPUT_TOLERANCE = 0.50

#: tie-tolerance when comparing the deterministic makespans
EPS = 1e-9

#: every compiled family the beat_families scenario must outrun
FAMILIES = (
    ("gpipe", 1), ("dapple", 1), ("interleaved", 2), ("gems", 1),
    ("chimera", 1), ("chimera-wave", 2), ("hanayo", 1), ("hanayo", 2),
    ("async-1f1b", 1),
)


def _build(scheme, p, b, w, costs):
    from repro.config import PipelineConfig
    from repro.schedules import build_schedule

    cfg = PipelineConfig(scheme=scheme, num_devices=p,
                         num_microbatches=b, num_waves=w)
    return build_schedule(cfg, costs)


def _timed_synthesize(sched, oracle, config, **kw):
    from repro.synthesis import synthesize

    t0 = time.perf_counter()
    result = synthesize(sched, oracle, config, **kw)
    wall = time.perf_counter() - t0
    return result, wall


def _summary(result, wall) -> dict:
    return {
        "start_makespan": round(result.start.makespan, 6),
        "best_makespan": round(result.best.makespan, 6),
        "best_bubble_ratio": round(result.best.bubble_ratio, 6),
        "plan_key": result.plan_key,
        "rounds_run": result.rounds_run,
        "evaluated": result.evaluated,
        "wall_s": round(wall, 6),
        "candidates_per_s": round(result.evaluated / wall, 1),
    }


def bench_rediscovery() -> dict:
    from repro.config import CostConfig
    from repro.runtime import AbstractCosts, simulate
    from repro.synthesis import SearchConfig

    costs = CostConfig(t_f=1.0, t_b=2.0, t_c=0.25)
    sched = _build("hanayo", 4, 4, 2, costs)
    oracle = AbstractCosts(costs, 4, sched.num_stages)
    compiled = simulate(sched, oracle).makespan
    config = SearchConfig(seed=0, rounds=60, samples_per_round=32,
                          beam_width=6, patience=16, max_shift=6)
    result, wall = _timed_synthesize(sched, oracle, config, start="gpipe")
    out = _summary(result, wall)
    out["compiled_makespan"] = round(compiled, 6)
    return out


def bench_beat_families() -> dict:
    from repro.config import CostConfig
    from repro.runtime import AbstractCosts, simulate
    from repro.synthesis import SearchConfig

    costs = CostConfig(t_f=1.0, t_b=2.0, t_c=0.25)
    compiled = {}
    for scheme, w in FAMILIES:
        sched = _build(scheme, 4, 6, w, costs)
        oracle = AbstractCosts(costs, 4, sched.num_stages)
        label = f"{scheme}-w{w}" if scheme in ("hanayo", "interleaved") \
            else scheme
        compiled[label] = round(simulate(sched, oracle).makespan, 6)
    best_family, family_makespan = min(compiled.items(),
                                       key=lambda kv: kv[1])
    sched = _build("chimera", 4, 6, 1, costs)
    oracle = AbstractCosts(costs, 4, sched.num_stages)
    config = SearchConfig(seed=0, rounds=150, samples_per_round=64,
                          beam_width=8, patience=30, max_shift=8)
    result, wall = _timed_synthesize(sched, oracle, config)
    out = _summary(result, wall)
    out["compiled_families"] = compiled
    out["best_compiled_family"] = best_family
    out["best_compiled_makespan"] = family_makespan
    return out


SCENARIOS = {
    "rediscovery_hanayo": bench_rediscovery,
    "beat_families": bench_beat_families,
}


def run_all() -> dict:
    return {"version": 1,
            "scenarios": {name: fn() for name, fn in SCENARIOS.items()}}


def report(payload: dict) -> str:
    lines = ["synthesis benchmark (legality-checked mutation search)"]
    for name, s in payload["scenarios"].items():
        lines.append(
            f"  {name:20s} start {s['start_makespan']:7.2f} -> best "
            f"{s['best_makespan']:7.2f}  bubble "
            f"{s['best_bubble_ratio']:.4f}  {s['evaluated']:6d} cand in "
            f"{s['wall_s']:6.2f}s  ({s['candidates_per_s']:,.0f}/s)"
        )
        if "best_compiled_makespan" in s:
            lines.append(
                f"  {'':20s} best compiled family "
                f"{s['best_compiled_family']} at "
                f"{s['best_compiled_makespan']:.2f}"
            )
    return "\n".join(lines)


def check(payload: dict, baseline: dict) -> tuple[list[str], list[str]]:
    """``(failures, warnings)`` vs the committed baseline.

    Search quality gates CI: the deterministic best makespan must not
    regress above the committed value, the rediscovery demo must stay
    at-or-under the compiled hanayo-w2 schedule, and beat_families must
    keep beating every compiled family.  Candidates/s gates too — round
    scoring goes through the batched stepper, so falling under half the
    committed throughput means the rounds de-batched, not that the host
    got slower.
    """
    problems: list[str] = []
    warnings: list[str] = []
    for name, s in payload["scenarios"].items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            problems.append(f"{name}: no committed baseline entry")
            continue
        if s["best_makespan"] > base["best_makespan"] + EPS:
            problems.append(
                f"{name}: best makespan regressed "
                f"{s['best_makespan']} > committed {base['best_makespan']}"
            )
        elif s["best_makespan"] < base["best_makespan"] - EPS:
            warnings.append(
                f"{name}: search improved to {s['best_makespan']} "
                f"(< committed {base['best_makespan']}); refresh the "
                "baseline with --write"
            )
        floor = 1.0 - THROUGHPUT_TOLERANCE
        if s["candidates_per_s"] < floor * base["candidates_per_s"]:
            problems.append(
                f"{name}: {s['candidates_per_s']:,.0f} candidates/s is "
                f"below {floor:.0%} of the committed "
                f"{base['candidates_per_s']:,.0f} — batched round "
                "scoring has likely de-batched"
            )
    redis = payload["scenarios"]["rediscovery_hanayo"]
    if redis["best_makespan"] > redis["compiled_makespan"] + EPS:
        problems.append(
            "rediscovery_hanayo: searched ordering "
            f"{redis['best_makespan']} no longer matches the compiled "
            f"hanayo-w2 schedule at {redis['compiled_makespan']}"
        )
    beat = payload["scenarios"]["beat_families"]
    if beat["best_makespan"] >= beat["best_compiled_makespan"] - EPS:
        problems.append(
            "beat_families: searched chimera ordering "
            f"{beat['best_makespan']} no longer beats the best compiled "
            f"family {beat['best_compiled_family']} at "
            f"{beat['best_compiled_makespan']}"
        )
    return problems, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help=f"refresh {BASELINE_PATH.name}")
    mode.add_argument("--check", action="store_true",
                      help="fail when a pinned best makespan regresses")
    args = parser.parse_args(argv)

    payload = run_all()
    print(report(payload))
    if args.write:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        try:
            baseline = json.loads(BASELINE_PATH.read_text())
        except FileNotFoundError:
            print(f"error: no committed baseline at {BASELINE_PATH}",
                  file=sys.stderr)
            return 1
        problems, warnings = check(payload, baseline)
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("pinned makespans reproduced; beat_families still beats "
              f"{payload['scenarios']['beat_families']['best_compiled_family']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
