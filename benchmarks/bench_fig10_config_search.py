"""Figure 10 — the (P, D) performance search on 32 V100s.

Paper content: a heat grid of throughput for the BERT model over the
layouts (P=8, D=4), (P=16, D=2), (P=32, D=1) at two batch scales, with
OOM holes; the best cell — (D=4, P=8) with Hanayo at 2 waves — seeds
the scaling studies.

Measured here: the same grid on a modeled 32-V100 cluster (TC fabric,
V100-32G).  Assertions: the deepest pipeline is never the winner, OOM
cells appear exactly where memory says they must, Hanayo's winning
cell uses P=8, and Hanayo's best beats every other scheme's best.
"""

from __future__ import annotations

from repro.analysis import best_config, format_table, search_grid
from repro.cluster import make_tc
from repro.models import bert_64

from _helpers import sweep_opts, write_result

LAYOUTS = ((8, 4), (16, 2), (32, 1))
SCHEMES = ("gpipe", "dapple", "chimera-wave", "hanayo")


def compute():
    cluster = make_tc(32)
    model = bert_64()
    grids = {}
    opts = sweep_opts()
    for scheme in SCHEMES:
        for total_batch in (32, 64):
            grids[(scheme, total_batch)] = search_grid(
                scheme, cluster, model, LAYOUTS, total_batch=total_batch,
                target_microbatches=16, **opts,
            )
    return grids


def test_fig10_config_search(benchmark):
    grids = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    best = {}
    for (scheme, batch), cells in grids.items():
        by_layout = {}
        for c in cells:
            key = (c.p, c.d)
            if c.throughput > by_layout.get(key, (0, None))[0]:
                by_layout[key] = (c.throughput, c)
        row = [scheme, batch]
        for p, d in LAYOUTS:
            entry = by_layout.get((p, d))
            if entry is None:
                row.append("-")
            elif entry[1].result.oom:
                row.append("OOM")
            else:
                w = entry[1].w
                suffix = f" (w={w})" if scheme == "hanayo" else ""
                row.append(f"{entry[0]:.2f}{suffix}")
        rows.append(row)
        alive = [c for c in cells if not c.result.oom]
        if alive:
            best[(scheme, batch)] = best_config(cells)
    all_cells = [c for cells in grids.values() for c in cells]
    oom_cells = [c for c in all_cells if c.result.oom]
    pruned = sum(1 for c in oom_cells if c.result.statically_pruned)
    prune_note = (
        f"OOM pruning: {len(oom_cells)}/{len(all_cells)} cells OOM; "
        f"{pruned} rejected by the static pre-check (no event loop), "
        f"{len(oom_cells) - pruned} aborted at the first violating "
        "allocation"
    )
    write_result("fig10_config_search", format_table(
        ["scheme", "batch", "P=8,D=4", "P=16,D=2", "P=32,D=1"],
        rows,
        title="Fig. 10 — throughput search on 32x V100-32G "
              "(paper winner: D=4, P=8, Hanayo w=2)",
    ) + "\n" + prune_note)
    benchmark.extra_info["oom_pruned_statically"] = pruned

    for (scheme, batch), cell in best.items():
        # the deepest pipeline never wins: too many bubbles per device
        assert cell.p < 32, (scheme, batch)
    # Hanayo's winner pairs a shallow-ish pipeline with data parallelism
    # (the paper picks D=4, P=8; our cost model puts P=8 and P=16 within
    # a few percent) and beats every other scheme's best.
    for batch in (32, 64):
        h = best[("hanayo", batch)]
        assert h.p in (8, 16) and h.d >= 2
        others = [best[(s, batch)].throughput for s in SCHEMES
                  if s != "hanayo" and (s, batch) in best]
        assert h.throughput > max(others)
    benchmark.extra_info["winner"] = {
        "p": best[("hanayo", 32)].p,
        "d": best[("hanayo", 32)].d,
        "w": best[("hanayo", 32)].w,
    }
