"""Ablation — the wave scheduler's memory/throughput trade-off.

The greedy engine exposes three admission disciplines (DESIGN.md §3):
micro-batch slots (1F1B-style), live chunks (the library default for
waves), and live chunks with a hard ceiling (only the wave-front
micro-batch may exceed it).  This ablation maps the frontier: tighter
discipline → lower activation peak → more bubbles.  It documents why
the default is ``chunks`` with a ``2P`` budget, and what a user with a
smaller GPU should expect when trading throughput for memory.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import CostConfig, PipelineConfig
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import AbstractCosts, bubble_stats, memory_stats, simulate
from repro.schedules import GreedyPolicy, Schedule, greedy_order, wave_priority
from repro.schedules.placement import SnakePlacement

from _helpers import write_result

P, B, W = 8, 16, 2


def run(cap: int | None, cap_mode: str, hard: int | None):
    cfg = PipelineConfig(scheme="hanayo", num_devices=P,
                         num_microbatches=B, num_waves=W)
    sched = Schedule.empty(f"h-{cap_mode}-{cap}-{hard}", cfg,
                           SnakePlacement(P, W))
    policy = GreedyPolicy(
        priority=wave_priority,
        open_cap=(lambda d: cap) if cap is not None else None,
        cap_mode=cap_mode,
        hard_cap=(lambda d: hard) if hard is not None else None,
    )
    greedy_order(sched, policy)
    res = simulate(sched, AbstractCosts(CostConfig(), P, sched.num_stages))
    costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
    mem = memory_stats(sched, res.timeline, costs)
    act_peak = mem.highest_peak - max(mem.static_bytes.values())
    return bubble_stats(res.timeline).bubble_ratio, act_peak


def compute():
    variants = [
        ("unbounded", None, "chunks", None),
        ("slots P (1F1B-like)", P, "microbatches", None),
        ("chunks 2P (default)", 2 * P, "chunks", None),
        ("chunks 2P + hard 3P", 2 * P, "chunks", 3 * P),
        ("chunks-strict 2P", 2 * P, "chunks-strict", None),
    ]
    return [(name, *run(cap, mode, hard))
            for name, cap, mode, hard in variants]


def test_ablation_memory_discipline(benchmark):
    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[name, f"{bub * 100:.1f}%", f"{act / 2**30:.2f}"]
            for name, bub, act in data]
    write_result("ablation_memory_discipline", format_table(
        ["discipline", "bubble ratio", "activation peak GiB"],
        rows,
        title=f"Ablation — admission discipline (hanayo P={P} B={B} W={W})",
    ))

    by = {name: (bub, act) for name, bub, act in data}
    default_bub, default_act = by["chunks 2P (default)"]
    strict_bub, strict_act = by["chunks-strict 2P"]
    unbounded_bub, unbounded_act = by["unbounded"]
    # strict trades throughput for memory
    assert strict_act < default_act
    assert strict_bub > default_bub
    # the default holds its own against no discipline at all, with
    # bounded memory
    assert default_bub <= unbounded_bub + 0.03
    assert default_act <= unbounded_act + 1e-6
