"""Figure 7 — the bubble taxonomy of a wave pipeline (Zones A/B/C).

Paper content: an annotated one-wave schedule showing three bubble
species — A (waiting for forward activations), B (the forward/backward
mismatch at the phase boundary), C (waiting on backward chains) — with
analytic sizes ``T_F/2W + T_C``, ``(P−LR)/2W (T_B−T_F) + 2T_C`` and
``T_B + {1,2} T_C``.

Measured here: the empirical idle classifier attributes all idle time,
every zone is populated for a one-wave pipeline, and single Zone-A gaps
match the analytic size.
"""

from __future__ import annotations

from repro.analysis import (
    classify_idle,
    format_table,
    zone_a_size,
    zone_b_size,
    zone_c_sizes,
)
from repro.config import CostConfig, PipelineConfig
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import build_schedule
from repro.types import OpKind

from _helpers import write_result


def compute():
    p, b, w, t_c = 4, 4, 1, 0.0
    cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                         num_microbatches=b, num_waves=w)
    sched = build_schedule(cfg)
    res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages))
    zones = classify_idle(res.timeline)
    stats = bubble_stats(res.timeline)

    # Smallest Zone-A gap on device 0: should match T_F/2W + T_C.
    spans = res.timeline.device_spans(0)
    a_gaps = []
    prev_end = 0.0
    for span in spans:
        gap = span.start - prev_end
        if gap > 1e-9 and span.op.kind is OpKind.FORWARD:
            a_gaps.append(gap)
        prev_end = span.end
    return zones, stats, a_gaps, (p, w, t_c)


def test_fig07_bubble_zones(benchmark):
    zones, stats, a_gaps, (p, w, t_c) = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    analytic_a = zone_a_size(p, w, t_f=1.0, t_c=t_c)
    analytic_b0 = zone_b_size(p, w, 0, t_f=1.0, t_b=2.0, t_c=t_c)
    rows = [
        ["Zone A (await forward)", f"{zones.zone_a:.2f}",
         f"single bubble = {analytic_a:.2f}"],
        ["Zone B (F/B mismatch)", f"{zones.zone_b:.2f}",
         f"rank-0 bubble = {analytic_b0:.2f}"],
        ["Zone C (await backward)", f"{zones.zone_c:.2f}",
         f"sizes = {zone_c_sizes(2.0, t_c)}"],
        ["tail (flush skew)", f"{zones.tail:.2f}", ""],
        ["total idle", f"{zones.total:.2f}",
         f"= sum of per-device idle ({sum(stats.idle.values()):.2f})"],
    ]
    write_result("fig07_bubble_zones", format_table(
        ["zone", "measured idle", "analytic note"],
        rows, title="Fig. 7 — bubble zones of Hanayo (P=4, W=1, B=4)",
    ))

    assert zones.total == sum(stats.idle.values())
    assert zones.zone_a > 0 and zones.zone_b > 0 and zones.zone_c > 0
    # single Zone-A bubbles come in multiples of the analytic size
    assert a_gaps, "device 0 should wait for forward activations"
    smallest = min(a_gaps)
    assert smallest % analytic_a < 1e-9 or abs(
        smallest - analytic_a
    ) < 1e-9
