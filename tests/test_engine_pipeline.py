"""The real engine end to end: modules, channels, trainer equivalence."""

import numpy as np
import pytest

from repro.actions.ops import CommKind, Tag
from repro.config import PipelineConfig
from repro.engine import (
    SGD,
    Adam,
    DataParallelPipelines,
    PeerNetwork,
    PipelineTrainer,
    allreduce_average,
    batch_isend_irecv,
    build_stages,
    make_batch,
    sequential_step,
    sequential_step_on,
)
from repro.errors import CommError, DeadlockError, EngineError
from repro.models import tiny_model

from conftest import SYNC_SCHEMES, make_config, scheme_id

SPEC = tiny_model(num_layers=6, hidden=16, heads=2, seq_len=6, vocab=32)


def assert_grads_close(got, want, rtol=1e-9):
    assert set(got) == set(want)
    for name in want:
        np.testing.assert_allclose(got[name], want[name], rtol=rtol,
                                   atol=1e-12, err_msg=name)


class TestStageModules:
    def test_build_stages_param_identity_across_counts(self):
        """Same seed ⇒ same model regardless of the stage count."""
        one = build_stages(SPEC, 1, seed=3)
        four = build_stages(SPEC, 4, seed=3)
        flat_one = [p for s in one for p in s.named_params().values()]
        flat_four = [p for s in four for p in s.named_params().values()]
        assert len(flat_one) == len(flat_four)
        for a, b in zip(flat_one, flat_four):
            np.testing.assert_array_equal(a, b)

    def test_duplicate_forward_rejected(self):
        stage = build_stages(SPEC, 1, seed=0)[0]
        ids = np.zeros((1, SPEC.seq_len), dtype=np.int64)
        stage.forward(0, ids)
        with pytest.raises(EngineError, match="duplicate forward"):
            stage.forward(0, ids)

    def test_backward_without_forward_rejected(self):
        stage = build_stages(SPEC, 2, seed=0)[1]
        with pytest.raises(EngineError, match="without a cached forward"):
            stage.backward(0, np.zeros((1, SPEC.seq_len, SPEC.hidden)))

    def test_activation_freed_after_backward(self):
        stages = build_stages(SPEC, 1, seed=0)
        inputs, targets = make_batch(SPEC, 1)
        sequential_step_on(stages, inputs, targets)
        assert stages[0].live_microbatches() == set()


class TestChannels:
    def test_out_of_order_tags_parked(self):
        net = PeerNetwork(2, timeout_s=1.0)
        t1 = Tag(CommKind.ACTIVATION, 0, 0)
        t2 = Tag(CommKind.ACTIVATION, 1, 0)
        net.send(0, 1, t1, "first")
        net.send(0, 1, t2, "second")
        assert net.recv(1, 0, t2) == "second"
        assert net.recv(1, 0, t1) == "first"

    def test_timeout_raises_deadlock(self):
        net = PeerNetwork(2, timeout_s=0.05)
        with pytest.raises(DeadlockError, match="timed out"):
            net.recv(1, 0, Tag(CommKind.ACTIVATION, 0, 0))

    def test_invalid_channel(self):
        net = PeerNetwork(2)
        with pytest.raises(CommError):
            net.send(0, 5, Tag(CommKind.ACTIVATION, 0, 0), None)

    def test_drain_check(self):
        net = PeerNetwork(2, timeout_s=0.1)
        net.send(0, 1, Tag(CommKind.ACTIVATION, 0, 0), "x")
        with pytest.raises(CommError, match="undrained"):
            net.drain_check()

    def test_batch_isend_irecv(self):
        net = PeerNetwork(2, timeout_s=1.0)
        ta = Tag(CommKind.ACTIVATION, 0, 0)
        tb = Tag(CommKind.GRADIENT, 0, 1)
        net.send(1, 0, tb, "from-1")
        got = batch_isend_irecv(net, 0, sends=[(1, ta, "from-0")],
                                recvs=[(1, tb)])
        assert got == ["from-1"]
        assert net.recv(1, 0, ta) == "from-0"


@pytest.mark.parametrize("param", SYNC_SCHEMES, ids=scheme_id)
class TestGradientEquivalence:
    """Every synchronous scheme must reproduce sequential gradients."""

    def test_matches_sequential(self, param):
        scheme, kw = param
        cfg = make_config(scheme, p=2, b=4, **kw)
        trainer = PipelineTrainer(SPEC, cfg, seed=11, timeout_s=10)
        inputs, targets = make_batch(SPEC, 4, seed=5)
        res = trainer.train_step(inputs, targets)
        ref = sequential_step(SPEC, trainer.schedule.num_stages,
                              inputs, targets, seed=11)
        assert res.loss == pytest.approx(ref.loss, rel=1e-12)
        assert_grads_close(res.grads, ref.grads)


class TestGradientEquivalenceWiderPipelines:
    @pytest.mark.parametrize("scheme,kw,p,b", [
        ("dapple", {}, 4, 8),
        ("hanayo", {"num_waves": 2}, 3, 6),
        ("chimera", {}, 4, 4),
        ("hanayo", {"num_waves": 1}, 4, 8),
    ])
    def test_matches_sequential(self, scheme, kw, p, b):
        spec = tiny_model(num_layers=2 * p * max(kw.get("num_waves", 1), 1),
                          hidden=8, heads=2, seq_len=4, vocab=16)
        cfg = make_config(scheme, p=p, b=b, **kw)
        trainer = PipelineTrainer(spec, cfg, seed=2, timeout_s=20)
        inputs, targets = make_batch(spec, b, seed=9)
        res = trainer.train_step(inputs, targets)
        ref = sequential_step(spec, trainer.schedule.num_stages,
                              inputs, targets, seed=2)
        assert_grads_close(res.grads, ref.grads)

    def test_prefetch_and_batching_do_not_change_grads(self):
        cfg = make_config("hanayo", p=2, b=4, num_waves=1)
        inputs, targets = make_batch(SPEC, 4, seed=5)
        results = []
        for pf in (True, False):
            for bc in (True, False):
                tr = PipelineTrainer(SPEC, cfg, seed=11, timeout_s=10,
                                     prefetch=pf, batch_cross_comm=bc)
                results.append(tr.train_step(inputs, targets))
        for other in results[1:]:
            assert_grads_close(other.grads, results[0].grads, rtol=1e-12)


class TestTrainerErrors:
    def test_missing_microbatch_rejected(self):
        cfg = make_config("gpipe", 2, 4)
        trainer = PipelineTrainer(SPEC, cfg, seed=0)
        inputs, targets = make_batch(SPEC, 3)
        with pytest.raises(EngineError, match="micro-batches"):
            trainer.train_step(inputs, targets)


class TestOptimizers:
    def _loss_after_steps(self, optimizer_cls, steps=3, **opt_kw):
        cfg = make_config("dapple", 2, 2)
        trainer = PipelineTrainer(SPEC, cfg, seed=4)
        opt = optimizer_cls(trainer.parameter_stages(), **opt_kw)
        inputs, targets = make_batch(SPEC, 2, seed=8)
        losses = []
        for _ in range(steps):
            trainer.zero_grad()
            res = trainer.train_step(inputs, targets, optimizer=opt)
            losses.append(res.loss)
        return losses

    def test_sgd_reduces_loss(self):
        losses = self._loss_after_steps(SGD, lr=0.005, steps=4)
        assert losses[-1] < losses[0]

    def test_adam_reduces_loss(self):
        losses = self._loss_after_steps(Adam, lr=1e-2)
        assert losses[-1] < losses[0]

    def test_pipeline_training_matches_sequential_training(self):
        """Multi-step training trajectories coincide exactly."""
        cfg = make_config("hanayo", 2, 2, num_waves=1)
        trainer = PipelineTrainer(SPEC, cfg, seed=6)
        opt = SGD(trainer.parameter_stages(), lr=0.1)
        ref_stages = build_stages(SPEC, trainer.schedule.num_stages, seed=6)
        ref_opt = SGD(ref_stages, lr=0.1)
        inputs, targets = make_batch(SPEC, 2, seed=3)
        for _ in range(3):
            trainer.zero_grad()
            pipe = trainer.train_step(inputs, targets, optimizer=opt)
            ref_opt.zero_grad()
            ref = sequential_step_on(ref_stages, inputs, targets)
            ref_opt.step()
            assert pipe.loss == pytest.approx(ref.loss, rel=1e-12)

    def test_bad_lr(self):
        with pytest.raises(EngineError):
            SGD(build_stages(SPEC, 1, seed=0), lr=0.0)


class TestDataParallel:
    def test_dp_matches_big_sequential_run(self):
        cfg = PipelineConfig(scheme="dapple", num_devices=2,
                             num_microbatches=2, data_parallel=2)
        dp = DataParallelPipelines(SPEC, cfg, seed=13)
        inputs, targets = make_batch(SPEC, 4, seed=21)
        res = dp.train_step(inputs, targets)
        # The DP average equals the sequential gradient over all 4
        # micro-batches scaled by... both normalise per-shard by B=2 and
        # then average over D=2, which equals a 4-micro-batch mean.
        ref = sequential_step(SPEC, 2, inputs, targets, seed=13)
        # Reference normalises by B=4; DP shards normalise by 2 then /2.
        assert_grads_close(res.grads, ref.grads)

    def test_allreduce_average(self):
        a = {"x": np.array([2.0])}
        b = {"x": np.array([4.0])}
        out = allreduce_average([a, b])
        np.testing.assert_allclose(out["x"], [3.0])

    def test_allreduce_mismatch(self):
        with pytest.raises(EngineError):
            allreduce_average([{"x": np.array([1.0])},
                               {"y": np.array([1.0])}])

    def test_allreduce_empty(self):
        with pytest.raises(EngineError):
            allreduce_average([])
