"""The Chimera → wave transform (paper Fig. 5 / Sec. 3.2)."""

import pytest

from repro.config import CostConfig, PipelineConfig
from repro.errors import ConfigError
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import (
    build_schedule,
    chimera_schedule,
    chimera_to_wave,
    chimera_wave_schedule,
    validate,
)
from repro.types import OpKind

from conftest import make_config


class TestBlockSwapTransform:
    def _transform(self, p=4, b=4):
        chimera = chimera_schedule(make_config("chimera", p, b))
        return chimera, chimera_to_wave(chimera)

    def test_shapes(self):
        chimera, (w0, w1) = self._transform(4, 4)
        for wave in (w0, w1):
            assert wave.num_devices == 2
            assert wave.num_stages == 4       # same model cut: S = P
            assert wave.num_microbatches == 2

    def test_wave_halves_are_valid_schedules(self):
        _, (w0, w1) = self._transform(4, 8)
        validate(w0)
        validate(w1)

    def test_groups_are_isomorphic(self):
        """The paper: 'two identical wave-like pipeline structures'."""
        _, (w0, w1) = self._transform(4, 4)
        for d in range(2):
            sig0 = [(o.kind, o.microbatch, o.stage) for o in w0.device_ops[d]]
            sig1 = [(o.kind, o.microbatch, o.stage) for o in w1.device_ops[d]]
            assert sig0 == sig1

    def test_per_device_op_count_preserved(self):
        chimera, (w0, w1) = self._transform(4, 4)
        total_before = chimera.op_count()
        assert w0.op_count() + w1.op_count() == total_before

    def test_wave_form_not_slower(self):
        """The two wave halves run concurrently on disjoint device
        halves, so the iteration wall time for the same B micro-batches
        is max(makespan(w0), makespan(w1)) — which must not exceed the
        original Chimera's makespan (the swap only removes comm)."""
        t_c = 0.3
        costs = CostConfig(t_f=1.0, t_b=2.0, t_c=t_c)
        chimera, (w0, w1) = self._transform(8, 8)
        res_c = simulate(chimera, AbstractCosts(costs, 8, chimera.num_stages))
        res_w0 = simulate(w0, AbstractCosts(costs, 4, w0.num_stages))
        res_w1 = simulate(w1, AbstractCosts(costs, 4, w1.num_stages))
        wall_wave = max(res_w0.makespan, res_w1.makespan)
        assert wall_wave <= res_c.makespan * (1.0 + 1e-9)

    def test_rejects_non_chimera(self):
        sched = build_schedule(make_config("gpipe", 4, 4))
        with pytest.raises(ConfigError):
            chimera_to_wave(sched)


class TestChimeraWaveEqualsHanayoW1:
    """Sec. 3.2's measurement convention: Chimera-wave ≡ one-wave Hanayo."""

    @pytest.mark.parametrize("p,b", [(2, 2), (4, 4), (8, 8)])
    def test_same_makespan_as_hanayo_w1(self, p, b):
        costs = CostConfig()
        cw = build_schedule(make_config("chimera-wave", p, b))
        h1 = build_schedule(make_config("hanayo", p, b, num_waves=1))
        res_cw = simulate(cw, AbstractCosts(costs, p, cw.num_stages))
        res_h1 = simulate(h1, AbstractCosts(costs, p, h1.num_stages))
        assert res_cw.makespan == pytest.approx(res_h1.makespan)

    def test_same_stage_structure(self):
        cw = build_schedule(make_config("chimera-wave", 4, 4))
        h1 = build_schedule(make_config("hanayo", 4, 4, num_waves=1))
        assert cw.num_stages == h1.num_stages
        for d in range(4):
            assert (cw.placement.stages_on(d) == h1.placement.stages_on(d))


class TestTransformBeatsChimeraWithComm:
    def test_transformed_wave_fewer_messages(self):
        """The paper's transform argument: the wave form of a Chimera
        pipeline crosses fewer device boundaries (turns become local)."""
        from repro.actions import compile_schedule, count_messages
        from repro.schedules import chimera_to_wave

        chimera = chimera_schedule(make_config("chimera", 8, 8))
        w0, w1 = chimera_to_wave(chimera)
        msgs_chimera = count_messages(compile_schedule(chimera))
        msgs_waves = (count_messages(compile_schedule(w0))
                      + count_messages(compile_schedule(w1)))
        assert msgs_waves < msgs_chimera

    def test_transformed_bubble_ratio_not_worse(self):
        """Per-pipeline bubble ratio after the transform, with comm
        priced in, must not exceed plain Chimera's."""
        costs = CostConfig(t_f=1.0, t_b=2.0, t_c=0.3)
        chimera = chimera_schedule(make_config("chimera", 8, 8))
        w0, _ = chimera_to_wave(chimera)
        r_c = bubble_stats(simulate(
            chimera, AbstractCosts(costs, 8, chimera.num_stages)
        ).timeline).bubble_ratio
        r_w = bubble_stats(simulate(
            w0, AbstractCosts(costs, 4, w0.num_stages)
        ).timeline).bubble_ratio
        assert r_w <= r_c + 0.05
