"""Property-based tests on the action-list pipeline (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.actions import (
    BatchedP2P,
    Recv,
    Send,
    batch_opposing,
    comm_actions,
    compile_schedule,
    count_messages,
    hoist_recvs,
    validate_actions,
)
from repro.config import PipelineConfig
from repro.schedules import build_schedule

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

schemes = st.sampled_from(
    ["gpipe", "dapple", "hanayo", "chimera", "chimera-wave", "gems"]
)


def valid_config(scheme, p, b, w):
    if scheme in ("chimera", "chimera-wave", "gems"):
        b += b % 2
    if scheme == "chimera" and p % 2:
        p += 1
    return PipelineConfig(scheme=scheme, num_devices=p,
                          num_microbatches=b, num_waves=w)


class TestCompilerProperties:
    @SLOW
    @given(scheme=schemes, p=st.integers(2, 5), b=st.integers(1, 6),
           w=st.integers(1, 2), prefetch=st.booleans(),
           batching=st.booleans())
    def test_compiled_lists_always_valid(self, scheme, p, b, w,
                                         prefetch, batching):
        sched = build_schedule(valid_config(scheme, p, b, w))
        lists = compile_schedule(sched, prefetch=prefetch,
                                 batch_cross_comm=batching)
        validate_actions(lists)

    @SLOW
    @given(scheme=schemes, p=st.integers(2, 5), b=st.integers(1, 6),
           w=st.integers(1, 2))
    def test_passes_preserve_message_count(self, scheme, p, b, w):
        sched = build_schedule(valid_config(scheme, p, b, w))
        counts = {
            (pf, bc): count_messages(
                compile_schedule(sched, prefetch=pf, batch_cross_comm=bc)
            )
            for pf in (False, True)
            for bc in (False, True)
        }
        assert len(set(counts.values())) == 1

    @SLOW
    @given(scheme=schemes, p=st.integers(2, 4), b=st.integers(1, 4),
           w=st.integers(1, 2))
    def test_comm_multiset_invariant_under_passes(self, scheme, p, b, w):
        """Prefetch/batching reorder and group but never alter the set
        of (send/recv, peer, tag) operations a worker performs."""
        sched = build_schedule(valid_config(scheme, p, b, w))
        plain = compile_schedule(sched, prefetch=False,
                                 batch_cross_comm=False)
        fancy = compile_schedule(sched, prefetch=True,
                                 batch_cross_comm=True)

        def signature(actions):
            out = []
            for act in comm_actions(actions):
                kind = "send" if isinstance(act, Send) else "recv"
                out.append((kind, act.peer, str(act.tag)))
            return sorted(out)

        for device in plain:
            assert signature(plain[device]) == signature(fancy[device])

    @SLOW
    @given(scheme=st.sampled_from(["hanayo", "chimera-wave", "dapple",
                                   "gpipe"]),
           p=st.integers(2, 4), b=st.integers(1, 4), w=st.integers(1, 2))
    def test_batched_lists_rendezvous_safe(self, scheme, p, b, w):
        sched = build_schedule(valid_config(scheme, p, b, w))
        lists = compile_schedule(sched, batch_cross_comm=True)
        validate_actions(lists, rendezvous=True)


class TestPassLocalProperties:
    @SLOW
    @given(st.lists(st.sampled_from(["send", "recv", "fwd"]),
                    min_size=0, max_size=12))
    def test_hoist_preserves_multiset(self, kinds):
        from repro.actions.ops import CommKind, ComputeForward, Tag
        actions = []
        for i, k in enumerate(kinds):
            if k == "send":
                actions.append(Send(peer=1, tag=Tag(CommKind.ACTIVATION, i, 0)))
            elif k == "recv":
                actions.append(Recv(peer=1, tag=Tag(CommKind.GRADIENT, i, 0)))
            else:
                actions.append(ComputeForward(i, 0, 0))
        out = hoist_recvs(actions)
        assert sorted(map(str, out)) == sorted(map(str, actions))

    @SLOW
    @given(st.lists(st.sampled_from(["send", "recv"]),
                    min_size=0, max_size=12))
    def test_batching_preserves_flattened_ops(self, kinds):
        from repro.actions.ops import CommKind, Tag
        actions = []
        for i, k in enumerate(kinds):
            if k == "send":
                actions.append(Send(peer=i % 2, tag=Tag(CommKind.ACTIVATION, i, 0)))
            else:
                actions.append(Recv(peer=i % 2, tag=Tag(CommKind.GRADIENT, i, 0)))
        out = batch_opposing(actions)
        flat = []
        for act in out:
            if isinstance(act, BatchedP2P):
                flat.extend(act.sends)
                flat.extend(act.recvs)
            else:
                flat.append(act)
        assert sorted(map(str, flat)) == sorted(map(str, actions))


class TestMutationProperties:
    """Invertibility of the synthesis operators: op + inverse round-
    trips the ordering (and therefore the recompiled plan key) exactly,
    and payload encoding round-trips the operator itself."""

    @SLOW
    @given(scheme=schemes, p=st.integers(2, 4), b=st.integers(2, 6),
           w=st.integers(1, 2), seed=st.integers(0, 2**16))
    def test_mutation_inverse_round_trips(self, scheme, p, b, w, seed):
        from random import Random

        from repro.actions import compile_program
        from repro.errors import SynthesisError
        from repro.synthesis import (
            ScheduleOrdering,
            mutation_from_payload,
            propose_mutation,
        )

        sched = build_schedule(valid_config(scheme, p, b, w))
        program = compile_program(sched)
        ordering = ScheduleOrdering.from_program(program)
        rng = Random(seed)
        for _ in range(4):
            try:
                mutation, mutated = propose_mutation(rng, program,
                                                     ordering)
            except SynthesisError:
                return  # no applicable operator at this point
            assert mutated != ordering
            inverse = mutation.inverse()
            assert inverse.apply(mutated) == ordering
            assert inverse.inverse().apply(ordering) == mutated
            # payload codec round-trips the operator by value
            assert mutation_from_payload(mutation.payload()) == mutation
            ordering = mutated

    @SLOW
    @given(scheme=schemes, p=st.integers(2, 4), b=st.integers(2, 4),
           seed=st.integers(0, 2**16))
    def test_inverse_restores_plan_key(self, scheme, p, b, seed):
        from random import Random

        from repro.actions import compile_program, reorder_program
        from repro.actions.lowering import ExecutablePlan
        from repro.errors import SynthesisError
        from repro.synthesis import ScheduleOrdering, propose_mutation

        sched = build_schedule(valid_config(scheme, p, b, 1))
        program = compile_program(sched)
        ordering = ScheduleOrdering.from_program(program)
        base_key = ExecutablePlan.lower(program).plan_key
        rng = Random(seed)
        try:
            mutation, mutated = propose_mutation(rng, program, ordering)
        except SynthesisError:
            return
        restored = mutation.inverse().apply(mutated)
        rebuilt = reorder_program(program, restored.to_orders())
        assert ExecutablePlan.lower(rebuilt).plan_key == base_key
