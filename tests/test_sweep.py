"""The parallel cached sweep engine (repro.sweep)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.sweep.engine as engine_mod
from repro.analysis import measure_throughput, search_grid
from repro.cli import main as cli_main
from repro.cluster import make_fc, make_tacc
from repro.errors import ConfigError
from repro.models import bert_64, tiny_model
from repro.sweep import (
    ResultCache,
    SweepSpec,
    cache_key,
    run_sweep,
    split_batch,
)


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        schemes=("gpipe", "dapple", "hanayo"),
        clusters=(make_fc(4),),
        models=(tiny_model(num_layers=16),),
        layouts=((4, 1), (2, 2)),
        total_batches=(8,),
        waves=(1, 2),
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture
def counter(monkeypatch):
    """Wrap the engine's measure_throughput with a call counter."""
    calls = []
    real = engine_mod.measure_throughput

    def counted(*args, **kwargs):
        calls.append((args, kwargs))
        return real(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "measure_throughput", counted)
    return calls


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec()
        first = run_sweep(spec, cache=cache)
        assert first.stats.computed == first.stats.total > 0
        assert first.stats.cached == 0
        assert len(cache) == first.stats.total

        second = run_sweep(spec, cache=cache)
        assert second.stats.computed == 0
        assert second.stats.cached == second.stats.total
        assert [r.to_dict() | {"cached": False} for r in second.rows] == \
               [r.to_dict() | {"cached": False} for r in first.rows]
        assert all(r.cached for r in second.rows)

    def test_warm_cache_makes_zero_measure_calls(self, tmp_path, counter):
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec()
        run_sweep(spec, cache=cache)
        assert len(counter) == len(spec.expand())
        counter.clear()
        table = run_sweep(spec, cache=cache)
        assert counter == []            # every cell served from disk
        assert table.stats.computed == 0

    def test_infeasible_cells_cached_too(self, tmp_path, counter):
        # chimera needs an even device count, so a (3, 1) layout passes
        # expansion but is rejected by the schedule builder — the
        # infeasible verdict must still be cached.
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec(schemes=("chimera",), waves=(1,),
                         layouts=((3, 1),))
        first = run_sweep(spec, cache=cache)
        assert first.stats.infeasible == first.stats.total == 1
        assert len(first.rows) == 0
        counter.clear()
        second = run_sweep(spec, cache=cache)
        assert counter == []
        assert second.stats.cached == 1 and second.stats.computed == 0

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec(schemes=("gpipe",), waves=(1,))
        first = run_sweep(spec, cache=cache)
        files = sorted((tmp_path / "c").glob("*.json"))
        assert len(files) == first.stats.total

        # three corruption modes: garbage bytes, valid-JSON-wrong-schema,
        # and an entry stored under a mismatched key
        files[0].write_text("{ not json !!!")
        files[1].write_text(json.dumps({"version": 999, "record": {}}))
        second = run_sweep(spec, cache=cache)
        assert second.stats.computed == 2
        assert second.stats.cached == first.stats.total - 2
        # the corrupt files were replaced with valid entries
        third = run_sweep(spec, cache=cache)
        assert third.stats.computed == 0
        for path in files:
            entry = json.loads(path.read_text())
            assert entry["key"] == path.stem

    def test_key_stability_across_processes(self, tmp_path):
        shape = dict(p=4, d=1, w=2, num_microbatches=4, microbatch_size=2)
        local = cache_key("hanayo", make_fc(4), tiny_model(), **shape)
        script = (
            "from repro.sweep import cache_key\n"
            "from repro.cluster import make_fc\n"
            "from repro.models import tiny_model\n"
            "print(cache_key('hanayo', make_fc(4), tiny_model(), p=4, d=1,"
            " w=2, num_microbatches=4, microbatch_size=2))\n"
        )
        keys = []
        for seed in ("0", "1", "31337"):
            env = os.environ | {"PYTHONHASHSEED": seed}
            out = subprocess.run(
                [sys.executable, "-c", script], env=env, text=True,
                capture_output=True, check=True,
            )
            keys.append(out.stdout.strip())
        assert set(keys) == {local}

    def test_key_includes_capacity(self):
        """Capacity what-ifs must not share cells with default runs."""
        shape = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
        base = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
        capped = cache_key("gpipe", make_fc(4), tiny_model(), **shape,
                           capacity_bytes=10 * 2**30)
        assert base != capped

    def test_key_includes_contention(self):
        """Arbitrated and uncontended runs must not share cells."""
        shape = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
        base = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
        arbitrated = cache_key("gpipe", make_fc(4), tiny_model(), **shape,
                               contention=True)
        assert base != arbitrated

    def test_key_includes_code_fingerprint(self, monkeypatch):
        """Editing measurement code must invalidate cached cells."""
        import repro.sweep.cache as cache_mod
        shape = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
        base = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
        monkeypatch.setattr(cache_mod, "code_fingerprint",
                            lambda: "different-simulator-code")
        assert cache_key("gpipe", make_fc(4), tiny_model(), **shape) != base

    def test_fingerprint_covers_execution_semantics(self):
        """Cached cells must self-invalidate when execution semantics
        change: the action/program compiler and the event-driven core
        are part of every cache key, not just cost-model code."""
        import pathlib

        import repro
        from repro.sweep.cache import fingerprint_files

        root = pathlib.Path(repro.__file__).parent
        covered = {p.relative_to(root).as_posix()
                   for p in fingerprint_files()}
        for required in (
            "actions/compiler.py",
            "actions/program.py",
            # resource deltas are measurement semantics: editing the
            # alloc/free model or the watermark tracker must turn a
            # durable cache into misses
            "actions/resources.py",
            # the lowering pass IS the execution representation now —
            # an edited ExecutablePlan encoding must invalidate caches
            "actions/lowering.py",
            "runtime/events.py",
            "runtime/events_ref.py",
            "runtime/memory.py",
            "runtime/simulator.py",
            "runtime/costs.py",
            # the lockstep stepper measures real sweep cells — its
            # arithmetic is execution semantics like the scalar core
            "runtime/batched.py",
            "cluster/comm_model.py",
            # both measurement harnesses and the plan-sharing layer
            "analysis/throughput.py",
            "analysis/hybrid.py",
            "analysis/plans.py",
            # the ordering-recompile path is execution semantics too:
            # a synthesized schedule simulates through it
            "actions/reorder.py",
            "synthesis/legality.py",
            "synthesis/search.py",
            "synthesis/serialize.py",
        ):
            assert required in covered, required

    def test_fingerprint_tracks_source_content(self, monkeypatch, tmp_path):
        """The hash is over file *content*, so editing any covered file
        flips it (checked via the un-memoized function)."""
        import repro.sweep.cache as cache_mod

        source = tmp_path / "events.py"
        source.write_text("SEMANTICS = 1\n")
        monkeypatch.setattr(cache_mod, "fingerprint_files",
                            lambda: [source])
        first = cache_mod.code_fingerprint.__wrapped__()
        source.write_text("SEMANTICS = 2\n")
        assert cache_mod.code_fingerprint.__wrapped__() != first

    def test_interrupted_sweep_keeps_finished_cells(self, tmp_path,
                                                    monkeypatch):
        """Cells are persisted as they finish, not at the end."""
        import repro.sweep.engine as em
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec(schemes=("gpipe", "dapple"), waves=(1,),
                         layouts=((4, 1),))
        real = em.measure_throughput
        calls = []

        def explode_on_second(*args, **kwargs):
            calls.append(args)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(em, "measure_throughput", explode_on_second)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, cache=cache)
        assert len(cache) == 1          # first cell survived the abort
        monkeypatch.setattr(em, "measure_throughput", real)
        table = run_sweep(spec, cache=cache)
        assert table.stats.cached == 1 and table.stats.computed == 1

    def test_key_sensitivity(self):
        shape = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
        base = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
        assert base != cache_key("dapple", make_fc(4), tiny_model(), **shape)
        assert base != cache_key("gpipe", make_fc(8), tiny_model(), **shape)
        assert base != cache_key("gpipe", make_tacc(4), tiny_model(), **shape)
        assert base != cache_key("gpipe", make_fc(4),
                                 tiny_model(hidden=64), **shape)
        assert base != cache_key("gpipe", make_fc(4), tiny_model(),
                                 **(shape | {"microbatch_size": 4}))
        assert base != cache_key("gpipe", make_fc(4), tiny_model(),
                                 **shape, overlap="model")
        assert base != cache_key("gpipe", make_fc(4), tiny_model(),
                                 **shape, tp=2)


class TestPlanCache:
    """The in-process plan cache: structurally identical cells share one
    lowered plan; cost-only axes (the cluster) re-time it."""

    def setup_method(self):
        from repro.analysis import plan_cache
        plan_cache().clear()

    def _measure(self, cluster, **kw):
        args = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
        args.update(kw)
        return measure_throughput("hanayo", cluster,
                                  tiny_model(num_layers=16), **args)

    def test_cost_only_axis_hits_the_plan_cache(self):
        from repro.analysis import plan_cache
        cache = plan_cache()
        self._measure(make_fc(4))
        assert (cache.hits, cache.misses) == (0, 1)
        # same structure, different cluster: cost-only change -> hit
        self._measure(make_tacc(4))
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_structural_axis_misses(self):
        from repro.analysis import plan_cache
        cache = plan_cache()
        self._measure(make_fc(4))
        self._measure(make_fc(4), num_microbatches=8, microbatch_size=1)
        self._measure(make_fc(4), d=2, p=2)
        assert cache.hits == 0 and cache.misses == 3
        assert len(cache) == 3

    def test_repeat_same_cell_hits(self):
        from repro.analysis import plan_cache
        cache = plan_cache()
        first = self._measure(make_fc(4))
        second = self._measure(make_fc(4))
        assert cache.hits == 1 and cache.misses == 1
        assert second.seq_per_s == first.seq_per_s
        assert second.peak_mem_bytes == first.peak_mem_bytes

    def test_retimed_hit_equals_cold_measurement(self):
        """A plan-cache hit must change nothing about the numbers: the
        re-timed cached plan and a from-scratch compile agree exactly."""
        from repro.analysis import plan_cache
        self._measure(make_fc(4))               # warm the plan cache
        warm = self._measure(make_tacc(4))      # hit, re-timed
        plan_cache().clear()
        cold = self._measure(make_tacc(4))      # cold recompile
        assert warm.seq_per_s == cold.seq_per_s
        assert warm.iteration_s == cold.iteration_s
        assert warm.bubble_ratio == cold.bubble_ratio
        assert warm.peak_mem_bytes == cold.peak_mem_bytes
        assert warm.sync_s == cold.sync_s

    def test_hybrid_cells_share_plans_across_clusters(self):
        from repro.analysis import (
            HybridLayout,
            measure_hybrid_throughput,
            plan_cache,
        )
        cache = plan_cache()
        layout = HybridLayout(tp=2, p=2, d=1)
        kw = dict(num_microbatches=4, microbatch_size=1)
        a = measure_hybrid_throughput("gpipe", make_fc(4),
                                      tiny_model(num_layers=16), layout,
                                      **kw)
        b = measure_hybrid_throughput("gpipe", make_tacc(4),
                                      tiny_model(num_layers=16), layout,
                                      **kw)
        assert cache.hits == 1 and cache.misses == 1
        assert a.seq_per_s != b.seq_per_s  # the clusters do differ

    def test_plan_key_proves_cross_cluster_sharing_is_safe(self):
        """The cache's core assumption, verified through the content
        hash: one cell shape compiled *independently* against different
        clusters (and capacities) lowers to byte-identical structure —
        equal ``plan_key`` — so re-timing a shared plan is exact.  A
        structural axis must flip the key."""
        from repro.actions import ExecutablePlan
        from repro.analysis import compile_cluster_program
        from repro.models.costs import stage_costs
        from repro.schedules import build_schedule
        from repro.config import PipelineConfig

        def key_for(cluster, b=4):
            cfg = PipelineConfig(scheme="hanayo", num_devices=4,
                                 num_microbatches=b, data_parallel=2)
            sched = build_schedule(cfg)
            costs = stage_costs(tiny_model(num_layers=16),
                                sched.num_stages, cluster.device, 2)
            program = compile_cluster_program(sched, cluster, costs, d=2)
            return ExecutablePlan.lower(program).plan_key

        assert key_for(make_fc(8)) == key_for(make_tacc(8))
        assert key_for(make_fc(8)) != key_for(make_fc(8), b=8)

    def test_capacity_is_not_a_structural_axis(self):
        """Capacity what-ifs re-time the cached plan (enforcement is an
        execute-time argument, never compiled into the structure)."""
        from repro.analysis import plan_cache
        cache = plan_cache()
        self._measure(make_fc(4))
        self._measure(make_fc(4), capacity_bytes=64 * 2**30)
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_bound(self):
        from repro.analysis import plan_cache
        cache = plan_cache()
        old_max, cache.maxsize = cache.maxsize, 2
        try:
            self._measure(make_fc(4))
            self._measure(make_fc(4), num_microbatches=8,
                          microbatch_size=1)
            self._measure(make_fc(4), d=2, p=2)
            assert len(cache) == 2
        finally:
            cache.maxsize = old_max

    def test_lru_order_and_evictions_counter(self):
        """A hit refreshes recency, so eviction discards the *least*
        recently used structure — and the counter records it."""
        from repro.analysis import plan_cache
        cache = plan_cache()
        old_max, cache.maxsize = cache.maxsize, 2
        try:
            self._measure(make_fc(4))                        # A: miss
            self._measure(make_fc(4), num_microbatches=8,
                          microbatch_size=1)                 # B: miss
            self._measure(make_fc(4))                        # A: hit -> MRU
            self._measure(make_fc(4), d=2, p=2)              # C evicts B
            assert cache.evictions == 1
            assert (cache.hits, cache.misses) == (1, 3)
            self._measure(make_fc(4))                        # A survived
            assert cache.hits == 2
            assert "1 evictions" in cache.describe()
        finally:
            cache.maxsize = old_max


class TestBatchUnits:
    """Structure-sharing misses ride the lockstep batch path."""

    def _misses(self, spec):
        return [(i, p, spec.clusters[p.cluster_index],
                 spec.models[p.model_index], spec.overlap,
                 spec.enforce_memory, spec.capacity_bytes)
                for i, p in enumerate(spec.expand())]

    def test_cluster_lanes_form_one_unit(self):
        spec = tiny_spec(clusters=(make_fc(4), make_tacc(4)))
        units = engine_mod._batch_units(self._misses(spec))
        assert units and all(len(u) == 2 for u in units)
        # a unit's cells agree on every structural axis
        for unit in units:
            points = [job[1] for job in unit]
            assert len({(pt.scheme, pt.p, pt.num_microbatches,
                         pt.microbatch_size, pt.d, pt.w)
                        for pt in points}) == 1
        # and no cell is dropped or duplicated
        assert sorted(job[0] for u in units for job in u) == \
               list(range(len(spec.expand())))

    def test_single_cluster_units_are_singletons(self):
        units = engine_mod._batch_units(self._misses(tiny_spec()))
        assert units and all(len(u) == 1 for u in units)

    def test_batched_rows_match_scalar(self, monkeypatch):
        """A two-cluster sweep (batch units) reproduces the per-cluster
        scalar sweeps cell for cell, and really took the batch path."""
        batch_calls = []
        real = engine_mod.measure_throughput_batch

        def counted(requests):
            batch_calls.append(len(requests))
            return real(requests)

        monkeypatch.setattr(engine_mod, "measure_throughput_batch",
                            counted)
        spec = tiny_spec(clusters=(make_fc(4), make_tacc(4)))
        batched = run_sweep(spec)
        assert batch_calls and all(n == 2 for n in batch_calls)

        reference = {}
        for cl in spec.clusters:
            for row in run_sweep(tiny_spec(clusters=(cl,))).rows:
                key = (row.scheme, row.cluster, row.p, row.d, row.w,
                       row.num_microbatches, row.microbatch_size)
                reference[key] = row.to_dict()
        assert len(batched.rows) == len(reference)
        for row in batched.rows:
            key = (row.scheme, row.cluster, row.p, row.d, row.w,
                   row.num_microbatches, row.microbatch_size)
            assert row.to_dict() == reference[key]

    def test_contention_sweep_matches_scalar(self):
        """A contention sweep's batch units reproduce the per-cell
        scalar contention measurements — divergent lanes go through the
        time-ordered replay, not back to the scalar loop."""
        from repro.analysis import measure_throughput
        from repro.config import RunConfig

        spec = tiny_spec(clusters=(make_fc(4), make_tacc(4)),
                         contention=True)
        table = run_sweep(spec)
        assert table.rows
        run = RunConfig(contention=True)
        clusters = {c.name: c for c in spec.clusters}
        for row in table.rows:
            want = measure_throughput(
                row.scheme, clusters[row.cluster], spec.models[0],
                p=row.p, d=row.d, w=row.w,
                num_microbatches=row.num_microbatches,
                microbatch_size=row.microbatch_size, run=run,
            )
            assert row.result.seq_per_s == want.seq_per_s
            assert row.result.bubble_ratio == want.bubble_ratio
            assert row.result.iteration_s == want.iteration_s
            assert row.result.peak_mem_bytes == want.peak_mem_bytes


class TestEngine:
    def test_parallel_matches_serial(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert [r.to_dict() for r in serial.rows] == \
               [r.to_dict() for r in parallel.rows]

    def test_parallel_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec()
        run_sweep(spec, cache=cache, workers=2)
        warm = run_sweep(spec, cache=cache, workers=2)
        assert warm.stats.computed == 0

    def test_parity_with_direct_measurement(self):
        """Engine rows must equal direct measure_throughput calls."""
        cluster, model = make_fc(4), tiny_model(num_layers=16)
        cells = search_grid("hanayo", cluster, model,
                            layouts=((4, 1), (2, 2)), total_batch=8,
                            waves=(1, 2))
        assert cells
        for cell in cells:
            shape = split_batch(8, cell.d, cell.p, "hanayo")
            direct = measure_throughput(
                "hanayo", cluster, model, p=cell.p, d=cell.d, w=cell.w,
                num_microbatches=shape[0], microbatch_size=shape[1],
            )
            assert direct.seq_per_s == pytest.approx(cell.result.seq_per_s)
            assert direct.bubble_ratio == pytest.approx(
                cell.result.bubble_ratio)
            assert direct.peak_mem_bytes == cell.result.peak_mem_bytes

    def test_search_grid_oversized_layout_raises(self):
        with pytest.raises(ConfigError, match="exceeds"):
            search_grid("gpipe", make_fc(4), tiny_model(),
                        layouts=((4, 2),), total_batch=8)

    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="empty"):
            tiny_spec(schemes=())
        with pytest.raises(ConfigError, match="unknown scheme"):
            tiny_spec(schemes=("warp-drive",))
        with pytest.raises(ConfigError, match="layout"):
            tiny_spec(layouts=((0, 1),))
        with pytest.raises(ConfigError, match="overlap"):
            tiny_spec(overlap="guess")
        with pytest.raises(ConfigError, match="tensor-parallel"):
            tiny_spec(tensor_parallel=(0,))


class TestTable:
    @pytest.fixture(scope="class")
    def table(self):
        return run_sweep(tiny_spec())

    def test_filter_and_best(self, table):
        hanayo = table.filter(scheme="hanayo")
        assert hanayo.rows and all(r.scheme == "hanayo" for r in hanayo)
        best = table.best(scheme="hanayo")
        assert best.throughput == max(r.throughput for r in hanayo)
        with pytest.raises(ConfigError, match="unknown sweep filter"):
            table.filter(nonsense=1)
        with pytest.raises(ConfigError, match="no live sweep cell"):
            table.best(p=64)

    def test_best_per_scheme(self, table):
        winners = table.best_per("scheme")
        assert set(winners) == {"gpipe", "dapple", "hanayo"}
        for scheme, row in winners.items():
            assert row.throughput == table.best(scheme=scheme).throughput

    def test_csv_roundtrip(self, table, tmp_path):
        import csv as csv_mod
        path = tmp_path / "sweep.csv"
        table.to_csv(path)
        with open(path) as fh:
            rows = list(csv_mod.DictReader(fh))
        assert len(rows) == len(table.rows)
        assert float(rows[0]["seq_per_s"]) == pytest.approx(
            table.rows[0].result.seq_per_s)

    def test_json_roundtrip(self, table, tmp_path):
        path = tmp_path / "sweep.json"
        table.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["stats"]["total"] == table.stats.total
        assert len(payload["rows"]) == len(table.rows)

    def test_format_marks_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = tiny_spec(schemes=("gpipe",), waves=(1,))
        run_sweep(spec, cache=cache)
        warm = run_sweep(spec, cache=cache)
        text = warm.format(title="warm")
        assert "warm" in text and "*" in text


class TestCLI:
    def run_cli(self, capsys, *extra) -> str:
        rc = cli_main([
            "sweep", "--clusters", "FC", "--model", "tiny",
            "-n", "4", "--batch", "8", "--layouts", "4x1,2x2",
            "--schemes", "gpipe", "dapple", "hanayo", *extra,
        ])
        assert rc == 0
        return capsys.readouterr().out

    def test_parallel_multi_scheme_grid(self, capsys, tmp_path):
        out = self.run_cli(capsys, "--cache", str(tmp_path / "c"),
                           "-j", "2", "--csv", str(tmp_path / "s.csv"))
        assert "gpipe" in out and "dapple" in out and "hanayo" in out
        assert "0 cached" in out
        assert (tmp_path / "s.csv").exists()

    def test_second_invocation_zero_measure_calls(self, capsys, tmp_path,
                                                  counter):
        """Acceptance: warm re-run of `repro sweep` does no simulation."""
        self.run_cli(capsys, "--cache", str(tmp_path / "c"))
        assert len(counter) > 0
        counter.clear()
        out = self.run_cli(capsys, "--cache", str(tmp_path / "c"))
        assert counter == []
        assert "0 computed" in out

    def test_bad_layouts_rejected(self, capsys):
        rc = cli_main(["sweep", "--layouts", "8by1"])
        assert rc == 2
        assert "bad layout" in capsys.readouterr().err

    def test_oversized_explicit_layout_errors(self, capsys):
        rc = cli_main(["sweep", "--clusters", "FC", "--model", "tiny",
                       "-n", "4", "--batch", "8", "--layouts", "8x1"])
        assert rc == 2
        assert "exceeds" in capsys.readouterr().err
