"""Discrete-event simulator: timing, prefetch semantics, deadlock."""

import pytest

from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.errors import SchedulingError
from repro.runtime import (
    AbstractCosts,
    ConcreteCosts,
    bubble_stats,
    kind_time,
    simulate,
)
from repro.schedules import Schedule, build_schedule, gpipe_schedule
from repro.schedules.placement import LinearPlacement
from repro.types import OpKind

from conftest import ALL_SCHEMES, make_config, scheme_id


def run(scheme, p=4, b=4, t_c=0.0, prefetch=True, **kw):
    cfg = make_config(scheme, p, b, **kw)
    sched = build_schedule(cfg, CostConfig(t_c=t_c))
    costs = AbstractCosts(CostConfig(t_c=t_c), p, sched.num_stages)
    return simulate(sched, costs, RunConfig(prefetch=prefetch)), sched


class TestBasicTiming:
    def test_gpipe_makespan_closed_form(self):
        """GPipe with T_C=0: makespan = (B + P - 1)(t_f + t_b)... split
        into the fill + drain closed form."""
        p, b = 4, 4
        res, _ = run("gpipe", p, b)
        t_f, t_b = 1.0, 2.0
        expected = (p - 1) * t_f + b * t_f + b * t_b + (p - 1) * t_b
        assert res.makespan == pytest.approx(expected)

    def test_dapple_same_makespan_as_gpipe(self):
        g, _ = run("gpipe", 4, 8)
        d, _ = run("dapple", 4, 8)
        assert d.makespan == pytest.approx(g.makespan)

    def test_total_compute_conserved(self):
        for scheme, kw in ALL_SCHEMES:
            res, sched = run(scheme, 4, 4, **kw)
            fwd = kind_time(res.timeline, OpKind.FORWARD)
            bwd = kind_time(res.timeline, OpKind.BACKWARD)
            # B micro-batches x full model: B * P * t_f total forward.
            assert fwd == pytest.approx(4 * 4 * 1.0), scheme
            assert bwd == pytest.approx(4 * 4 * 2.0), scheme

    @pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
    def test_no_device_overlap(self, param):
        scheme, kw = param
        res, _ = run(scheme, 4, 4, t_c=0.1, **kw)
        for d in res.timeline.devices:
            spans = res.timeline.device_spans(d)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-12

    @pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
    def test_dataflow_respected(self, param):
        scheme, kw = param
        res, sched = run(scheme, 4, 4, t_c=0.2, **kw)
        end_of = {
            (t.op.kind, t.op.microbatch, t.op.stage): t.end
            for t in res.timeline.iter_ops()
        }
        start_of = {
            (t.op.kind, t.op.microbatch, t.op.stage): t.start
            for t in res.timeline.iter_ops()
        }
        for op in sched.all_ops():
            for dep in sched.dependencies(op):
                key = (op.kind, op.microbatch, op.stage)
                assert end_of[dep] <= start_of[key] + 1e-12


class TestCommunicationModes:
    def test_comm_increases_makespan(self):
        fast, _ = run("dapple", 4, 4, t_c=0.0)
        slow, _ = run("dapple", 4, 4, t_c=0.5)
        assert slow.makespan > fast.makespan

    def test_prefetch_no_worse(self):
        for scheme, kw in ALL_SCHEMES:
            with_pf, _ = run(scheme, 4, 4, t_c=0.4, prefetch=True, **kw)
            without, _ = run(scheme, 4, 4, t_c=0.4, prefetch=False, **kw)
            assert with_pf.makespan <= without.makespan + 1e-9, scheme

    def test_blocking_recv_charged_to_device(self):
        res, _ = run("gpipe", 4, 4, t_c=0.5, prefetch=False)
        assert sum(res.recv_busy.values()) > 0

    def test_blocking_recv_busy_equals_transferred_time(self):
        """Without prefetch every message's full transfer is charged."""
        res, _ = run("dapple", 4, 4, t_c=0.5, prefetch=False)
        assert sum(res.recv_busy.values()) == pytest.approx(
            0.5 * len(res.comm)
        )

    def test_prefetch_accounts_residual_recv_wait(self):
        """Prefetch overlaps transfers but the event core still accounts
        the un-overlapped stalls — recv_busy is never silently empty
        while communication costs (the old simulator reported 0 here)."""
        res, _ = run("gpipe", 4, 4, t_c=0.5, prefetch=True)
        assert sum(res.recv_busy.values()) > 0

    def test_free_comm_leaves_recv_busy_empty(self):
        for prefetch in (True, False):
            res, _ = run("gpipe", 4, 4, t_c=0.0, prefetch=prefetch)
            assert sum(res.recv_busy.values()) == 0


class TestSimulatorDeadlock:
    def test_cross_device_order_inversion_detected(self):
        """Hand-build mutually waiting device programs."""
        cfg = make_config("gpipe", 2, 2)
        sched = gpipe_schedule(cfg)
        # Swap device 1's ops so it waits for m1 before m0 arrives,
        # while holding device-order constraints that cannot progress.
        bad = Schedule.empty("bad", cfg, LinearPlacement(2))
        f0 = sched.find(OpKind.FORWARD, 0, 0)
        f1 = sched.find(OpKind.FORWARD, 1, 0)
        b0 = sched.find(OpKind.BACKWARD, 0, 0)
        b1 = sched.find(OpKind.BACKWARD, 1, 0)
        # device 0 waits for backward grad of m0 before producing m0's
        # forward -> circular with itself through device 1.
        bad.device_ops[0] = [b0, f0, f1, b1]
        bad.device_ops[1] = sched.device_ops[1]
        with pytest.raises(SchedulingError, match="deadlock"):
            simulate(bad, AbstractCosts(CostConfig(), 2, 2))


class TestConcreteCosts:
    def test_duration_lookup(self):
        from repro.cluster import CommModel
        from repro.models import A100_40G, bert_64, stage_costs

        sc = stage_costs(bert_64(), 4, A100_40G)
        oracle = ConcreteCosts(sc, CommModel.uniform(0.0))
        cfg = make_config("gpipe", 4, 2)
        sched = build_schedule(cfg)
        res = simulate(sched, oracle)
        total_fwd = kind_time(res.timeline, OpKind.FORWARD)
        assert total_fwd == pytest.approx(2 * sum(sc.forward))

    def test_stage_out_of_range(self):
        from repro.cluster import CommModel
        from repro.models import A100_40G, bert_64, stage_costs
        from repro.errors import ConfigError
        from repro.types import ScheduleOp

        sc = stage_costs(bert_64(), 4, A100_40G)
        oracle = ConcreteCosts(sc, CommModel.uniform(0.0))
        bad = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=0, stage=9)
        with pytest.raises(ConfigError):
            oracle.duration(bad)


class TestBubbleRatiosMatchPaperShape:
    """The Fig. 1 orderings, asserted as invariants."""

    def bubble(self, scheme, p=8, b=8, w=1, t_c=0.0):
        res, _ = run(scheme, p, b, t_c=t_c,
                     **({"num_waves": w} if scheme in ("hanayo", "interleaved") else {}))
        return bubble_stats(res.timeline).bubble_ratio

    def test_gpipe_exact_closed_form(self):
        p = b = 8
        assert self.bubble("gpipe") == pytest.approx((p - 1) / (b + p - 1))

    def test_ordering(self):
        gems = self.bubble("gems")
        gpipe = self.bubble("gpipe")
        chimera = self.bubble("chimera")
        h2 = self.bubble("hanayo", w=2)
        h4 = self.bubble("hanayo", w=4)
        assert gems > gpipe > chimera > h2 > h4

    def test_hanayo_monotone_in_waves(self):
        ratios = [self.bubble("hanayo", w=w) for w in (1, 2, 4)]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_chimera_close_to_its_wave_form(self):
        """At equal device count the folded wave form sits within a few
        points of plain Chimera (the exact transform equivalence — at
        halved device count — is tested in test_transform.py)."""
        assert self.bubble("chimera-wave") == pytest.approx(
            self.bubble("chimera"), abs=0.06
        )
