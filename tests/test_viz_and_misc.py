"""Gantt rendering, error types, async weight versions, package surface."""

import pytest

import repro
from repro.config import CostConfig
from repro.errors import OutOfMemoryError, ReproError
from repro.runtime import AbstractCosts, simulate
from repro.schedules import build_schedule
from repro.viz import render_gantt, render_order

from conftest import make_config


class TestGantt:
    def _timeline(self, scheme="dapple", **kw):
        sched = build_schedule(make_config(scheme, 4, 4, **kw))
        return simulate(
            sched, AbstractCosts(CostConfig(), 4, sched.num_stages)
        ).timeline, sched

    def test_one_row_per_device(self):
        tl, _ = self._timeline()
        rows = render_gantt(tl, width=60).splitlines()
        assert sum(r.startswith("P") for r in rows) == 4

    def test_fixed_width(self):
        tl, _ = self._timeline("hanayo", num_waves=2)
        rows = [r for r in render_gantt(tl, width=50).splitlines()
                if r.startswith("P")]
        assert len({len(r) for r in rows}) == 1

    def test_idle_shown_as_dots(self):
        tl, _ = self._timeline("gpipe")
        assert "." in render_gantt(tl, width=60)

    def test_empty_timeline(self):
        from repro.types import Timeline
        assert "empty" in render_gantt(Timeline())

    def test_render_order_truncates(self):
        _, sched = self._timeline()
        text = render_order(sched.device_ops, max_ops=3)
        assert "..." in text
        assert text.count("P0:") == 1


class TestTraceMemoryLanes:
    def _sim(self, resources=False):
        from repro.actions import StageResources
        from repro.models import A100_40G, bert_64, stage_costs
        sched = build_schedule(make_config("dapple", 4, 4))
        kw = {}
        if resources:
            costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
            kw["resources"] = StageResources.from_stage_costs(costs)
        return simulate(sched, AbstractCosts(CostConfig(), 4, 4), **kw)

    def test_counter_lanes_for_annotated_program(self):
        from repro.viz.trace import sim_to_chrome_trace
        trace = sim_to_chrome_trace(self._sim(resources=True))
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert counters
        # one lane per device, anchored at the static level at t=0
        names = {e["name"] for e in counters}
        assert names == {f"memory d{d}" for d in range(4)}
        anchors = counters[:4]  # emitted first, one per device
        assert [e["name"] for e in anchors] == [f"memory d{d}"
                                                for d in range(4)]
        assert all(e["ts"] == 0.0 and e["args"]["GiB"] > 0
                   for e in anchors)

    def test_no_counter_lanes_without_resources(self):
        from repro.viz.trace import sim_to_chrome_trace
        trace = sim_to_chrome_trace(self._sim(resources=False))
        assert not [e for e in trace["traceEvents"] if e.get("ph") == "C"]


class TestErrors:
    def test_oom_carries_details(self):
        err = OutOfMemoryError(3, 50 * 2**30, 40 * 2**30)
        assert err.device == 3
        assert "50.00 GiB" in str(err)
        assert isinstance(err, ReproError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert callable(repro.build_schedule)
        assert callable(repro.simulate)
        assert callable(repro.measure_throughput)
        assert repro.PipelineConfig is not None
