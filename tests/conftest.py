"""Shared fixtures and parametrization helpers."""

from __future__ import annotations

import pytest

from repro.config import CostConfig, PipelineConfig

#: (scheme, extra kwargs) pairs covering every generator, used by the
#: cross-scheme structural tests.
ALL_SCHEMES = [
    ("gpipe", {}),
    ("dapple", {}),
    ("interleaved", {"num_waves": 2}),
    ("gems", {}),
    ("chimera", {}),
    ("chimera-wave", {}),
    ("hanayo", {"num_waves": 1}),
    ("hanayo", {"num_waves": 2}),
    ("async-1f1b", {}),
]

SYNC_SCHEMES = [s for s in ALL_SCHEMES if s[0] != "async-1f1b"]


def scheme_id(param) -> str:
    scheme, kw = param
    if "num_waves" in kw:
        return f"{scheme}-w{kw['num_waves']}"
    return scheme


def make_config(scheme: str, p: int = 4, b: int = 4, **kw) -> PipelineConfig:
    return PipelineConfig(
        scheme=scheme, num_devices=p, num_microbatches=b, **kw
    )


@pytest.fixture
def unit_costs() -> CostConfig:
    return CostConfig(t_f=1.0, t_b=2.0, t_c=0.0)


@pytest.fixture
def comm_costs() -> CostConfig:
    return CostConfig(t_f=1.0, t_b=2.0, t_c=0.25)
