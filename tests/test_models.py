"""Model specs, the zoo, partitioning, and stage cost lowering."""

import pytest

from repro.errors import ConfigError
from repro.models import (
    A100_40G,
    V100_32G,
    LayerKind,
    ModelSpec,
    bert_64,
    gpt_128,
    partition_layers,
    stage_costs,
    tiny_model,
)
from repro.models.costs import BACKWARD_RATIO, BYTES_PER_PARAM


class TestModelSpec:
    def test_paper_bert_shape(self):
        m = bert_64()
        assert (m.num_layers, m.hidden, m.heads) == (64, 2560, 64)
        # ~5B parameters for the paper's BERT-style model
        assert 4e9 < m.param_count < 7e9

    def test_paper_gpt_shape(self):
        m = gpt_128()
        assert (m.num_layers, m.hidden, m.heads) == (128, 1024, 16)
        assert 1e9 < m.param_count < 3e9

    def test_layer_stack_order(self):
        m = tiny_model(num_layers=3)
        kinds = [l.kind for l in m.layers]
        assert kinds[0] is LayerKind.EMBEDDING
        assert kinds[-1] is LayerKind.HEAD
        assert all(k is LayerKind.TRANSFORMER for k in kinds[1:-1])

    def test_invalid_heads(self):
        with pytest.raises(ConfigError, match="divisible"):
            ModelSpec(name="x", hidden=10, num_layers=2, heads=3, seq_len=4)

    def test_degenerate(self):
        with pytest.raises(ConfigError):
            ModelSpec(name="x", hidden=8, num_layers=0, heads=2, seq_len=4)

    def test_boundary_bytes_scales_with_microbatch(self):
        m = tiny_model()
        assert m.boundary_bytes(4) == 4 * m.boundary_bytes(1)

    def test_flops_positive(self):
        assert bert_64().flops_per_seq_forward() > 0


class TestPartitionLayers:
    def test_exact_cover(self):
        m = bert_64()
        for s in (1, 2, 8, 16, 33):
            stages = partition_layers(m, s)
            assert len(stages) == s
            assert sum(len(g) for g in stages) == len(m.layers)

    def test_contiguity_preserves_order(self):
        m = tiny_model(num_layers=6)
        stages = partition_layers(m, 4)
        flat = [l for g in stages for l in g]
        assert flat == m.layers

    def test_too_many_stages(self):
        m = tiny_model(num_layers=4)  # 6 layers total
        with pytest.raises(ConfigError, match="cannot split"):
            partition_layers(m, 7)

    def test_zero_stages(self):
        with pytest.raises(ConfigError):
            partition_layers(tiny_model(), 0)

    def test_balance_within_factor_two(self):
        m = bert_64()
        stages = partition_layers(m, 16)
        costs = [sum(l.flops_per_token() for l in g) for g in stages]
        nonzero = [c for c in costs if c > 0]
        assert max(nonzero) <= 2.5 * (sum(nonzero) / len(nonzero))


class TestStageCosts:
    def test_balanced_is_uniform(self):
        sc = stage_costs(bert_64(), 8, A100_40G)
        assert len(set(sc.forward)) == 1
        assert len(set(sc.weight_bytes)) == 1

    def test_backward_ratio(self):
        sc = stage_costs(bert_64(), 8, A100_40G)
        for f, b in zip(sc.forward, sc.backward):
            assert b == pytest.approx(BACKWARD_RATIO * f)

    def test_totals_independent_of_stage_count(self):
        m = bert_64()
        a = stage_costs(m, 8, A100_40G)
        b = stage_costs(m, 32, A100_40G)
        assert sum(a.forward) == pytest.approx(sum(b.forward))
        assert sum(a.weight_bytes) == pytest.approx(sum(b.weight_bytes))

    def test_weight_bytes_match_param_count(self):
        m = bert_64()
        sc = stage_costs(m, 4, A100_40G)
        assert sum(sc.weight_bytes) == pytest.approx(
            m.param_count * BYTES_PER_PARAM
        )

    def test_unbalanced_varies(self):
        sc = stage_costs(bert_64(), 16, A100_40G, balanced=False)
        assert len(set(sc.forward)) > 1

    def test_microbatch_scaling(self):
        a = stage_costs(bert_64(), 8, A100_40G, microbatch_size=1)
        b = stage_costs(bert_64(), 8, A100_40G, microbatch_size=4)
        assert b.forward[0] == pytest.approx(4 * a.forward[0])
        assert b.boundary_bytes == pytest.approx(4 * a.boundary_bytes)

    def test_v100_slower_than_a100(self):
        a = stage_costs(bert_64(), 8, A100_40G)
        v = stage_costs(bert_64(), 8, V100_32G)
        assert v.forward[0] > a.forward[0]

    def test_bad_microbatch(self):
        with pytest.raises(ConfigError):
            stage_costs(bert_64(), 8, A100_40G, microbatch_size=0)
