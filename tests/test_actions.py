"""Action IR, compiler passes, static validation, interpreter."""

import pytest

from repro.actions import (
    BatchedP2P,
    CommKind,
    ComputeBackward,
    ComputeForward,
    Flush,
    Interpreter,
    OptimizerStep,
    Recv,
    Send,
    Tag,
    batch_opposing,
    check_deadlock_free,
    check_matching,
    compile_schedule,
    count_messages,
    hoist_recvs,
    validate_actions,
)
from repro.errors import DeadlockError, EngineError, ValidationError
from repro.schedules import build_schedule

from conftest import ALL_SCHEMES, SYNC_SCHEMES, make_config, scheme_id


def compiled(scheme, p=4, b=4, **kw):
    sched = build_schedule(make_config(scheme, p, b, **kw))
    return sched, compile_schedule(sched)


class TestCompilerStructure:
    @pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
    def test_matched_and_deadlock_free(self, param):
        scheme, kw = param
        _, lists = compiled(scheme, **kw)
        validate_actions(lists)

    def test_compute_counts(self):
        sched, lists = compiled("hanayo", num_waves=2)
        fwd = sum(isinstance(a, ComputeForward)
                  for acts in lists.values() for a in acts)
        bwd = sum(isinstance(a, ComputeBackward)
                  for acts in lists.values() for a in acts)
        assert fwd == bwd == sched.num_microbatches * sched.num_stages

    def test_local_boundaries_emit_no_comm(self):
        """A single-device pipeline needs zero messages."""
        _, lists = compiled("gpipe", p=1, b=4)
        assert count_messages(lists) == 0

    def test_message_count_matches_perf_model(self):
        from repro.analysis import cross_comm_messages
        for scheme, kw in SYNC_SCHEMES:
            if scheme == "gems":
                continue  # direction-alternating count differs from model
            sched, lists = compiled(scheme, 4, 4, **kw)
            w = kw.get("num_waves", 1)
            expected = cross_comm_messages(scheme, 4, 4, w)
            assert count_messages(lists) == expected, scheme

    def test_step_and_flush_last(self):
        _, lists = compiled("dapple")
        for acts in lists.values():
            assert isinstance(acts[-1], OptimizerStep)
            assert isinstance(acts[-2], Flush)

    def test_no_step_option(self):
        sched = build_schedule(make_config("dapple", 4, 4))
        lists = compile_schedule(sched, add_step=False)
        for acts in lists.values():
            assert not any(isinstance(a, (Flush, OptimizerStep))
                           for a in acts)


class TestPrefetchPass:
    def test_recv_hoisted_above_compute(self):
        acts = [
            ComputeForward(0, 0, 0),
            Recv(peer=1, tag=Tag(CommKind.ACTIVATION, 1, 0)),
            ComputeForward(1, 1, 0),
        ]
        out = hoist_recvs(acts)
        assert isinstance(out[0], Recv)
        assert isinstance(out[1], ComputeForward)

    def test_recv_never_crosses_comm(self):
        r1 = Recv(peer=1, tag=Tag(CommKind.ACTIVATION, 0, 0))
        r2 = Recv(peer=1, tag=Tag(CommKind.ACTIVATION, 1, 0))
        out = hoist_recvs([r1, r2])
        assert out == [r1, r2]

    def test_prefetch_preserves_matching(self):
        for scheme, kw in SYNC_SCHEMES:
            sched = build_schedule(make_config(scheme, 4, 4, **kw))
            for pf in (False, True):
                lists = compile_schedule(sched, prefetch=pf)
                check_matching(lists)


class TestBatchingPass:
    def test_opposing_pair_fused(self):
        s = Send(peer=2, tag=Tag(CommKind.ACTIVATION, 0, 3))
        r = Recv(peer=2, tag=Tag(CommKind.GRADIENT, 1, 4))
        out = batch_opposing([s, r])
        assert len(out) == 1 and isinstance(out[0], BatchedP2P)
        assert out[0].sends == (s,) and out[0].recvs == (r,)

    def test_same_direction_not_fused(self):
        s1 = Send(peer=2, tag=Tag(CommKind.ACTIVATION, 0, 3))
        s2 = Send(peer=2, tag=Tag(CommKind.ACTIVATION, 1, 3))
        assert batch_opposing([s1, s2]) == [s1, s2]

    def test_different_peers_not_fused(self):
        s = Send(peer=2, tag=Tag(CommKind.ACTIVATION, 0, 3))
        r = Recv(peer=3, tag=Tag(CommKind.GRADIENT, 1, 4))
        assert batch_opposing([s, r]) == [s, r]

    @pytest.mark.parametrize("scheme,kw", [
        ("hanayo", {"num_waves": 1}),
        ("hanayo", {"num_waves": 2}),
        ("chimera-wave", {}),
        ("gpipe", {}),
        ("dapple", {}),
    ])
    def test_rendezvous_safe_with_batching(self, scheme, kw):
        """Wave schedules survive a rendezvous backend when opposing
        exchanges are batched (Sec. 4.2's claim)."""
        sched = build_schedule(make_config(scheme, 4, 4, **kw))
        lists = compile_schedule(sched, batch_cross_comm=True)
        check_deadlock_free(lists, rendezvous=True)


class TestStaticValidation:
    def test_unmatched_send_detected(self):
        lists = {
            0: [Send(peer=1, tag=Tag(CommKind.ACTIVATION, 0, 0))],
            1: [],
        }
        with pytest.raises(ValidationError, match="unmatched"):
            check_matching(lists)

    def test_crossed_recv_order_deadlocks(self):
        """Two workers each waiting for the other's un-issued message."""
        t01 = Tag(CommKind.ACTIVATION, 0, 0)
        t10 = Tag(CommKind.ACTIVATION, 1, 1)
        lists = {
            0: [Recv(peer=1, tag=t10), Send(peer=1, tag=t01)],
            1: [Recv(peer=0, tag=t01), Send(peer=0, tag=t10)],
        }
        check_matching(lists)
        with pytest.raises(DeadlockError):
            check_deadlock_free(lists)

    def test_batching_fixes_the_same_exchange(self):
        t01 = Tag(CommKind.ACTIVATION, 0, 0)
        t10 = Tag(CommKind.ACTIVATION, 1, 1)
        lists = {
            0: [BatchedP2P(sends=(Send(peer=1, tag=t01),),
                           recvs=(Recv(peer=1, tag=t10),))],
            1: [BatchedP2P(sends=(Send(peer=0, tag=t10),),
                           recvs=(Recv(peer=0, tag=t01),))],
        }
        check_deadlock_free(lists, rendezvous=True)

    def test_opposing_blocking_sends_deadlock_under_rendezvous(self):
        """The exact NCCL hazard: both sides send first."""
        t01 = Tag(CommKind.ACTIVATION, 0, 0)
        t10 = Tag(CommKind.ACTIVATION, 1, 1)
        lists = {
            0: [Send(peer=1, tag=t01), Recv(peer=1, tag=t10)],
            1: [Send(peer=0, tag=t10), Recv(peer=0, tag=t01)],
        }
        check_deadlock_free(lists, rendezvous=False)  # buffered is fine
        with pytest.raises(DeadlockError):
            check_deadlock_free(lists, rendezvous=True)


class TestInterpreter:
    class Recorder:
        def __init__(self):
            self.calls = []

        def compute_forward(self, m, s, c):
            self.calls.append(("F", m, s, c))

        def compute_backward(self, m, s, c):
            self.calls.append(("B", m, s, c))

        def post_send(self, peer, tag):
            self.calls.append(("send", peer, str(tag)))

        def post_recv(self, peer, tag):
            self.calls.append(("post_recv", peer, str(tag)))

        def wait_recv(self, peer, tag):
            self.calls.append(("wait_recv", peer, str(tag)))

        def flush(self):
            self.calls.append(("flush",))

        def optimizer_step(self):
            self.calls.append(("step",))

    def test_lazy_recv_waited_before_compute(self):
        rec = self.Recorder()
        interp = Interpreter(0, rec)
        tag = Tag(CommKind.ACTIVATION, 0, 0)
        interp.run([
            Recv(peer=1, tag=tag),
            ComputeForward(0, 1, 0),
            Flush(),
            OptimizerStep(),
        ])
        kinds = [c[0] for c in rec.calls]
        assert kinds == ["post_recv", "wait_recv", "F", "flush", "step"]

    def test_batched_posts_all_before_waits(self):
        rec = self.Recorder()
        interp = Interpreter(0, rec)
        t_in = Tag(CommKind.ACTIVATION, 0, 0)
        t_out = Tag(CommKind.GRADIENT, 0, 1)
        interp.run([
            BatchedP2P(sends=(Send(peer=1, tag=t_out),),
                       recvs=(Recv(peer=1, tag=t_in),)),
            ComputeForward(0, 1, 0),
        ])
        kinds = [c[0] for c in rec.calls]
        assert kinds == ["post_recv", "send", "wait_recv", "F"]

    def test_dangling_recv_is_error(self):
        rec = self.Recorder()
        interp = Interpreter(0, rec)
        with pytest.raises(EngineError, match="never consumed"):
            interp.run([Recv(peer=1, tag=Tag(CommKind.ACTIVATION, 0, 0))])

    def test_unknown_action_rejected(self):
        rec = self.Recorder()
        interp = Interpreter(0, rec)
        with pytest.raises(EngineError):
            interp.step(object())
