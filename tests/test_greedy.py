"""The greedy list-scheduling engine: policies, caps, agreement with
constructive generators."""

import pytest

from repro.config import CostConfig
from repro.errors import SchedulingError
from repro.schedules import (
    GreedyPolicy,
    Schedule,
    dapple_schedule,
    fifo_priority,
    greedy_order,
    wave_priority,
)
from repro.schedules.placement import LinearPlacement
from repro.types import OpKind, ScheduleOp

from conftest import make_config


def greedy_linear(p: int, b: int, policy: GreedyPolicy) -> Schedule:
    cfg = make_config("dapple", p, b)
    sched = Schedule.empty("greedy-1f1b", cfg, LinearPlacement(p))
    return greedy_order(sched, policy)


class TestGreedyReproducesDapple:
    """The engine with FIFO priority + the 1F1B cap must emit exactly the
    constructive DAPPLE order — the strongest validation of the engine."""

    @pytest.mark.parametrize("p,b", [(2, 2), (2, 6), (4, 4), (4, 8), (8, 8)])
    def test_orders_identical(self, p, b):
        policy = GreedyPolicy(
            priority=fifo_priority,
            open_cap=lambda d: max(1, p - d),
        )
        greedy = greedy_linear(p, b, policy)
        constructive = dapple_schedule(make_config("dapple", p, b))
        for d in range(p):
            got = [(o.kind, o.microbatch) for o in greedy.device_ops[d]]
            want = [(o.kind, o.microbatch) for o in constructive.device_ops[d]]
            assert got == want, f"device {d} diverges"


class TestGreedyCapBehaviour:
    def test_unbounded_cap_degenerates_to_eager(self):
        """Without a cap, device 0 front-loads all forwards (GPipe shape)."""
        policy = GreedyPolicy(priority=fifo_priority, open_cap=None)
        sched = greedy_linear(4, 8, policy)
        kinds = [o.kind for o in sched.device_ops[0]]
        first_b = kinds.index(OpKind.BACKWARD)
        assert first_b == 8  # every forward admitted before any backward

    def test_zero_cap_deadlocks_with_diagnostic(self):
        policy = GreedyPolicy(priority=fifo_priority, open_cap=lambda d: 0)
        with pytest.raises(SchedulingError, match="cap"):
            greedy_linear(2, 2, policy)

    def test_cap_one_is_sequential_per_microbatch(self):
        policy = GreedyPolicy(priority=fifo_priority, open_cap=lambda d: 1)
        sched = greedy_linear(2, 4, policy)
        for ops in sched.device_ops.values():
            open_now = None
            for op in ops:
                if op.kind is OpKind.FORWARD:
                    assert open_now is None
                    open_now = op.microbatch
                else:
                    assert open_now == op.microbatch
                    open_now = None


class TestPriorities:
    def test_wave_priority_orders_backward_first(self):
        f = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=0, stage=5)
        b = ScheduleOp(device=0, kind=OpKind.BACKWARD, microbatch=9, stage=0)
        assert wave_priority(b) < wave_priority(f)

    def test_wave_priority_prefers_deep_forward(self):
        shallow = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=0, stage=1)
        deep = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=3, stage=7)
        assert wave_priority(deep) < wave_priority(shallow)

    def test_fifo_priority_prefers_low_microbatch(self):
        early = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=0, stage=1)
        late = ScheduleOp(device=0, kind=OpKind.FORWARD, microbatch=2, stage=7)
        assert fifo_priority(early) < fifo_priority(late)


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        a = greedy_linear(4, 8, GreedyPolicy(priority=wave_priority,
                                             open_cap=lambda d: 4))
        b = greedy_linear(4, 8, GreedyPolicy(priority=wave_priority,
                                             open_cap=lambda d: 4))
        assert a.device_ops == b.device_ops

    def test_costs_affect_order_only_not_work(self):
        slow_comm = CostConfig(t_f=1.0, t_b=2.0, t_c=5.0)
        cfg = make_config("dapple", 4, 4)
        a = greedy_order(Schedule.empty("a", cfg, LinearPlacement(4)),
                         GreedyPolicy(open_cap=lambda d: 4))
        b = greedy_order(Schedule.empty("b", cfg, LinearPlacement(4)),
                         GreedyPolicy(open_cap=lambda d: 4), slow_comm)
        ops_a = sorted((o.kind.value, o.microbatch, o.stage)
                       for o in a.all_ops())
        ops_b = sorted((o.kind.value, o.microbatch, o.stage)
                       for o in b.all_ops())
        assert ops_a == ops_b
