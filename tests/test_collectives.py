"""Collectives in the IR: ring decomposition, timing parity, overlap.

Pins the three contracts of the collectives refactor:

* the event core's ring all-reduce on a uniform-cost topology equals
  the closed-form :func:`ring_transfer_chain` model (1e-9 relative);
* ``measure_throughput`` reports a gradient-sync overlap fraction
  computed from simulator events — the ``dp_overlap=0.9`` constant is
  gone, surviving only as the explicit ``overlap="model"`` fallback;
* the engine's program-driven chunked ring all-reduce matches the
  ``allreduce_average`` oracle (bit-for-bit at D=2, allclose beyond).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.actions import (
    CollectiveKind,
    CollectiveOp,
    ComputeBackward,
    collectives_in,
    compile_program,
    ring_pairs,
    ring_step_count,
    with_gradient_sync,
    with_tp_sync,
)
from repro.analysis import (
    ANALYTIC_DP_OVERLAP,
    HybridLayout,
    build_hybrid_simulation,
    dp_allreduce_seconds,
    dp_rank_groups,
    measure_hybrid_throughput,
    measure_throughput,
    tp_allreduce_seconds,
    tp_rank_groups,
)
from repro.cluster import CommModel, get_cluster, make_fc, make_tacc
from repro.cluster.presets import Cluster
from repro.cluster.topology import NVLINK3, Topology, ring_transfer_chain
from repro.config import PipelineConfig, RunConfig
from repro.engine import (
    DataParallelPipelines,
    allreduce_average,
    make_batch,
    ring_allreduce,
)
from repro.errors import ConfigError, ValidationError
from repro.models import bert_64, stage_costs, tiny_model
from repro.runtime import ConcreteCosts, execute_program, simulate_program
from repro.schedules import build_schedule
from repro.types import OpKind
from repro.viz.trace import sim_to_chrome_trace


def uniform_cluster(n: int = 8) -> Cluster:
    """All-NVLink fully-connected cluster: every ring link identical."""
    return make_fc(n)


def dp_program(cluster, scheme="dapple", p=4, b=4, d=2, run=None):
    cfg = PipelineConfig(scheme=scheme, num_devices=p, num_microbatches=b,
                        data_parallel=d)
    sched = build_schedule(cfg)
    costs = stage_costs(bert_64(), sched.num_stages, cluster.device, 1)
    run = run or RunConfig()
    program = compile_program(
        sched, prefetch=run.prefetch, batch_cross_comm=run.batch_cross_comm,
        boundary_bytes=float(costs.boundary_bytes),
    )
    groups = dp_rank_groups(cluster, p, d)
    grad_bytes = {s: w / 16.0 * 4.0
                  for s, w in enumerate(costs.weight_bytes)}
    annotated = with_gradient_sync(program, groups, grad_bytes)
    oracle = ConcreteCosts(costs, CommModel.from_cluster(cluster))
    return sched, annotated, oracle


class TestRingHelpers:
    def test_pairs_and_steps(self):
        assert ring_pairs((0, 4, 8, 12)) == ((0, 4), (4, 8), (8, 12),
                                             (12, 0))
        assert ring_pairs((3,)) == ()
        assert ring_step_count(1) == 0
        assert ring_step_count(2) == 2
        assert ring_step_count(4) == 6


class TestGradientSyncTransform:
    def test_inserts_after_last_backward(self):
        cluster = uniform_cluster()
        _sched, program, _ = dp_program(cluster)
        for device, acts in program.actions.items():
            colls = [a for a in acts if isinstance(a, CollectiveOp)]
            assert len(colls) == 1          # one resident stage
            idx = acts.index(colls[0])
            backwards = [i for i, a in enumerate(acts)
                         if isinstance(a, ComputeBackward)]
            assert idx == max(backwards) + 1
            assert colls[0].kind is CollectiveKind.GRAD_SYNC
            assert not colls[0].blocking
            assert colls[0].group == (device, device + 4)

    def test_chimera_emits_per_replica(self):
        cluster = uniform_cluster()
        _sched, program, _ = dp_program(cluster, scheme="chimera",
                                        p=4, b=4, d=2)
        for _device, acts in program.actions.items():
            colls = [a for a in acts if isinstance(a, CollectiveOp)]
            # two resident (stage, replica) pairs per device
            assert len(colls) == 2
            assert {c.replica for c in colls} == {0, 1}

    def test_d1_is_identity(self):
        cluster = uniform_cluster()
        cfg = PipelineConfig(scheme="gpipe", num_devices=4,
                            num_microbatches=4)
        sched = build_schedule(cfg)
        program = compile_program(sched)
        out = with_gradient_sync(program,
                                 {dev: (dev,) for dev in range(4)},
                                 {s: 1.0 for s in range(4)})
        assert out is program

    def test_missing_group_rejected(self):
        cluster = uniform_cluster()
        cfg = PipelineConfig(scheme="gpipe", num_devices=4,
                            num_microbatches=4)
        program = compile_program(build_schedule(cfg))
        with pytest.raises(ValidationError, match="group"):
            with_gradient_sync(program, {0: (0, 4)}, {0: 1.0})
        with pytest.raises(ValidationError, match="repeats"):
            with_gradient_sync(program,
                               {dev: (0, 0) for dev in range(4)},
                               {s: 1.0 for s in range(4)})

    def test_missing_grad_bytes_rejected(self):
        cfg = PipelineConfig(scheme="gpipe", num_devices=4,
                            num_microbatches=4)
        program = compile_program(build_schedule(cfg))
        with pytest.raises(ValidationError, match="bytes"):
            with_gradient_sync(program,
                               {dev: (dev, dev + 4) for dev in range(4)},
                               {0: 1.0})


class TestRingTimingParity:
    """Acceptance: event-core ring == closed form at 1e-9 rel tol."""

    def test_uniform_topology_matches_closed_form(self):
        cluster = uniform_cluster(8)
        for d in (2, 4):
            _sched, program, oracle = dp_program(cluster, p=8 // d, d=d,
                                                 b=4)
            res = execute_program(program, oracle)
            assert res.collectives
            for c in res.collectives:
                closed = ring_transfer_chain(cluster.topology,
                                             list(c.op.group), c.op.nbytes)
                assert c.duration == pytest.approx(closed, rel=1e-9)
                assert len(c.steps) == ring_step_count(len(c.op.group))
                # steps tile the interval back-to-back
                assert c.steps[0][0] == pytest.approx(c.start)
                assert c.steps[-1][1] == pytest.approx(c.end)

    def test_nonuniform_topology_bounded_by_slowest_link(self):
        # TACC rings cross InfiniBand: still 2(D-1) steps, each the
        # slowest-link time.
        cluster = make_tacc(8)
        _sched, program, oracle = dp_program(cluster, p=4, d=2)
        res = execute_program(program, oracle)
        for c in res.collectives:
            closed = ring_transfer_chain(cluster.topology,
                                         list(c.op.group), c.op.nbytes)
            assert c.duration == pytest.approx(closed, rel=1e-9)

    def test_contention_driver_executes_collectives(self):
        cluster = uniform_cluster(8)
        _sched, program, oracle = dp_program(cluster, p=4, d=2,
                                             run=RunConfig(contention=True))
        res = execute_program(program, oracle, RunConfig(contention=True))
        assert len(res.collectives) == 4
        assert res.sync_done() >= max(
            c.start for c in res.collectives)

    def test_same_device_collectives_serialize(self):
        # Two stages per device (chimera): the NIC cursor runs the
        # buckets back-to-back, never overlapping.
        cluster = uniform_cluster(8)
        _sched, program, oracle = dp_program(cluster, scheme="chimera",
                                             p=4, d=2)
        res = execute_program(program, oracle)
        per_device: dict[int, list] = {}
        for c in res.collectives:
            per_device.setdefault(c.device, []).append(c)
        for events in per_device.values():
            events.sort(key=lambda c: c.start)
            for a, b in zip(events, events[1:]):
                assert b.start >= a.end - 1e-12


class TestMeasuredOverlap:
    """Acceptance: overlap falls out of the event loop, not a constant."""

    def test_fc_dp2_reports_simulated_overlap(self):
        r = measure_throughput("dapple", make_fc(8), bert_64(), p=4,
                               num_microbatches=4, d=2)
        assert r.overlap_mode == "simulated"
        assert r.sync_overlap is not None
        assert 0.0 <= r.sync_overlap <= 1.0
        assert r.sync_s > 0 and r.sync_exposed_s >= 0
        assert r.sync_exposed_s <= r.sync_s + 1e-12
        # FC is uniform: per-stage ring time == closed-form upper bound
        assert r.sync_s == pytest.approx(r.sync_model_s, rel=1e-9)
        assert r.iteration_s == pytest.approx(
            r.iteration_s - r.sync_exposed_s + r.sync_exposed_s)

    def test_multi_chunk_schemes_hide_more(self):
        """The paper's Sec. 3.2 claim, now measured: schemes with
        early-finishing chunks hide more gradient sync than 1F1B."""
        flat = measure_throughput("dapple", make_fc(8), bert_64(), p=4,
                                  num_microbatches=4, d=2)
        wave = measure_throughput("hanayo", make_fc(8), bert_64(), p=4,
                                  num_microbatches=4, d=2, w=2)
        assert wave.sync_overlap > flat.sync_overlap

    def test_d1_has_no_sync(self):
        r = measure_throughput("dapple", make_fc(8), bert_64(), p=4,
                               num_microbatches=4, d=1)
        assert r.sync_s == 0.0 and r.sync_exposed_s == 0.0
        assert r.sync_overlap is None and r.sync_model_s == 0.0

    def test_model_fallback_is_explicit(self):
        r = measure_throughput("dapple", make_fc(8), bert_64(), p=4,
                               num_microbatches=4, d=2, overlap="model")
        assert r.overlap_mode == "model"
        assert r.sync_overlap == ANALYTIC_DP_OVERLAP
        assert r.sync_exposed_s == pytest.approx(
            r.sync_model_s * (1.0 - ANALYTIC_DP_OVERLAP))

    def test_unknown_overlap_mode_rejected(self):
        with pytest.raises(ConfigError, match="overlap"):
            measure_throughput("dapple", make_fc(8), bert_64(), p=4,
                               num_microbatches=4, d=2, overlap="guess")
        with pytest.raises(ConfigError, match="overlap"):
            measure_hybrid_throughput(
                "dapple", make_fc(8), bert_64(), HybridLayout(1, 4, 2),
                num_microbatches=4, overlap="guess")

    def test_simulated_iteration_includes_exposure(self):
        r = measure_throughput("gpipe", make_fc(8), bert_64(), p=4,
                               num_microbatches=4, d=2)
        assert r.iteration_s >= r.sync_exposed_s
        seqs = 4 * 1 * 2
        assert r.seq_per_s == pytest.approx(seqs / r.iteration_s)


class TestLayoutValidation:
    """Satellite: rank leaks become ConfigError, not networkx noise."""

    def test_dp_allreduce_rejects_oversized(self):
        with pytest.raises(ConfigError, match="rank"):
            dp_allreduce_seconds(make_fc(8), p=8, d=2,
                                 grad_bytes_per_device=1e9)

    def test_tp_allreduce_rejects_oversized(self):
        with pytest.raises(ConfigError, match="TP group"):
            tp_allreduce_seconds(make_fc(4), 8, 1e9)

    def test_dp_rank_groups_reject_out_of_cluster(self):
        with pytest.raises(ConfigError, match="references rank"):
            dp_rank_groups(make_fc(8), p=4, d=4)
        with pytest.raises(ConfigError, match="TP=2"):
            dp_rank_groups(make_fc(8), p=4, d=2, spacing=2)

    def test_tp_rank_groups_reject_out_of_cluster(self):
        with pytest.raises(ConfigError, match="references rank"):
            tp_rank_groups(make_fc(4), HybridLayout(tp=4, p=2, d=1))

    def test_valid_groups_shape(self):
        groups = dp_rank_groups(make_fc(8), p=4, d=2)
        assert groups == {g: (g, g + 4) for g in range(4)}
        spaced = dp_rank_groups(make_fc(16), p=4, d=2, spacing=2)
        assert spaced[1] == (2, 10)


class TestEngineRing:
    """Acceptance: program-driven ring == allreduce_average oracle."""

    SPEC = tiny_model(num_layers=8, hidden=16, heads=2, seq_len=6,
                      vocab=32)

    def _grads(self, d, seed=0):
        rng = np.random.default_rng(seed)
        return [
            {"a": rng.normal(size=(3, 5)), "b": rng.normal(size=(7,))}
            for _ in range(d)
        ]

    def test_ring_matches_average_bitwise_d2(self):
        grads = self._grads(2)
        ring = ring_allreduce(grads)
        avg = allreduce_average(grads)
        for name in avg:
            assert np.array_equal(ring[name], avg[name])

    def test_ring_allclose_any_d(self):
        for d in (3, 4, 5):
            grads = self._grads(d, seed=d)
            ring = ring_allreduce(grads)
            avg = allreduce_average(grads)
            for name in avg:
                np.testing.assert_allclose(ring[name], avg[name],
                                           rtol=1e-12, atol=1e-15)

    def test_quickstart_model_step_bitwise(self):
        """The engine's DP step: ring sync == oracle, bit for bit."""
        cfg = PipelineConfig(scheme="dapple", num_devices=2,
                            num_microbatches=4, data_parallel=2)
        ring = DataParallelPipelines(self.SPEC, cfg, seed=11, sync="ring")
        avg = DataParallelPipelines(self.SPEC, cfg, seed=11,
                                    sync="average")
        ins, tgs = make_batch(self.SPEC, 8, seed=5)
        r1, r2 = ring.train_step(ins, tgs), avg.train_step(ins, tgs)
        assert r1.loss == r2.loss
        assert r1.sync_collectives == 2     # one ring per stage bucket
        assert set(r1.grads) == set(r2.grads)
        for name in r2.grads:
            assert np.array_equal(r1.grads[name], r2.grads[name]), name

    def test_dp3_step_allclose(self):
        cfg = PipelineConfig(scheme="gpipe", num_devices=2,
                            num_microbatches=4, data_parallel=3)
        ring = DataParallelPipelines(self.SPEC, cfg, seed=2, sync="ring")
        avg = DataParallelPipelines(self.SPEC, cfg, seed=2,
                                    sync="average")
        ins, tgs = make_batch(self.SPEC, 12, seed=5)
        r1, r2 = ring.train_step(ins, tgs), avg.train_step(ins, tgs)
        for name in r2.grads:
            np.testing.assert_allclose(r1.grads[name], r2.grads[name],
                                       rtol=1e-12, atol=1e-14)

    def test_sync_program_carries_collectives(self):
        cfg = PipelineConfig(scheme="dapple", num_devices=2,
                            num_microbatches=2, data_parallel=2)
        dp = DataParallelPipelines(self.SPEC, cfg, seed=0)
        colls = collectives_in(dp.sync_program)
        assert colls and all(
            c.kind is CollectiveKind.GRAD_SYNC for _d, c in colls)
        assert dp.sync_stages() == [0, 1]

    def test_bad_sync_mode(self):
        cfg = PipelineConfig(scheme="gpipe", num_devices=2,
                            num_microbatches=2, data_parallel=2)
        with pytest.raises(ConfigError, match="sync"):
            DataParallelPipelines(self.SPEC, cfg, sync="quantum")

    def test_ring_identity_for_d1(self):
        grads = self._grads(1)
        out = ring_allreduce(grads)
        for name in grads[0]:
            assert np.array_equal(out[name], grads[0][name])


class TestTensorParallelCollectives:
    def test_tp_sync_blocking_and_counted(self):
        cluster = make_fc(8)
        layout = HybridLayout(tp=2, p=4, d=1)
        program = build_hybrid_simulation(
            "dapple", cluster, bert_64(), layout, num_microbatches=4,
        ).program
        colls = [c for _d, c in collectives_in(program)
                 if c.kind is CollectiveKind.TP_BOUNDARY]
        assert colls
        assert all(c.blocking for c in colls)
        # 2 all-reduces per layer per pass, 16.5 layers per stage
        assert colls[0].count == pytest.approx(2.0 * 66 / 4)

    def test_simulated_close_to_folded_model(self):
        """Blocking TP collectives ~ folding the same seconds into the
        stage durations (simulated can only be faster: comm that the
        folded model serializes after an arrival overlaps the wait)."""
        for scheme in ("gpipe", "hanayo"):
            sim = measure_hybrid_throughput(
                "dapple" if scheme == "gpipe" else scheme,
                make_fc(8), bert_64(), HybridLayout(2, 4, 1),
                num_microbatches=4, w=2 if scheme == "hanayo" else 1)
            model = measure_hybrid_throughput(
                "dapple" if scheme == "gpipe" else scheme,
                make_fc(8), bert_64(), HybridLayout(2, 4, 1),
                num_microbatches=4, w=2 if scheme == "hanayo" else 1,
                overlap="model")
            assert sim.iteration_s <= model.iteration_s * (1 + 1e-9)
            assert sim.iteration_s == pytest.approx(model.iteration_s,
                                                    rel=0.05)

    def test_hybrid_dp_overlap_measured(self):
        r = measure_hybrid_throughput(
            "hanayo", make_fc(16), bert_64(), HybridLayout(2, 4, 2),
            num_microbatches=4, w=2)
        assert not r.oom
        assert r.sync_overlap is not None and 0.0 <= r.sync_overlap <= 1.0

    def test_tp_sync_validation(self):
        cluster = make_fc(8)
        cfg = PipelineConfig(scheme="gpipe", num_devices=4,
                            num_microbatches=4)
        program = compile_program(build_schedule(cfg))
        with pytest.raises(ValidationError, match="count_per_pass"):
            with_tp_sync(program,
                         {d: (2 * d, 2 * d + 1) for d in range(4)},
                         nbytes=1.0, count_per_pass=-1.0)


class TestVizCollectiveLanes:
    def test_trace_has_collective_process(self):
        cluster = uniform_cluster(8)
        sched, program, oracle = dp_program(cluster, p=4, d=2)
        res = simulate_program(program, oracle, schedule=sched)
        trace = sim_to_chrome_trace(res, time_unit_us=1e6)
        events = trace["traceEvents"]
        procs = {e["args"]["name"] for e in events
                 if e["name"] == "process_name"}
        assert "collectives" in procs
        spans = [e for e in events if e.get("cat") == "collective"]
        steps = [e for e in events if e.get("cat") == "collective-step"]
        assert len(spans) == 4
        assert len(steps) == 4 * ring_step_count(2)
        assert all("group" in e["args"] for e in spans)


class TestSweepAxes:
    def test_tp_axis_expands_and_runs(self):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            schemes=("dapple",),
            clusters=(make_fc(8),),
            models=(tiny_model(num_layers=16),),
            layouts=((4, 1), (2, 2)),
            total_batches=(8,),
            waves=(1,),
            tensor_parallel=(1, 2),
        )
        points = spec.expand()
        assert {(pt.p, pt.d, pt.tp) for pt in points} == {
            (4, 1, 1), (4, 1, 2), (2, 2, 1), (2, 2, 2)}
        table = run_sweep(spec)
        assert len(table.rows) == 4
        by = {(r.p, r.d, r.tp): r for r in table.rows}
        assert not any(r.oom for r in table.rows)
        # TP=2 rows came from the hybrid harness: sharded weights
        assert (by[(4, 1, 2)].result.peak_mem_bytes
                < by[(4, 1, 1)].result.peak_mem_bytes)

    def test_pinned_tp_layout_triples_not_crossed(self):
        """(P, D, TP) layouts bind one degree; (P, D) pairs cross all.

        Guards the CLI's --dp/--tp derivation: a depth computed for
        TP=2 must not re-appear underfilled at TP=1.
        """
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            schemes=("dapple",),
            clusters=(make_fc(8),),
            models=(tiny_model(num_layers=16),),
            layouts=((4, 2, 1), (2, 2, 2)),
            total_batches=(8,),
            waves=(1,),
            tensor_parallel=(1, 2),
        )
        cells = {(pt.p, pt.d, pt.tp) for pt in spec.expand()}
        assert cells == {(4, 2, 1), (2, 2, 2)}

    def test_oversized_tp_cells_skipped(self):
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            schemes=("gpipe",),
            clusters=(make_tacc(8),),   # 3 GPUs/node: TP=4 impossible
            models=(tiny_model(num_layers=16),),
            layouts=((4, 2),),
            total_batches=(8,),
            waves=(1,),
            tensor_parallel=(1, 4),
            skip_oversized=False,
        )
        assert {pt.tp for pt in spec.expand()} == {1}

    def test_cache_roundtrip_keeps_sync_columns(self, tmp_path):
        from repro.sweep import ResultCache, SweepSpec, run_sweep

        spec = SweepSpec(
            schemes=("dapple",), clusters=(make_fc(8),),
            models=(tiny_model(num_layers=16),),
            layouts=((4, 2),), total_batches=(8,), waves=(1,),
        )
        cache = ResultCache(tmp_path / "c")
        fresh = run_sweep(spec, cache=cache)
        warm = run_sweep(spec, cache=cache)
        assert warm.stats.cached == warm.stats.total
        a, b = fresh.rows[0].result, warm.rows[0].result
        assert a.sync_overlap == b.sync_overlap
        assert a.sync_s == b.sync_s
        assert a.overlap_mode == b.overlap_mode == "simulated"
