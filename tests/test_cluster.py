"""Topology graphs, cluster presets, and the communication model."""

import pytest

from repro.cluster import (
    INTER_NODE,
    NVLINK3,
    PCIE4,
    CommModel,
    LinkClass,
    Topology,
    Transfer,
    all_clusters,
    get_cluster,
    make_fc,
    make_pc,
    make_tacc,
    make_tc,
    ring_transfer_chain,
)
from repro.errors import ConfigError


class TestLinkClass:
    def test_alpha_beta(self):
        link = LinkClass("x", bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_bytes(self):
        with pytest.raises(ConfigError):
            NVLINK3.transfer_time(-1)


class TestTopology:
    def test_direct_link_preferred(self):
        t = Topology("t", 3)
        t.add_link(0, 1, NVLINK3)
        t.add_link(1, 2, NVLINK3)
        t.add_link(0, 2, PCIE4)
        assert t.effective_link(0, 2).name == PCIE4.name

    def test_multihop_bottleneck(self):
        t = Topology("t", 3)
        t.add_link(0, 1, NVLINK3)
        t.add_link(1, 2, PCIE4)
        eff = t.effective_link(0, 2)
        assert eff.bandwidth == PCIE4.bandwidth
        assert eff.latency == pytest.approx(NVLINK3.latency + PCIE4.latency)

    def test_fastest_link_kept_on_duplicate(self):
        t = Topology("t", 2)
        t.add_link(0, 1, PCIE4)
        t.add_link(0, 1, NVLINK3)
        assert t.link_between(0, 1).name == NVLINK3.name

    def test_self_transfer_free(self):
        t = Topology("t", 2)
        t.add_link(0, 1, NVLINK3)
        assert t.transfer_time(1, 1, 1e6) == 0.0

    def test_self_link_rejected(self):
        t = Topology("t", 2)
        with pytest.raises(ConfigError):
            t.add_link(1, 1, NVLINK3)

    def test_out_of_range_link(self):
        t = Topology("t", 2)
        with pytest.raises(ConfigError):
            t.add_link(0, 5, NVLINK3)

    def test_disconnected_raises(self):
        t = Topology("t", 3)
        t.add_link(0, 1, NVLINK3)
        with pytest.raises(ConfigError, match="no route"):
            t.effective_link(0, 2)


class TestPresets:
    @pytest.mark.parametrize("factory", [make_fc, make_pc, make_tacc, make_tc])
    def test_connected(self, factory):
        cluster = factory(8)
        assert cluster.topology.is_connected()
        assert cluster.num_devices == 8

    def test_fc_uniform_nvlink(self):
        fc = make_fc(8)
        for b in range(1, 8):
            assert fc.topology.link_between(0, b).name == NVLINK3.name

    def test_pc_pairs_faster_than_cross(self):
        pc = make_pc(8)
        paired = pc.topology.transfer_time(0, 1, 1e7)
        cross = pc.topology.transfer_time(0, 2, 1e7)
        assert paired < cross

    def test_pc_odd_devices_rejected(self):
        with pytest.raises(ConfigError):
            make_pc(7)

    def test_tacc_cross_node_slowest(self):
        tacc = make_tacc(6)  # 2 nodes of 3 GPUs
        intra = tacc.topology.transfer_time(0, 2, 1e7)
        inter = tacc.topology.transfer_time(2, 3, 1e7)
        assert inter > intra
        assert tacc.node_of(2) == 0 and tacc.node_of(3) == 1

    def test_ordering_across_clusters(self):
        """FC fastest; PC's unpaired hop slower; TACC's cross-node worst."""
        n = 1e7
        fc = make_fc(8).topology.transfer_time(3, 4, n)
        pc = make_pc(8).topology.transfer_time(3, 4, n)       # PCIe hop
        tacc = make_tacc(8).topology.transfer_time(2, 3, n)   # cross-node
        assert fc < pc < tacc

    def test_get_cluster_lookup(self):
        assert get_cluster("tacc", 8).name == "TACC"
        with pytest.raises(ConfigError, match="unknown cluster"):
            get_cluster("nope")

    def test_all_clusters_order(self):
        names = [c.name for c in all_clusters(8)]
        assert names == ["PC", "FC", "TACC", "TC"]


class TestCommModel:
    def test_uniform_mode(self):
        cm = CommModel.uniform(0.5)
        assert cm.transfer_time(Transfer(0, 5, 123456)) == 0.5
        assert cm.transfer_time(Transfer(2, 2, 99)) == 0.0

    def test_uniform_negative(self):
        with pytest.raises(ConfigError):
            CommModel.uniform(-0.1)

    def test_needs_some_model(self):
        with pytest.raises(ConfigError):
            CommModel()

    def test_topology_mode(self):
        cm = CommModel.from_cluster(make_fc(4))
        t = cm.transfer_time(Transfer(0, 1, 1e9))
        assert t == pytest.approx(NVLINK3.transfer_time(1e9))

    def test_batched_shares_latency(self):
        cm = CommModel.from_cluster(make_fc(4))
        single = cm.transfer_time(Transfer(0, 1, 1e8))
        batched = cm.batched_time([
            Transfer(0, 1, 1e8), Transfer(1, 0, 1e8),
        ])
        # Serialized on the wire but one latency: strictly less than 2x.
        assert single < batched < 2 * single

    def test_batched_parallel_pairs(self):
        cm = CommModel.from_cluster(make_fc(8))
        lone = cm.batched_time([Transfer(0, 1, 1e8)])
        two_pairs = cm.batched_time([
            Transfer(0, 1, 1e8), Transfer(2, 3, 1e8),
        ])
        assert two_pairs == pytest.approx(lone)

    def test_batched_empty(self):
        cm = CommModel.uniform(1.0)
        assert cm.batched_time([]) == 0.0


class TestRingTransfer:
    def test_single_rank_free(self):
        topo = make_fc(4).topology
        assert ring_transfer_chain(topo, [0], 1e9) == 0.0

    def test_grows_with_ring_size(self):
        topo = make_fc(8).topology
        two = ring_transfer_chain(topo, [0, 1], 1e9)
        four = ring_transfer_chain(topo, [0, 1, 2, 3], 1e9)
        assert two < four
