"""Memory as a first-class runtime resource.

Covers the resource-annotated Program IR, the event core's live
watermarks (byte-identical to the offline replay on every schedule
family), capacity enforcement (static O(P) pre-check + first-violation
abort), OOM pruning in the analysis/sweep layers, the recompute
transform, and the closed-form units cross-check.
"""

import pytest

from repro.actions import StageResources, compile_program
from repro.analysis.memory_model import activation_units, weight_units
from repro.analysis.throughput import measure_throughput
from repro.cluster import make_tacc
from repro.config import CostConfig, RunConfig
from repro.errors import ConfigError, OutOfMemoryError, SchedulingError
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import (
    AbstractCosts,
    memory_stats,
    memory_stats_from_result,
    simulate,
)
from repro.schedules import build_schedule
from repro.sweep import SweepSpec, run_sweep

from conftest import ALL_SCHEMES, make_config, scheme_id


def annotated(scheme, p=4, b=4, run=None, capacity=None, balanced=True,
              oracle=None, **kw):
    """Simulate with a resource-annotated program; return the triple."""
    cfg = make_config(scheme, p, b, **kw)
    sched = build_schedule(cfg)
    costs = stage_costs(bert_64(), sched.num_stages, A100_40G,
                        balanced=balanced)
    oracle = oracle or AbstractCosts(CostConfig(), p, sched.num_stages)
    res = simulate(sched, oracle, run,
                   resources=StageResources.from_stage_costs(costs),
                   capacity_bytes=capacity)
    return sched, costs, res


class CountingCosts(AbstractCosts):
    """Counts event-loop compute timings — the 'did we simulate' probe."""

    def __post_init__(self):
        super().__post_init__()
        self.calls = 0

    def duration(self, op):
        self.calls += 1
        return super().duration(op)


class TestWatermarkParity:
    """Runtime watermarks == offline replay, byte for byte (tentpole)."""

    @pytest.mark.parametrize("case", ALL_SCHEMES, ids=scheme_id)
    def test_peaks_byte_identical_to_replay(self, case):
        scheme, kw = case
        sched, costs, res = annotated(scheme, **kw)
        replay = memory_stats(sched, res.timeline, costs)
        assert res.memory.peak_bytes == replay.peak_bytes
        assert res.memory.static_bytes == replay.static_bytes

    @pytest.mark.parametrize("case", [("dapple", {}),
                                      ("hanayo", {"num_waves": 2})],
                             ids=scheme_id)
    def test_parity_with_unbalanced_stages(self, case):
        """Different per-stage byte columns, same accumulation order."""
        scheme, kw = case
        sched, costs, res = annotated(scheme, balanced=False, **kw)
        replay = memory_stats(sched, res.timeline, costs)
        assert res.memory.peak_bytes == replay.peak_bytes

    @pytest.mark.parametrize("run", [RunConfig(prefetch=False),
                                     RunConfig(contention=True)],
                             ids=["no-prefetch", "contention"])
    def test_parity_across_execution_modes(self, run):
        """Per-device delta order is program order in every driver."""
        sched, costs, res = annotated("hanayo", num_waves=2, run=run)
        replay = memory_stats(sched, res.timeline, costs)
        assert res.memory.peak_bytes == replay.peak_bytes

    def test_thin_reader_returns_live_stats(self):
        _, _, res = annotated("gpipe")
        assert memory_stats_from_result(res) is res.memory

    def test_thin_reader_needs_resources(self):
        cfg = make_config("gpipe")
        sched = build_schedule(cfg)
        res = simulate(sched, AbstractCosts(CostConfig(), 4, sched.num_stages))
        assert res.memory is None
        with pytest.raises(ConfigError, match="no memory watermarks"):
            memory_stats_from_result(res)

    def test_mem_events_balance_to_static(self):
        """Every alloc has a matching free; levels return to static."""
        _, costs, res = annotated("chimera", p=4, b=4)
        total = sum(e.delta for e in res.mem_events)
        assert total == pytest.approx(0.0, abs=64.0)
        allocs = [e for e in res.mem_events if e.delta > 0]
        frees = [e for e in res.mem_events if e.delta < 0]
        assert len(allocs) == len(frees) == res.program.compute_count() // 2


class TestCapacityEnforcement:
    def _static_peak(self, res):
        return max(res.memory.static_bytes.values())

    def test_static_precheck_skips_event_loop(self):
        """Statically-infeasible programs are rejected in O(P): the cost
        oracle is never consulted."""
        _, _, full = annotated("gpipe", p=4, b=8)
        cap = int(self._static_peak(full) * 0.5)
        oracle = CountingCosts(CostConfig(), 4, 4)
        with pytest.raises(OutOfMemoryError) as exc:
            annotated("gpipe", p=4, b=8, capacity=cap, oracle=oracle)
        assert oracle.calls == 0
        assert exc.value.device == 0

    def test_abort_at_first_violation_does_less_work(self):
        _, costs, full = annotated("gpipe", p=4, b=8)
        baseline = CountingCosts(CostConfig(), 4, 4)
        annotated("gpipe", p=4, b=8, oracle=baseline)
        # room for static + 2.5 activations: the third alloc violates
        cap = int(self._static_peak(full) + 2.5 * costs.activation_bytes[0])
        counting = CountingCosts(CostConfig(), 4, 4)
        with pytest.raises(OutOfMemoryError) as exc:
            annotated("gpipe", p=4, b=8, capacity=cap, oracle=counting)
        assert 0 < counting.calls < baseline.calls
        assert exc.value.peak_bytes > exc.value.capacity_bytes

    def test_error_message_carries_device_peak_capacity(self):
        err = OutOfMemoryError(3, 100 * 2**30, 40 * 2**30)
        assert err.device == 3
        assert err.peak_bytes == 100 * 2**30
        assert err.capacity_bytes == 40 * 2**30
        msg = str(err)
        assert "device 3" in msg
        assert "100.00 GiB" in msg
        assert "capacity 40.00 GiB" in msg

    def test_live_abort_error_fields(self):
        _, costs, full = annotated("gpipe", p=4, b=8)
        cap = int(self._static_peak(full) + 1.5 * costs.activation_bytes[0])
        with pytest.raises(OutOfMemoryError) as exc:
            annotated("gpipe", p=4, b=8, capacity=cap)
        assert exc.value.device in full.memory.peak_bytes
        assert exc.value.capacity_bytes == cap
        assert f"device {exc.value.device}" in str(exc.value)

    def test_capacity_requires_resources(self):
        sched = build_schedule(make_config("gpipe"))
        with pytest.raises(SchedulingError, match="resource-annotated"):
            simulate(sched, AbstractCosts(CostConfig(), 4, 4),
                     capacity_bytes=1)

    def test_generous_capacity_completes(self):
        _, _, full = annotated("gpipe", p=4, b=8)
        cap = int(full.memory.highest_peak) + 1
        _, _, again = annotated("gpipe", p=4, b=8, capacity=cap)
        assert again.memory.peak_bytes == full.memory.peak_bytes


class TestProgramResources:
    def test_compile_attaches_static_and_deltas(self):
        sched = build_schedule(make_config("chimera"))
        costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
        program = compile_program(
            sched, resources=StageResources.from_stage_costs(costs))
        assert program.tracks_memory
        # Chimera: every device hosts both replicas' stages -> 2x static
        per_stage = costs.weight_bytes[0]
        for device, static in program.static_bytes.items():
            assert static == pytest.approx(2 * per_stage)
        from repro.types import OpKind
        key_f = (OpKind.FORWARD, 0, 0)
        key_b = (OpKind.BACKWARD, 0, 0)
        assert program.alloc_bytes(key_f) == costs.activation_bytes[0]
        assert program.free_bytes(key_f) == 0.0
        assert program.alloc_bytes(key_b) == 0.0
        assert program.free_bytes(key_b) == costs.activation_bytes[0]

    def test_unannotated_program_has_no_memory(self):
        sched = build_schedule(make_config("gpipe"))
        program = compile_program(sched)
        assert not program.tracks_memory
        assert program.static_bytes == {}
        program.check_static_memory(1)  # vacuous

    def test_with_resources_reannotates(self):
        sched = build_schedule(make_config("dapple"))
        costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
        bare = compile_program(sched)
        rich = bare.with_resources(StageResources.from_stage_costs(costs))
        assert rich.actions is bare.actions  # memory is orthogonal
        assert rich.static_bytes and not bare.static_bytes
        assert rich.with_resources(None).static_bytes == {}

    def test_stage_count_mismatch_rejected(self):
        from repro.errors import ValidationError
        sched = build_schedule(make_config("dapple"))
        bad = StageResources(weight_bytes=(1.0,), activation_bytes=(1.0,))
        with pytest.raises(ValidationError, match="stages"):
            compile_program(sched, resources=bad)

    def test_check_static_memory_picks_lowest_device(self):
        sched = build_schedule(make_config("gpipe"))
        costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
        program = compile_program(
            sched, resources=StageResources.from_stage_costs(costs))
        with pytest.raises(OutOfMemoryError) as exc:
            program.check_static_memory(1)
        assert exc.value.device == 0


class TestRecomputeTransform:
    def test_recompute_shrinks_to_boundary(self):
        costs = stage_costs(bert_64(), 4, A100_40G)
        res = StageResources.from_stage_costs(costs)
        ckpt = res.with_recompute()
        assert ckpt.activation_bytes == (costs.boundary_bytes,) * 4
        assert ckpt.weight_bytes == res.weight_bytes

    def test_program_level_transform_matches_cost_model(self):
        """with_recompute() == the byte columns of
        stage_costs(recompute=True), applied as a Program transform."""
        sched = build_schedule(make_config("gpipe", 4, 6))
        full = stage_costs(bert_64(), sched.num_stages, A100_40G)
        ckpt_costs = stage_costs(bert_64(), sched.num_stages, A100_40G,
                                 recompute=True)
        resources = StageResources.from_stage_costs(full).with_recompute()
        res = simulate(sched, AbstractCosts(CostConfig(), 4, 4),
                       resources=resources)
        replay = memory_stats(sched, res.timeline, ckpt_costs)
        assert res.memory.peak_bytes == replay.peak_bytes
        # GPipe under recompute: B boundary tensors live at peak
        act = res.memory.highest_peak - max(res.memory.static_bytes.values())
        assert act == pytest.approx(6 * full.boundary_bytes)


class TestAnalysisPruning:
    """OOM cells never pay a full simulation (fast-path satellite)."""

    def _count_simulations(self, monkeypatch):
        import repro.analysis.throughput as thr
        calls = {"n": 0}
        real = thr.simulate_program

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(thr, "simulate_program", counting)
        return calls

    def test_static_infeasible_cell_never_simulates(self, monkeypatch):
        calls = self._count_simulations(monkeypatch)
        r = measure_throughput("gpipe", make_tacc(8), bert_64(), p=8,
                               num_microbatches=8,
                               capacity_bytes=1 * 2**30)
        assert r.oom and r.statically_pruned
        assert r.oom_device == 0
        assert r.seq_per_s is None and r.bubble_ratio is None
        assert "static" in r.describe()
        assert calls["n"] == 0

    def test_runtime_oom_aborts_with_watermark_peak(self):
        # bert on 40 GB cards with a deep micro-batch backlog: static
        # fits, activations do not (the seed's OOM regression case)
        r = measure_throughput("gpipe", make_tacc(8), bert_64(), p=8,
                               num_microbatches=32, microbatch_size=8)
        assert r.oom and not r.statically_pruned
        assert r.oom_device is not None
        assert r.peak_mem_bytes > make_tacc(8).device.memory_bytes

    def test_capacity_constrained_search_prunes(self, monkeypatch):
        """Fig. 10-style acceptance: a capacity-constrained grid does
        measurably fewer event-loop runs; pruned count > 0."""
        calls = self._count_simulations(monkeypatch)
        spec = SweepSpec(
            schemes=("gpipe", "dapple", "hanayo"),
            clusters=(make_tacc(8),),
            models=(bert_64(),),
            layouts=((8, 1), (4, 2)),
            total_batches=(16,),
            waves=(1, 2),
            capacity_bytes=10 * 2**30,   # below bert's static on P<=8
        )
        table = run_sweep(spec)
        assert table.stats.pruned > 0
        assert calls["n"] < table.stats.total
        assert calls["n"] == table.stats.total - table.stats.pruned
        assert all(row.oom for row in table.rows
                   if row.result.statically_pruned)
        assert "OOM-pruned" in table.stats.describe()

    def test_hybrid_static_precheck(self):
        from repro.analysis.hybrid import HybridLayout, \
            measure_hybrid_throughput
        tiny_cap = make_tacc(8)
        # shrink the modeled card to force a static reject
        import dataclasses
        device = dataclasses.replace(tiny_cap.device,
                                     memory_bytes=1 * 2**30)
        cluster = dataclasses.replace(tiny_cap, device=device)
        r = measure_hybrid_throughput(
            "dapple", cluster, bert_64(), HybridLayout(tp=1, p=8, d=1),
            num_microbatches=8)
        assert r.oom and r.statically_pruned


class TestClosedFormCrossCheck:
    """analysis.memory_model units vs byte-accurate runtime watermarks.

    Conventions differ per family (the closed form mirrors the paper's
    Fig. 2/3 axes): for the unidirectional device-load families the
    match is exact; the bidirectional and interleaved forms count in
    whole-model / per-wave units and are upper bounds after the
    documented unit translation.
    """

    #: (scheme label, build kwargs, closed-form waves arg)
    CASES = [
        ("gpipe", {}, 1),
        ("dapple", {}, 1),
        ("gems", {}, 1),
        ("chimera", {}, 1),
        ("chimera-wave", {}, 1),
        ("hanayo", {"num_waves": 1}, 1),
        ("hanayo", {"num_waves": 2}, 2),
        ("interleaved", {"num_waves": 1}, 1),
        ("interleaved", {"num_waves": 2}, 2),
        ("async-1f1b", {}, 1),
    ]

    def _measured_units(self, scheme, kw, p=4, b=4):
        sched, costs, res = annotated(scheme, p=p, b=b, **kw)
        mem = res.memory
        act_unit = sum(costs.activation_bytes) / p
        weight_unit = sum(costs.weight_bytes) / p
        meas_w = max(mem.static_bytes.values()) / weight_unit
        meas_a = max(mem.peak_bytes[d] - mem.static_bytes[d]
                     for d in mem.peak_bytes) / act_unit
        return meas_w, meas_a

    @pytest.mark.parametrize("scheme,kw,w", CASES,
                             ids=[scheme_id((s, k)) for s, k, _ in CASES])
    def test_weight_units_match_watermarks(self, scheme, kw, w):
        meas_w, _ = self._measured_units(scheme, kw)
        assert meas_w == pytest.approx(weight_units(scheme))

    @pytest.mark.parametrize("scheme,kw,w", CASES,
                             ids=[scheme_id((s, k)) for s, k, _ in CASES])
    def test_activation_units_cross_check(self, scheme, kw, w):
        p = b = 4
        _, meas_a = self._measured_units(scheme, kw, p, b)
        closed = activation_units(scheme, p, b, w)
        if scheme in ("gpipe", "dapple", "hanayo", "chimera-wave",
                      "async-1f1b"):
            # device-load convention: exact match
            assert meas_a == pytest.approx(closed)
        elif scheme == "gems":
            # whole-model convention (2/P + 1/P): bound after x P
            assert meas_a <= closed * p + 1e-9
        elif scheme == "chimera":
            # two-chunk device-load convention: bound after x 2
            assert meas_a <= closed * 2 + 1e-9
        else:  # interleaved: per-wave convention, bound after x W
            assert meas_a <= closed * w + 1e-9

    def test_two_wave_budget_equals_one_wave(self):
        """Hanayo spends the same worst-device budget at W=1 and W=2 —
        the byte model confirms the closed form's wave independence."""
        _, one = self._measured_units("hanayo", {"num_waves": 1})
        _, two = self._measured_units("hanayo", {"num_waves": 2})
        assert one == pytest.approx(two)
