"""Extensions: recomputation, hybrid TP, multi-iteration sim, trace, CLI."""

import json

import numpy as np
import pytest

from repro.analysis import (
    HybridLayout,
    apply_tensor_parallel,
    hybrid_search,
    measure_hybrid_throughput,
    tp_allreduce_seconds,
)
from repro.cluster import make_fc, make_tacc
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.engine import PipelineTrainer, build_stages, make_batch, sequential_step
from repro.errors import ConfigError, SchedulingError
from repro.models import A100_40G, bert_64, stage_costs, tiny_model
from repro.runtime import AbstractCosts, simulate, simulate_training
from repro.schedules import build_schedule
from repro.viz import timeline_to_chrome_trace, write_chrome_trace

from conftest import make_config


class TestRecomputeCostModel:
    def test_activation_bytes_drop_to_boundary(self):
        model = bert_64()
        plain = stage_costs(model, 8, A100_40G)
        ckpt = stage_costs(model, 8, A100_40G, recompute=True)
        assert ckpt.activation_bytes[0] == pytest.approx(
            model.boundary_bytes(1)
        )
        assert ckpt.activation_bytes[0] < plain.activation_bytes[0] / 50

    def test_backward_grows_by_one_forward(self):
        plain = stage_costs(bert_64(), 8, A100_40G)
        ckpt = stage_costs(bert_64(), 8, A100_40G, recompute=True)
        assert ckpt.backward[0] == pytest.approx(
            plain.backward[0] + plain.forward[0]
        )
        assert ckpt.forward[0] == pytest.approx(plain.forward[0])

    def test_unbalanced_recompute(self):
        ckpt = stage_costs(bert_64(), 8, A100_40G, balanced=False,
                           recompute=True)
        assert all(a == ckpt.activation_bytes[0]
                   for a in ckpt.activation_bytes)


class TestRecomputeEngine:
    SPEC = tiny_model(num_layers=6, hidden=16, heads=2, seq_len=6, vocab=32)

    def test_gradients_identical_with_recompute(self):
        cfg = make_config("hanayo", 2, 4, num_waves=1)
        inputs, targets = make_batch(self.SPEC, 4, seed=7)
        plain = PipelineTrainer(self.SPEC, cfg, seed=3).train_step(
            inputs, targets
        )
        ckpt = PipelineTrainer(self.SPEC, cfg, seed=3,
                               recompute=True).train_step(inputs, targets)
        assert ckpt.loss == pytest.approx(plain.loss, rel=1e-12)
        for name in plain.grads:
            np.testing.assert_allclose(ckpt.grads[name], plain.grads[name],
                                       rtol=1e-12, atol=1e-15)

    def test_recompute_frees_saved_input(self):
        stages = build_stages(self.SPEC, 1, seed=0, recompute=True)
        inputs, targets = make_batch(self.SPEC, 1)
        from repro.engine import sequential_step_on
        sequential_step_on(stages, inputs, targets)
        assert stages[0].live_microbatches() == set()

    def test_duplicate_forward_rejected_in_recompute(self):
        from repro.errors import EngineError
        stage = build_stages(self.SPEC, 1, seed=0, recompute=True)[0]
        ids = np.zeros((1, self.SPEC.seq_len), dtype=np.int64)
        stage.forward(0, ids)
        with pytest.raises(EngineError, match="duplicate"):
            stage.forward(0, ids)


class TestHybridTP:
    def test_tp_shards_compute_and_weights(self):
        cluster = make_fc(8)
        model = bert_64()
        base = stage_costs(model, 4, cluster.device)
        tp2 = apply_tensor_parallel(base, cluster, model, 2, 1, 16.0)
        assert tp2.weight_bytes[0] == pytest.approx(base.weight_bytes[0] / 2)
        assert tp2.activation_bytes[0] == pytest.approx(
            base.activation_bytes[0] / 2
        )
        # compute halves but collectives are charged on top
        assert tp2.forward[0] > base.forward[0] / 2
        assert tp2.forward[0] < base.forward[0]

    def test_tp1_is_identity(self):
        cluster = make_fc(8)
        base = stage_costs(bert_64(), 4, cluster.device)
        assert apply_tensor_parallel(base, cluster, bert_64(), 1, 1, 16.0) is base

    def test_tp_gated_by_node_size(self):
        cluster = make_tacc(6)  # 3 GPUs per node
        base = stage_costs(bert_64(), 2, cluster.device)
        with pytest.raises(ConfigError, match="node"):
            apply_tensor_parallel(base, cluster, bert_64(), 4, 1, 33.0)

    def test_tp_allreduce_free_for_one(self):
        assert tp_allreduce_seconds(make_fc(8), 1, 1e9) == 0.0
        assert tp_allreduce_seconds(make_fc(8), 4, 1e9) > 0.0

    def test_hybrid_throughput_runs(self):
        r = measure_hybrid_throughput(
            "hanayo", make_fc(8), bert_64(),
            HybridLayout(tp=2, p=4, d=1), num_microbatches=4, w=2,
        )
        assert not r.oom and r.seq_per_s > 0

    def test_layout_too_big(self):
        with pytest.raises(ConfigError, match="devices"):
            measure_hybrid_throughput(
                "hanayo", make_fc(8), bert_64(),
                HybridLayout(tp=2, p=8, d=1), num_microbatches=4,
            )

    def test_hybrid_search_covers_factorizations(self):
        out = hybrid_search("hanayo", make_fc(8), bert_64(),
                            total_batch=16, waves=(2,))
        layouts = {(l.tp, l.p, l.d) for l, _, _ in out}
        assert (1, 8, 1) in layouts
        assert (2, 4, 1) in layouts
        assert all(l.devices == 8 for l, _, _ in out)

    def test_tp_relieves_memory(self):
        """TP shards weights: a config that OOMs at TP=1 fits at TP=2."""
        cluster = make_tacc(16)
        model = bert_64()
        no_tp = measure_hybrid_throughput(
            "gpipe", cluster, model, HybridLayout(1, 8, 2),
            num_microbatches=16, microbatch_size=4,
        )
        with_tp = measure_hybrid_throughput(
            "gpipe", cluster, model, HybridLayout(2, 8, 1),
            num_microbatches=16, microbatch_size=4,
        )
        assert no_tp.oom
        assert not with_tp.oom


class TestSimulateTraining:
    def test_total_time_scales_linearly(self):
        sched = build_schedule(make_config("dapple", 4, 4))
        costs = AbstractCosts(CostConfig(), 4, 4)
        out = simulate_training(sched, costs,
                                RunConfig(iterations=5), step_cost=1.0)
        assert out.total_time == pytest.approx(
            5 * (out.iteration.makespan + 1.0)
        )

    def test_negative_step_cost(self):
        sched = build_schedule(make_config("dapple", 4, 4))
        costs = AbstractCosts(CostConfig(), 4, 4)
        with pytest.raises(SchedulingError):
            simulate_training(sched, costs, step_cost=-1.0)


class TestChromeTrace:
    def _timeline(self):
        sched = build_schedule(make_config("hanayo", 4, 4, num_waves=1))
        return simulate(
            sched, AbstractCosts(CostConfig(), 4, sched.num_stages)
        ).timeline

    def test_event_counts(self):
        tl = self._timeline()
        trace = timeline_to_chrome_trace(tl)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2 * 4 * 8  # F+B x B x S

    def test_metadata_and_scaling(self):
        tl = self._timeline()
        trace = timeline_to_chrome_trace(tl, time_unit_us=10.0)
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert {"microbatch", "stage", "chunk", "replica"} <= set(
            span["args"]
        )
        assert span["dur"] == pytest.approx(10.0 * 0.5, rel=1e-6) or \
            span["dur"] > 0

    def test_round_trips_as_json(self, tmp_path):
        tl = self._timeline()
        path = tmp_path / "trace.json"
        write_chrome_trace(tl, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "M" for e in loaded["traceEvents"])


class TestCLI:
    def test_simulate_command(self, capsys):
        from repro.cli import main
        assert main(["simulate", "--scheme", "hanayo", "-p", "4",
                     "-b", "4", "-w", "2"]) == 0
        out = capsys.readouterr().out
        assert "aggregate bubble" in out

    def test_gallery_command(self, capsys):
        from repro.cli import main
        assert main(["gallery", "--scheme", "dapple", "-p", "4",
                     "-b", "4"]) == 0
        assert "P0" in capsys.readouterr().out

    def test_trace_command(self, tmp_path, capsys):
        from repro.cli import main
        out_file = tmp_path / "t.json"
        assert main(["trace", "-p", "2", "-b", "2",
                     "-o", str(out_file)]) == 0
        assert out_file.exists()

    def test_train_command(self, capsys):
        from repro.cli import main
        assert main(["train", "--scheme", "dapple", "-p", "2",
                     "-b", "2"]) == 0
        assert "max grad diff" in capsys.readouterr().out

    def test_config_error_is_clean(self, capsys):
        from repro.cli import main
        # chimera needs an even micro-batch count -> exit code 2, no traceback
        assert main(["simulate", "--scheme", "chimera", "-p", "4",
                     "-b", "3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_advise_command(self, capsys):
        from repro.cli import main
        assert main(["advise", "--cluster", "FC", "-n", "8",
                     "--batch", "8", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "seq/s" in out and "hanayo" in out
