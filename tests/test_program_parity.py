"""Program parity: simulator and engine execute the identical IR.

The single-execution-IR guarantee: for every schedule family, the
compiled :class:`~repro.actions.Program` is the *only* source of
execution order — the event-driven simulator replays it action for
action, and the NumPy engine's interpreters execute it action for
action over real threads and channels.  Both witnesses are compared
against the very same ``Program`` object, compiled once inside the
trainer, across the full {prefetch on/off, batching on/off} matrix.

Loss parity against :mod:`repro.engine.reference` rides along: if the
program is right, pipeline execution is a pure reordering of the
sequential computation.
"""

from __future__ import annotations

import pytest

from repro.config import CostConfig, RunConfig
from repro.engine import PipelineTrainer, make_batch, sequential_step
from repro.models import tiny_model
from repro.runtime import (
    AbstractCosts,
    execute_program,
    execute_program_reference,
    simulate_program,
)
from repro.schedules import build_schedule

from conftest import ALL_SCHEMES, make_config, scheme_id

P = B = 4


def spec_for(num_stages: int):
    return tiny_model(num_layers=max(num_stages, 4), hidden=8, heads=2,
                      seq_len=4, vocab=16)


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("batching", [True, False], ids=["batch", "nobatch"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestProgramParity:
    def test_sim_and_engine_execute_identical_program(
        self, param, prefetch, batching
    ):
        scheme, kw = param
        cfg = make_config(scheme, P, B, **kw)
        sched = build_schedule(cfg)
        spec = spec_for(sched.num_stages)
        trainer = PipelineTrainer(spec, cfg, seed=0, timeout_s=20,
                                  prefetch=prefetch,
                                  batch_cross_comm=batching)
        program = trainer.program

        # Simulator half: execute the very same Program object.
        costs = AbstractCosts(CostConfig(t_c=0.2), P, sched.num_stages)
        run = RunConfig(prefetch=prefetch, batch_cross_comm=batching)
        res = simulate_program(program, costs, run)
        assert res.action_order == program.actions

        # Engine half: thread workers walk the same lists.
        inputs, targets = make_batch(spec, B, seed=1)
        step = trainer.train_step(inputs, targets)
        assert trainer.action_trace == program.actions

        # And therefore: the simulator's event order IS the engine's
        # observed order, device for device, action for action.
        assert res.action_order == trainer.action_trace

        # Loss parity with the sequential reference.
        ref = sequential_step(spec, sched.num_stages, inputs, targets,
                              seed=0)
        assert step.loss == pytest.approx(ref.loss, rel=1e-9)

    def test_simulated_comm_matches_program_messages(
        self, param, prefetch, batching
    ):
        """Every wire message the simulator times is a program send."""
        scheme, kw = param
        cfg = make_config(scheme, P, B, **kw)
        sched = build_schedule(cfg)
        from repro.actions import compile_program

        program = compile_program(sched, prefetch=prefetch,
                                  batch_cross_comm=batching)
        costs = AbstractCosts(CostConfig(t_c=0.1), P, sched.num_stages)
        res = simulate_program(
            program, costs, RunConfig(prefetch=prefetch,
                                      batch_cross_comm=batching))
        assert len(res.comm) == program.message_count()
        assert {e.tag for e in res.comm} == set(program.tensor_bytes)


@pytest.mark.parametrize("contention", [False, True],
                         ids=["greedy", "timeord"])
@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("batching", [True, False], ids=["batch", "nobatch"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestLoweredCoreParity:
    """The lowered event core is *bit-identical* to the pre-refactor
    interpreter (runtime/events_ref.py) — every span, wait, transfer,
    watermark and collective, across both drivers."""

    def test_bit_identical_to_reference_core(self, param, prefetch,
                                             batching, contention):
        from repro.actions import compile_program
        from repro.actions.resources import StageResources

        scheme, kw = param
        cfg = make_config(scheme, P, B, **kw)
        sched = build_schedule(cfg)
        resources = StageResources(
            weight_bytes=(100.0,) * sched.num_stages,
            activation_bytes=(10.0,) * sched.num_stages,
        )
        program = compile_program(sched, prefetch=prefetch,
                                  batch_cross_comm=batching,
                                  resources=resources)
        costs = AbstractCosts(CostConfig(t_f=1.0, t_b=2.0, t_c=0.25), P,
                              sched.num_stages)
        run = RunConfig(prefetch=prefetch, batch_cross_comm=batching,
                        contention=contention)
        new = execute_program(program, costs, run)
        ref = execute_program_reference(program, costs, run)
        assert new.timeline.spans == ref.timeline.spans
        assert new.recv_wait == ref.recv_wait
        assert new.comm == ref.comm
        assert new.order == ref.order
        assert new.mem_peak == ref.mem_peak
        assert new.mem_events == ref.mem_events
        assert new.collectives == ref.collectives
        assert new.device_end == ref.device_end


class TestLoweredCoreParityWithCollectives:
    """Cluster programs with DP gradient rings + TP boundary
    all-reduces: the lowered core must reproduce the reference core's
    collective schedules exactly, contention included."""

    @pytest.mark.parametrize("contention", [False, True],
                             ids=["greedy", "timeord"])
    @pytest.mark.parametrize("scheme", ["gpipe", "hanayo", "chimera-wave"])
    def test_dp_tp_program_bit_identical(self, scheme, contention):
        from repro.analysis import (
            HybridLayout,
            build_hybrid_simulation,
            plan_cache,
        )
        from repro.cluster import make_fc
        from repro.models import tiny_model as tm

        plan_cache().clear()
        cell = build_hybrid_simulation(
            scheme, make_fc(8), tm(num_layers=16),
            HybridLayout(tp=2, p=2, d=2), num_microbatches=4,
        )
        run = RunConfig(contention=contention)
        new = execute_program(cell.program, cell.oracle, run)
        ref = execute_program_reference(cell.program, cell.oracle, run)
        assert new.timeline.spans == ref.timeline.spans
        assert new.recv_wait == ref.recv_wait
        assert new.comm == ref.comm
        assert new.mem_peak == ref.mem_peak
        assert new.mem_events == ref.mem_events
        assert new.collectives == ref.collectives
        assert new.device_end == ref.device_end


class TestEngineConsumesProgramOnly:
    def test_executor_module_has_no_schedule_dependency(self):
        """The acceptance criterion, pinned: the NumPy executor neither
        imports nor receives a Schedule — it consumes the Program IR."""
        import inspect

        import repro.engine.executor as executor_mod

        source = inspect.getsource(executor_mod)
        assert "schedules" not in source          # no schedule imports
        assert ".placement" not in source         # no placement lookups
        assert "device_of" not in source          # no comm re-derivation
        assert "replica_of" not in source
        assert not hasattr(executor_mod, "Schedule")

    def test_messages_sent_matches_program_message_count(self):
        cfg = make_config("chimera", 4, 4)
        sched = build_schedule(cfg)
        spec = spec_for(sched.num_stages)
        trainer = PipelineTrainer(spec, cfg, seed=3, timeout_s=20)
        inputs, targets = make_batch(spec, 4, seed=2)
        res = trainer.train_step(inputs, targets)
        assert res.messages_sent == trainer.program.message_count()
