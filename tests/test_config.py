"""PipelineConfig / CostConfig / RunConfig validation and derived shape."""

import pytest

from repro.config import KNOWN_SCHEMES, CostConfig, PipelineConfig, RunConfig
from repro.errors import ConfigError


class TestPipelineConfigValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheme"):
            PipelineConfig(scheme="bogus", num_devices=4, num_microbatches=4)

    @pytest.mark.parametrize("field", [
        "num_devices", "num_microbatches", "num_waves",
        "data_parallel", "microbatch_size",
    ])
    def test_nonpositive_rejected(self, field):
        kwargs = dict(scheme="gpipe", num_devices=4, num_microbatches=4)
        kwargs[field] = 0
        with pytest.raises(ConfigError, match=field):
            PipelineConfig(**kwargs)

    def test_float_counts_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(scheme="gpipe", num_devices=4.0,
                           num_microbatches=4)

    @pytest.mark.parametrize("scheme", ["chimera", "chimera-wave", "gems"])
    def test_bidirectional_needs_even_microbatches(self, scheme):
        with pytest.raises(ConfigError, match="even"):
            PipelineConfig(scheme=scheme, num_devices=4, num_microbatches=3)

    def test_chimera_needs_even_devices(self):
        with pytest.raises(ConfigError, match="even number of devices"):
            PipelineConfig(scheme="chimera", num_devices=3,
                           num_microbatches=4)

    def test_all_known_schemes_constructible(self):
        for scheme in KNOWN_SCHEMES:
            cfg = PipelineConfig(scheme=scheme, num_devices=4,
                                 num_microbatches=4)
            assert cfg.scheme == scheme


class TestDerivedShape:
    def test_hanayo_stage_count(self):
        cfg = PipelineConfig(scheme="hanayo", num_devices=4,
                             num_microbatches=4, num_waves=3)
        assert cfg.num_stages == 2 * 3 * 4
        assert cfg.chunks_per_device == 6

    def test_chimera_wave_stage_count(self):
        cfg = PipelineConfig(scheme="chimera-wave", num_devices=4,
                             num_microbatches=4)
        assert cfg.num_stages == 8
        assert cfg.chunks_per_device == 2

    def test_classic_schemes_one_stage_per_device(self):
        for scheme in ("gpipe", "dapple", "gems", "async-1f1b"):
            cfg = PipelineConfig(scheme=scheme, num_devices=6,
                                 num_microbatches=6)
            assert cfg.num_stages == 6

    def test_chimera_two_chunks(self):
        cfg = PipelineConfig(scheme="chimera", num_devices=4,
                             num_microbatches=4)
        assert cfg.num_stages == 4
        assert cfg.chunks_per_device == 2

    def test_interleaved_stage_count(self):
        cfg = PipelineConfig(scheme="interleaved", num_devices=4,
                             num_microbatches=4, num_waves=3)
        assert cfg.num_stages == 12

    def test_totals(self):
        cfg = PipelineConfig(scheme="hanayo", num_devices=4,
                             num_microbatches=8, data_parallel=2,
                             microbatch_size=3)
        assert cfg.total_devices == 8
        assert cfg.total_batch == 48

    def test_describe_mentions_waves_only_for_wave_schemes(self):
        hanayo = PipelineConfig(scheme="hanayo", num_devices=4,
                                num_microbatches=4, num_waves=2)
        gpipe = PipelineConfig(scheme="gpipe", num_devices=4,
                               num_microbatches=4)
        assert "W=2" in hanayo.describe()
        assert "W=" not in gpipe.describe()

    def test_with_scheme(self):
        cfg = PipelineConfig(scheme="gpipe", num_devices=4,
                             num_microbatches=4)
        other = cfg.with_scheme("dapple")
        assert other.scheme == "dapple"
        assert other.num_devices == 4


class TestCostConfig:
    def test_defaults_follow_paper(self):
        c = CostConfig()
        assert c.t_b == pytest.approx(2 * c.t_f)
        assert c.t_c == 0.0

    @pytest.mark.parametrize("kw", [
        {"t_f": 0}, {"t_b": 0}, {"t_c": -1}, {"t_f": -2},
    ])
    def test_invalid_costs(self, kw):
        with pytest.raises(ConfigError):
            CostConfig(**kw)

    def test_scaled(self):
        c = CostConfig(1.0, 2.0, 0.5).scaled(2.0)
        assert (c.t_f, c.t_b, c.t_c) == (2.0, 4.0, 1.0)


class TestRunConfig:
    def test_defaults(self):
        r = RunConfig()
        assert r.prefetch and r.batch_cross_comm and r.track_memory

    def test_bad_iterations(self):
        with pytest.raises(ConfigError):
            RunConfig(iterations=0)
