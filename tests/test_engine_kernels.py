"""Kernel and layer gradients checked against central finite differences."""

import numpy as np
import pytest

from repro.engine import tensor_ops as T
from repro.engine.layers import (
    Embedding,
    Gelu,
    Head,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    TransformerBlock,
)

RNG = np.random.default_rng(42)


def numerical_grad(f, x, eps=1e-6):
    """Central finite differences of a scalar function of an array."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestKernelGradients:
    def test_gelu(self):
        x = RNG.normal(size=(3, 4))
        proj = RNG.normal(size=(3, 4))
        y, cache = T.gelu_forward(x)
        dx = T.gelu_backward(proj, cache)
        num = numerical_grad(lambda: float((T.gelu_forward(x)[0] * proj).sum()), x)
        np.testing.assert_allclose(dx, num, rtol=1e-6, atol=1e-8)

    def test_softmax(self):
        x = RNG.normal(size=(2, 5))
        proj = RNG.normal(size=(2, 5))
        y, cache = T.softmax_forward(x)
        dx = T.softmax_backward(proj, cache)
        num = numerical_grad(
            lambda: float((T.softmax_forward(x)[0] * proj).sum()), x
        )
        np.testing.assert_allclose(dx, num, rtol=1e-6, atol=1e-8)

    def test_softmax_rows_sum_to_one(self):
        x = RNG.normal(size=(4, 7)) * 20
        y, _ = T.softmax_forward(x)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-12)

    def test_softmax_stable_under_shift(self):
        x = RNG.normal(size=(2, 5))
        a, _ = T.softmax_forward(x)
        b, _ = T.softmax_forward(x + 1000.0)
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_layernorm(self):
        x = RNG.normal(size=(2, 3, 6))
        gamma = RNG.normal(size=6)
        beta = RNG.normal(size=6)
        proj = RNG.normal(size=(2, 3, 6))
        y, cache = T.layernorm_forward(x, gamma, beta)
        dx, dgamma, dbeta = T.layernorm_backward(proj, cache)

        def loss():
            return float((T.layernorm_forward(x, gamma, beta)[0] * proj).sum())

        np.testing.assert_allclose(dx, numerical_grad(loss, x),
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(dgamma, numerical_grad(loss, gamma),
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(dbeta, numerical_grad(loss, beta),
                                   rtol=1e-5, atol=1e-7)

    def test_layernorm_normalises(self):
        x = RNG.normal(size=(5, 8)) * 3 + 7
        y, _ = T.layernorm_forward(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_linear(self):
        x = RNG.normal(size=(2, 3, 4))
        w = RNG.normal(size=(4, 5))
        b = RNG.normal(size=5)
        proj = RNG.normal(size=(2, 3, 5))
        y, cache = T.linear_forward(x, w, b)
        dx, dw, db = T.linear_backward(proj, cache, w)

        def loss():
            return float((T.linear_forward(x, w, b)[0] * proj).sum())

        np.testing.assert_allclose(dx, numerical_grad(loss, x), rtol=1e-6)
        np.testing.assert_allclose(dw, numerical_grad(loss, w), rtol=1e-6)
        np.testing.assert_allclose(db, numerical_grad(loss, b), rtol=1e-6)

    def test_cross_entropy_grad(self):
        logits = RNG.normal(size=(2, 3, 7))
        targets = RNG.integers(0, 7, size=(2, 3))
        _, cache = T.cross_entropy_forward(logits, targets)
        dlogits = T.cross_entropy_backward(cache)
        num = numerical_grad(
            lambda: T.cross_entropy_forward(logits, targets)[0], logits
        )
        np.testing.assert_allclose(dlogits, num, rtol=1e-5, atol=1e-8)

    def test_cross_entropy_scale(self):
        logits = RNG.normal(size=(2, 7))
        targets = RNG.integers(0, 7, size=2)
        _, cache = T.cross_entropy_forward(logits, targets)
        g1 = T.cross_entropy_backward(cache, scale=1.0)
        g4 = T.cross_entropy_backward(cache, scale=0.25)
        np.testing.assert_allclose(g4, g1 / 4)


class TestLayerGradients:
    def _check_layer(self, layer, x, rtol=1e-5):
        proj = RNG.normal(size=layer.forward(x)[0].shape)

        def loss():
            return float((layer.forward(x)[0] * proj).sum())

        y, ctx = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(proj, ctx)
        if dx is not None:
            np.testing.assert_allclose(dx, numerical_grad(loss, x),
                                       rtol=rtol, atol=1e-7)
        for name, p in layer.params.items():
            np.testing.assert_allclose(
                layer.grads[name], numerical_grad(loss, p),
                rtol=rtol, atol=1e-7, err_msg=name,
            )

    def test_linear_layer(self):
        self._check_layer(Linear(4, 3, RNG), RNG.normal(size=(2, 4)))

    def test_layernorm_layer(self):
        self._check_layer(LayerNorm(5), RNG.normal(size=(2, 3, 5)))

    def test_gelu_layer(self):
        self._check_layer(Gelu(), RNG.normal(size=(2, 3)))

    def test_attention_layer(self):
        self._check_layer(
            MultiHeadAttention(8, 2, RNG), RNG.normal(size=(2, 3, 8))
        )

    def test_causal_attention_layer(self):
        self._check_layer(
            MultiHeadAttention(8, 2, RNG, causal=True),
            RNG.normal(size=(1, 4, 8)),
        )

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadAttention(8, 2, RNG, causal=True)
        x = RNG.normal(size=(1, 4, 8))
        y1, _ = attn.forward(x)
        x2 = x.copy()
        x2[0, 3] += 10.0  # perturb the last position
        y2, _ = attn.forward(x2)
        np.testing.assert_allclose(y1[0, :3], y2[0, :3], rtol=1e-10)

    def test_transformer_block(self):
        self._check_layer(
            TransformerBlock(8, 2, 2, RNG), RNG.normal(size=(1, 3, 8)),
            rtol=1e-4,
        )

    def test_head(self):
        self._check_layer(Head(6, 11, RNG), RNG.normal(size=(2, 3, 6)))

    def test_embedding_grads(self):
        emb = Embedding(10, 6, 4, RNG)
        ids = RNG.integers(0, 10, size=(2, 4))
        proj = RNG.normal(size=(2, 4, 6))
        y, ctx = emb.forward(ids)
        emb.zero_grad()
        assert emb.backward(proj, ctx) is None

        def loss():
            return float((emb.forward(ids)[0] * proj).sum())

        np.testing.assert_allclose(
            emb.grads["tok"], numerical_grad(loss, emb.params["tok"]),
            rtol=1e-6, atol=1e-9,
        )
        np.testing.assert_allclose(
            emb.grads["pos"], numerical_grad(loss, emb.params["pos"]),
            rtol=1e-6, atol=1e-9,
        )

    def test_embedding_rejects_floats(self):
        from repro.errors import EngineError
        emb = Embedding(10, 6, 4, RNG)
        with pytest.raises(EngineError, match="integer"):
            emb.forward(RNG.normal(size=(2, 4)))

    def test_grad_accumulation_sums(self):
        lin = Linear(3, 2, RNG)
        x = RNG.normal(size=(2, 3))
        proj = RNG.normal(size=(2, 2))
        _, ctx = lin.forward(x)
        lin.zero_grad()
        lin.backward(proj, ctx)
        once = {k: v.copy() for k, v in lin.grads.items()}
        _, ctx = lin.forward(x)
        lin.backward(proj, ctx)
        for k in once:
            np.testing.assert_allclose(lin.grads[k], 2 * once[k])
