"""The serving layer: codec, micro-batcher, single-flight, HTTP daemon.

The load-bearing guarantees under test:

* **parity** — a served ``/advise`` answer is byte-identical to the
  batch path (``advise_answer`` + canonical serialization, what
  ``repro advise --json`` prints) for every query shape in the grid,
  including TP > 1 hybrid and capacity-pruned cells;
* **single-flight** — two identical concurrent queries execute once
  and both get the answer;
* **micro-batching** — concurrent submissions coalesce into one batch
  harness call, outcomes routed back in submission order;
* **streaming** — sweep answers arrive as chunked NDJSON with monotone
  progress frames and a final table equal to the engine's;
* **drain** — SIGTERM on a real ``repro serve`` subprocess answers
  everything in flight and exits 0;
* **thread safety** — the plan cache and result cache survive
  concurrent hammering with their counter invariants intact.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import profiling
from repro.errors import ConfigError
from repro.serve import AdviseQuery, SweepQuery, dumps_canonical, query_key
from repro.serve.batcher import MicroBatcher
from repro.serve.codec import CODEC_VERSION
from repro.serve.queries import advise_answer, format_advise, sweep_answer
from repro.serve.server import AdvisorServer
from repro.serve.singleflight import SingleFlight

# ---------------------------------------------------------------------------
# codec


class TestCodec:
    def test_canonical_bytes_are_stable(self):
        a = dumps_canonical({"b": 1, "a": [2, {"z": None, "y": "ü"}]})
        b = dumps_canonical({"a": [2, {"y": "ü", "z": None}], "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        assert b" " not in a

    def test_advise_normalization_merges_equivalent_queries(self):
        q1 = AdviseQuery.make("fc", "bert", 8, 16, dp=[2, 1, 2])
        q2 = AdviseQuery.make("FC", "bert", 8, 16, dp=(1, 2))
        assert q1 == q2
        assert q1.dp == (1, 2)
        assert query_key("advise", q1) == query_key("advise", q2)

    def test_round_trip_through_payload(self):
        q = AdviseQuery.make("TACC", "gpt", 16, 32, tp=2, dp=[1],
                             top=3, capacity_gib=40)
        assert AdviseQuery.from_payload(q.to_payload()) == q
        s = SweepQuery.make(["gpipe", "hanayo"], "PC", ["bert", "tiny"],
                            8, [8, 16], tp=[2, 1], layouts=[[4, 2]])
        assert SweepQuery.from_payload(s.to_payload()) == s
        assert s.tp == (1, 2)

    @pytest.mark.parametrize("payload, fragment", [
        ({}, "missing required field"),
        ({"cluster": "FC", "model": "bert", "devices": 8, "batch": 16,
          "bogus": 1}, "unknown query field"),
        ({"cluster": "XX", "model": "bert", "devices": 8, "batch": 16},
         "unknown cluster"),
        ({"cluster": "FC", "model": "resnet", "devices": 8, "batch": 16},
         "unknown model"),
        ({"cluster": "FC", "model": "bert", "devices": 8, "batch": True},
         "boolean"),
        ({"cluster": "FC", "model": "bert", "devices": 8, "batch": 16,
          "tp": 3}, "must divide"),
        ({"cluster": "FC", "model": "bert", "devices": 8, "batch": 16,
          "dp": [0]}, "positive integers"),
        ({"cluster": "FC", "model": "bert", "devices": 8, "batch": 16,
          "capacity_gib": -1}, "positive number"),
        ({"cluster": "FC", "model": "bert", "devices": "8", "batch": 16},
         "has type str"),
    ])
    def test_bad_advise_payloads_name_the_field(self, payload, fragment):
        with pytest.raises(ConfigError, match=fragment):
            AdviseQuery.from_payload(payload)

    def test_bad_sweep_payloads(self):
        good = {"schemes": ["gpipe"], "cluster": "FC",
                "models": ["bert"], "devices": 8, "batches": [16]}
        with pytest.raises(ConfigError, match="schemes"):
            SweepQuery.from_payload({**good, "schemes": ["nope"]})
        with pytest.raises(ConfigError, match="layout"):
            SweepQuery.from_payload({**good, "layouts": [[4]]})
        with pytest.raises(ConfigError, match="devices"):
            SweepQuery.from_payload({**good, "devices": 1})

    def test_distinct_queries_hash_apart(self):
        q1 = AdviseQuery.make("FC", "bert", 8, 16)
        q2 = AdviseQuery.make("FC", "bert", 8, 32)
        assert query_key("advise", q1) != query_key("advise", q2)
        assert q1.capacity_bytes is None
        assert AdviseQuery.make("FC", "bert", 8, 16,
                                capacity_gib=2).capacity_bytes == 2**31


# ---------------------------------------------------------------------------
# the micro-batcher


def _fake_outcomes(requests):
    # identity-preserving fake harness: outcome i names request i
    return [("out", id(r)) for r in requests]


class TestMicroBatcher:
    def test_concurrent_submissions_coalesce(self, monkeypatch):
        calls = []

        def record(requests):
            calls.append(len(requests))
            return _fake_outcomes(requests)

        monkeypatch.setattr("repro.serve.batcher.measure_throughput_batch",
                            record)
        batcher = MicroBatcher(window_s=0.25)
        results = {}

        def submit(name):
            reqs = [object(), object()]
            results[name] = (reqs, batcher.measure_flat(reqs))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        # all six lanes executed; the coalescing window merged the
        # concurrent submissions into (almost always one) shared call
        assert sum(calls) == 6
        assert len(calls) <= 2
        for reqs, outcomes in results.values():
            assert outcomes == [("out", id(r)) for r in reqs]

    def test_flat_and_hybrid_partition(self, monkeypatch):
        seen = {"flat": [], "hybrid": []}
        monkeypatch.setattr(
            "repro.serve.batcher.measure_throughput_batch",
            lambda rs: seen["flat"].append(len(rs)) or _fake_outcomes(rs))
        monkeypatch.setattr(
            "repro.serve.batcher.measure_hybrid_throughput_batch",
            lambda rs: seen["hybrid"].append(len(rs)) or _fake_outcomes(rs))
        batcher = MicroBatcher(window_s=0.2)
        out = {}
        t1 = threading.Thread(
            target=lambda: out.setdefault(
                "f", batcher.measure_flat([object()])))
        t2 = threading.Thread(
            target=lambda: out.setdefault(
                "h", batcher.measure_hybrid([object(), object()])))
        t1.start(); t2.start(); t1.join(); t2.join()
        batcher.close()
        assert sum(seen["flat"]) == 1 and sum(seen["hybrid"]) == 2
        assert len(out["f"]) == 1 and len(out["h"]) == 2

    def test_errors_propagate_to_every_waiter(self, monkeypatch):
        def boom(requests):
            raise RuntimeError("harness exploded")

        monkeypatch.setattr("repro.serve.batcher.measure_throughput_batch",
                            boom)
        batcher = MicroBatcher(window_s=0.05)
        errors = []

        def submit():
            try:
                batcher.measure_flat([object()])
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        assert errors == ["harness exploded"] * 2

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(window_s=0.01)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.measure_flat([object()])

    def test_uncoalesced_mode_runs_inline(self, monkeypatch):
        thread_ids = []
        monkeypatch.setattr(
            "repro.serve.batcher.measure_throughput_batch",
            lambda rs: thread_ids.append(threading.get_ident())
            or _fake_outcomes(rs))
        batcher = MicroBatcher(coalesce=False)
        batcher.measure_flat([object()])
        batcher.close()
        assert thread_ids == [threading.get_ident()]


# ---------------------------------------------------------------------------
# single-flight


class TestSingleFlight:
    def test_concurrent_identical_calls_execute_once(self):
        flights = SingleFlight()
        started, release = threading.Event(), threading.Event()
        calls = []

        def compute():
            calls.append(1)
            started.set()
            release.wait(timeout=10)
            return b"answer"

        results = []

        def run():
            results.append(flights.do("k", compute))

        leader = threading.Thread(target=run)
        leader.start()
        assert started.wait(timeout=10)
        follower = threading.Thread(target=run)
        follower.start()
        # wait until the follower has joined the flight — the leader is
        # gated on `release`, so the flight cannot complete early
        deadline = time.monotonic() + 10
        while flights.waiting("k") == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert flights.waiting("k") == 1
        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)
        assert len(calls) == 1
        assert sorted(deduped for _v, deduped in results) == [False, True]
        assert {value for value, _d in results} == {b"answer"}

    def test_sequential_calls_do_not_dedup(self):
        flights = SingleFlight()
        calls = []
        for _ in range(2):
            value, deduped = flights.do("k", lambda: calls.append(1))
            assert not deduped
        assert len(calls) == 2

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        started, release = threading.Event(), threading.Event()

        def explode():
            started.set()
            release.wait(timeout=10)
            raise ValueError("bad question")

        failures = []

        def run():
            try:
                flights.do("k", explode)
            except ValueError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=run) for _ in range(2)]
        threads[0].start()
        assert started.wait(timeout=10)
        threads[1].start()
        deadline = time.monotonic() + 10
        while flights.waiting("k") == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert failures == ["bad question"] * 2


# ---------------------------------------------------------------------------
# the HTTP server (in-process, real sockets on port 0)


@pytest.fixture(scope="module")
def server():
    srv = AdvisorServer(("127.0.0.1", 0))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.drain(timeout=30)
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()


def _post(url: str, payload, timeout: float = 300.0):
    request = urllib.request.Request(
        url, data=dumps_canonical(payload),
        headers={"Content-Type": "application/json"}, method="POST")
    return urllib.request.urlopen(request, timeout=timeout)


#: the served≡batch parity grid: every query shape the issue calls out
#: — flat, restricted DP, TP > 1 hybrid, and capacity-pruned cells
PARITY_QUERIES = [
    pytest.param(dict(cluster="FC", model="bert", devices=8, batch=8,
                      top=5), id="flat"),
    pytest.param(dict(cluster="PC", model="bert", devices=4, batch=8,
                      dp=[1]), id="dp-restricted"),
    pytest.param(dict(cluster="TACC", model="bert", devices=8, batch=16,
                      tp=2), id="hybrid-tp2"),
    pytest.param(dict(cluster="FC", model="bert", devices=8, batch=8,
                      capacity_gib=0.05), id="capacity-pruned"),
]


class TestServedParity:
    @pytest.mark.parametrize("kwargs", PARITY_QUERIES)
    def test_served_advise_equals_batch_bytes(self, server, kwargs):
        query = AdviseQuery.make(**kwargs)
        with _post(server.url + "/advise", query.to_payload()) as resp:
            served = resp.read()
        assert served == dumps_canonical(advise_answer(query))
        payload = json.loads(served)
        assert payload["kind"] == "advise"
        assert payload["version"] == CODEC_VERSION
        assert payload["rows"], "parity grid queries must have answers"

    def test_capacity_pruning_actually_prunes(self, server):
        query = AdviseQuery.make("FC", "bert", 8, 8, capacity_gib=0.05)
        with _post(server.url + "/advise", query.to_payload()) as resp:
            payload = json.loads(resp.read())
        assert all(row["oom"] for row in payload["rows"])

    def test_served_answer_matches_cli_json(self, server):
        query = AdviseQuery.make("FC", "bert", 8, 8, top=5)
        with _post(server.url + "/advise", query.to_payload()) as resp:
            served = resp.read()
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "advise", "--cluster", "FC",
             "-n", "8", "--batch", "8", "--top", "5", "--json"],
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.getcwd(), "src")},
            capture_output=True, check=True)
        assert cli.stdout == served

    def test_format_advise_renders_the_cli_table(self):
        query = AdviseQuery.make("FC", "bert", 8, 8, top=5)
        text = format_advise(advise_answer(query))
        assert "seq/s" in text and "hanayo" in text
        assert "bert on cluster FC (8 devices), batch 8" in text

    def test_bad_query_is_a_400_naming_the_field(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server.url + "/advise", {"cluster": "FC"})
        assert info.value.code == 400
        assert "model" in json.loads(info.value.read())["error"]

    def test_unknown_path_is_a_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server.url + "/nope", {})
        assert info.value.code == 404

    def test_healthz_and_stats(self, server):
        with urllib.request.urlopen(server.url + "/healthz",
                                    timeout=10) as resp:
            health = json.loads(resp.read())
        assert health == {"ok": True, "draining": False}
        with urllib.request.urlopen(server.url + "/stats",
                                    timeout=10) as resp:
            stats = json.loads(resp.read())
        assert stats["serve"]["queries"] >= 1
        assert stats["plan_cache"]["entries"] >= 1
        assert "occupancy" in stats["batching"]


class TestServedSweep:
    def test_stream_frames_and_final_table_parity(self, server):
        query = SweepQuery.make(["gpipe", "hanayo"], "TACC", ["bert"],
                                8, [16])
        frames = []
        with _post(server.url + "/sweep", query.to_payload()) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            for line in resp:
                frames.append(json.loads(line))
        progress = [f for f in frames if f["kind"] == "progress"]
        assert progress, "sweeps must stream progress"
        dones = [f["done"] for f in progress]
        assert dones == sorted(dones)
        assert progress[-1]["done"] == progress[-1]["total"]
        final = frames[-1]
        assert final["kind"] == "sweep"
        assert dumps_canonical(final) == dumps_canonical(
            sweep_answer(query))

    def test_served_sweep_equals_engine_table(self, server):
        from repro.sweep.engine import run_sweep
        from repro.serve.queries import sweep_spec

        query = SweepQuery.make(["hanayo"], "TACC", ["bert"], 8, [16])
        with _post(server.url + "/sweep", query.to_payload()) as resp:
            final = json.loads(resp.read().splitlines()[-1])
        table = run_sweep(sweep_spec(query))
        assert final["result"] == json.loads(table.to_json())


class TestSingleFlightOverHTTP:
    def test_identical_concurrent_queries_execute_once(self, server,
                                                       monkeypatch):
        import repro.serve.server as server_mod

        real = server_mod.advise_answer
        calls = []
        started, release = threading.Event(), threading.Event()

        def gated(query, **kwargs):
            calls.append(1)
            started.set()
            release.wait(timeout=30)
            return real(query, **kwargs)

        monkeypatch.setattr(server_mod, "advise_answer", gated)
        before = profiling.serve_stats().dedup_hits
        query = AdviseQuery.make("FC", "bert", 8, 8, top=4)
        answers = []

        def ask():
            with _post(server.url + "/advise", query.to_payload()) as r:
                answers.append(r.read())

        key = query_key("advise", query)
        leader = threading.Thread(target=ask)
        leader.start()
        assert started.wait(timeout=30)
        follower = threading.Thread(target=ask)
        follower.start()
        # park until the follower joins the in-flight group; the leader
        # is gated on `release`, so the flight cannot complete early
        deadline = time.monotonic() + 30
        while (server.flights.waiting(key) == 0
               and time.monotonic() < deadline):
            time.sleep(0.002)
        assert server.flights.waiting(key) == 1
        release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)
        assert len(calls) == 1, "one execution serves both queries"
        assert len(answers) == 2
        assert answers[0] == answers[1]
        assert profiling.serve_stats().dedup_hits == before + 1


class TestDrain:
    def test_draining_server_rejects_with_503(self):
        srv = AdvisorServer(("127.0.0.1", 0))
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            assert srv.drain(timeout=10)
            query = AdviseQuery.make("FC", "bert", 8, 8)
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(srv.url + "/advise", query.to_payload(), timeout=10)
            assert info.value.code == 503
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.server_close()

    def test_sigterm_drains_the_daemon(self, tmp_path):
        env = {**os.environ,
               "PYTHONPATH": os.path.join(os.getcwd(), "src")}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            ready = proc.stdout.readline()
            match = re.match(r"serving on (http://[\d.]+:\d+)", ready)
            assert match, f"no ready line, got {ready!r}"
            url = match.group(1)
            query = AdviseQuery.make("FC", "bert", 8, 8, top=3)
            with _post(url + "/advise", query.to_payload(),
                       timeout=120) as resp:
                assert json.loads(resp.read())["rows"]
            proc.send_signal(signal.SIGTERM)
            stdout, _stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained" in stdout
            assert "serve: 1 queries" in stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


# ---------------------------------------------------------------------------
# cache thread safety (satellite of the serving work: both caches are
# now hit from many handler threads at once)


class TestCacheThreadSafety:
    def test_plan_cache_concurrent_hammering(self):
        from repro.analysis.plans import PlanCache

        cache = PlanCache(maxsize=16)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(300):
                    key = f"k{(seed * 7 + i) % 48}"
                    if cache.get(key) is None:
                        cache.put(key, object())
            except Exception as exc:  # noqa: BLE001 - fail the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        # every get bumped exactly one counter...
        assert cache.hits + cache.misses == 8 * 300
        # ...and the insertion ledger balances at quiescence
        assert cache.insertions == len(cache) + cache.evictions

    def test_bound_plan_retimes_once_under_contention(self):
        from repro.analysis.plans import PlanEntry

        class FakePlan:
            def __init__(self):
                self.retimes = 0

            def retime(self, oracle):
                self.retimes += 1
                time.sleep(0.005)  # widen the race window
                return ("bound", oracle)

        plan = FakePlan()
        entry = PlanEntry(schedule=None, program=None, plan=plan)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                entry.bound_plan("oracle-key", lambda: "oracle")))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert plan.retimes == 1
        assert results == [("bound", "oracle")] * 8

    def test_result_cache_concurrent_readers_and_writers(self, tmp_path):
        from repro.sweep.cache import ResultCache

        cache = ResultCache(tmp_path)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(60):
                    key = "a" * 60 + f"{(seed + i) % 10:04x}"
                    record = cache.get(key)
                    if record is not None:
                        assert record["value"] == key
                    cache.put(key, {"value": key})
            except Exception as exc:  # noqa: BLE001 - fail the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits + cache.misses == 6 * 60
        assert cache.writes == 6 * 60
        # every record is intact (no torn writes)
        for s in range(10):
            key = "a" * 60 + f"{s:04x}"
            assert cache.get(key) == {"value": key}
        # no temp files left behind
        assert not [p for p in os.listdir(tmp_path)
                    if p.startswith(".tmp-")]
