"""ScheduleOp / TimedOp / Timeline primitives."""

import pytest

from repro.types import OpKind, ScheduleOp, TimedOp, Timeline, fmt_bytes


def op(kind=OpKind.FORWARD, m=0, s=0, d=0, chunk=0):
    return ScheduleOp(device=d, kind=kind, microbatch=m, stage=s, chunk=chunk)


class TestScheduleOp:
    def test_key_ignores_placement(self):
        a = op(d=0, chunk=0)
        b = a.with_device(3, chunk=1)
        assert a.key == b.key
        assert b.device == 3 and b.chunk == 1

    def test_str(self):
        assert str(op(OpKind.BACKWARD, m=2, s=5, d=1)) == "B(m2,s5)@d1"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            op().device = 5

    def test_opkind_short(self):
        assert OpKind.FORWARD.short == "F"
        assert OpKind.BACKWARD.short == "B"


class TestTimedOp:
    def test_duration(self):
        t = TimedOp(op=op(), start=1.0, end=3.5)
        assert t.duration == pytest.approx(2.5)

    def test_overlaps(self):
        a = TimedOp(op=op(), start=0.0, end=2.0)
        b = TimedOp(op=op(m=1), start=1.5, end=3.0)
        c = TimedOp(op=op(m=2), start=2.0, end=3.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching intervals do not overlap


class TestTimeline:
    def _timeline(self):
        tl = Timeline()
        tl.add(TimedOp(op=op(d=0), start=0.0, end=1.0))
        tl.add(TimedOp(op=op(d=0, m=1), start=2.0, end=4.0))
        tl.add(TimedOp(op=op(d=1), start=1.0, end=2.0))
        return tl

    def test_makespan_and_start(self):
        tl = self._timeline()
        assert tl.makespan == 4.0
        assert tl.start_time == 0.0

    def test_busy_time(self):
        tl = self._timeline()
        assert tl.busy_time(0) == pytest.approx(3.0)
        assert tl.busy_time(1) == pytest.approx(1.0)
        assert tl.busy_time(9) == 0.0

    def test_devices_sorted(self):
        assert self._timeline().devices == [0, 1]

    def test_empty(self):
        tl = Timeline()
        assert tl.makespan == 0.0
        assert tl.start_time == 0.0
        assert list(tl.iter_ops()) == []


class TestFmtBytes:
    @pytest.mark.parametrize("n,expect", [
        (512, "512.00 B"),
        (2048, "2.00 KiB"),
        (3 * 2**30, "3.00 GiB"),
    ])
    def test_units(self, n, expect):
        assert fmt_bytes(n) == expect


class TestTimelineSerialization:
    def _timeline(self):
        from repro.config import CostConfig
        from repro.runtime import AbstractCosts, simulate
        from repro.schedules import build_schedule
        from conftest import make_config

        sched = build_schedule(make_config("hanayo", 4, 4, num_waves=1))
        return simulate(
            sched, AbstractCosts(CostConfig(), 4, sched.num_stages)
        ).timeline

    def test_round_trip(self):
        import json

        tl = self._timeline()
        blob = json.dumps(tl.to_dict())
        back = Timeline.from_dict(json.loads(blob))
        assert back.makespan == tl.makespan
        assert back.devices == tl.devices
        for d in tl.devices:
            a = [(t.op.key, t.start, t.end) for t in tl.device_spans(d)]
            b = [(t.op.key, t.start, t.end) for t in back.device_spans(d)]
            assert a == b

    def test_metrics_survive_round_trip(self):
        from repro.runtime import bubble_stats

        tl = self._timeline()
        back = Timeline.from_dict(tl.to_dict())
        assert (bubble_stats(back).bubble_ratio
                == bubble_stats(tl).bubble_ratio)
