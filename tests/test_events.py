"""Event core: contention, batched-P2P sharing, comm logs, sim traces."""

import pytest

from repro.actions import compile_program
from repro.cluster import CommModel
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import (
    AbstractCosts,
    ConcreteCosts,
    execute_program,
    simulate,
)
from repro.schedules import build_schedule
from repro.viz import sim_to_chrome_trace

from conftest import make_config


def sim(scheme, p=4, b=4, t_c=0.0, **run_kw):
    kw = {}
    if scheme in ("hanayo", "interleaved"):
        kw["num_waves"] = run_kw.pop("num_waves", 1)
    cfg = make_config(scheme, p, b, **kw)
    sched = build_schedule(cfg, CostConfig(t_c=t_c))
    oracle = AbstractCosts(CostConfig(t_c=t_c), p, sched.num_stages)
    return simulate(sched, oracle, RunConfig(**run_kw))


class TestCommLog:
    def test_every_send_becomes_one_transfer(self):
        res = sim("hanayo", t_c=0.1)
        assert len(res.comm) == res.program.message_count()

    def test_transfers_start_at_post_without_contention(self):
        res = sim("dapple", t_c=0.3)
        for e in res.comm:
            assert e.start == e.post
            assert e.end == pytest.approx(e.start + 0.3)

    def test_posting_order_is_monotone(self):
        res = sim("chimera", t_c=0.2)
        posts = [e.post for e in res.comm]
        assert posts == sorted(posts)

    def test_tensor_sizes_attached(self):
        sc = stage_costs(bert_64(), 4, A100_40G)
        oracle = ConcreteCosts(sc, CommModel.uniform(1e-4))
        sched = build_schedule(make_config("dapple", 4, 4))
        res = simulate(sched, oracle)
        assert all(e.nbytes == sc.boundary_bytes for e in res.comm)


class TestContention:
    def test_shared_pair_serializes(self):
        """gpipe P=2 pushes consecutive activations over one link; with
        contention they must queue instead of overlapping."""
        free = sim("gpipe", p=2, b=4, t_c=2.0)
        contended = sim("gpipe", p=2, b=4, t_c=2.0, contention=True)
        assert contended.makespan > free.makespan
        for pair in {(e.src, e.dst) for e in contended.comm}:
            spans = sorted((e.start, e.end) for e in contended.comm
                           if (e.src, e.dst) == pair)
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12

    def test_contention_never_speeds_up(self):
        for scheme in ("gpipe", "dapple", "hanayo", "chimera"):
            free = sim(scheme, t_c=0.4)
            contended = sim(scheme, t_c=0.4, contention=True)
            assert contended.makespan >= free.makespan - 1e-9

    def test_batched_sharing_waives_follower_latency(self):
        """Under contention on a real topology, opposing transfers
        posted as one batched group pay the launch latency once."""
        sched = build_schedule(make_config("hanayo", 4, 4))
        sc = stage_costs(bert_64(), sched.num_stages, A100_40G)
        from repro.cluster import make_fc
        oracle = ConcreteCosts(sc, CommModel.from_cluster(make_fc(4)))
        batched = simulate(sched, oracle, RunConfig(contention=True,
                                                    batch_cross_comm=True))
        unbatched = simulate(sched, oracle, RunConfig(contention=True,
                                                      batch_cross_comm=False))
        wire_time = lambda r: sum(e.duration for e in r.comm)
        assert any(e.batched for e in batched.comm)
        assert not any(e.batched for e in unbatched.comm)
        assert wire_time(batched) < wire_time(unbatched)


class TestProgramExecution:
    def test_flush_and_step_execute_at_zero_cost(self):
        sched = build_schedule(make_config("dapple", 4, 4))
        program = compile_program(sched, add_step=True)
        oracle = AbstractCosts(CostConfig(), 4, sched.num_stages)
        res = execute_program(program, oracle)
        assert all(len(res.order[d]) == len(program.actions[d])
                   for d in program.actions)
        plain = simulate(sched, oracle)
        assert res.makespan == pytest.approx(plain.makespan)

    def test_dependency_edges_cover_every_compute(self):
        for scheme in ("gpipe", "chimera", "hanayo", "async-1f1b"):
            cfg = make_config(scheme, 4, 4)
            sched = build_schedule(cfg)
            program = compile_program(sched)
            assert set(program.deps) == set(program.ops)
            remote_tags = {d.tag for edges in program.deps.values()
                           for d in edges if d.remote}
            assert remote_tags == set(program.tensor_bytes)

    def test_program_describe(self):
        program = compile_program(build_schedule(make_config("gpipe", 2, 2)))
        text = program.describe()
        assert "P=2" in text and "messages=" in text


class TestSimTraceExport:
    def test_comm_lanes_in_trace(self):
        res = sim("hanayo", t_c=0.2)
        trace = sim_to_chrome_trace(res)
        comm = [e for e in trace["traceEvents"] if e.get("cat") == "comm"]
        assert len(comm) == len(res.comm)
        assert any(e["pid"] == 1 for e in comm)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["name"] == "thread_name" and e["pid"] == 1}
        assert any("link d0" in n for n in names)

    def test_no_comm_no_network_process(self):
        res = sim("gpipe", p=1, b=2)
        trace = sim_to_chrome_trace(res)
        assert not any(e.get("pid") == 1 for e in trace["traceEvents"])
