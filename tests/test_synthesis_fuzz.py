"""Differential fuzz: legality verdicts pinned against real replays.

For every schedule family, a seeded random walk applies mutation
operators (plus adversarial random transpositions) to the program's own
ordering and, for each candidate:

* **legal** (no violations) — the rebuilt program must replay to
  completion on BOTH event cores with bit-identical results across all
  eight ``EventResult`` fields (spans, recv_wait, comm, order,
  mem_peak, mem_events, collectives, device_end);
* **deadlock-classified** (``dep-inversion`` / ``cross-device-cycle``)
  — both cores must raise :class:`SchedulingError`, never hang;
* **capacity-classified** (no deadlock kinds) — the capacity-armed
  replay must raise :class:`OutOfMemoryError`;
* **semantic-only** (``collective-order``) — the replay still completes
  (collectives never block), which is exactly why those kinds are
  excluded from :data:`repro.synthesis.DEADLOCK_KINDS`.

Zero tolerance in both directions: a legal verdict that deadlocks or a
deadlock verdict that replays is a checker bug, and either fails here.

``REPRO_SYNTH_FUZZ_N`` scales the per-family walk length (default 30 →
270 candidates across the 9 families; CI runs 120 → 1080).
"""

from __future__ import annotations

import os
from random import Random

import pytest

from repro.actions import compile_program
from repro.actions.resources import StageResources
from repro.config import CostConfig, RunConfig
from repro.errors import OutOfMemoryError, SchedulingError, SynthesisError
from repro.runtime import (
    AbstractCosts,
    execute_program,
    execute_program_reference,
)
from repro.schedules import build_schedule
from repro.synthesis import (
    DEADLOCK_KINDS,
    LegalityChecker,
    OOM_KINDS,
    ScheduleOrdering,
    propose_mutation,
)
from repro.actions.reorder import Reorderer
from repro.actions.ops import CollectiveOp

from conftest import ALL_SCHEMES, make_config, scheme_id

N = int(os.environ.get("REPRO_SYNTH_FUZZ_N", "30"))
COMM = CostConfig(t_f=1.0, t_b=2.0, t_c=0.25)


def assert_bit_identical(new, ref):
    assert new.timeline.spans == ref.timeline.spans
    assert new.recv_wait == ref.recv_wait
    assert new.comm == ref.comm
    assert new.order == ref.order
    assert new.mem_peak == ref.mem_peak
    assert new.mem_events == ref.mem_events
    assert new.collectives == ref.collectives
    assert new.device_end == ref.device_end


def random_transposition(rng: Random,
                         ordering: ScheduleOrdering) -> ScheduleOrdering:
    """Swap two random slots of a random device — usually illegal."""
    device = ordering.devices[rng.randrange(len(ordering.devices))]
    entries = list(ordering.entries(device))
    i = rng.randrange(len(entries))
    j = rng.randrange(len(entries))
    entries[i], entries[j] = entries[j], entries[i]
    return ordering.replace_entries(device, entries)


def run_walk(program, oracle, seed, steps, run=None, capacity_bytes=None,
             contention_every=5):
    """The shared fuzz loop; returns (legal, deadlocks, ooms, semantic)."""
    run = run or RunConfig()
    rng = Random(seed)
    checker = LegalityChecker(program, capacity_bytes)
    reorderer = Reorderer(program)
    ordering = ScheduleOrdering.from_program(program)
    counts = {"legal": 0, "deadlock": 0, "oom": 0, "semantic": 0}
    for step in range(steps):
        if step % 3 == 2:
            candidate = random_transposition(rng, ordering)
        else:
            try:
                _, candidate = propose_mutation(rng, program, ordering,
                                                max_shift=4)
            except SynthesisError:
                continue
        violations = checker.check(candidate)
        kinds = {v.kind for v in violations}
        # mutations and transpositions only move entries: never
        # structural
        assert not kinds & {"missing-op", "extra-op", "device-set"}
        rebuilt = reorderer.reorder(candidate.to_orders())
        if kinds & DEADLOCK_KINDS:
            counts["deadlock"] += 1
            # a candidate can be deadlocked AND over capacity; replay
            # order decides which error fires first
            expected = (SchedulingError, OutOfMemoryError) \
                if kinds & OOM_KINDS else SchedulingError
            with pytest.raises(expected):
                execute_program(rebuilt, oracle, run,
                                capacity_bytes=capacity_bytes)
            with pytest.raises(expected):
                execute_program_reference(rebuilt, oracle, run,
                                          capacity_bytes=capacity_bytes)
            continue
        if kinds & OOM_KINDS:
            counts["oom"] += 1
            with pytest.raises(OutOfMemoryError):
                execute_program(rebuilt, oracle, run,
                                capacity_bytes=capacity_bytes)
            with pytest.raises(OutOfMemoryError):
                execute_program_reference(rebuilt, oracle, run,
                                          capacity_bytes=capacity_bytes)
            continue
        # legal or semantic-only: must replay to completion on both
        # cores, bit-identically
        if contention_every and counts["legal"] % contention_every == 0:
            active = RunConfig(prefetch=run.prefetch,
                               batch_cross_comm=run.batch_cross_comm,
                               contention=True)
        else:
            active = run
        new = execute_program(rebuilt, oracle, active,
                              capacity_bytes=capacity_bytes)
        ref = execute_program_reference(rebuilt, oracle, active,
                                        capacity_bytes=capacity_bytes)
        assert_bit_identical(new, ref)
        if kinds:
            assert kinds <= {"collective-order"}
            counts["semantic"] += 1
            continue  # keep walking from a fully legal point only
        counts["legal"] += 1
        ordering = candidate
    return counts


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestFuzzFamilies:
    def test_verdicts_match_replay(self, param, prefetch):
        scheme, kw = param
        cfg = make_config(scheme, 4, 4, **kw)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 4, sched.num_stages)
        program = compile_program(sched, prefetch=prefetch,
                                  batch_cross_comm=prefetch)
        run = RunConfig(prefetch=prefetch, batch_cross_comm=prefetch)
        # split the budget across the two prefetch modes so the default
        # tier-1 run stays fast while CI (N=120) covers 9 * 2 * 60;
        # NB: not hash() — that is per-process randomized
        seed = (sum(map(ord, scheme)) * 8
                + kw.get("num_waves", 1) * 2 + int(prefetch))
        counts = run_walk(program, oracle, seed=seed,
                          steps=max(N // 2, 5), run=run)
        assert counts["legal"] > 0
        assert counts["deadlock"] > 0  # transpositions do break deps


class TestFuzzWithCapacity:
    """Resource-annotated walks: the capacity verdict is exact."""

    @pytest.mark.parametrize("param",
                             [("dapple", {}), ("async-1f1b", {}),
                              ("hanayo", {"num_waves": 1})],
                             ids=scheme_id)
    def test_capacity_verdict_matches_oom(self, param):
        from repro.types import OpKind

        scheme, kw = param
        # B > P so the 1F1B-like start's warmup peak sits well under
        # the all-forwards-live maximum: the start is legal under the
        # cap, while walk stretches that hoist extra forwards overflow
        cfg = make_config(scheme, 4, 8, **kw)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 4, sched.num_stages)
        stages = sched.num_stages
        res = StageResources(weight_bytes=(0.0,) * stages,
                             activation_bytes=(100.0,) * stages)
        program = compile_program(
            sched, boundary_bytes=lambda tag: 0.0, resources=res)
        ordering = ScheduleOrdering.from_program(program)
        start_peak = 0.0
        for d in ordering.devices:
            level = 0.0
            for e in ordering.entries(d):
                if isinstance(e, CollectiveOp):
                    continue
                level += 100.0 if e[0] is OpKind.FORWARD else -100.0
                start_peak = max(start_peak, level)
        # headroom below one activation: hoisting any extra forward
        # past the start's warmup peak overflows
        capacity = int(start_peak + 50)
        counts = run_walk(program, oracle, seed=7, steps=N,
                          capacity_bytes=capacity)
        assert counts["legal"] > 0
        assert counts["oom"] > 0


class TestFuzzWithCollectives:
    def test_semantic_violations_still_replay(self):
        from repro.actions import with_gradient_sync

        cfg = make_config("dapple", 4, 4)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 4, sched.num_stages)
        program = compile_program(sched)
        annotated = with_gradient_sync(
            program, {d: (d, d + 4) for d in range(4)},
            {s: 64.0 for s in range(4)})
        counts = run_walk(annotated, oracle, seed=11, steps=N)
        assert counts["legal"] > 0
        # moving grad-sync buckets around produces semantic-only cases
        assert counts["semantic"] > 0


def test_total_budget_note():
    """The default budget keeps the issue's floor: ≥200 mutated
    schedules across the family matrix (9 families x 2 prefetch modes
    x N/2 plus the capacity and collective walks)."""
    assert 9 * 2 * max(N // 2, 5) + 3 * N + N >= 200
