"""Wider-pipeline engine equivalence and large-scale structural checks."""

import numpy as np
import pytest

from repro.config import CostConfig, PipelineConfig
from repro.engine import PipelineTrainer, make_batch, sequential_step
from repro.models import tiny_model
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import build_schedule, validate

from conftest import make_config


def assert_grads_close(got, want, rtol=1e-9):
    assert set(got) == set(want)
    for name in want:
        np.testing.assert_allclose(got[name], want[name], rtol=rtol,
                                   atol=1e-12, err_msg=name)


@pytest.mark.parametrize("scheme,kw", [
    ("gpipe", {}),
    ("dapple", {}),
    ("interleaved", {"num_waves": 2}),
    ("gems", {}),
    ("chimera", {}),
    ("chimera-wave", {}),
    ("hanayo", {"num_waves": 1}),
    ("hanayo", {"num_waves": 2}),
])
class TestWidePipelineEquivalence:
    """Every scheme at P=4 with B=8 micro-batches on the real engine."""

    def test_matches_sequential(self, scheme, kw):
        w = kw.get("num_waves", 1)
        spec = tiny_model(num_layers=max(8, 2 * 4 * w), hidden=8, heads=2,
                          seq_len=4, vocab=16)
        cfg = make_config(scheme, p=4, b=8, **kw)
        trainer = PipelineTrainer(spec, cfg, seed=5, timeout_s=30)
        inputs, targets = make_batch(spec, 8, seed=6)
        res = trainer.train_step(inputs, targets)
        ref = sequential_step(spec, trainer.schedule.num_stages,
                              inputs, targets, seed=5)
        assert res.loss == pytest.approx(ref.loss, rel=1e-12)
        assert_grads_close(res.grads, ref.grads)


class TestPaperScaleStructural:
    """The evaluation's largest shapes stay valid and well-ordered."""

    @pytest.mark.parametrize("p,b,w", [(16, 16, 2), (32, 32, 1),
                                       (32, 32, 2)])
    def test_hanayo_at_32_devices(self, p, b, w):
        cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                             num_microbatches=b, num_waves=w)
        sched = build_schedule(cfg)
        validate(sched)
        res = simulate(sched, AbstractCosts(CostConfig(), p,
                                            sched.num_stages))
        ratio = bubble_stats(res.timeline).bubble_ratio
        assert 0.0 < ratio < 0.5

    def test_ordering_holds_at_32(self):
        ratios = {}
        for scheme, w in [("gpipe", 1), ("chimera", 1), ("hanayo", 2),
                          ("hanayo", 4)]:
            cfg = PipelineConfig(scheme=scheme, num_devices=32,
                                 num_microbatches=32, num_waves=w)
            sched = build_schedule(cfg)
            res = simulate(sched, AbstractCosts(CostConfig(), 32,
                                                sched.num_stages))
            ratios[(scheme, w)] = bubble_stats(res.timeline).bubble_ratio
        assert (ratios[("gpipe", 1)] > ratios[("chimera", 1)]
                > ratios[("hanayo", 2)] > ratios[("hanayo", 4)])

    def test_deep_chimera_transform(self):
        from repro.schedules import chimera_schedule, chimera_to_wave
        chimera = chimera_schedule(make_config("chimera", 16, 16))
        w0, w1 = chimera_to_wave(chimera)
        validate(w0)
        validate(w1)
        for d in range(8):
            assert ([(o.kind, o.microbatch, o.stage)
                     for o in w0.device_ops[d]]
                    == [(o.kind, o.microbatch, o.stage)
                        for o in w1.device_ops[d]])

    def test_many_microbatches_amortize_bubbles(self):
        """B → large drives the bubble ratio down for every scheme."""
        for scheme, w in [("dapple", 1), ("hanayo", 2)]:
            small = self._ratio(scheme, w, 8)
            large = self._ratio(scheme, w, 48)
            assert large < small

    @staticmethod
    def _ratio(scheme, w, b):
        cfg = PipelineConfig(scheme=scheme, num_devices=8,
                             num_microbatches=b, num_waves=w)
        sched = build_schedule(cfg)
        res = simulate(sched, AbstractCosts(CostConfig(), 8,
                                            sched.num_stages))
        return bubble_stats(res.timeline).bubble_ratio


class TestEngineDeterminism:
    def test_two_runs_bitwise_identical(self):
        """Thread scheduling must not leak into results (the numeric
        dataflow is fully determined by the schedule)."""
        spec = tiny_model(num_layers=4, hidden=8, heads=2, seq_len=4,
                          vocab=16)
        cfg = make_config("hanayo", 2, 4, num_waves=1)
        inputs, targets = make_batch(spec, 4, seed=0)
        runs = []
        for _ in range(2):
            trainer = PipelineTrainer(spec, cfg, seed=9)
            runs.append(trainer.train_step(inputs, targets))
        assert runs[0].loss == runs[1].loss
        for name in runs[0].grads:
            np.testing.assert_array_equal(runs[0].grads[name],
                                          runs[1].grads[name])
