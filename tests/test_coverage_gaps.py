"""Final coverage pass: smaller behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro.analysis import activation_units, gems_bubble_ratio
from repro.cluster import CommModel, Transfer, make_fc
from repro.config import CostConfig, PipelineConfig
from repro.engine import (
    DataParallelPipelines,
    build_stages,
    make_batch,
    sequential_step_on,
)
from repro.errors import ConfigError, EngineError
from repro.models import tiny_model
from repro.runtime import AbstractCosts, kind_time, simulate
from repro.schedules import build_schedule, gems_schedule
from repro.types import OpKind

from conftest import make_config

SPEC = tiny_model(num_layers=4, hidden=8, heads=2, seq_len=4, vocab=16)


class TestSequentialReference:
    def test_grads_accumulate_across_steps(self):
        stages = build_stages(SPEC, 2, seed=0)
        inputs, targets = make_batch(SPEC, 2, seed=1)
        first = sequential_step_on(stages, inputs, targets)
        snap = {k: v.copy() for k, v in first.grads.items()}
        second = sequential_step_on(stages, inputs, targets)
        for k in snap:
            np.testing.assert_allclose(second.grads[k], 2 * snap[k],
                                       rtol=1e-12)

    def test_loss_deterministic(self):
        inputs, targets = make_batch(SPEC, 2, seed=1)
        a = sequential_step_on(build_stages(SPEC, 1, seed=0),
                               inputs, targets)
        b = sequential_step_on(build_stages(SPEC, 1, seed=0),
                               inputs, targets)
        assert a.loss == b.loss


class TestDataParallelShapes:
    def test_wrong_shard_count_rejected(self):
        cfg = PipelineConfig(scheme="dapple", num_devices=2,
                             num_microbatches=2, data_parallel=2)
        dp = DataParallelPipelines(SPEC, cfg, seed=0)
        inputs, targets = make_batch(SPEC, 3, seed=0)  # needs 4
        with pytest.raises(EngineError, match="micro-batches"):
            dp.train_step(inputs, targets)

    def test_replicas_start_identical(self):
        cfg = PipelineConfig(scheme="dapple", num_devices=2,
                             num_microbatches=2, data_parallel=2)
        dp = DataParallelPipelines(SPEC, cfg, seed=0)
        a = dp.trainers[0].parameter_stages()[0].named_params()
        b = dp.trainers[1].parameter_stages()[0].named_params()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])


class TestGemsStructure:
    def test_direction_alternation(self):
        sched = gems_schedule(make_config("gems", 4, 6))
        assert [sched.replica_of(m) for m in range(6)] == [0, 1, 0, 1, 0, 1]

    def test_gems_bubble_grows_with_depth(self):
        assert gems_bubble_ratio(16) > gems_bubble_ratio(4)

    def test_gems_memory_is_minimal(self):
        assert activation_units("gems", 8, 8) < activation_units(
            "dapple", 8, 8
        ) / 4


class TestCommModelEdges:
    def test_uniform_batched_serializes(self):
        cm = CommModel.uniform(0.5)
        t = cm.batched_time([Transfer(0, 1, 1), Transfer(1, 0, 1)])
        assert t == pytest.approx(1.0)  # two messages on one pair

    def test_batched_skips_self_transfers(self):
        cm = CommModel.uniform(0.5)
        assert cm.batched_time([Transfer(2, 2, 99)]) == 0.0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ConfigError):
            Transfer(0, 1, -5)


class TestKindTimeAccounting:
    def test_forward_backward_split(self):
        sched = build_schedule(make_config("hanayo", 4, 4, num_waves=2))
        res = simulate(sched, AbstractCosts(CostConfig(), 4,
                                            sched.num_stages))
        fwd = kind_time(res.timeline, OpKind.FORWARD)
        bwd = kind_time(res.timeline, OpKind.BACKWARD)
        assert bwd == pytest.approx(2 * fwd)


class TestAbstractCostsValidation:
    def test_indivisible_stage_count_rejected(self):
        with pytest.raises(ConfigError, match="divisible"):
            AbstractCosts(CostConfig(), num_devices=4, num_stages=6)

    def test_per_chunk_duration(self):
        sched = build_schedule(make_config("hanayo", 4, 4, num_waves=2))
        costs = AbstractCosts(CostConfig(), 4, sched.num_stages)
        op = sched.all_ops()[0]
        # 16 stages on 4 devices -> each chunk is T_F / 4
        expected = (1.0 if op.kind is OpKind.FORWARD else 2.0) / 4
        assert costs.duration(op) == pytest.approx(expected)


class TestScheduleDescribe:
    def test_describe_strings(self):
        sched = build_schedule(make_config("chimera", 4, 4))
        text = sched.describe()
        assert "chimera" in text and "P=4" in text

    def test_gantt_stage_mode(self):
        from repro.viz import render_gantt
        sched = build_schedule(make_config("dapple", 2, 2))
        res = simulate(sched, AbstractCosts(CostConfig(), 2, 2))
        out = render_gantt(res.timeline, width=40, show_stage=True)
        assert "#" in out  # backward marker in stage mode
