"""Property-based tests (hypothesis) on schedules, kernels, and memory."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CostConfig, PipelineConfig
from repro.engine import tensor_ops as T
from repro.runtime import AbstractCosts, bubble_stats, memory_stats, simulate
from repro.schedules import build_schedule, validate
from repro.types import OpKind

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

schemes = st.sampled_from(
    ["gpipe", "dapple", "hanayo", "chimera", "chimera-wave", "gems",
     "interleaved"]
)


def build_valid_config(scheme, p, b, w):
    """Clamp hypothesis draws into each scheme's constraint set."""
    if scheme in ("chimera", "chimera-wave", "gems"):
        b += b % 2
    if scheme == "chimera" and p % 2:
        p += 1
    return PipelineConfig(
        scheme=scheme, num_devices=p, num_microbatches=b, num_waves=w,
    )


class TestScheduleProperties:
    @SLOW
    @given(scheme=schemes, p=st.integers(2, 6), b=st.integers(1, 8),
           w=st.integers(1, 3))
    def test_every_generated_schedule_is_valid(self, scheme, p, b, w):
        cfg = build_valid_config(scheme, p, b, w)
        sched = build_schedule(cfg)
        validate(sched)

    @SLOW
    @given(scheme=schemes, p=st.integers(2, 5), b=st.integers(1, 6),
           w=st.integers(1, 2), t_c=st.floats(0.0, 1.0))
    def test_simulation_invariants(self, scheme, p, b, w, t_c):
        cfg = build_valid_config(scheme, p, b, w)
        sched = build_schedule(cfg)
        costs = AbstractCosts(CostConfig(t_c=t_c), cfg.num_devices,
                              sched.num_stages)
        res = simulate(sched, costs)
        stats = bubble_stats(res.timeline)
        # bubble ratio in [0, 1); busy time conserved per scheme
        assert 0.0 <= stats.bubble_ratio < 1.0
        total_busy = sum(stats.busy.values())
        b_eff = cfg.num_microbatches
        assert total_busy == pytest.approx(b_eff * cfg.num_devices * 3.0)

    @SLOW
    @given(p=st.integers(2, 5), b=st.integers(2, 8), w=st.integers(1, 3))
    def test_hanayo_makespan_lower_bound(self, p, b, w):
        """Makespan can never beat perfect utilisation."""
        cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                             num_microbatches=b, num_waves=w)
        sched = build_schedule(cfg)
        res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages))
        assert res.makespan >= b * 3.0 - 1e-9  # per-device work

    @SLOW
    @given(p=st.integers(2, 5), b=st.integers(1, 6))
    def test_memory_tracker_never_leaks(self, p, b):
        from repro.models import A100_40G, stage_costs, tiny_model
        spec = tiny_model(num_layers=2 * p)
        cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                             num_microbatches=b, num_waves=1)
        sched = build_schedule(cfg)
        res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages))
        costs = stage_costs(spec, sched.num_stages, A100_40G)
        # memory_stats raises AssertionError on leak
        stats = memory_stats(sched, res.timeline, costs)
        assert stats.highest_peak >= max(stats.static_bytes.values())

    @SLOW
    @given(p=st.integers(2, 6), b=st.integers(1, 8))
    def test_dapple_backward_order_fifo(self, p, b):
        cfg = PipelineConfig(scheme="dapple", num_devices=p,
                             num_microbatches=b)
        sched = build_schedule(cfg)
        for ops in sched.device_ops.values():
            bwd = [o.microbatch for o in ops if o.kind is OpKind.BACKWARD]
            assert bwd == sorted(bwd)


class TestKernelProperties:
    @SLOW
    @given(st.integers(1, 4), st.integers(1, 6))
    def test_softmax_is_distribution(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        x = rng.normal(size=(rows, cols)) * 10
        y, _ = T.softmax_forward(x)
        assert np.all(y >= 0)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-10)

    @SLOW
    @given(st.floats(-50, 50), st.floats(0.1, 10))
    def test_gelu_bounded_by_identity(self, loc, scale):
        rng = np.random.default_rng(7)
        x = rng.normal(loc, scale, size=16)
        y, _ = T.gelu_forward(x)
        assert np.all(y <= np.maximum(x, 0) + 1e-9)
        assert np.all(y >= np.minimum(x, 0) - 0.2)

    @SLOW
    @given(st.integers(2, 8))
    def test_layernorm_scale_invariance(self, d):
        """Scale invariance holds up to the eps regulariser, whose
        relative effect shrinks as the input scale grows."""
        rng = np.random.default_rng(d)
        x = rng.normal(size=(3, d)) * 100.0
        g, b = np.ones(d), np.zeros(d)
        y1, _ = T.layernorm_forward(x, g, b)
        y2, _ = T.layernorm_forward(x * 7.0, g, b)
        np.testing.assert_allclose(y1, y2, rtol=1e-4, atol=1e-6)

    @SLOW
    @given(st.integers(2, 10))
    def test_cross_entropy_uniform_logits(self, vocab):
        logits = np.zeros((2, 3, vocab))
        targets = np.zeros((2, 3), dtype=np.int64)
        loss, _ = T.cross_entropy_forward(logits, targets)
        assert loss == pytest.approx(np.log(vocab))


class TestAnalyticProperties:
    @SLOW
    @given(p=st.integers(2, 64), w=st.integers(1, 16),
           t_c=st.floats(0.0, 2.0))
    def test_eq1_in_unit_interval(self, p, w, t_c):
        from repro.analysis import hanayo_bubble_ratio
        r = hanayo_bubble_ratio(p, w, t_f=1.0, t_b=2.0, t_c=t_c)
        assert 0.0 < r < 1.0

    @SLOW
    @given(p=st.integers(2, 64), b=st.integers(1, 128))
    def test_gpipe_ratio_monotone_in_b(self, p, b):
        from repro.analysis import gpipe_bubble_ratio
        assert gpipe_bubble_ratio(p, b + 1) < gpipe_bubble_ratio(p, b)
