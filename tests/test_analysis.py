"""Analytic bubble formulas, the unified perf model, memory model, zones."""

import pytest

from repro.analysis import (
    activation_balance_note,
    activation_units,
    chimera_bubble_ratio,
    chimera_k,
    classify_idle,
    compare_schemes,
    cross_comm_messages,
    format_table,
    gems_bubble_ratio,
    gpipe_bubble_ratio,
    hanayo_bubble_ratio,
    hanayo_bubble_ratio_simplified,
    interleaved_bubble_ratio,
    percent,
    ratio_vs,
    scheme_profile,
    theoretical_bubble_ratio,
    weight_units,
    zone_a_size,
    zone_b_size,
    zone_c_sizes,
)
from repro.errors import ConfigError


class TestHanayoEquation1:
    def test_matches_simplified_form(self):
        """Eq. (1) with T_B = 2 T_F, T_C = 0 reduces to (2P−2)/(3PW+P−1)."""
        for p in (2, 4, 8, 32):
            for w in (1, 2, 4, 8):
                full = hanayo_bubble_ratio(p, w, t_f=1.0, t_b=2.0, t_c=0.0)
                simple = hanayo_bubble_ratio_simplified(p, w)
                assert full == pytest.approx(simple), (p, w)

    def test_decreases_in_waves(self):
        vals = [hanayo_bubble_ratio(8, w) for w in (1, 2, 4, 8)]
        assert vals == sorted(vals, reverse=True)

    def test_paper_figure1_values(self):
        """Spot values read off Fig. 1: W=2 and W=4 at 8 devices."""
        assert hanayo_bubble_ratio_simplified(8, 2) == pytest.approx(
            14 / 55
        )
        assert hanayo_bubble_ratio_simplified(8, 4) == pytest.approx(
            14 / 103
        )

    def test_comm_term_raises_ratio(self):
        assert hanayo_bubble_ratio(8, 2, t_c=0.2) > hanayo_bubble_ratio(
            8, 2, t_c=0.0
        )

    def test_invalid(self):
        with pytest.raises(ConfigError):
            hanayo_bubble_ratio(1, 1)
        with pytest.raises(ConfigError):
            hanayo_bubble_ratio(8, 0)


class TestClassicFormulas:
    def test_gpipe_classic(self):
        assert gpipe_bubble_ratio(8, 8) == pytest.approx(7 / 15)

    def test_gpipe_more_microbatches_help(self):
        assert gpipe_bubble_ratio(8, 32) < gpipe_bubble_ratio(8, 8)

    def test_gems_independent_of_b(self):
        assert gems_bubble_ratio(8) == pytest.approx(1 - 2 / 8)

    def test_chimera_halves_fill(self):
        c = chimera_bubble_ratio(8, 8)
        g = gpipe_bubble_ratio(8, 8)
        assert c < g

    def test_interleaved_chunks_help(self):
        assert interleaved_bubble_ratio(8, 4) < interleaved_bubble_ratio(8, 2)

    def test_chimera_k(self):
        assert chimera_k(8) == 8 * 8 / 2 - 8

    def test_dispatcher_covers_all(self):
        for scheme in ("gpipe", "dapple", "gems", "chimera",
                       "interleaved", "hanayo", "chimera-wave"):
            r = theoretical_bubble_ratio(scheme, 8, w=2)
            assert 0 < r < 1
        with pytest.raises(ConfigError):
            theoretical_bubble_ratio("async-1f1b", 8)

    def test_fig1_ordering(self):
        """The bar ordering of Fig. 1 at both device counts."""
        for p in (8, 32):
            gems = theoretical_bubble_ratio("gems", p)
            gpipe = theoretical_bubble_ratio("gpipe", p)
            chimera = theoretical_bubble_ratio("chimera", p)
            h2 = theoretical_bubble_ratio("hanayo", p, w=2)
            h4 = theoretical_bubble_ratio("hanayo", p, w=4)
            assert gems > gpipe > chimera > h2 > h4


class TestMemoryModelUnits:
    def test_weight_units(self):
        # the bidirectional-replica schemes pay double weights — the
        # byte-accurate watermarks confirm 2x static for both
        assert weight_units("chimera") == 2.0
        assert weight_units("gems") == 2.0
        for s in ("gpipe", "dapple", "hanayo", "chimera-wave"):
            assert weight_units(s) == 1.0
        with pytest.raises(ConfigError):
            weight_units("nope")

    def test_gpipe_holds_everything(self):
        assert activation_units("gpipe", 8, 32) == 32.0

    def test_dapple_capped_by_depth(self):
        assert activation_units("dapple", 8, 32) == 8.0

    def test_hanayo_less_than_dapple(self):
        for w in (1, 2, 4):
            assert activation_units("hanayo", 8, 8, w) <= activation_units(
                "dapple", 8, 8
            )

    def test_hanayo_budget_matches_dapple(self):
        """Hanayo spends DAPPLE's worst-device budget, uniformly."""
        for w in (1, 2, 4):
            assert activation_units("hanayo", 8, 8, w) == activation_units(
                "dapple", 8, 8
            )

    def test_balance_notes_exist(self):
        for s in ("gpipe", "dapple", "hanayo", "chimera"):
            assert activation_balance_note(s)
        with pytest.raises(ConfigError):
            activation_balance_note("nope")


class TestPerfModel:
    def test_cross_comm_wave_turns_free(self):
        hanayo = cross_comm_messages("hanayo", 8, 8, 2)
        interleaved = cross_comm_messages("interleaved", 8, 8, 4)
        # same stage count (32): snake saves the turn hops
        assert hanayo < 2 * 8 * 31
        assert interleaved == 2 * 8 * 31

    def test_profile_row(self):
        row = scheme_profile("hanayo", 8, 8, 2)
        assert row.scheme == "hanayo"
        assert 0 < row.bubble_ratio < 1
        assert row.weight_memory_units == 1.0
        assert "hanayo" in row.describe()

    def test_compare_table_schemes(self):
        rows = compare_schemes(8)
        names = [r.scheme for r in rows]
        assert names == ["gpipe", "dapple", "gems", "chimera",
                         "hanayo", "hanayo"]
        # the bidirectional-replica schemes (gems, chimera) pay 2x
        # weights; everyone else 1x
        units = {r.scheme: r.weight_memory_units for r in rows}
        assert units["chimera"] == units["gems"] == 2.0
        assert units["gpipe"] == units["dapple"] == units["hanayo"] == 1.0


class TestZones:
    def test_analytic_sizes(self):
        assert zone_a_size(8, 2, t_f=1.0, t_c=0.1) == pytest.approx(
            1.0 / 4 + 0.1
        )
        assert zone_b_size(8, 2, 0, t_f=1.0, t_b=2.0, t_c=0.1) == pytest.approx(
            8 / 4 * 1.0 + 0.2
        )
        assert zone_c_sizes(2.0, 0.1) == (2.2, 2.1)

    def test_zone_b_rank_bounds(self):
        with pytest.raises(ConfigError):
            zone_b_size(4, 1, 4)

    def test_classifier_accounts_all_idle(self):
        from repro.config import CostConfig
        from repro.runtime import AbstractCosts, bubble_stats, simulate
        from repro.schedules import build_schedule
        from conftest import make_config

        sched = build_schedule(make_config("hanayo", 4, 4, num_waves=1))
        res = simulate(sched, AbstractCosts(CostConfig(), 4, sched.num_stages))
        zones = classify_idle(res.timeline)
        stats = bubble_stats(res.timeline)
        assert zones.total == pytest.approx(sum(stats.idle.values()))
        assert zones.zone_a > 0  # wave pipelines always wait on peers


class TestReport:
    def test_format_table_aligned(self):
        text = format_table(
            ["name", "value"],
            [["hanayo", 1.23456], ["gpipe", None]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "OOM" in text
        assert "1.23" in text

    def test_percent_and_ratio(self):
        assert percent(0.123) == "12.3%"
        assert percent(None) == "-"
        assert ratio_vs(1.1, 1.0) == "+10.0%"
        assert ratio_vs(None, 1.0) == "-"
