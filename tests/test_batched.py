"""Lockstep batched execution parity (runtime/batched.py).

The batched stepper is only allowed to change *cost*, never meaning:
every lane of an ``execute_batch`` must be bit-identical — all eight
``EventResult`` fields, ``==`` not approx — to running that lane alone
through the scalar ``execute_plan``.  These tests pin that across every
schedule family × prefetch mode, under capacity enforcement with mixed
OOM lanes, with gradient-sync collectives compiled in, and for ragged
batch widths.
"""

from __future__ import annotations

import pytest

from repro.actions import (
    ExecutablePlan,
    RetimeBuffers,
    StageResources,
    compile_program,
)
from repro.analysis import compile_cluster_program
from repro.cluster import make_fc, make_pc, make_tacc
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.errors import ConfigError, OutOfMemoryError, SchedulingError
from repro.models import tiny_model
from repro.models.costs import stage_costs
from repro.runtime import (
    AbstractCosts,
    ConcreteCosts,
    PlanBatch,
    execute_batch,
    execute_many,
    execute_plan,
)
from repro.schedules import build_schedule

from conftest import ALL_SCHEMES, make_config, scheme_id

P = B = 4

#: four lanes with genuinely different arithmetic — asymmetric ratios,
#: zero comm, comm-dominated — so lockstep masking bugs cannot hide
#: behind lanes that agree numerically
LANE_COSTS = (
    CostConfig(t_f=1.0, t_b=2.0, t_c=0.25),
    CostConfig(t_f=1.3, t_b=2.1, t_c=0.1),
    CostConfig(t_f=0.7, t_b=1.9, t_c=0.5),
    CostConfig(t_f=1.0, t_b=1.0, t_c=0.0),
)


def lowered(scheme, kw, prefetch=True, resources=None):
    cfg = make_config(scheme, P, B, **kw)
    program = compile_program(build_schedule(cfg), prefetch=prefetch,
                              resources=resources)
    return ExecutablePlan.lower(program)


def lanes_for(plan, n=len(LANE_COSTS)):
    """``n`` retimes of one structure, cycling the varied cost table."""
    stages = plan.program.num_stages
    return [plan.retime(AbstractCosts(LANE_COSTS[i % len(LANE_COSTS)],
                                      P, stages))
            for i in range(n)]


def assert_result_equal(got, want):
    """All eight EventResult fields, exact equality."""
    assert got.timeline == want.timeline
    assert got.recv_wait == want.recv_wait
    assert got.comm == want.comm
    assert got.order == want.order
    assert got.mem_peak == want.mem_peak
    assert got.mem_events == want.mem_events
    assert got.collectives == want.collectives
    assert got.device_end == want.device_end


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestLanewiseParity:
    def test_every_lane_bit_equals_scalar(self, param, prefetch):
        scheme, kw = param
        plans = lanes_for(lowered(scheme, kw, prefetch=prefetch))
        run = RunConfig(prefetch=prefetch)
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        for plan, got, err in zip(plans, batch.results, batch.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run))


class TestCapacityParity:
    """Mixed OOM/surviving lanes under capacity enforcement."""

    def _annotated(self, scheme="dapple", kw={}):
        stages = build_schedule(make_config(scheme, P, B, **kw)).num_stages
        res = StageResources(weight_bytes=(100.0,) * stages,
                             activation_bytes=(10.0,) * stages)
        return lowered(scheme, kw, resources=res)

    def _mixed(self, plans):
        """Capacities that OOM some lanes and clear others."""
        run = RunConfig()
        peaks = [max(execute_plan(p, run).mem_peak.values())
                 for p in plans]
        caps = []
        for k, peak in enumerate(peaks):
            caps.append(int(peak) - 1 if k % 2 else int(peak) + 1)
        return caps

    def test_oom_lanes_match_scalar_error(self):
        plans = lanes_for(self._annotated())
        caps = self._mixed(plans)
        run = RunConfig()
        batch = execute_batch(PlanBatch.from_plans(plans, caps), run)
        saw_oom = saw_ok = False
        for plan, cap, got, err in zip(plans, caps, batch.results,
                                       batch.errors):
            try:
                want = execute_plan(plan, run, capacity_bytes=cap)
            except OutOfMemoryError as exc:
                saw_oom = True
                assert got is None
                assert isinstance(err, OutOfMemoryError)
                assert (err.device, err.peak_bytes, err.capacity_bytes) \
                    == (exc.device, exc.peak_bytes, exc.capacity_bytes)
                assert str(err) == str(exc)
            else:
                saw_ok = True
                assert err is None
                assert_result_equal(got, want)
        assert saw_oom and saw_ok  # the fixture really mixed verdicts

    def test_uncapped_lanes_ride_along(self):
        """``None`` capacity disarms enforcement for that lane only."""
        plans = lanes_for(self._annotated())
        caps = [None, 1, None, 1]  # lanes 1 and 3 cannot fit 1 byte
        batch = execute_batch(PlanBatch.from_plans(plans, caps))
        assert [e is not None for e in batch.errors] == \
               [False, True, False, True]
        for plan, got, cap in zip(plans[::2], batch.results[::2],
                                  caps[::2]):
            assert_result_equal(got, execute_plan(plan, RunConfig(),
                                                  capacity_bytes=cap))


class TestCollectiveParity:
    """Gradient-sync rings compiled in (concrete clusters, d=2)."""

    @pytest.mark.parametrize("factory", [make_fc, make_tacc, make_pc],
                             ids=["FC", "TACC", "PC"])
    def test_dp_collectives_bit_equal(self, factory):
        from repro.analysis.throughput import _pipeline_comm

        cfg = PipelineConfig(scheme="hanayo", num_devices=P,
                             num_microbatches=B, data_parallel=2)
        sched = build_schedule(cfg)
        plans = []
        for size in (8, 16):
            cluster = factory(size)
            costs = stage_costs(tiny_model(num_layers=16),
                                sched.num_stages, cluster.device, 2)
            program = compile_cluster_program(sched, cluster, costs, d=2)
            plans.append(ExecutablePlan.lower(program).retime(
                ConcreteCosts(costs, _pipeline_comm(cluster, 0, P))))
        run = RunConfig()
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        for plan, got in zip(plans, batch.results):
            want = execute_plan(plan, run)
            assert want.collectives  # the rings really are in the plan
            assert_result_equal(got, want)


class TestRaggedBatches:
    @pytest.mark.parametrize("n", [1, 5], ids=["N1", "N5"])
    def test_ragged_width_parity(self, n):
        plans = lanes_for(lowered("interleaved", {"num_waves": 2}), n=n)
        run = RunConfig()
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        assert len(batch.results) == n
        for plan, got in zip(plans, batch.results):
            assert_result_equal(got, execute_plan(plan, run))


class TestLeanDetail:
    def test_lean_is_an_exact_subset(self):
        plans = lanes_for(lowered("dapple", {}))
        run = RunConfig()
        full = execute_batch(PlanBatch.from_plans(plans), run)
        lean = execute_batch(PlanBatch.from_plans(plans), run,
                             detail="lean")
        for f, l in zip(full.results, lean.results):
            assert l.timeline == f.timeline
            assert l.recv_wait == f.recv_wait
            assert l.collectives == f.collectives
            assert l.mem_peak == f.mem_peak
            assert l.device_end == f.device_end
            assert l.comm == [] and l.order == {} and l.mem_events == []


class TestExecuteMany:
    def test_groups_by_structure_and_preserves_item_order(self):
        a = lanes_for(lowered("gpipe", {}), n=2)
        b = lanes_for(lowered("dapple", {}), n=2)
        solo = lanes_for(lowered("gems", {}), n=1)
        items = [(a[0], None), (b[0], None), (a[1], None),
                 (solo[0], None), (b[1], None)]
        run = RunConfig()
        out = execute_many(items, run)
        assert len(out.results) == len(items)
        for (plan, _), got, err in zip(items, out.results, out.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run))

    def test_full_detail_contention_batches_time_ordered(self):
        """Full-detail contention results interleave comm/mem logs in
        driver order — the time-ordered vector replay produces them
        in-batch now; no lane may take a ``contention`` fallback."""
        from repro import profiling

        stats = profiling.batching_stats()
        before_scalar = stats.scalar_cells
        before_rec = stats.recovered_lanes
        plans = lanes_for(lowered("dapple", {}), n=2)
        run = RunConfig(contention=True)
        out = execute_many([(p, None) for p in plans], run)
        assert "contention" not in stats.fallback_reasons
        assert stats.scalar_cells == before_scalar
        assert stats.recovered_lanes == before_rec + 2
        for plan, got in zip(plans, out.results):
            assert_result_equal(got, execute_plan(plan, run))

    def test_congruent_programs_share_one_batch(self):
        """Two separately-compiled copies of one structure (distinct
        program objects, equal congruence keys) stack into one batch."""
        from repro import profiling

        stats = profiling.batching_stats()
        a, b = lowered("gpipe", {}), lowered("gpipe", {})
        assert a.program is not b.program
        assert a.congruence_key == b.congruence_key
        stages = a.program.num_stages
        lanes = [a.retime(AbstractCosts(LANE_COSTS[0], P, stages)),
                 b.retime(AbstractCosts(LANE_COSTS[1], P, stages))]
        run = RunConfig()
        batches, scalars = stats.batches, stats.scalar_cells
        out = execute_many([(p, None) for p in lanes], run)
        assert stats.batches == batches + 1      # one lockstep batch,
        assert stats.scalar_cells == scalars     # no singleton fallback
        for plan, got in zip(lanes, out.results):
            assert_result_equal(got, execute_plan(plan, run))


class TestContentionParity:
    """``contention=True`` lanes stay in the batch at ``detail="lean"``
    and remain bit-identical to the scalar time-ordered driver."""

    @pytest.mark.parametrize("prefetch", [True, False],
                             ids=["pf", "nopf"])
    @pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
    def test_lean_contention_bit_equals_scalar(self, param, prefetch):
        scheme, kw = param
        plans = lanes_for(lowered(scheme, kw, prefetch=prefetch))
        run = RunConfig(prefetch=prefetch, contention=True)
        batch = execute_batch(PlanBatch.from_plans(plans), run,
                              detail="lean")
        for plan, got, err in zip(plans, batch.results, batch.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run,
                                                  detail="lean"))

    @pytest.mark.parametrize("factory", [make_fc, make_tacc, make_pc],
                             ids=["FC", "TACC", "PC"])
    def test_contention_collectives_bit_equal_both_cores(self, factory):
        """Arbitrated DP rings: lean lanes must match the scalar core
        and (through it) the reference interpreter."""
        from repro.analysis.throughput import _pipeline_comm
        from repro.runtime import execute_program_reference

        cfg = PipelineConfig(scheme="hanayo", num_devices=P,
                             num_microbatches=B, data_parallel=2)
        sched = build_schedule(cfg)
        cells = []
        for size in (8, 16):
            cluster = factory(size)
            costs = stage_costs(tiny_model(num_layers=16),
                                sched.num_stages, cluster.device, 2)
            program = compile_cluster_program(sched, cluster, costs, d=2)
            oracle = ConcreteCosts(costs, _pipeline_comm(cluster, 0, P))
            cells.append((program, oracle,
                          ExecutablePlan.lower(program).retime(oracle)))
        run = RunConfig(contention=True)
        plans = [plan for _, _, plan in cells]
        batch = execute_batch(PlanBatch.from_plans(plans), run,
                              detail="lean")
        for (program, oracle, plan), got in zip(cells, batch.results):
            want = execute_plan(plan, run, detail="lean")
            assert want.collectives  # the rings really are in the plan
            assert_result_equal(got, want)
            ref = execute_program_reference(program, oracle, run)
            assert got.timeline.spans == ref.timeline.spans
            assert got.recv_wait == ref.recv_wait
            assert got.collectives == ref.collectives
            assert got.device_end == ref.device_end

    def test_contention_lanes_actually_batch(self):
        """The fig11/contention grids must not silently de-batch."""
        from repro import profiling

        stats = profiling.batching_stats()
        plans = lanes_for(lowered("dapple", {}))
        run = RunConfig(contention=True)
        batches = stats.batches
        out = execute_batch(PlanBatch.from_plans(plans), run,
                            detail="lean")
        assert stats.batches == batches + 1
        assert all(err is None for err in out.errors)


class TestTimeOrderedReplay:
    """The time-ordered vector replay: contention lanes whose wire
    grants leave structural order, and full-detail contention, batch
    bit-identically to the scalar time-ordered driver."""

    @pytest.mark.parametrize("prefetch", [True, False],
                             ids=["pf", "nopf"])
    @pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
    def test_full_detail_contention_bit_equals_scalar(self, param,
                                                      prefetch):
        """Driver-order comm and mem logs, lane for lane, all fields."""
        scheme, kw = param
        plans = lanes_for(lowered(scheme, kw, prefetch=prefetch))
        run = RunConfig(prefetch=prefetch, contention=True)
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        for plan, got, err in zip(plans, batch.results, batch.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run))

    @pytest.mark.parametrize("factory", [make_fc, make_tacc, make_pc],
                             ids=["FC", "TACC", "PC"])
    def test_divergent_waves_recovered_both_cores(self, factory):
        """hanayo-w2 on shared-link concrete clusters — the
        known-divergent wave interleaving whose wire grants reorder
        against structural order — recovers in-batch (zero scalar
        fallbacks) and matches both event cores."""
        from repro import profiling
        from repro.analysis.throughput import _pipeline_comm
        from repro.runtime import execute_program_reference

        stats = profiling.batching_stats()
        cfg = PipelineConfig(scheme="hanayo", num_devices=P,
                             num_microbatches=B, num_waves=2,
                             data_parallel=2)
        sched = build_schedule(cfg)
        cells = []
        for size in (8, 16):
            cluster = factory(size)
            costs = stage_costs(tiny_model(num_layers=16),
                                sched.num_stages, cluster.device, 2)
            program = compile_cluster_program(sched, cluster, costs, d=2)
            oracle = ConcreteCosts(costs, _pipeline_comm(cluster, 0, P))
            cells.append((program, oracle,
                          ExecutablePlan.lower(program).retime(oracle)))
        run = RunConfig(contention=True)
        plans = [plan for _, _, plan in cells]
        scalar_before = stats.scalar_cells
        recovered_before = stats.recovered_lanes
        for detail in ("lean", "full"):
            batch = execute_batch(PlanBatch.from_plans(plans), run,
                                  detail=detail)
            for (program, oracle, plan), got in zip(cells,
                                                    batch.results):
                want = execute_plan(plan, run, detail=detail)
                assert_result_equal(got, want)
                ref = execute_program_reference(program, oracle, run)
                assert got.timeline.spans == ref.timeline.spans
                assert got.recv_wait == ref.recv_wait
                assert got.collectives == ref.collectives
                assert got.device_end == ref.device_end
        assert stats.scalar_cells == scalar_before  # no lane left
        assert stats.recovered_lanes > recovered_before

    def test_mixed_recovered_and_fallback_lanes(self):
        """One execute_many with a recovered contention group and a
        singleton scalar lane: outcomes stay item-ordered and each
        path's accounting is attributed correctly."""
        from repro import profiling

        stats = profiling.batching_stats()
        group = lanes_for(lowered("hanayo", {"num_waves": 2}), n=3)
        solo = lanes_for(lowered("gems", {}), n=1)
        items = [(group[0], None), (solo[0], None), (group[1], None),
                 (group[2], None)]
        run = RunConfig(contention=True)
        singleton_before = stats.fallback_reasons.get("singleton", 0)
        recovered_before = stats.recovered_lanes
        out = execute_many(items, run)
        assert stats.fallback_reasons.get("singleton", 0) == \
            singleton_before + 1
        assert stats.recovered_lanes == recovered_before + 3
        for (plan, _), got, err in zip(items, out.results, out.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run))

    @pytest.mark.parametrize("detail", ["lean", "full"])
    def test_mid_run_oom_under_time_ordered_replay(self, detail):
        """Mid-run capacity aborts stay in-batch under contention: the
        abort device/peak attribution follows each lane's own pop
        order, exactly as the scalar time-ordered driver."""
        scheme, kw = "hanayo", {"num_waves": 2}
        stages = build_schedule(make_config(scheme, P, B, **kw)) \
            .num_stages
        res = StageResources(weight_bytes=(100.0,) * stages,
                             activation_bytes=(10.0,) * stages)
        plans = lanes_for(lowered(scheme, kw, resources=res))
        run = RunConfig(contention=True)
        peaks = [max(execute_plan(p, RunConfig()).mem_peak.values())
                 for p in plans]
        # lane 0: statically rejected; lane 1: aborts mid-run; the
        # rest clear (one uncapped, one just-fitting)
        caps = [1, int(peaks[1]) - 1, None, int(peaks[3]) + 1]
        batch = execute_batch(PlanBatch.from_plans(plans, caps), run,
                              detail=detail)
        saw_oom = saw_ok = False
        for plan, cap, got, err in zip(plans, caps, batch.results,
                                       batch.errors):
            try:
                want = execute_plan(plan, run, capacity_bytes=cap,
                                    detail=detail)
            except OutOfMemoryError as exc:
                saw_oom = True
                assert got is None
                assert isinstance(err, OutOfMemoryError)
                assert (err.device, err.peak_bytes, err.capacity_bytes) \
                    == (exc.device, exc.peak_bytes, exc.capacity_bytes)
                assert str(err) == str(exc)
            else:
                saw_ok = True
                assert err is None
                assert_result_equal(got, want)
        assert saw_oom and saw_ok

    def test_aborted_lane_keeps_lazy_cost_contract(self):
        """A mid-run-aborting contention lane resolves lazy compute
        costs only up to (and including) its aborting compute; a
        statically-rejected lane resolves none."""
        scheme, kw = "dapple", {}
        stages = build_schedule(make_config(scheme, P, B, **kw)) \
            .num_stages
        res = StageResources(weight_bytes=(100.0,) * stages,
                             activation_bytes=(10.0,) * stages)
        base = lowered(scheme, kw, resources=res)
        probe = lanes_for(base)
        peak = max(execute_plan(probe[1], RunConfig()).mem_peak.values())
        caps = [1, int(peak) - 1, None, None]
        plans = lanes_for(base)  # fresh lanes: no probe-resolved costs
        execute_batch(PlanBatch.from_plans(plans, caps),
                      RunConfig(contention=True))
        assert all(c is None for c in plans[0].comp_cost)
        resolved = sum(c is not None for c in plans[1].comp_cost)
        assert 0 < resolved < len(plans[1].comp_cost)
        assert all(c is not None for c in plans[2].comp_cost)


class TestCongruentGroups:
    """Lanes of *different programs* with equal congruence keys batch
    as one group with per-lane structural state (recompute on/off)."""

    def _recompute_pair(self):
        cfg = make_config("dapple", P, B)
        stages = build_schedule(cfg).num_stages
        res = StageResources(weight_bytes=(100.0,) * stages,
                             activation_bytes=(10.0,) * stages)
        plain = lowered("dapple", {}, resources=res)
        rec_prog = plain.program.with_resources(
            plain.program.resources.with_recompute_from(0))
        return plain, ExecutablePlan.lower(rec_prog)

    def test_recompute_toggle_lanes_batch_and_match(self):
        plain, rec = self._recompute_pair()
        assert plain.congruence_key == rec.congruence_key
        stages = plain.program.num_stages
        plans = [plain.retime(AbstractCosts(LANE_COSTS[0], P, stages)),
                 rec.retime(AbstractCosts(LANE_COSTS[1], P, stages)),
                 plain.retime(AbstractCosts(LANE_COSTS[2], P, stages)),
                 rec.retime(AbstractCosts(LANE_COSTS[3], P, stages))]
        run = RunConfig()
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        for plan, got, err in zip(plans, batch.results, batch.errors):
            assert err is None
            assert_result_equal(got, execute_plan(plan, run))

    def test_congruent_mem_verdicts_are_per_lane(self):
        """Capacity verdicts must come from each lane's *own* memory
        trace — the recompute lane's watermarks differ from the head's."""
        plain, rec = self._recompute_pair()
        stages = plain.program.num_stages
        plans = [plain.retime(AbstractCosts(LANE_COSTS[0], P, stages)),
                 rec.retime(AbstractCosts(LANE_COSTS[1], P, stages))]
        run = RunConfig()
        peaks = [max(execute_plan(p, run).mem_peak.values())
                 for p in plans]
        caps = [int(peaks[0]) + 1, int(peaks[1]) - 1]
        batch = execute_batch(PlanBatch.from_plans(plans, caps), run)
        assert batch.errors[0] is None
        assert isinstance(batch.errors[1], OutOfMemoryError)
        with pytest.raises(OutOfMemoryError) as exc_info:
            execute_plan(plans[1], run, capacity_bytes=caps[1])
        assert str(batch.errors[1]) == str(exc_info.value)
        assert_result_equal(batch.results[0],
                            execute_plan(plans[0], run,
                                         capacity_bytes=caps[0]))


class TestHybridTPParity:
    """Hybrid TP∈{2,4} × DP∈{1,2} lanes through the batched stepper,
    pinned against both event cores."""

    @pytest.mark.parametrize("tp", [2, 4], ids=["tp2", "tp4"])
    @pytest.mark.parametrize("d", [1, 2], ids=["dp1", "dp2"])
    def test_hybrid_lanes_bit_equal_both_cores(self, tp, d):
        from repro.analysis import (
            HybridLayout,
            build_hybrid_simulation,
            plan_cache,
        )
        from repro.runtime import execute_program_reference

        plan_cache().clear()
        layout = HybridLayout(tp=tp, p=2, d=d)
        run = RunConfig()
        cells = [
            build_hybrid_simulation("dapple", make_fc(size),
                                    tiny_model(num_layers=16), layout,
                                    B, run=run)
            for size in (layout.devices, 2 * layout.devices)
        ]
        plans = [cell.plan for cell in cells]
        # cost-only lanes share the compiled structure...
        assert plans[0].program is plans[1].program
        batch = execute_batch(PlanBatch.from_plans(plans), run)
        for cell, got, err in zip(cells, batch.results, batch.errors):
            assert err is None
            want = execute_plan(cell.plan, run)
            assert want.collectives  # TP boundary all-reduces compiled in
            assert_result_equal(got, want)
            ref = execute_program_reference(cell.program, cell.oracle,
                                            run)
            assert got.timeline.spans == ref.timeline.spans
            assert got.recv_wait == ref.recv_wait
            assert got.collectives == ref.collectives
            assert got.device_end == ref.device_end


class TestFallbackReasons:
    """The --profile fallback histogram: every scalar cell is blamed,
    with wall time attributed per reason; recovered lanes counted."""

    def test_reasons_recorded_and_described(self):
        from repro import profiling

        stats = profiling.batching_stats()
        before = dict(stats.fallback_reasons)
        before_s = dict(stats.fallback_s)
        before_rec = stats.recovered_lanes
        solo = lanes_for(lowered("gems", {}), n=1)
        run = RunConfig()
        execute_many([(solo[0], None)], run)
        plans = lanes_for(lowered("dapple", {}), n=2)
        execute_many([(p, None) for p in plans],
                     RunConfig(contention=True))  # full: time-ordered
        assert stats.fallback_reasons.get("singleton", 0) == \
            before.get("singleton", 0) + 1
        assert stats.fallback_s.get("singleton", 0.0) > \
            before_s.get("singleton", 0.0)
        assert "contention" not in stats.fallback_reasons
        assert stats.recovered_lanes == before_rec + 2
        text = stats.describe()
        assert "fallbacks [" in text
        assert "singleton=" in text
        assert "ms" in text.split("fallbacks [", 1)[1]  # wall time shown
        assert "recovered" in text
        assert "time-ordered" in text

    def test_recovery_counts_inside_batched_totals(self):
        """A recovered batch is a batch: occupancy and lane totals keep
        covering every batched lane."""
        from repro import profiling

        stats = profiling.batching_stats()
        lanes0, batches0 = stats.lanes, stats.batches
        plans = lanes_for(lowered("hanayo", {"num_waves": 2}))
        execute_batch(PlanBatch.from_plans(plans),
                      RunConfig(contention=True), detail="full")
        assert stats.lanes == lanes0 + len(plans)
        assert stats.batches == batches0 + 1
        assert sum(n * c for n, c in stats.occupancy.items()) \
            == stats.lanes


class TestFromPlansValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SchedulingError, match="empty batch"):
            PlanBatch.from_plans([])

    def test_unbound_plan_rejected(self):
        with pytest.raises(SchedulingError, match="not cost-bound"):
            PlanBatch.from_plans([lowered("gpipe", {})])

    def test_structure_mismatch_rejected(self):
        a = lanes_for(lowered("gpipe", {}), n=1)[0]
        b = lanes_for(lowered("dapple", {}), n=1)[0]
        with pytest.raises(SchedulingError,
                           match="congruence_key mismatch"):
            PlanBatch.from_plans([a, b])

    def test_capacity_arity_rejected(self):
        """Structured ConfigError naming the offending lane indices."""
        plans = lanes_for(lowered("gpipe", {}), n=3)
        with pytest.raises(
                ConfigError,
                match=r"one capacity per lane required.*"
                      r"lanes \[1, 2\] have no capacity"):
            PlanBatch.from_plans(plans, [None])
        with pytest.raises(
                ConfigError,
                match=r"capacities \[3\] name no lane"):
            PlanBatch.from_plans(plans, [None, 1, 2, 3])

    def test_capacity_needs_resources(self):
        plans = lanes_for(lowered("gpipe", {}), n=2)
        with pytest.raises(SchedulingError, match="capacity enforcement"):
            execute_batch(PlanBatch.from_plans(plans, [100, None]))


class TestRetimeBuffers:
    """The shared-column retime used by the synthesis scorer."""

    def _oracle(self, plan, i=0):
        return AbstractCosts(LANE_COSTS[i], P, plan.program.num_stages)

    def test_buffer_retime_equals_fresh(self):
        base = lowered("hanayo", {"num_waves": 2})
        buffers = RetimeBuffers()
        shared = base.retime(self._oracle(base), buffers=buffers)
        fresh = base.retime(self._oracle(base))
        assert shared.send_time == fresh.send_time
        assert shared.send_lat == fresh.send_lat
        assert shared.send_wire == fresh.send_wire
        assert shared.coll_step_time == fresh.coll_step_time
        assert_result_equal(execute_plan(shared, RunConfig()),
                            execute_plan(fresh, RunConfig()))

    def test_columns_alias_until_next_use(self):
        """The documented contract: a buffer-retimed plan is only valid
        until the buffers' next use — the columns are shared."""
        base = lowered("hanayo", {"num_waves": 2})
        buffers = RetimeBuffers()
        first = base.retime(self._oracle(base, 0), buffers=buffers)
        second = base.retime(self._oracle(base, 2), buffers=buffers)
        assert first.send_time is second.send_time
        assert first.send_time == base.retime(self._oracle(base, 2)) \
            .send_time


class TestBoundPlanCache:
    """PlanEntry.bindings: one re-time per (cluster, costs, P) key."""

    def test_binding_reused_per_key(self):
        from repro.analysis.plans import PlanEntry

        base = lowered("dapple", {})
        sched = build_schedule(make_config("dapple", P, B))
        entry = PlanEntry(schedule=sched, program=base.program,
                          plan=base)
        calls = []

        def factory(i):
            def make():
                calls.append(i)
                return self_oracle(i)
            return make

        def self_oracle(i):
            return AbstractCosts(LANE_COSTS[i], P,
                                 base.program.num_stages)

        a1 = entry.bound_plan(("k1",), factory(0))
        a2 = entry.bound_plan(("k1",), factory(0))
        b = entry.bound_plan(("k2",), factory(1))
        assert a1 is a2            # second lookup never re-times
        assert b is not a1
        assert calls == [0, 1]     # one oracle build per distinct key
        assert_result_equal(
            execute_plan(a1, RunConfig()),
            execute_plan(base.retime(self_oracle(0)), RunConfig()))
