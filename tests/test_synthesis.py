"""Schedule synthesis: reorder identity, legality, search, replay.

The load-bearing pins, in dependency order:

* **Reorder identity** — recompiling a program from its own ordering
  reproduces the action lists exactly, across every family and both
  compile-pass settings.  This is what makes the searcher's compile
  path and the schedule compiler the same function of an ordering.
* **Legality negatives** — hand-built illegal orderings produce their
  *specific* structured violation (dep inversion, cross-device cycle
  with a concrete witness, capacity, collective order), and the
  deadlock-classified ones deadlock both event cores with a wait-cycle
  report instead of hanging.
* **Search determinism and the rediscovery demo** — the same seed
  yields the same best ordering, provenance and plan key; from a
  GPipe-disciplined start on Hanayo's placement the search finds a
  strictly better schedule than the start.
* **Replayable serialization** — payload -> JSON -> replay round-trips
  scores bit-identically and fails loudly on a plan-key mismatch.
"""

from __future__ import annotations

import json

import pytest

from repro.actions import (
    compile_program,
    ordering_entries,
    reorder_program,
    with_gradient_sync,
)
from repro.actions.resources import StageResources
from repro.analysis import candidate_plan
from repro.analysis.plans import PlanEntry
from repro.actions.lowering import ExecutablePlan
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.errors import (
    OutOfMemoryError,
    SchedulingError,
    SynthesisError,
    ValidationError,
)
from repro.runtime import (
    AbstractCosts,
    execute_program,
    execute_program_reference,
    simulate,
    simulate_ordering,
)
from repro.schedules import build_schedule
from repro.synthesis import (
    DEADLOCK_KINDS,
    LegalityChecker,
    OOM_KINDS,
    ScheduleOrdering,
    SearchConfig,
    SynthesisContext,
    check_ordering,
    gpipe_like_ordering,
    is_legal,
    load_schedule,
    payload_for,
    replay_payload,
    save_schedule,
    synthesize,
    synthesize_families,
)
from repro.types import OpKind

from conftest import ALL_SCHEMES, make_config, scheme_id

COMM = CostConfig(t_f=1.0, t_b=2.0, t_c=0.25)


def build(scheme, p=4, b=4, prefetch=True, batching=True, resources=None,
          **kw):
    cfg = make_config(scheme, p, b, **kw)
    sched = build_schedule(cfg, COMM)
    oracle = AbstractCosts(COMM, p, sched.num_stages)
    program = compile_program(
        sched, prefetch=prefetch, batch_cross_comm=batching,
        boundary_bytes=lambda tag: oracle.tensor_nbytes(tag.stage),
        resources=resources,
    )
    return cfg, sched, oracle, program


def gpipe_p2(prefetch=True, **kw):
    return build("gpipe", p=2, b=2, prefetch=prefetch,
                 batching=prefetch, **kw)


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestReorderIdentity:
    def test_identity_reorder_reproduces_actions(self, param, prefetch):
        scheme, kw = param
        _, _, _, program = build(scheme, prefetch=prefetch,
                                 batching=prefetch, **kw)
        rebuilt = reorder_program(program, ordering_entries(program))
        assert rebuilt.actions == program.actions

    def test_identity_reorder_preserves_plan_key(self, param, prefetch):
        scheme, kw = param
        _, _, _, program = build(scheme, prefetch=prefetch,
                                 batching=prefetch, **kw)
        rebuilt = reorder_program(program, ordering_entries(program))
        assert (ExecutablePlan.lower(rebuilt).plan_key
                == ExecutablePlan.lower(program).plan_key)

    def test_own_ordering_is_legal(self, param, prefetch):
        scheme, kw = param
        _, _, _, program = build(scheme, prefetch=prefetch,
                                 batching=prefetch, **kw)
        assert is_legal(program, ScheduleOrdering.from_program(program))


class TestReorderIdentityWithCollectives:
    def test_grad_sync_program_round_trips(self):
        _, _, _, program = build("dapple")
        annotated = with_gradient_sync(
            program, {d: (d, d + 4) for d in range(4)},
            {s: 64.0 for s in range(4)})
        rebuilt = reorder_program(annotated, ordering_entries(annotated))
        assert rebuilt.actions == annotated.actions

    def test_blocking_collective_program_is_not_reorderable(self):
        from repro.actions import with_tp_sync

        _, _, _, program = build("gpipe")
        glued = with_tp_sync(program, {d: (d, d + 4) for d in range(4)},
                             64.0, 2.0)
        with pytest.raises(ValidationError, match="not +reorderable"):
            ordering_entries(glued)


class TestReorderValidation:
    def test_wrong_device_set_rejected(self):
        _, _, _, program = gpipe_p2()
        orders = ordering_entries(program)
        del orders[1]
        with pytest.raises(ValidationError, match="covers devices"):
            reorder_program(program, orders)

    def test_non_permutation_rejected(self):
        _, _, _, program = gpipe_p2()
        orders = ordering_entries(program)
        orders[0] = orders[0][:-1]  # drop one entry
        with pytest.raises(ValidationError, match="not a permutation"):
            reorder_program(program, orders)


class TestLegalityNegative:
    """Each illegal ordering yields its specific structured violation."""

    def test_device_set_violation(self):
        _, _, _, program = gpipe_p2()
        orders = ordering_entries(program)
        del orders[1]
        (v,) = check_ordering(program,
                              ScheduleOrdering.from_orders(orders))
        assert v.kind == "device-set"
        assert v.device == -1

    def test_missing_and_extra_op(self):
        _, _, _, program = gpipe_p2()
        ordering = ScheduleOrdering.from_program(program)
        entries = list(ordering.entries(0))
        entries[1] = entries[0]  # duplicate: one missing, one extra
        bad = ordering.replace_entries(0, entries)
        kinds = {v.kind for v in check_ordering(program, bad)}
        assert kinds == {"missing-op", "extra-op"}

    def test_dep_inversion(self):
        _, _, _, program = gpipe_p2()
        ordering = ScheduleOrdering.from_program(program)
        entries = list(ordering.entries(0))
        bw = next(e for e in entries if e[0] is OpKind.BACKWARD)
        entries.remove(bw)
        entries.insert(0, bw)
        violations = check_ordering(
            program, ordering.replace_entries(0, entries))
        assert violations
        v = violations[0]
        assert v.kind == "dep-inversion"
        assert v.kind in DEADLOCK_KINDS
        assert v.device == 0
        assert bw in v.subject

    def test_cross_device_cycle_with_witness(self):
        # d0: F0 B0 F1 B1 and d1: F0 F1 B1 B0 has no local inversion
        # but deadlocks: B0@d0 needs B0@d1, queued behind B1@d1, whose
        # F1@d1 needs F1@d0, queued behind B0@d0.
        _, _, _, program = gpipe_p2()
        F, B = OpKind.FORWARD, OpKind.BACKWARD
        bad = ScheduleOrdering.from_orders({
            0: [(F, 0, 0), (B, 0, 0), (F, 1, 0), (B, 1, 0)],
            1: [(F, 0, 1), (F, 1, 1), (B, 1, 1), (B, 0, 1)],
        })
        (v,) = check_ordering(program, bad)
        assert v.kind == "cross-device-cycle"
        assert v.kind in DEADLOCK_KINDS
        assert "->" in v.message  # concrete witness path
        assert len(v.subject) >= 2
        # the witness is a genuine cycle: each hop is an order or
        # dataflow edge, and it closes
        assert set(v.subject) <= set(program.ops)

    def test_capacity_violation_names_the_allocation(self):
        res = StageResources(weight_bytes=(0.0, 0.0),
                             activation_bytes=(100.0, 100.0))
        _, _, _, program = gpipe_p2(resources=res)
        # all-forwards-first doubles the watermark: 2 live activations
        bad = gpipe_like_ordering(program)
        violations = check_ordering(program, bad, capacity_bytes=150)
        assert violations
        v = violations[0]
        assert v.kind == "capacity"
        assert v.kind in OOM_KINDS
        assert "watermark" in v.message
        # 1F1B order keeps one activation live per device: fits
        F, B = OpKind.FORWARD, OpKind.BACKWARD
        good = ScheduleOrdering.from_orders({
            0: [(F, 0, 0), (B, 0, 0), (F, 1, 0), (B, 1, 0)],
            1: [(F, 0, 1), (B, 0, 1), (F, 1, 1), (B, 1, 1)],
        })
        assert not check_ordering(program, good, capacity_bytes=150)

    def test_static_residency_violation(self):
        res = StageResources(weight_bytes=(400.0, 400.0),
                             activation_bytes=(1.0, 1.0))
        _, _, _, program = gpipe_p2(resources=res)
        ordering = ScheduleOrdering.from_program(program)
        violations = check_ordering(program, ordering, capacity_bytes=300)
        assert {v.kind for v in violations} == {"capacity"}
        assert any("static residency" in v.message for v in violations)

    def test_collective_order_violation(self):
        _, _, _, program = build("dapple")
        annotated = with_gradient_sync(
            program, {d: (d, d + 4) for d in range(4)},
            {s: 64.0 for s in range(4)})
        ordering = ScheduleOrdering.from_program(annotated)
        entries = list(ordering.entries(0))
        coll = next(e for e in entries if not isinstance(e, tuple))
        entries.remove(coll)
        entries.insert(0, coll)  # posted before any backward
        bad = ordering.replace_entries(0, entries)
        violations = check_ordering(annotated, bad)
        assert violations
        v = violations[0]
        assert v.kind == "collective-order"
        assert v.kind not in DEADLOCK_KINDS | OOM_KINDS
        assert "finalizes its gradient" in v.message
        # ...and a misplaced bucket still *replays* (collectives never
        # block) — the violation is semantic, not a deadlock
        oracle = AbstractCosts(COMM, 4, 4)
        result = simulate_ordering(annotated, bad.to_orders(), oracle)
        assert result.makespan > 0

    def test_capacity_needs_resources(self):
        _, _, _, program = gpipe_p2()
        with pytest.raises(SchedulingError, match="resource-annotated"):
            LegalityChecker(program, capacity_bytes=100)

    def test_frontier_needs_resources(self):
        _, _, _, program = gpipe_p2()
        ordering = ScheduleOrdering.from_program(program).with_frontier(1)
        with pytest.raises(SchedulingError, match="recompute frontier"):
            check_ordering(program, ordering)


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
class TestDeadlockReport:
    """Illegal-by-deadlock orderings fail loudly in both event cores,
    with a wait-cycle explanation — they must never hang."""

    def bad_program(self, prefetch):
        _, _, oracle, program = gpipe_p2(prefetch=prefetch)
        F, B = OpKind.FORWARD, OpKind.BACKWARD
        orders = {
            0: [(F, 0, 0), (B, 0, 0), (F, 1, 0), (B, 1, 0)],
            1: [(F, 0, 1), (F, 1, 1), (B, 1, 1), (B, 0, 1)],
        }
        return reorder_program(program, orders), oracle

    def test_lowered_core_reports_wait_cycle(self, prefetch):
        bad, oracle = self.bad_program(prefetch)
        with pytest.raises(SchedulingError) as err:
            execute_program(bad, oracle)
        assert "simulation deadlock" in str(err.value)
        assert "wait cycle" in str(err.value)
        assert "waits on" in str(err.value)

    def test_reference_core_raises_too(self, prefetch):
        bad, oracle = self.bad_program(prefetch)
        with pytest.raises(SchedulingError, match="deadlock"):
            execute_program_reference(bad, oracle)

    def test_contention_driver_reports_wait_cycle(self, prefetch):
        bad, oracle = self.bad_program(prefetch)
        run = RunConfig(prefetch=prefetch, batch_cross_comm=prefetch,
                        contention=True)
        with pytest.raises(SchedulingError, match="wait cycle"):
            execute_program(bad, oracle, run)

    def test_dep_inversion_reports_self_wait(self, prefetch):
        _, _, oracle, program = gpipe_p2(prefetch=True)
        ordering = ScheduleOrdering.from_program(program)
        entries = list(ordering.entries(0))
        bw = next(e for e in entries if e[0] is OpKind.BACKWARD)
        entries.remove(bw)
        entries.insert(0, bw)
        bad = reorder_program(
            program, ordering.replace_entries(0, entries).to_orders())
        with pytest.raises(SchedulingError, match="waits on d0"):
            execute_program(bad, oracle)


class TestVerdictMatchesReplay:
    """Legality verdict == replay behaviour, on targeted cases (the
    fuzz harness covers the breadth)."""

    def test_capacity_verdict_iff_oom(self):
        res = StageResources(weight_bytes=(0.0, 0.0),
                             activation_bytes=(100.0, 100.0))
        _, _, oracle, program = gpipe_p2(resources=res)
        bad = gpipe_like_ordering(program)
        assert {v.kind for v in
                check_ordering(program, bad, capacity_bytes=150)} \
            == {"capacity"}
        with pytest.raises(OutOfMemoryError):
            simulate_ordering(program, bad.to_orders(), oracle,
                              capacity_bytes=150)
        F, B = OpKind.FORWARD, OpKind.BACKWARD
        good = ScheduleOrdering.from_orders({
            0: [(F, 0, 0), (B, 0, 0), (F, 1, 0), (B, 1, 0)],
            1: [(F, 0, 1), (B, 0, 1), (F, 1, 1), (B, 1, 1)],
        })
        assert not check_ordering(program, good, capacity_bytes=150)
        result = simulate_ordering(program, good.to_orders(), oracle,
                                   capacity_bytes=150)
        assert result.makespan > 0


class TestCandidatePlan:
    def test_retime_shares_cost_column(self):
        cfg, sched, oracle, program = build("hanayo", num_waves=2)
        base = ExecutablePlan.lower(program, oracle)
        entry = PlanEntry(schedule=sched, program=program, plan=base)
        orders = ordering_entries(program)
        plan = candidate_plan(entry, orders)
        assert plan.comp_cost is base.comp_cost
        assert plan.plan_key == base.plan_key

    def test_unbound_when_no_costs_available(self):
        cfg, sched, _, program = build("gpipe")
        entry = PlanEntry(schedule=sched, program=program,
                          plan=ExecutablePlan.lower(program))
        plan = candidate_plan(entry, ordering_entries(program))
        assert not plan.bound
        assert plan.plan_key  # structural key needs no costs


class TestSearch:
    CONF = SearchConfig(seed=0, rounds=25, samples_per_round=16,
                        beam_width=4, patience=8, max_shift=4)

    def test_deterministic_same_seed(self):
        cfg = make_config("hanayo", 2, 4, num_waves=2)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 2, sched.num_stages)
        a = synthesize(sched, oracle, self.CONF, start="gpipe")
        b = synthesize(sched, oracle, self.CONF, start="gpipe")
        assert a.best.ordering == b.best.ordering
        assert a.best.makespan == b.best.makespan
        assert a.plan_key == b.plan_key
        assert ([s.mutation for s in a.best.provenance]
                == [s.mutation for s in b.best.provenance])

    def test_rediscovers_better_than_wave_start(self):
        """From a GPipe-disciplined start on Hanayo's placement, the
        search strictly beats the start — and here even the compiled
        hanayo-w2 family schedule (17.25 at this shape)."""
        cfg = make_config("hanayo", 2, 4, num_waves=2)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 2, sched.num_stages)
        compiled_makespan = simulate(sched, oracle).makespan
        conf = SearchConfig(seed=0, rounds=40, samples_per_round=24,
                            beam_width=4, patience=12, max_shift=6)
        res = synthesize(sched, oracle, conf, start="gpipe")
        assert res.improved
        assert res.best.makespan < res.start.makespan
        assert res.best.makespan <= compiled_makespan
        # provenance replays: applying the mutation path to the start
        # reproduces the best ordering exactly
        ordering = res.start.ordering
        for step in res.best.provenance:
            ordering = step.mutation.apply(ordering)
        assert ordering == res.best.ordering

    def test_never_worse_than_start(self):
        for scheme, kw in (("gpipe", {}), ("chimera", {}),
                           ("dapple", {})):
            cfg = make_config(scheme, 2, 4, **kw)
            sched = build_schedule(cfg, COMM)
            oracle = AbstractCosts(COMM, 2, sched.num_stages)
            res = synthesize(sched, oracle, self.CONF)
            assert res.best.makespan <= res.start.makespan

    def test_families_accepts_cost_factory(self):
        schedules = {}
        for scheme, kw in (("gpipe", {}), ("hanayo", {"num_waves": 2})):
            cfg = make_config(scheme, 2, 4, **kw)
            schedules[scheme] = build_schedule(cfg, COMM)
        results = synthesize_families(
            schedules,
            lambda s: AbstractCosts(COMM, 2, s.num_stages),
            SearchConfig(seed=0, rounds=5, samples_per_round=8,
                         beam_width=2, patience=3),
        )
        assert set(results) == set(schedules)
        for label, res in results.items():
            assert res.name == label
            assert res.best.feasible

    def test_illegal_start_raises(self):
        _, sched, oracle, program = gpipe_p2()
        ordering = ScheduleOrdering.from_program(program)
        entries = list(ordering.entries(0))
        bw = next(e for e in entries if e[0] is OpKind.BACKWARD)
        entries.remove(bw)
        entries.insert(0, bw)
        bad = ordering.replace_entries(0, entries)
        with pytest.raises(SynthesisError, match="dep-inversion"):
            synthesize(sched, oracle, self.CONF, start=bad)

    def test_capacity_cap_respected(self):
        res = StageResources(weight_bytes=(0.0, 0.0),
                             activation_bytes=(100.0, 100.0))
        cfg = make_config("gpipe", 2, 2)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 2, sched.num_stages)
        result = synthesize(sched, oracle, self.CONF, resources=res,
                            capacity_bytes=150)
        ctx = SynthesisContext(sched, oracle, resources=res,
                               capacity_bytes=150)
        assert ctx.evaluate(result.best.ordering) is not None


class TestSerialization:
    def _search(self, tmp_path):
        cfg = make_config("hanayo", 2, 4, num_waves=2)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 2, sched.num_stages)
        conf = SearchConfig(seed=3, rounds=20, samples_per_round=12,
                            beam_width=3, patience=8)
        res = synthesize(sched, oracle, conf, start="gpipe")
        payload = payload_for(res, cfg, COMM)
        path = save_schedule(tmp_path / "best.json", payload)
        return res, payload, path

    def test_round_trip_replays_consistently(self, tmp_path):
        res, payload, path = self._search(tmp_path)
        report = replay_payload(load_schedule(path))
        assert report.consistent
        assert report.makespan == res.best.makespan
        assert report.bubble_ratio == res.best.bubble_ratio
        assert report.plan_key == res.plan_key

    def test_payload_carries_provenance(self, tmp_path):
        res, payload, path = self._search(tmp_path)
        assert payload["seed"] == 3
        assert len(payload["provenance"]) == len(res.best.provenance)
        for raw, step in zip(payload["provenance"], res.best.provenance):
            assert raw["mutation"] == step.mutation.payload()

    def test_plan_key_mismatch_fails_loudly(self, tmp_path):
        _, payload, path = self._search(tmp_path)
        data = json.loads(path.read_text())
        data["plan_key"] = "0" * 64
        with pytest.raises(SynthesisError, match="plan key mismatch"):
            replay_payload(data)

    def test_unknown_format_rejected(self, tmp_path):
        _, payload, _ = self._search(tmp_path)
        payload = dict(payload, format=99)
        with pytest.raises(SynthesisError, match="format"):
            replay_payload(payload)

    def test_tampered_ordering_detected(self, tmp_path):
        """Editing the serialized ordering either breaks legality or
        changes the plan key — it can never silently replay."""
        _, payload, path = self._search(tmp_path)
        data = json.loads(path.read_text())
        entries = data["orders"]["0"]
        entries[0], entries[-1] = entries[-1], entries[0]
        with pytest.raises(SynthesisError):
            replay_payload(data)

    def test_infeasible_best_not_serializable(self):
        import dataclasses as dc

        cfg = make_config("gpipe", 2, 2)
        sched = build_schedule(cfg, COMM)
        oracle = AbstractCosts(COMM, 2, sched.num_stages)
        res = synthesize(sched, oracle,
                         SearchConfig(seed=0, rounds=2,
                                      samples_per_round=4, beam_width=2,
                                      patience=2))
        broken = dc.replace(
            res, best=dc.replace(res.best, makespan=float("inf")))
        with pytest.raises(SynthesisError, match="infeasible"):
            payload_for(broken, cfg, COMM)


class TestCli:
    def test_synthesize_command_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "schedule.json"
        rc = main([
            "synthesize", "--scheme", "hanayo", "-w", "2", "-p", "2",
            "-b", "4", "--t-c", "0.25", "--start", "gpipe",
            "--rounds", "20", "--samples", "12", "--beam", "3",
            "--patience", "8", "--provenance", "-o", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "synthesize[hanayo-w2]" in printed
        assert out.exists()
        rc = main(["synthesize", "--replay", str(out)])
        assert rc == 0
        assert "consistent" in capsys.readouterr().out

    def test_all_families_table(self, capsys):
        from repro.cli import main

        rc = main([
            "synthesize", "--all-families", "-p", "2", "-b", "4",
            "--t-c", "0.25", "--rounds", "5", "--samples", "8",
            "--beam", "2", "--patience", "3",
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "winner:" in printed
        assert "hanayo-w2" in printed


class TestValidationWitness:
    def test_check_executable_reports_concrete_cycle(self):
        from repro.schedules.validation import residual_cycle

        out = {"a": ["b"], "b": ["c"], "c": ["a"], "d": []}
        indeg = {"a": 1, "b": 1, "c": 1, "d": 0}
        cycle = residual_cycle(out, indeg)
        assert sorted(cycle) == ["a", "b", "c"]
        # consecutive hops are edges, and the cycle closes
        for x, y in zip(cycle, cycle[1:] + cycle[:1]):
            assert y in out[x]

    def test_residual_cycle_empty_when_acyclic(self):
        from repro.schedules.validation import residual_cycle

        assert residual_cycle({"a": ["b"], "b": []},
                              {"a": 0, "b": 0}) == []
