"""Engine executor error paths, the schedule factory, misc edge cases."""

import numpy as np
import pytest

from repro.actions.ops import CommKind, Tag
from repro.actions.program import compile_program
from repro.config import CostConfig, PipelineConfig
from repro.engine import PeerNetwork, PipelineTrainer, build_stages, make_batch
from repro.engine.executor import EngineExecutor
from repro.errors import ConfigError, EngineError
from repro.models import tiny_model
from repro.schedules import build_schedule
from repro.schedules.factory import build_schedule as factory_build

from conftest import make_config

SPEC = tiny_model(num_layers=4, hidden=16, heads=2, seq_len=6, vocab=32)


def make_executor(device=0, scheme="dapple", p=2, b=2, **data):
    cfg = make_config(scheme, p, b)
    sched = build_schedule(cfg)
    stages = build_stages(SPEC, sched.num_stages, seed=0)
    chunks = {
        sched.placement.chunk_of(s, r): stages[s]
        for s, r in sched.placement.stages_on(device)
    }
    inputs, targets = make_batch(SPEC, b, seed=0)
    return EngineExecutor(
        device=device,
        program=compile_program(sched),
        stages=chunks,
        network=PeerNetwork(p, timeout_s=0.2),
        microbatch_inputs=data.get("inputs", inputs if device == 0 else {}),
        microbatch_targets=data.get(
            "targets", targets if device == p - 1 else {}
        ),
    )


class TestExecutorErrors:
    def test_missing_input_binding(self):
        ex = make_executor(device=0, inputs={})
        with pytest.raises(EngineError, match="no input bound"):
            ex.compute_forward(0, 0, 0)

    def test_missing_target_binding(self):
        ex = make_executor(device=1, targets={})
        # fake the received activation so the stage can run
        tag = Tag(CommKind.ACTIVATION, 0, 0)
        ex._tensors[tag] = np.zeros((1, SPEC.seq_len, SPEC.hidden))
        with pytest.raises(EngineError, match="no targets bound"):
            ex.compute_forward(0, 1, 0)

    def test_forward_without_received_activation(self):
        ex = make_executor(device=1)
        with pytest.raises(EngineError, match="not received"):
            ex.compute_forward(0, 1, 0)

    def test_backward_before_loss(self):
        ex = make_executor(device=1)
        with pytest.raises(EngineError, match="before its loss"):
            ex.compute_backward(0, 1, 0)

    def test_send_before_produce(self):
        ex = make_executor(device=0)
        with pytest.raises(EngineError, match="before it was produced"):
            ex.post_send(1, Tag(CommKind.ACTIVATION, 0, 0))

    def test_unknown_chunk(self):
        ex = make_executor(device=0)
        with pytest.raises(EngineError, match="no chunk"):
            ex.compute_forward(0, 0, 7)

    def test_flush_with_live_activations(self):
        ex = make_executor(device=0)
        ex.compute_forward(0, 0, 0)
        with pytest.raises(EngineError, match="live activations"):
            ex.flush()

    def test_mean_loss_requires_last_stage(self):
        ex = make_executor(device=0)
        with pytest.raises(EngineError, match="final stage"):
            ex.mean_loss()

    def test_mean_loss_on_final_stage(self):
        ex = make_executor(device=1)
        tag = Tag(CommKind.ACTIVATION, 0, 0)
        rng = np.random.default_rng(0)
        ex._tensors[tag] = rng.normal(size=(1, SPEC.seq_len, SPEC.hidden))
        ex.compute_forward(0, 1, 0)
        assert ex.mean_loss() > 0


class TestFactory:
    def test_every_scheme_dispatches(self):
        for scheme in ("gpipe", "dapple", "interleaved", "gems",
                       "chimera", "chimera-wave", "hanayo", "async-1f1b"):
            cfg = PipelineConfig(scheme=scheme, num_devices=4,
                                 num_microbatches=4, num_waves=2)
            sched = factory_build(cfg, CostConfig())
            assert sched.op_count() > 0

    def test_factory_names_match_scheme(self):
        sched = factory_build(make_config("hanayo", 4, 4, num_waves=3))
        assert sched.name == "hanayo-w3"


class TestTrainerHungWorkerDetection:
    def test_corrupted_action_list_raises_not_hangs(self):
        """Removing one Recv leaves a worker waiting on a channel that
        times out — surfacing as an EngineError, never a hang."""
        cfg = make_config("dapple", 2, 2)
        trainer = PipelineTrainer(SPEC, cfg, seed=0, timeout_s=0.3)
        from repro.actions import Recv
        for device, actions in trainer.actions.items():
            idx = next((i for i, a in enumerate(actions)
                        if isinstance(a, Recv)), None)
            if idx is not None:
                del actions[idx]
                break
        inputs, targets = make_batch(SPEC, 2, seed=0)
        with pytest.raises(EngineError):
            trainer.train_step(inputs, targets)


class TestUseSchedule:
    def test_custom_schedule_recompiles_program(self):
        cfg = make_config("dapple", 2, 2)
        trainer = PipelineTrainer(SPEC, cfg, seed=0)
        before = trainer.program
        trainer.use_schedule(build_schedule(cfg))
        assert trainer.program is not before
        inputs, targets = make_batch(SPEC, 2, seed=0)
        assert trainer.train_step(inputs, targets).loss > 0

    def test_shape_mismatch_rejected(self):
        """Stage modules are sized by the constructor; a schedule with a
        different shape must fail loudly here, not inside a worker."""
        cfg = make_config("dapple", 2, 2)
        trainer = PipelineTrainer(SPEC, cfg, seed=0)
        other = build_schedule(make_config("gpipe", 2, 4))
        with pytest.raises(EngineError, match="num_microbatches"):
            trainer.use_schedule(other)


class TestSingleDevicePipeline:
    def test_p1_schedules_run(self):
        """A one-device pipeline degenerates to sequential execution."""
        for scheme in ("gpipe", "dapple"):
            cfg = PipelineConfig(scheme=scheme, num_devices=1,
                                 num_microbatches=3)
            trainer = PipelineTrainer(SPEC, cfg, seed=2)
            inputs, targets = make_batch(SPEC, 3, seed=4)
            res = trainer.train_step(inputs, targets)
            assert res.messages_sent == 0
            assert res.loss > 0
