"""CI glue: doctests and example scripts stay runnable.

Wired into the tier-1 entry point (plain ``pytest``): a nested
``pytest --doctest-modules`` pass over the package front door and the
sweep package (whose docstrings double as the quickstart docs), plus a
smoke run of ``examples/quickstart.py`` — so the README's first
commands can never rot silently.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def test_doctest_modules_pass():
    """`pytest --doctest-modules` over repro/__init__.py and repro.sweep."""
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--doctest-modules", "-q",
         "-p", "no:cacheprovider",
         str(SRC / "repro" / "__init__.py"),
         str(SRC / "repro" / "sweep")],
        cwd=REPO, env=_env(), text=True, capture_output=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "passed" in proc.stdout


def test_quickstart_example_runs():
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / "quickstart.py")],
        cwd=REPO, env=_env(), text=True, capture_output=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bubble ratio" in proc.stdout
    assert "versus the baselines" in proc.stdout


def test_sweep_cli_help_lists_command():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        cwd=REPO, env=_env(), text=True, capture_output=True,
    )
    assert proc.returncode == 0
    assert "sweep" in proc.stdout
