"""Schedule generators: structure, policy shape, and validation."""

import pytest

from repro.config import CostConfig, PipelineConfig
from repro.errors import ConfigError, SchedulingError, ValidationError
from repro.schedules import (
    Schedule,
    async_1f1b_schedule,
    build_schedule,
    chimera_schedule,
    dapple_schedule,
    gpipe_schedule,
    hanayo_schedule,
    max_staleness,
    validate,
    weight_versions,
)
from repro.schedules.base import Schedule as ScheduleBase
from repro.schedules.placement import LinearPlacement
from repro.types import OpKind

from conftest import ALL_SCHEMES, make_config, scheme_id


@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
@pytest.mark.parametrize("p,b", [(2, 2), (4, 4), (4, 8), (8, 8)])
class TestAllGeneratorsStructural:
    def test_valid_and_complete(self, param, p, b):
        scheme, kw = param
        sched = build_schedule(make_config(scheme, p, b, **kw))
        validate(sched)

    def test_op_count(self, param, p, b):
        scheme, kw = param
        sched = build_schedule(make_config(scheme, p, b, **kw))
        assert sched.op_count() == 2 * b * sched.num_stages


class TestGPipe:
    def test_all_forwards_before_backwards(self):
        sched = gpipe_schedule(make_config("gpipe", 4, 6))
        for ops in sched.device_ops.values():
            kinds = [op.kind for op in ops]
            first_b = kinds.index(OpKind.BACKWARD)
            assert all(k is OpKind.FORWARD for k in kinds[:first_b])
            assert all(k is OpKind.BACKWARD for k in kinds[first_b:])

    def test_microbatch_fifo(self):
        sched = gpipe_schedule(make_config("gpipe", 4, 6))
        for ops in sched.device_ops.values():
            fwd = [o.microbatch for o in ops if o.kind is OpKind.FORWARD]
            assert fwd == sorted(fwd)

    def test_wrong_scheme_rejected(self):
        with pytest.raises(ConfigError):
            gpipe_schedule(make_config("dapple", 4, 4))


class TestDapple:
    @pytest.mark.parametrize("p,b", [(4, 4), (4, 8), (8, 8), (2, 6)])
    def test_warmup_depth(self, p, b):
        sched = dapple_schedule(make_config("dapple", p, b))
        for d, ops in sched.device_ops.items():
            kinds = [op.kind for op in ops]
            warmup = kinds.index(OpKind.BACKWARD)
            assert warmup == min(b, p - d)

    def test_strict_alternation_in_steady_state(self):
        sched = dapple_schedule(make_config("dapple", 4, 8))
        ops = sched.device_ops[3]  # last device: warmup of 1
        kinds = "".join(o.kind.short for o in ops)
        assert kinds == "F" + "BF" * 7 + "B"

    def test_in_flight_bound(self):
        """Live activations on device d never exceed P - d."""
        p, b = 4, 8
        sched = dapple_schedule(make_config("dapple", p, b))
        for d, ops in sched.device_ops.items():
            live = 0
            peak = 0
            for op in ops:
                live += 1 if op.kind is OpKind.FORWARD else -1
                peak = max(peak, live)
            assert peak == min(b, p - d)


class TestHanayo:
    def test_stage_count_scales_with_waves(self):
        for w in (1, 2, 3):
            sched = hanayo_schedule(make_config("hanayo", 4, 4, num_waves=w))
            assert sched.num_stages == 8 * w

    def test_wave_front_runs_early(self):
        """Micro-batch 0's last-stage forward precedes later micro-batches'
        mid-pipeline work on the same device (the wave rolls)."""
        sched = hanayo_schedule(make_config("hanayo", 4, 4, num_waves=1))
        ops0 = sched.device_ops[0]
        idx_last_f_m0 = next(
            i for i, o in enumerate(ops0)
            if o.kind is OpKind.FORWARD and o.microbatch == 0
            and o.stage == sched.num_stages - 1
        )
        first_backward = next(
            i for i, o in enumerate(ops0) if o.kind is OpKind.BACKWARD
        )
        assert idx_last_f_m0 < first_backward

    def test_live_chunk_cap_respected(self):
        """Live chunk activations per device stay within the 2WP budget
        (plus the wave-front exemption for already-open micro-batches,
        which adds at most the device's chunk count)."""
        p, b, w = 4, 12, 2
        sched = hanayo_schedule(make_config("hanayo", p, b, num_waves=w))
        budget = 2 * w * p
        chunks_per_device = 2 * w
        # Already-open micro-batches are exempt from the admission cap,
        # so the instantaneous peak can exceed the budget by a few
        # in-flight chunks; two device-loads bounds that slack.
        for d, ops in sched.device_ops.items():
            live = 0
            peak = 0
            for op in ops:
                live += 1 if op.kind is OpKind.FORWARD else -1
                peak = max(peak, live)
            assert peak <= budget + 2 * chunks_per_device

    def test_custom_cap_too_small_deadlocks_cleanly(self):
        with pytest.raises(SchedulingError, match="deadlock"):
            hanayo_schedule(make_config("hanayo", 4, 4, num_waves=1),
                            open_cap=0)


class TestChimera:
    def test_replica_split(self):
        sched = chimera_schedule(make_config("chimera", 4, 8))
        assert all(sched.replica_of(m) == 0 for m in range(4))
        assert all(sched.replica_of(m) == 1 for m in range(4, 8))

    def test_each_device_runs_both_directions(self):
        sched = chimera_schedule(make_config("chimera", 4, 4))
        for ops in sched.device_ops.values():
            assert {op.replica for op in ops} == {0, 1}

    def test_symmetric_makespan_shape(self):
        """The two directions do equal work on mirrored devices."""
        sched = chimera_schedule(make_config("chimera", 4, 4))
        for d in range(4):
            ops_d = sched.device_ops[d]
            ops_m = sched.device_ops[3 - d]
            assert len(ops_d) == len(ops_m)


class TestAsync1F1B:
    def test_multi_iteration_stream(self):
        cfg = make_config("async-1f1b", 4, 4)
        sched = async_1f1b_schedule(cfg, iterations=3)
        assert sched.num_microbatches == 12
        validate(sched)

    def test_weight_versions_monotone_per_device(self):
        sched = async_1f1b_schedule(make_config("async-1f1b", 4, 4),
                                    iterations=2)
        for d in range(4):
            versions = [s.version for s in weight_versions(sched)
                        if s.device == d]
            assert versions == sorted(versions)

    def test_staleness_grows_with_depth(self):
        shallow = async_1f1b_schedule(make_config("async-1f1b", 2, 8))
        deep = async_1f1b_schedule(make_config("async-1f1b", 8, 8))
        assert max_staleness(deep) > max_staleness(shallow)

    def test_bad_iterations(self):
        with pytest.raises(ConfigError):
            async_1f1b_schedule(make_config("async-1f1b", 4, 4), iterations=0)


class TestValidationRejects:
    def _toy(self) -> Schedule:
        cfg = make_config("gpipe", 2, 2)
        return gpipe_schedule(cfg)

    def test_missing_op(self):
        sched = self._toy()
        sched.device_ops[0].pop()
        with pytest.raises(ValidationError, match="missing"):
            validate(sched)

    def test_duplicate_op(self):
        sched = self._toy()
        sched.device_ops[0].append(sched.device_ops[0][0])
        with pytest.raises(ValidationError, match="duplicated"):
            validate(sched)

    def test_wrong_device(self):
        sched = self._toy()
        op = sched.device_ops[0][0]
        sched.device_ops[0][0] = op.with_device(1)
        with pytest.raises(ValidationError):
            validate(sched)

    def test_cyclic_order(self):
        """Backward scheduled before its own forward on one device."""
        sched = self._toy()
        ops = sched.device_ops[1]
        b = next(o for o in ops if o.kind is OpKind.BACKWARD)
        f = next(o for o in ops if o.kind is OpKind.FORWARD
                 and o.microbatch == b.microbatch)
        i, j = ops.index(f), ops.index(b)
        ops[i], ops[j] = ops[j], ops[i]
        with pytest.raises(ValidationError, match="cyclic"):
            validate(sched)

    def test_find_missing_op(self):
        sched = self._toy()
        with pytest.raises(SchedulingError, match="not found"):
            sched.find(OpKind.FORWARD, 99, 0)
