"""Lowering round-trip and plan semantics (actions/lowering.py).

The ExecutablePlan is only allowed to change *representation*, never
meaning: it must decode back to the source Program action-for-action
across every schedule family and compile mode, carry the program's
resource deltas verbatim, key structurally identical programs equally,
and re-time against new oracles without touching structure.
"""

from __future__ import annotations

import pytest

from repro.actions import (
    CollectiveOp,
    ExecutablePlan,
    compile_program,
)
from repro.analysis import compile_cluster_program
from repro.cluster import make_fc
from repro.config import CostConfig, PipelineConfig, RunConfig
from repro.errors import SchedulingError
from repro.models import tiny_model
from repro.models.costs import stage_costs
from repro.runtime import (
    AbstractCosts,
    ConcreteCosts,
    execute_plan,
    execute_program,
)
from repro.runtime.costs import CostOracle
from repro.types import OpKind

from conftest import ALL_SCHEMES, make_config, scheme_id

P = B = 4


@pytest.mark.parametrize("prefetch", [True, False], ids=["pf", "nopf"])
@pytest.mark.parametrize("batching", [True, False], ids=["batch", "nobatch"])
@pytest.mark.parametrize("param", ALL_SCHEMES, ids=scheme_id)
class TestRoundTrip:
    def test_decode_matches_program_action_for_action(
        self, param, prefetch, batching
    ):
        """The satellite acceptance: every family × prefetch mode
        decodes from the flat arrays back to the exact source lists."""
        from repro.schedules import build_schedule

        scheme, kw = param
        cfg = make_config(scheme, P, B, **kw)
        program = compile_program(build_schedule(cfg), prefetch=prefetch,
                                  batch_cross_comm=batching)
        plan = ExecutablePlan.lower(program)
        assert plan.decode() == program.actions
        assert plan.n_actions == program.action_count()
        assert plan.n_computes == program.compute_count()

    def test_plan_key_stable_and_structural(self, param, prefetch, batching):
        """Two independent lowerings of the same program share a key;
        the key is a hex digest (content hash, seed-independent)."""
        from repro.schedules import build_schedule

        scheme, kw = param
        cfg = make_config(scheme, P, B, **kw)
        sched = build_schedule(cfg)
        k1 = ExecutablePlan.lower(
            compile_program(sched, prefetch=prefetch,
                            batch_cross_comm=batching)).plan_key
        k2 = ExecutablePlan.lower(
            compile_program(sched, prefetch=prefetch,
                            batch_cross_comm=batching)).plan_key
        assert k1 == k2
        assert len(k1) == 64 and int(k1, 16) >= 0


class TestPlanKey:
    def _key(self, scheme="gpipe", b=B, prefetch=True):
        from repro.schedules import build_schedule

        cfg = make_config(scheme, P, b)
        return ExecutablePlan.lower(
            compile_program(build_schedule(cfg), prefetch=prefetch)
        ).plan_key

    def test_key_separates_structures(self):
        base = self._key()
        assert base != self._key(scheme="dapple")
        assert base != self._key(b=B * 2)
        assert base != self._key(prefetch=False)

    def test_key_process_stable(self):
        """sha256 over canonical content — re-lowered keys are equal in
        this process and, by construction, across PYTHONHASHSEEDs."""
        assert self._key() == self._key()


class TestCollectivesRoundTrip:
    def _dp_program(self):
        from repro.schedules import build_schedule

        cluster = make_fc(8)
        model = tiny_model(num_layers=16)
        cfg = PipelineConfig(scheme="hanayo", num_devices=4,
                             num_microbatches=4, data_parallel=2)
        sched = build_schedule(cfg)
        costs = stage_costs(model, sched.num_stages, cluster.device, 1)
        return compile_cluster_program(sched, cluster, costs, d=2), costs

    def test_collective_program_round_trips(self):
        program, _ = self._dp_program()
        assert any(isinstance(a, CollectiveOp)
                   for acts in program.actions.values() for a in acts)
        plan = ExecutablePlan.lower(program)
        assert plan.decode() == program.actions
        assert len(plan.coll_ops) > 0

    def test_resource_deltas_match_program(self):
        program, _ = self._dp_program()
        plan = ExecutablePlan.lower(program)
        for cid, key in enumerate(plan.comp_keys):
            assert plan.comp_alloc[cid] == program.alloc_bytes(key)
            assert plan.comp_free[cid] == program.free_bytes(key)
            if key[0] is OpKind.FORWARD:
                assert plan.comp_alloc[cid] > 0.0


class TestBindingAndRetime:
    def _plan_and_oracles(self):
        from repro.schedules import build_schedule

        cfg = make_config("chimera", P, B)
        sched = build_schedule(cfg)
        program = compile_program(sched)
        slow = AbstractCosts(CostConfig(t_c=0.5), P, sched.num_stages)
        fast = AbstractCosts(CostConfig(t_f=0.5, t_b=1.0, t_c=0.1), P,
                             sched.num_stages)
        return program, slow, fast

    def test_unbound_plan_refuses_execution(self):
        program, _, _ = self._plan_and_oracles()
        plan = ExecutablePlan.lower(program)
        assert not plan.bound
        with pytest.raises(SchedulingError, match="not cost-bound"):
            execute_plan(plan)

    def test_retime_shares_structure(self):
        program, slow, fast = self._plan_and_oracles()
        plan = ExecutablePlan.lower(program, slow)
        again = plan.retime(fast)
        assert again.comp_ops is plan.comp_ops
        assert again.dep_ptr is plan.dep_ptr
        assert again.codes is plan.codes
        assert again.plan_key == plan.plan_key
        assert again.costs is fast

    def test_retimed_plan_matches_fresh_execution(self):
        """Cost-only re-binding must equal lowering from scratch —
        the contract the sweep plan cache rests on."""
        program, slow, fast = self._plan_and_oracles()
        run = RunConfig(contention=True)
        cached = ExecutablePlan.lower(program, slow)
        via_retime = execute_plan(cached.retime(fast), run)
        fresh = execute_program(program, fast, run)
        assert via_retime.timeline.spans == fresh.timeline.spans
        assert via_retime.recv_wait == fresh.recv_wait
        assert via_retime.comm == fresh.comm
        assert via_retime.device_end == fresh.device_end

    def test_wire_interning_follows_global_ranks(self):
        """Wires live in global-rank space: a spaced rank map must not
        alias distinct physical links onto one wire id."""
        program, slow, _ = self._plan_and_oracles()

        class Spaced(AbstractCosts):
            def global_rank(self, device: int) -> int:
                return device * 2

        spaced = Spaced(CostConfig(t_c=0.5), P, program.num_stages)
        plan = ExecutablePlan.lower(program, slow)
        respaced = plan.retime(spaced)
        assert respaced.global_ranks == (0, 2, 4, 6)
        assert respaced.n_wires == plan.n_wires  # same pair structure

    def test_unknown_device_decode_raises(self):
        program, slow, _ = self._plan_and_oracles()
        plan = ExecutablePlan.lower(program, slow)
        with pytest.raises(SchedulingError, match="no device 99"):
            plan.decode_actions(99)


class TestLazyDurations:
    def test_completed_run_resolves_each_compute_once(self):
        from repro.schedules import build_schedule

        calls = []

        class Counting(AbstractCosts):
            def duration(self, op):
                calls.append(op)
                return super().duration(op)

        cfg = make_config("dapple", P, B)
        sched = build_schedule(cfg)
        program = compile_program(sched)
        oracle = Counting(CostConfig(), P, sched.num_stages)
        plan = ExecutablePlan.lower(program, oracle)
        execute_plan(plan)
        assert len(calls) == program.compute_count()
        # a second execution of the same bound plan reuses the column
        execute_plan(plan)
        assert len(calls) == program.compute_count()
