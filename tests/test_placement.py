"""Stage placements: linear, snake, cyclic, mirror."""

import pytest

from repro.errors import ConfigError
from repro.schedules import (
    CyclicPlacement,
    LinearPlacement,
    MirrorPlacement,
    SnakePlacement,
)


class TestLinear:
    def test_identity(self):
        p = LinearPlacement(4)
        assert [p.device_of(s) for s in range(4)] == [0, 1, 2, 3]
        assert all(p.chunk_of(s) == 0 for s in range(4))

    def test_no_local_boundaries(self):
        p = LinearPlacement(4)
        assert not any(p.is_local_boundary(s) for s in range(4))

    def test_out_of_range(self):
        p = LinearPlacement(4)
        with pytest.raises(ConfigError):
            p.device_of(4)
        with pytest.raises(ConfigError):
            p.device_of(-1)


class TestSnake:
    def test_one_wave_fold(self):
        p = SnakePlacement(4, 1)
        # down pass 0..3, up pass 4..7
        assert [p.device_of(s) for s in range(8)] == [0, 1, 2, 3, 3, 2, 1, 0]

    def test_turns_are_local(self):
        p = SnakePlacement(4, 2)
        turns = [s for s in range(p.num_stages - 1) if p.is_local_boundary(s)]
        # 2W - 1 = 3 turns for W=2: at stages 3, 11 (device ends) and 7 (device 0)
        assert len(turns) == 2 * 2 - 1
        for s in turns:
            assert p.device_of(s) == p.device_of(s + 1)

    def test_chunks_per_device(self):
        p = SnakePlacement(4, 3)
        for d in range(4):
            assert p.chunks_on(d) == 6

    def test_chunk_order_matches_pass_order(self):
        p = SnakePlacement(4, 2)
        stages = [s for s, _ in p.stages_on(0)]
        assert stages == sorted(stages)  # device sees its stages in pass order

    def test_every_stage_placed_once(self):
        p = SnakePlacement(3, 2)
        placed = [s for d in range(3) for s, _ in p.stages_on(d)]
        assert sorted(placed) == list(range(12))

    def test_bad_waves(self):
        with pytest.raises(ConfigError):
            SnakePlacement(4, 0)


class TestCyclic:
    def test_round_robin(self):
        p = CyclicPlacement(4, 2)
        assert [p.device_of(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_wrap_boundary_not_local(self):
        p = CyclicPlacement(4, 2)
        # stage 3 -> 4 goes device 3 -> device 0: a cross-device hop
        assert not p.is_local_boundary(3)

    def test_chunk_indices(self):
        p = CyclicPlacement(4, 3)
        assert p.chunk_of(0) == 0
        assert p.chunk_of(4) == 1
        assert p.chunk_of(8) == 2


class TestMirror:
    def test_opposing_directions(self):
        p = MirrorPlacement(4)
        assert [p.device_of(s, 0) for s in range(4)] == [0, 1, 2, 3]
        assert [p.device_of(s, 1) for s in range(4)] == [3, 2, 1, 0]

    def test_two_chunks_per_device(self):
        p = MirrorPlacement(4)
        for d in range(4):
            pairs = p.stages_on(d)
            assert len(pairs) == 2
            replicas = {r for _, r in pairs}
            assert replicas == {0, 1}

    def test_replica_out_of_range(self):
        p = MirrorPlacement(4)
        with pytest.raises(ConfigError):
            p.device_of(0, 2)
