"""Runtime metrics and the byte-accurate memory tracker."""

import pytest

from repro.config import CostConfig
from repro.errors import OutOfMemoryError
from repro.models import A100_40G, bert_64, stage_costs
from repro.runtime import (
    AbstractCosts,
    bubble_stats,
    memory_stats,
    simulate,
    static_memory,
    steady_state_bubble_ratio,
    throughput_seq_per_s,
)
from repro.schedules import build_schedule

from conftest import ALL_SCHEMES, make_config, scheme_id


def simulated(scheme, p=4, b=4, **kw):
    cfg = make_config(scheme, p, b, **kw)
    sched = build_schedule(cfg)
    res = simulate(sched, AbstractCosts(CostConfig(), p, sched.num_stages))
    return sched, res


class TestBubbleStats:
    def test_idle_plus_busy_equals_makespan(self):
        _, res = simulated("dapple")
        stats = bubble_stats(res.timeline)
        for d in stats.busy:
            assert stats.busy[d] + stats.idle[d] == pytest.approx(
                stats.makespan
            )

    def test_ratio_in_unit_interval(self):
        for scheme, kw in ALL_SCHEMES:
            _, res = simulated(scheme, **kw)
            r = bubble_stats(res.timeline).bubble_ratio
            assert 0.0 <= r < 1.0, scheme

    def test_steady_state_lower_than_full_for_async(self):
        from repro.schedules import async_1f1b_schedule
        cfg = make_config("async-1f1b", 4, 4)
        sched = async_1f1b_schedule(cfg, iterations=6)
        res = simulate(sched, AbstractCosts(CostConfig(), 4, 4))
        full = bubble_stats(res.timeline).bubble_ratio
        steady = steady_state_bubble_ratio(res.timeline)
        assert steady < full
        assert steady < 0.05  # async steady state is bubble-free


class TestThroughput:
    def test_throughput_formula(self):
        assert throughput_seq_per_s(2.0, 8, 2, data_parallel=2) == 16.0

    def test_overhead_reduces(self):
        base = throughput_seq_per_s(2.0, 8, 1)
        slower = throughput_seq_per_s(2.0, 8, 1, overhead_s=1.0)
        assert slower < base

    def test_zero_makespan_rejected(self):
        with pytest.raises(ValueError):
            throughput_seq_per_s(0.0, 8, 1)


class TestMemoryTracker:
    def _mem(self, scheme, p=4, b=4, **kw):
        sched, res = simulated(scheme, p, b, **kw)
        costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
        return memory_stats(sched, res.timeline, costs), sched, costs

    def test_static_includes_all_resident_stages(self):
        mem, sched, costs = self._mem("hanayo", num_waves=2)
        per_stage = costs.weight_bytes[0]
        for d, static in mem.static_bytes.items():
            assert static == pytest.approx(
                per_stage * sched.placement.chunks_on(d)
            )

    def test_chimera_static_doubled(self):
        mem_c, _, costs = self._mem("chimera")
        mem_d, _, _ = self._mem("dapple")
        assert mem_c.static_bytes[0] == pytest.approx(
            2 * mem_d.static_bytes[0]
        )

    def test_peaks_at_least_static(self):
        for scheme, kw in ALL_SCHEMES:
            mem, _, _ = self._mem(scheme, **kw)
            for d in mem.peak_bytes:
                assert mem.peak_bytes[d] >= mem.static_bytes[d]

    def test_gpipe_holds_all_microbatches(self):
        """GPipe peak activation = B x one stage's activation."""
        mem, sched, costs = self._mem("gpipe", 4, 6)
        act = mem.peak_bytes[0] - mem.static_bytes[0]
        assert act == pytest.approx(6 * costs.activation_bytes[0])

    def test_dapple_skew(self):
        """Device 0 peaks at P activations, the last device at 1."""
        mem, sched, costs = self._mem("dapple", 4, 8)
        act0 = mem.peak_bytes[0] - mem.static_bytes[0]
        act3 = mem.peak_bytes[3] - mem.static_bytes[3]
        assert act0 == pytest.approx(4 * costs.activation_bytes[0])
        assert act3 == pytest.approx(1 * costs.activation_bytes[3])

    def test_variance_ordering_matches_paper(self):
        """Fig. 8: DAPPLE most skewed; GPipe flat; Hanayo in between,
        closer to flat."""
        var = {}
        for scheme, kw in [("gpipe", {}), ("dapple", {}),
                           ("hanayo", {"num_waves": 2})]:
            mem, _, _ = self._mem(scheme, 8, 8, **kw)
            var[scheme] = mem.variance
        assert var["dapple"] > var["hanayo"] > var["gpipe"]

    def test_oom_detection(self):
        mem, _, _ = self._mem("gpipe", 4, 8)
        tiny_capacity = int(mem.highest_peak * 0.5)
        with pytest.raises(OutOfMemoryError) as exc:
            mem.check_capacity(tiny_capacity)
        assert exc.value.peak_bytes > exc.value.capacity_bytes
        assert not mem.fits(tiny_capacity)
        assert mem.fits(int(mem.highest_peak) + 1)

    def test_static_memory_helper(self):
        sched, _ = simulated("dapple")
        costs = stage_costs(bert_64(), sched.num_stages, A100_40G)
        static = static_memory(sched, costs)
        assert set(static) == set(range(4))
