"""The evaluation harness: throughput, config search, scaling."""

import pytest

from repro.analysis import (
    best_config,
    dp_allreduce_seconds,
    feasible_waves,
    layouts_for,
    measure_throughput,
    parallel_efficiency,
    search_grid,
    speedup,
    strong_scaling,
    weak_scaling,
)
from repro.cluster import get_cluster, make_fc, make_tacc
from repro.errors import ConfigError
from repro.models import bert_64, gpt_128, tiny_model


@pytest.fixture(scope="module")
def fc8():
    return make_fc(8)


class TestMeasureThroughput:
    def test_basic_fields(self, fc8):
        r = measure_throughput("dapple", fc8, bert_64(), p=8,
                               num_microbatches=8)
        assert r.seq_per_s > 0
        assert 0 < r.bubble_ratio < 1
        assert r.peak_mem_bytes > 0
        assert not r.oom
        assert "dapple" in r.describe()

    def test_layout_exceeding_cluster(self, fc8):
        with pytest.raises(ConfigError, match="exceeds"):
            measure_throughput("dapple", fc8, bert_64(), p=8,
                               num_microbatches=8, d=2)

    def test_hanayo_beats_baselines_on_fc(self, fc8):
        base = measure_throughput("dapple", fc8, bert_64(), p=8,
                                  num_microbatches=8)
        wave = measure_throughput("hanayo", fc8, bert_64(), p=8,
                                  num_microbatches=8, w=2)
        assert wave.seq_per_s > base.seq_per_s

    def test_oom_reported_not_raised(self):
        """A model far too big for the modeled GPU returns OOM."""
        cluster = make_tacc(8)  # 40 GB cards
        huge = bert_64()
        r = measure_throughput("gpipe", cluster, huge, p=8,
                               num_microbatches=32, microbatch_size=8)
        assert r.oom
        assert r.seq_per_s is None
        assert r.oom_device is not None
        assert "OOM" in r.describe()

    def test_memory_enforcement_optional(self):
        cluster = make_tacc(8)
        r = measure_throughput("gpipe", cluster, bert_64(), p=8,
                               num_microbatches=32, microbatch_size=8,
                               enforce_memory=False)
        assert not r.oom

    def test_dp_overhead_positive(self, fc8):
        assert dp_allreduce_seconds(fc8, 4, 2, 1e9) > 0
        assert dp_allreduce_seconds(fc8, 4, 1, 1e9) == 0


class TestSearch:
    def test_feasible_waves_gated_by_layers(self):
        m = bert_64()  # 66 partitionable layers
        assert feasible_waves(m, 8) == [1, 2, 4]  # W=8 needs 128 stages
        assert feasible_waves(m, 4) == [1, 2, 4, 8]

    def test_grid_searches_waves_for_hanayo(self, fc8):
        cells = search_grid("hanayo", fc8, bert_64(),
                            layouts=((8, 1), (4, 2)),
                            total_batch=16)
        waves_seen = {(c.p, c.w) for c in cells}
        assert (8, 2) in waves_seen and (4, 4) in waves_seen

    def test_split_batch_rules(self):
        from repro.analysis.search import split_batch
        assert split_batch(16, 2, 4, "dapple") == (4, 2)  # B defaults to P
        assert split_batch(32, 1, 4, "dapple", target_microbatches=8) == (8, 4)
        assert split_batch(1, 2, 4, "dapple") is None
        # fairness: D must divide the total batch exactly
        assert split_batch(10, 4, 4, "dapple") is None
        # fairness: b rebalances to a divisor instead of dropping work
        assert split_batch(48, 2, 4, "dapple", target_microbatches=16) == (12, 2)
        # bidirectional needs an even micro-batch count; an odd
        # per-pipeline batch has no fair even split and is rejected
        assert split_batch(6, 2, 4, "chimera") is None
        assert split_batch(12, 2, 4, "chimera") == (2, 3)
        assert split_batch(1, 1, 4, "chimera") is None

    def test_split_batch_never_drops_work(self):
        """Every accepted cell processes exactly total_batch sequences."""
        from repro.analysis.search import split_batch
        for scheme in ("dapple", "chimera"):
            for total in range(1, 65):
                for d in (1, 2, 3, 4):
                    for target in (None, 8, 16):
                        shape = split_batch(total, d, 4, scheme, target)
                        if shape is None:
                            continue
                        b, mb = shape
                        assert b * mb * d == total, (scheme, total, d, target)
                        if scheme == "chimera":
                            assert b % 2 == 0

    def test_best_config_skips_oom(self):
        cluster = make_tacc(8)
        cells = search_grid("gpipe", cluster, bert_64(),
                            layouts=((8, 1),),
                            total_batch=256, target_microbatches=32)
        assert all(c.result.oom for c in cells)
        with pytest.raises(ConfigError, match="OOM"):
            best_config(cells)

    def test_layouts_for(self):
        assert layouts_for(32) == ((32, 1), (16, 2), (8, 4), (4, 8))
        assert layouts_for(8) == ((8, 1), (4, 2))


class TestScaling:
    def test_weak_scaling_throughput_grows(self):
        out = weak_scaling(("dapple", "hanayo"), make_tacc, gpt_128(),
                           device_counts=(4, 8), base_batch=8)
        for scheme, points in out.items():
            tps = [p.throughput for p in points]
            assert tps[1] > tps[0], scheme

    def test_weak_scaling_efficiency_near_one(self):
        out = weak_scaling(("hanayo",), make_tacc, gpt_128(),
                           device_counts=(4, 8), base_batch=8)
        effs = parallel_efficiency(out["hanayo"])
        assert all(e > 0.8 for e in effs)

    def test_strong_scaling_speedup(self):
        out = strong_scaling(("hanayo",), make_tacc, gpt_128(),
                             device_counts=(4, 8), total_batch=8)
        s = speedup(out["hanayo"])
        assert s[0] == pytest.approx(1.0)
        assert s[1] > 1.0

    def test_empty_points_handled(self):
        assert parallel_efficiency([]) == []
        assert speedup([]) == []
