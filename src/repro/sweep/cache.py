"""Deterministic on-disk result cache for sweep measurements.

Every measurement is keyed by a SHA-256 **content hash** of everything
that determines its outcome: the scheme, a canonical fingerprint of the
cluster (device model + every interconnect link), a fingerprint of the
model spec, the shape ``(P, D, W, B, microbatch size)``, and the
measurement options.  The hash is computed from a canonical JSON
serialisation, so it is stable across processes, interpreter restarts
and ``PYTHONHASHSEED`` values — two hosts sweeping the same grid hit
the same keys.

Records are one JSON file per key under the cache root.  Writes are
atomic (temp file + ``os.replace``); unreadable or schema-mismatched
entries are treated as misses and deleted, so a corrupted cache heals
itself on the next run.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import itertools
import json
import os
import pathlib
import threading

from ..cluster.presets import Cluster
from ..config import PipelineConfig
from ..models.spec import ModelSpec
from ..analysis.throughput import ThroughputResult

#: bump when record layout or fingerprint semantics change; old entries
#: then read as misses instead of deserialising wrongly
#: (2: memory-as-a-resource — records carry ``statically_pruned``, keys
#: carry ``capacity_bytes``, OOM peaks are abort-time watermarks;
#: 3: collectives-in-the-IR — keys carry ``tp`` and the ``overlap``
#: mode instead of the retired ``dp_overlap`` constant, records carry
#: the measured sync/overlap columns;
#: 4: lowered-plan era — measurements execute ``ExecutablePlan``\ s
#: through the plan cache and the fingerprint set grew the hybrid
#: harness + plan-cache sources, so pre-lowering entries are retired
#: wholesale;
#: 5: schedule synthesis — the reorder compile path joins ``actions/``
#: and the fingerprint set grows ``synthesis/`` (searched orderings
#: feed simulated measurements), retiring pre-synthesis entries)
#: 6: batched execution — sweep cells sharing a structure are measured
#: through the lockstep stepper (``runtime/batched.py``), a new code
#: path between cached records and the event core
#: 7: cross-structure batching — hybrid TP > 1 units and
#: contention-mode lanes execute through the lockstep stepper, and
#: batch units span congruent structures (cross-model lanes), all new
#: code paths between cached records and the event core
CACHE_VERSION = 8

#: package-relative sources whose behaviour determines a measurement;
#: their content is hashed into every cache key so editing the cost
#: model, a schedule generator, or the *execution semantics* — the
#: action compiler / program IR / **plan lowering** under ``actions/``
#: and the event-driven core under ``runtime/`` (``events.py``,
#: ``events_ref.py``, ``simulator.py``) — invalidates old entries
#: automatically instead of serving stale numbers.  Directories are
#: hashed recursively, so new execution modules (e.g.
#: ``actions/lowering.py``) are covered the day they land.
_MEASUREMENT_SOURCES = (
    "config.py",
    "models",
    "cluster",
    "schedules",
    "actions",
    "runtime",
    "analysis/throughput.py",
    "analysis/hybrid.py",
    "analysis/plans.py",
    "synthesis",
)


def fingerprint_files() -> list[pathlib.Path]:
    """Every source file folded into :func:`code_fingerprint`, sorted.

    Exposed so tests can pin coverage: a measurement-semantics module
    (e.g. ``actions/program.py`` or ``runtime/events.py``) missing from
    this list would mean stale caches survive a semantics change.
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    files: list[pathlib.Path] = []
    for target in _MEASUREMENT_SOURCES:
        path = root / target
        files.extend(sorted(path.rglob("*.py")) if path.is_dir() else [path])
    return files


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the source of everything that feeds a measurement.

    Computed once per process from the installed package's files, so a
    durable cache (e.g. ``benchmarks/.sweep_cache``) turns into misses
    — not silently stale hits — the moment simulator, execution-IR or
    cost-model code changes.
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for source in fingerprint_files():
        label = (source.relative_to(root) if source.is_relative_to(root)
                 else source.name)
        digest.update(str(label).encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def model_fingerprint(model: ModelSpec) -> dict:
    """All architecture fields that feed the cost model."""
    return dataclasses.asdict(model)


def cluster_fingerprint(cluster: Cluster) -> dict:
    """Device model plus the full canonical link list.

    Two clusters with the same name but different topologies (or device
    memory) must never share cache entries.
    """
    return {
        "name": cluster.name,
        "gpus_per_node": cluster.gpus_per_node,
        "num_devices": cluster.num_devices,
        "device": dataclasses.asdict(cluster.device),
        "links": [
            [a, b, link.name, link.bandwidth, link.latency]
            for a, b, link in cluster.topology.links()
        ],
    }


def cache_key(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    *,
    p: int,
    d: int,
    w: int,
    num_microbatches: int,
    microbatch_size: int,
    tp: int = 1,
    overlap: str = "simulated",
    enforce_memory: bool = True,
    capacity_bytes: int | None = None,
    contention: bool = False,
    cluster_fp: dict | None = None,
    model_fp: dict | None = None,
) -> str:
    """64-hex-char content hash identifying one measurement.

    ``cluster_fp`` / ``model_fp`` accept precomputed fingerprints so
    bulk callers (the sweep engine) hash each cluster and model once
    per run instead of once per grid cell.

    >>> from repro.cluster import make_fc
    >>> from repro.models import tiny_model
    >>> shape = dict(p=4, d=1, w=1, num_microbatches=4, microbatch_size=2)
    >>> k1 = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
    >>> k2 = cache_key("gpipe", make_fc(4), tiny_model(), **shape)
    >>> k1 == k2 and len(k1) == 64
    True
    >>> k1 != cache_key("dapple", make_fc(4), tiny_model(), **shape)
    True
    """
    payload = {
        "version": CACHE_VERSION,
        "code": code_fingerprint(),
        "scheme": scheme,
        "cluster": cluster_fp if cluster_fp is not None
        else cluster_fingerprint(cluster),
        "model": model_fp if model_fp is not None
        else model_fingerprint(model),
        "shape": {
            "p": p, "d": d, "w": w, "tp": tp,
            "num_microbatches": num_microbatches,
            "microbatch_size": microbatch_size,
        },
        "options": {
            "overlap": overlap,
            "enforce_memory": enforce_memory,
            "capacity_bytes": capacity_bytes,
            "contention": contention,
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_to_record(result: ThroughputResult) -> dict:
    """Flatten a :class:`ThroughputResult` to a JSON-safe dict."""
    cfg = result.config
    return {
        "scheme": cfg.scheme,
        "p": cfg.num_devices,
        "b": cfg.num_microbatches,
        "w": cfg.num_waves,
        "d": cfg.data_parallel,
        "microbatch_size": cfg.microbatch_size,
        "cluster_name": result.cluster_name,
        "model_name": result.model_name,
        "seq_per_s": result.seq_per_s,
        "bubble_ratio": result.bubble_ratio,
        "peak_mem_bytes": result.peak_mem_bytes,
        "iteration_s": result.iteration_s,
        "oom_device": result.oom_device,
        "statically_pruned": result.statically_pruned,
        "sync_s": result.sync_s,
        "sync_exposed_s": result.sync_exposed_s,
        "sync_overlap": result.sync_overlap,
        "sync_model_s": result.sync_model_s,
        "overlap_mode": result.overlap_mode,
    }


def infeasible_record(error: str) -> dict:
    """Record for a cell ``measure_throughput`` rejected outright."""
    return {"infeasible": True, "error": error}


def record_to_result(record: dict) -> ThroughputResult | None:
    """Rebuild a :class:`ThroughputResult`; ``None`` for infeasible cells."""
    if record.get("infeasible"):
        return None
    cfg = PipelineConfig(
        scheme=record["scheme"],
        num_devices=record["p"],
        num_microbatches=record["b"],
        num_waves=record["w"],
        data_parallel=record["d"],
        microbatch_size=record["microbatch_size"],
    )
    return ThroughputResult(
        config=cfg,
        cluster_name=record["cluster_name"],
        model_name=record["model_name"],
        seq_per_s=record["seq_per_s"],
        bubble_ratio=record["bubble_ratio"],
        peak_mem_bytes=record["peak_mem_bytes"],
        iteration_s=record["iteration_s"],
        oom_device=record["oom_device"],
        statically_pruned=record.get("statically_pruned", False),
        sync_s=record.get("sync_s", 0.0),
        sync_exposed_s=record.get("sync_exposed_s", 0.0),
        sync_overlap=record.get("sync_overlap"),
        sync_model_s=record.get("sync_model_s", 0.0),
        overlap_mode=record.get("overlap_mode", "simulated"),
    )


class ResultCache:
    """A directory of JSON measurement records, one file per key.

    Safe for concurrent use from many threads (and, as before, many
    processes): reads and writes of the record files are already atomic
    at the filesystem level (``os.replace``), temp-file names carry the
    writing thread and a per-process sequence number so two threads
    persisting the same key never collide on a staging file, and the
    hit/miss/write counters are maintained under a lock so the serving
    layer can report them consistently.
    """

    _seq = itertools.count()

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._lock = threading.Lock()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or ``None`` on miss.

        A file that cannot be parsed, carries the wrong version, or was
        stored under a different key is deleted and reported as a miss.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return self._miss()
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return self._miss()
        if (not isinstance(entry, dict)
                or entry.get("version") != CACHE_VERSION
                or entry.get("key") != key
                or not isinstance(entry.get("record"), dict)):
            self._discard(path)
            return self._miss()
        with self._lock:
            self.hits += 1
        return entry["record"]

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, record: dict) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self.path_for(key)
        tmp = path.with_name(
            f".tmp-{key}-{os.getpid()}-{threading.get_ident()}"
            f"-{next(self._seq)}")
        entry = {"version": CACHE_VERSION, "key": key, "record": record}
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)
        with self._lock:
            self.writes += 1

    def _discard(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in self.root.glob("*.json"):
            self._discard(path)
            n += 1
        return n

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
