"""Declarative sweep specifications.

A :class:`SweepSpec` names a full cartesian grid of throughput
measurements — schemes × clusters × models × (P, D) layouts × total
batch sizes, with the wave dimension searched automatically for Hanayo
— and :meth:`SweepSpec.expand` lowers it to concrete
:class:`SweepPoint`\\ s, one per ``measure_throughput`` invocation.

The expansion owns the Sec. 5.3 **fairness rule**: every grid cell must
process exactly the same number of sequences so throughputs are
comparable.  :func:`split_batch` therefore rejects layouts whose
data-parallel degree does not divide the total batch, and rebalances
the micro-batch count to an exact divisor of the per-pipeline batch
instead of silently dropping remainder sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.throughput import OVERLAP_MODES
from ..cluster.presets import Cluster
from ..config import KNOWN_SCHEMES
from ..errors import ConfigError
from ..models.spec import ModelSpec

#: wave counts the paper explores (H-2 / H-4 / H-8 in Fig. 9)
DEFAULT_WAVES = (1, 2, 4, 8)

#: schemes that run micro-batches in two directions and therefore need
#: an even micro-batch count
BIDIRECTIONAL_SCHEMES = ("chimera", "chimera-wave", "gems")


def feasible_waves(model: ModelSpec, p: int,
                   waves: tuple[int, ...] = DEFAULT_WAVES) -> list[int]:
    """Wave counts with at least one layer per stage.

    >>> from repro.models import bert_64
    >>> feasible_waves(bert_64(), 8)     # W=8 would need 128 stages
    [1, 2, 4]
    """
    total_layers = model.num_layers + 2  # embedding + head
    return [w for w in waves if 2 * w * p <= total_layers]


def split_batch(total_batch: int, d: int, p: int, scheme: str,
                target_microbatches: int | None = None) -> tuple[int, int] | None:
    """(num_microbatches, microbatch_size) for one pipeline shard.

    Enforces the Sec. 5.3 fairness rule: a cell is only valid when its
    ``D`` pipelines can each process exactly ``total_batch / D``
    sequences, split into micro-batches with **no remainder** — so
    every searched cell does identical work and throughputs compare.

    Returns ``None`` when the layout cannot host the batch fairly:
    ``D`` does not divide the total batch, there are fewer sequences
    than pipelines, or a bidirectional scheme cannot get an even
    micro-batch count.

    The micro-batch count ``b`` is the largest divisor of the
    per-pipeline batch that does not exceed the target (``P`` by
    default, the paper's ``B = P`` regime), rather than a blunt
    ``min(per_pipeline, target)`` that could drop sequences:

    >>> split_batch(16, 2, 4, "dapple")      # 8 per pipeline, B = P
    (4, 2)
    >>> split_batch(48, 2, 4, "dapple", target_microbatches=16)
    (12, 2)
    >>> split_batch(1, 2, 4, "dapple") is None   # fewer seqs than shards
    True
    >>> split_batch(10, 4, 4, "dapple") is None  # 4 does not divide 10
    True
    >>> split_batch(6, 2, 4, "chimera") is None  # odd per-pipeline batch
    True
    >>> split_batch(12, 2, 4, "chimera")         # even split exists
    (2, 3)
    """
    if d < 1 or total_batch < d or total_batch % d:
        return None
    per_pipeline = total_batch // d
    target = target_microbatches if target_microbatches else p
    need_even = scheme in BIDIRECTIONAL_SCHEMES
    for b in range(min(per_pipeline, target), 0, -1):
        if per_pipeline % b:
            continue
        if need_even and b % 2:
            continue
        return b, per_pipeline // b
    return None


@dataclass(frozen=True)
class SweepPoint:
    """One concrete measurement: a cell of the expanded sweep grid.

    ``cluster_index`` / ``model_index`` refer back into the owning
    spec's tuples, keeping points small and hashable.
    """

    scheme: str
    cluster_index: int
    model_index: int
    p: int
    d: int
    w: int
    num_microbatches: int
    microbatch_size: int
    total_batch: int
    tp: int = 1


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of throughput measurements.

    Attributes
    ----------
    schemes:
        Pipeline schemes to evaluate (see ``repro.config.KNOWN_SCHEMES``).
    clusters:
        :class:`~repro.cluster.presets.Cluster` objects to evaluate on.
    models:
        :class:`~repro.models.spec.ModelSpec` objects to evaluate.
    layouts:
        ``(P, D)`` pairs — pipeline depth × data-parallel width — or
        ``(P, D, TP)`` triples that pin a cell to one tensor-parallel
        degree.  Pairs are crossed with every ``tensor_parallel``
        degree; triples are not (the CLI's ``--dp``/``--tp`` layout
        derivation uses triples so each degree gets exactly the
        pipeline depth that fills the cluster).
    total_batches:
        Total sequences per iteration for the whole job; each layout
        splits a total batch per the Sec. 5.3 fairness rule.
    waves:
        Wave counts searched for Hanayo (other schemes run ``W = 1``).
    tensor_parallel:
        Tensor-parallel degrees to cross with every layout (default:
        TP = 1 only).  Cells with TP > 1 run through the hybrid
        harness; layouts whose ``TP * P * D`` exceeds a cluster, or
        whose TP degree exceeds the node size, are skipped (or raise,
        per ``skip_oversized``).
    target_microbatches:
        Preferred micro-batch count per pipeline (default: ``P``).
    overlap / enforce_memory / capacity_bytes:
        Forwarded to ``measure_throughput``.  ``overlap`` selects how
        gradient-sync time is charged: ``"simulated"`` (measured from
        compiled collectives by the event core) or ``"model"`` (the
        analytic closed-form fallback).  ``capacity_bytes`` overrides
        each cluster device's memory for capacity what-ifs (the
        ``repro sweep --capacity-gib`` knob); ``None`` uses the
        device's own capacity.
    contention:
        Arbitrate shared links during simulation (the ``repro sweep
        --contention`` knob).  Contended cells still batch: lanes whose
        wire grants leave structural order go through the time-ordered
        vector replay instead of falling back scalar.
    skip_oversized:
        When true (the default), layouts that do not fit a cluster are
        silently dropped — useful for one spec spanning clusters of
        different sizes.  When false, :meth:`expand` raises
        :class:`~repro.errors.ConfigError` instead.

    >>> from repro.cluster import make_fc
    >>> from repro.models import tiny_model
    >>> spec = SweepSpec(schemes=("gpipe", "hanayo"),
    ...                  clusters=(make_fc(4),),
    ...                  models=(tiny_model(num_layers=16),),
    ...                  layouts=((4, 1),), total_batches=(8,),
    ...                  waves=(1, 2))
    >>> points = spec.expand()
    >>> [(pt.scheme, pt.w) for pt in points]   # waves searched for Hanayo
    [('gpipe', 1), ('hanayo', 1), ('hanayo', 2)]
    >>> points[0].num_microbatches, points[0].microbatch_size
    (4, 2)
    """

    schemes: tuple[str, ...]
    clusters: tuple[Cluster, ...]
    models: tuple[ModelSpec, ...]
    layouts: tuple[tuple[int, int], ...]
    total_batches: tuple[int, ...]
    waves: tuple[int, ...] = DEFAULT_WAVES
    tensor_parallel: tuple[int, ...] = (1,)
    target_microbatches: int | None = None
    overlap: str = "simulated"
    enforce_memory: bool = True
    capacity_bytes: int | None = None
    contention: bool = False
    skip_oversized: bool = True

    def __post_init__(self) -> None:
        for name in ("schemes", "clusters", "models", "layouts",
                     "total_batches", "waves", "tensor_parallel"):
            if not getattr(self, name):
                raise ConfigError(f"sweep spec has empty {name}")
        for scheme in self.schemes:
            if scheme not in KNOWN_SCHEMES:
                raise ConfigError(
                    f"unknown scheme {scheme!r}; expected one of {KNOWN_SCHEMES}"
                )
        for layout in self.layouts:
            if (len(layout) not in (2, 3) or any(v < 1 for v in layout)):
                raise ConfigError(
                    f"bad layout {layout!r}; want (P, D) or (P, D, TP) >= 1"
                )
        for tp in self.tensor_parallel:
            if tp < 1:
                raise ConfigError(f"tensor-parallel degree {tp} must be >= 1")
        if self.overlap not in OVERLAP_MODES:
            raise ConfigError(
                f"unknown overlap mode {self.overlap!r}; expected one of "
                f"{OVERLAP_MODES}"
            )
        if self.capacity_bytes is not None and self.capacity_bytes < 1:
            raise ConfigError("capacity_bytes must be >= 1 (or None)")

    @property
    def grid_size(self) -> int:
        """Upper bound on the cell count before feasibility filtering."""
        return (len(self.schemes) * len(self.clusters) * len(self.models)
                * len(self.layouts) * len(self.total_batches)
                * len(self.tensor_parallel) * max(len(self.waves), 1))

    def expand(self) -> list[SweepPoint]:
        """Lower the grid to feasible :class:`SweepPoint` s, in a
        deterministic order (clusters, models, schemes, batches,
        layouts, TP degrees, waves — slowest to fastest)."""
        points: list[SweepPoint] = []
        for ci, cluster in enumerate(self.clusters):
            for mi, model in enumerate(self.models):
                for scheme in self.schemes:
                    for total_batch in self.total_batches:
                        for layout in self.layouts:
                            p, d = layout[0], layout[1]
                            tp_options = (
                                (layout[2],) if len(layout) == 3
                                else self.tensor_parallel
                            )
                            for tp in tp_options:
                                points.extend(self._expand_cell(
                                    ci, cluster, mi, model, scheme,
                                    total_batch, p, d, tp,
                                ))
        return points

    def _expand_cell(self, ci, cluster, mi, model, scheme,
                     total_batch, p, d, tp) -> list[SweepPoint]:
        if tp * p * d > cluster.num_devices or tp > cluster.gpus_per_node:
            if self.skip_oversized or tp > 1:
                # TP degrees are a crossed axis: a degree that does not
                # fit one layout may fit the next, so oversized hybrid
                # cells are always dropped rather than fatal.
                return []
            raise ConfigError(
                f"layout ({p},{d}) exceeds cluster {cluster.name}"
            )
        shape = split_batch(total_batch, d, p, scheme,
                            self.target_microbatches)
        if shape is None:
            return []
        b, mb_size = shape
        wave_options = (feasible_waves(model, p, self.waves)
                        if scheme == "hanayo" else [1])
        return [
            SweepPoint(
                scheme=scheme, cluster_index=ci, model_index=mi,
                p=p, d=d, w=w, num_microbatches=b,
                microbatch_size=mb_size, total_batch=total_batch,
                tp=tp,
            )
            for w in wave_options
        ]

    def describe(self) -> str:
        return (f"sweep[{'/'.join(self.schemes)} on "
                f"{'/'.join(c.name for c in self.clusters)} x "
                f"{'/'.join(m.name for m in self.models)}; "
                f"{len(self.layouts)} layouts, "
                f"batches {'/'.join(map(str, self.total_batches))}]")
