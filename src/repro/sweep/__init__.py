"""repro.sweep — the parallel, cached configuration-sweep engine.

The paper's evaluation (Figs. 9–12) is thousands of calls into one
function, ``measure_throughput``, over a grid of schemes, clusters,
models, ``(P, D)`` layouts, wave counts and batch sizes.  This package
makes that grid a first-class workload:

* :class:`SweepSpec` declares the grid; expansion applies the Sec. 5.3
  fairness rule (:func:`split_batch`) and Hanayo's wave feasibility.
* :func:`run_sweep` executes it — misses fan out over a
  ``multiprocessing`` pool, and every result lands in a
  :class:`ResultCache` keyed by a content hash of scheme + cluster +
  model + shape, so re-runs and overlapping benchmarks are near-free.
* :class:`SweepTable` holds the results with best-cell queries and
  CSV/JSON export; ``repro sweep`` exposes the whole thing on the CLI.

End to end, on a tiny model so it runs anywhere::

    >>> from repro.cluster import make_fc
    >>> from repro.models import tiny_model
    >>> from repro.sweep import SweepSpec, run_sweep
    >>> spec = SweepSpec(schemes=("gpipe", "dapple"),
    ...                  clusters=(make_fc(4),), models=(tiny_model(),),
    ...                  layouts=((4, 1), (2, 2)), total_batches=(8,))
    >>> table = run_sweep(spec)
    >>> table.stats.describe()
    '4 cells: 4 computed, 0 cached, 0 infeasible'
    >>> sorted({(r.scheme, r.p, r.d) for r in table})
    [('dapple', 2, 2), ('dapple', 4, 1), ('gpipe', 2, 2), ('gpipe', 4, 1)]
    >>> best = table.best(scheme="dapple")
    >>> best.throughput > 0
    True
"""

from .cache import (
    CACHE_VERSION,
    ResultCache,
    cache_key,
    cluster_fingerprint,
    code_fingerprint,
    fingerprint_files,
    model_fingerprint,
    record_to_result,
    result_to_record,
)
from .engine import point_key, run_sweep
from .spec import (
    BIDIRECTIONAL_SCHEMES,
    DEFAULT_WAVES,
    SweepPoint,
    SweepSpec,
    feasible_waves,
    split_batch,
)
from .table import EXPORT_FIELDS, SweepRow, SweepStats, SweepTable

__all__ = [
    "BIDIRECTIONAL_SCHEMES",
    "CACHE_VERSION",
    "DEFAULT_WAVES",
    "EXPORT_FIELDS",
    "ResultCache",
    "SweepPoint",
    "SweepRow",
    "SweepSpec",
    "SweepStats",
    "SweepTable",
    "cache_key",
    "cluster_fingerprint",
    "code_fingerprint",
    "fingerprint_files",
    "feasible_waves",
    "model_fingerprint",
    "point_key",
    "record_to_result",
    "result_to_record",
    "run_sweep",
    "split_batch",
]
