"""Structured sweep results: filtering, best-cell queries, export.

A :class:`SweepTable` is the engine's output — one :class:`SweepRow`
per feasible grid cell, in deterministic spec-expansion order, plus a
:class:`SweepStats` accounting of where each result came from (fresh
computation, cache hit, or infeasible).  Tables render to aligned text,
CSV and JSON so benches and the CLI share one formatting path.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..analysis.throughput import ThroughputResult
from ..errors import ConfigError

#: flat export schema, also the CSV header
EXPORT_FIELDS = (
    "scheme", "cluster", "model", "p", "d", "w", "tp",
    "num_microbatches", "microbatch_size", "total_batch",
    "seq_per_s", "bubble_ratio", "peak_mem_gib", "iteration_s",
    "sync_overlap", "oom", "cached",
)


@dataclass
class SweepStats:
    """Where the sweep's results came from."""

    total: int = 0        #: grid cells expanded from the spec
    computed: int = 0     #: fresh ``measure_throughput`` evaluations
    cached: int = 0       #: cells served from the result cache
    infeasible: int = 0   #: cells ``measure_throughput`` rejected
    #: OOM cells rejected by the O(P) static-memory pre-check — these
    #: never entered the event loop (cached or fresh alike)
    pruned: int = 0

    def describe(self) -> str:
        text = (f"{self.total} cells: {self.computed} computed, "
                f"{self.cached} cached, {self.infeasible} infeasible")
        if self.pruned:
            text += f", {self.pruned} OOM-pruned without simulating"
        return text


@dataclass(frozen=True)
class SweepRow:
    """One measured cell of a sweep grid."""

    scheme: str
    cluster: str
    model: str
    p: int
    d: int
    w: int
    num_microbatches: int
    microbatch_size: int
    total_batch: int
    result: ThroughputResult
    cached: bool = False
    tp: int = 1

    @property
    def oom(self) -> bool:
        return self.result.oom

    @property
    def throughput(self) -> float:
        """Sequences/second; 0 for OOM cells so ``max`` never picks them."""
        return self.result.seq_per_s if self.result.seq_per_s else 0.0

    def to_dict(self) -> dict:
        peak = self.result.peak_mem_bytes
        return {
            "scheme": self.scheme,
            "cluster": self.cluster,
            "model": self.model,
            "p": self.p,
            "d": self.d,
            "w": self.w,
            "tp": self.tp,
            "num_microbatches": self.num_microbatches,
            "microbatch_size": self.microbatch_size,
            "total_batch": self.total_batch,
            "seq_per_s": self.result.seq_per_s,
            "bubble_ratio": self.result.bubble_ratio,
            "peak_mem_gib": None if peak is None else peak / 2**30,
            "iteration_s": self.result.iteration_s,
            "sync_overlap": self.result.sync_overlap,
            "oom": self.oom,
            "cached": self.cached,
        }


@dataclass
class SweepTable:
    """Results of one sweep run, in spec-expansion order."""

    rows: list[SweepRow] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # -- queries ---------------------------------------------------------

    def filter(self, **criteria) -> "SweepTable":
        """Rows whose attributes equal every criterion.

        ``table.filter(scheme="hanayo", p=8)`` keeps Hanayo cells with
        an 8-deep pipeline; stats are carried over unchanged.
        """
        for name in criteria:
            if name not in SweepRow.__dataclass_fields__:
                raise ConfigError(f"unknown sweep filter field {name!r}")
        rows = [r for r in self.rows
                if all(getattr(r, k) == v for k, v in criteria.items())]
        return SweepTable(rows=rows, stats=self.stats)

    def best(self, **criteria) -> SweepRow:
        """Highest-throughput non-OOM row matching ``criteria``."""
        alive = [r for r in self.filter(**criteria).rows if not r.oom]
        if not alive:
            raise ConfigError(
                f"no live sweep cell matches {criteria!r} "
                "(every candidate OOMs or none exists)"
            )
        return max(alive, key=lambda r: r.throughput)

    def best_per(self, attr: str) -> dict:
        """Best live row per distinct value of ``attr``.

        ``table.best_per("scheme")`` maps each scheme to its winning
        cell — the Fig. 9–12 reduction.  Groups with no live cell are
        omitted.
        """
        if attr not in SweepRow.__dataclass_fields__:
            raise ConfigError(f"unknown sweep field {attr!r}")
        out: dict = {}
        for row in self.rows:
            if row.oom:
                continue
            key = getattr(row, attr)
            if key not in out or row.throughput > out[key].throughput:
                out[key] = row
        return out

    def sorted_rows(self) -> list[SweepRow]:
        """Rows by descending throughput, OOM cells last."""
        return sorted(self.rows, key=lambda r: r.throughput, reverse=True)

    # -- export ----------------------------------------------------------

    def to_csv(self, path: str | pathlib.Path | None = None) -> str:
        """Render as CSV; optionally also write to ``path``."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=EXPORT_FIELDS)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row.to_dict())
        text = buf.getvalue()
        if path is not None:
            pathlib.Path(path).write_text(text)
        return text

    def to_json(self, path: str | pathlib.Path | None = None) -> str:
        """Render rows + stats as JSON; optionally write to ``path``."""
        payload = {
            "stats": vars(self.stats),
            "rows": [row.to_dict() for row in self.rows],
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        if path is not None:
            pathlib.Path(path).write_text(text)
        return text

    def format(self, title: str | None = None,
               top: int | None = None) -> str:
        """Aligned text table, best cells first."""
        rows = self.sorted_rows()
        if top is not None:
            rows = rows[:top]
        body = [
            [r.scheme, r.cluster, r.model, r.p, r.d, r.w, r.tp,
             r.num_microbatches, r.microbatch_size,
             None if r.oom else f"{r.throughput:.2f}",
             ("" if r.result.sync_overlap is None
              else f"{r.result.sync_overlap * 100:.0f}%"),
             "*" if r.cached else ""]
            for r in rows
        ]
        return format_table(
            ["scheme", "cluster", "model", "P", "D", "W", "TP", "B",
             "mb", "seq/s", "sync-ovl", "hit"],
            body, title=title,
        )
