"""The sweep executor: cache lookups, worker-pool fan-out, assembly.

:func:`run_sweep` takes a declarative :class:`~repro.sweep.spec.SweepSpec`
and produces a :class:`~repro.sweep.table.SweepTable`:

1. expand the spec to concrete grid cells,
2. resolve each cell against the on-disk cache (when one is given),
3. group the misses into work units — cells that share every
   *structural* axis (scheme, P, B, micro-batch size, D, W, TP) and
   differ only in cost axes (cluster, model) become one **batch unit**
   measured in lockstep — TP = 1 units via
   :func:`repro.analysis.measure_throughput_batch`, TP > 1 units via
   :func:`repro.analysis.measure_hybrid_throughput_batch` — while lone
   cells stay scalar,
4. fan the units out over a ``multiprocessing`` pool (``workers > 1``)
   or evaluate them inline — process sharding keeps structural variety
   across workers, lockstep batching amortizes within one,
5. persist fresh results — including *infeasible* verdicts, so re-runs
   skip the whole grid — and assemble rows in spec order.

Every actual measurement goes through this module's
``measure_throughput`` / ``measure_throughput_batch`` globals, so tests
can wrap them with call counters to prove that a warm cache performs
**zero** simulator work (and that batch units really batch).

Below the result cache sits a second, in-process reuse layer: the
measurement harnesses share compiled programs + lowered
:class:`~repro.actions.ExecutablePlan` objects through
:func:`repro.analysis.plan_cache`, so cache-missing cells that differ
only in cost axes (the cluster) re-time one plan per structure instead
of recompiling — per worker process, since the cache is process-global.
``repro sweep --profile`` surfaces the per-cell build/lower/simulate
split this produces.
"""

from __future__ import annotations

import multiprocessing

from .. import profiling
from ..analysis.hybrid import (
    HybridLayout,
    HybridRequest,
    measure_hybrid_throughput,
    measure_hybrid_throughput_batch,
)
from ..analysis.throughput import (
    ThroughputRequest,
    measure_throughput,
    measure_throughput_batch,
)
from ..config import RunConfig
from ..errors import ConfigError
from .cache import (
    ResultCache,
    cache_key,
    cluster_fingerprint,
    infeasible_record,
    model_fingerprint,
    record_to_result,
    result_to_record,
)
from .spec import SweepPoint, SweepSpec
from .table import SweepRow, SweepStats, SweepTable

__all__ = [
    "MAX_WORKERS",
    "assemble_table",
    "evaluate_unit_requests",
    "point_key",
    "run_sweep",
    "unit_requests",
]

#: cap on pool size; one process per cell is never useful beyond this
MAX_WORKERS = 32


def _evaluate(job: tuple) -> tuple[int, dict]:
    """Measure one grid cell; must stay module-level (pool pickling).

    TP = 1 cells run the flat throughput harness; TP > 1 cells run the
    hybrid harness — both compile their collectives into the program
    and share the overlap accounting.
    """
    (index, point, cluster, model, overlap, enforce_memory,
     capacity_bytes, contention) = job
    run = RunConfig(contention=contention)
    label = (f"{point.scheme}/{cluster.name}/{model.name} "
             f"P{point.p} D{point.d} TP{point.tp} W{point.w} "
             f"B{point.num_microbatches}x{point.microbatch_size}")
    try:
        with profiling.cell(label):
            if point.tp > 1:
                result = measure_hybrid_throughput(
                    point.scheme, cluster, model,
                    HybridLayout(tp=point.tp, p=point.p, d=point.d),
                    num_microbatches=point.num_microbatches, w=point.w,
                    microbatch_size=point.microbatch_size,
                    run=run, overlap=overlap,
                    enforce_memory=enforce_memory,
                    capacity_bytes=capacity_bytes,
                )
            else:
                result = measure_throughput(
                    point.scheme, cluster, model,
                    p=point.p, d=point.d, w=point.w,
                    num_microbatches=point.num_microbatches,
                    microbatch_size=point.microbatch_size,
                    run=run, overlap=overlap,
                    enforce_memory=enforce_memory,
                    capacity_bytes=capacity_bytes,
                )
    except ConfigError as exc:
        return index, infeasible_record(str(exc))
    return index, result_to_record(result)


def unit_requests(unit: list[tuple]) -> list:
    """The measurement requests of one work unit, in job order.

    TP = 1 jobs become :class:`ThroughputRequest`\\ s, TP > 1 jobs
    :class:`HybridRequest`\\ s; a unit never mixes degrees (TP is a
    grouping axis in :func:`_batch_units`).
    """
    requests = []
    for (_index, point, cluster, model, overlap, enforce_memory,
         capacity_bytes, contention) in unit:
        if point.tp > 1:
            requests.append(HybridRequest(
                scheme=point.scheme, cluster=cluster, model=model,
                layout=HybridLayout(tp=point.tp, p=point.p, d=point.d),
                num_microbatches=point.num_microbatches, w=point.w,
                microbatch_size=point.microbatch_size,
                enforce_memory=enforce_memory, overlap=overlap,
                capacity_bytes=capacity_bytes, contention=contention,
            ))
        else:
            requests.append(ThroughputRequest(
                scheme=point.scheme, cluster=cluster, model=model,
                p=point.p, num_microbatches=point.num_microbatches,
                d=point.d, w=point.w,
                microbatch_size=point.microbatch_size,
                enforce_memory=enforce_memory, overlap=overlap,
                capacity_bytes=capacity_bytes, contention=contention,
            ))
    return requests


def evaluate_unit_requests(unit: list[tuple], measure_flat=None,
                           measure_hybrid=None) -> list[tuple[int, dict]]:
    """Measure one work unit through the batch harnesses.

    ``measure_flat`` / ``measure_hybrid`` default to this module's
    globals (so test wrappers and monkeypatches keep seeing every
    call); the serving layer passes its micro-batcher's executors
    instead.  Infeasible verdicts come back as outcomes from the batch
    harnesses, so one rejected cell never aborts its unit, and every
    record equals what the scalar path would have produced (per-lane
    bit-identity is pinned by the batched-runtime tests).
    """
    if unit[0][1].tp > 1:
        measure = measure_hybrid or measure_hybrid_throughput_batch
    else:
        measure = measure_flat or measure_throughput_batch
    outcomes = measure(unit_requests(unit))
    return [
        (job[0], infeasible_record(str(out))
         if isinstance(out, ConfigError) else result_to_record(out))
        for job, out in zip(unit, outcomes)
    ]


def _evaluate_unit(unit: list[tuple]) -> list[tuple[int, dict]]:
    """Measure one work unit; must stay module-level (pool pickling).

    A unit is either a single cell (scalar path, exactly the records
    :func:`_evaluate` produces) or a list of structure-sharing cells
    measured as one lockstep batch — the flat harness for TP = 1 units,
    the hybrid harness for TP > 1 units.
    """
    if len(unit) == 1:
        return [_evaluate(unit[0])]
    return evaluate_unit_requests(unit)


def _batch_units(misses: list[tuple]) -> list[list[tuple]]:
    """Group miss jobs into work units, preserving first-seen order.

    Cells agreeing on every structural axis — scheme, P, B,
    micro-batch size, D, W and TP (the batch harnesses' plan-key axes
    plus run-config constants) — form one unit whatever their cluster
    *or model*: those are cost axes, and the batched runtime's
    congruence grouping stacks equal-structure lanes across models
    (distinct plan keys) into one lockstep batch.  TP > 1 cells group
    exactly like flat ones since the hybrid harness batches too.
    """
    units: list[list[tuple]] = []
    by_structure: dict[tuple, list[tuple]] = {}
    for job in misses:
        point = job[1]
        gkey = (point.scheme, point.p, point.num_microbatches,
                point.microbatch_size, point.d, point.w, point.tp)
        group = by_structure.get(gkey)
        if group is None:
            group = by_structure[gkey] = []
            units.append(group)
        group.append(job)
    return units


def point_key(spec: SweepSpec, point: SweepPoint,
              cluster_fp: dict | None = None,
              model_fp: dict | None = None) -> str:
    """Content-hash cache key for one cell of ``spec``."""
    return cache_key(
        point.scheme,
        spec.clusters[point.cluster_index],
        spec.models[point.model_index],
        p=point.p, d=point.d, w=point.w, tp=point.tp,
        num_microbatches=point.num_microbatches,
        microbatch_size=point.microbatch_size,
        overlap=spec.overlap,
        enforce_memory=spec.enforce_memory,
        capacity_bytes=spec.capacity_bytes,
        contention=spec.contention,
        cluster_fp=cluster_fp, model_fp=model_fp,
    )


def run_sweep(
    spec: SweepSpec,
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> SweepTable:
    """Evaluate a sweep spec, reusing cached cells.

    ``workers=None`` or ``1`` evaluates inline (deterministic, easiest
    to debug and to instrument); ``workers > 1`` runs misses on a
    process pool.  Row order is the spec's expansion order either way.
    """
    points = spec.expand()
    stats = SweepStats(total=len(points))
    records: dict[int, tuple[dict, bool]] = {}

    keys: list[str | None] = [None] * len(points)
    misses: list[tuple] = []
    if cache is not None:
        # hash each distinct cluster/model once, not once per cell
        cluster_fps = [cluster_fingerprint(c) for c in spec.clusters]
        model_fps = [model_fingerprint(m) for m in spec.models]
    for i, point in enumerate(points):
        if cache is not None:
            keys[i] = point_key(spec, point,
                                cluster_fp=cluster_fps[point.cluster_index],
                                model_fp=model_fps[point.model_index])
            hit = cache.get(keys[i])
            if hit is not None:
                records[i] = (hit, True)
                stats.cached += 1
                continue
        misses.append((
            i, point,
            spec.clusters[point.cluster_index],
            spec.models[point.model_index],
            spec.overlap, spec.enforce_memory, spec.capacity_bytes,
            spec.contention,
        ))

    if misses:
        def finish(index: int, record: dict) -> None:
            # persist immediately so an interrupted sweep keeps every
            # cell that already finished
            records[index] = (record, False)
            if cache is not None:
                cache.put(keys[index], record)

        units = _batch_units(misses)
        if workers is not None and workers > 1:
            pool_size = min(workers, MAX_WORKERS, len(units))
            with multiprocessing.Pool(pool_size) as pool:
                for unit_records in pool.imap_unordered(_evaluate_unit,
                                                        units):
                    for index, record in unit_records:
                        finish(index, record)
        else:
            for unit in units:
                for index, record in _evaluate_unit(unit):
                    finish(index, record)
        stats.computed += len(misses)

    return assemble_table(spec, points, records, stats=stats)


def assemble_table(
    spec: SweepSpec,
    points: list[SweepPoint],
    records: dict[int, tuple[dict, bool]],
    stats: SweepStats | None = None,
) -> SweepTable:
    """Fold per-point records into a :class:`SweepTable`, in spec order.

    The one assembly path: :func:`run_sweep` and the serving layer's
    sweep endpoint both finish here, so a served table and a batch
    table of the same grid cannot drift in row content or stats
    accounting.  ``records`` maps point index to ``(record,
    was_cached)``; ``stats`` carries the caller's computed/cached
    tallies (a fresh one is derived when omitted — every record then
    counts as computed).
    """
    if stats is None:
        stats = SweepStats(total=len(points), computed=len(records))
    rows: list[SweepRow] = []
    for i, point in enumerate(points):
        record, was_cached = records[i]
        result = record_to_result(record)
        if result is None:
            stats.infeasible += 1
            continue
        if result.statically_pruned:
            stats.pruned += 1
        rows.append(SweepRow(
            scheme=point.scheme,
            cluster=spec.clusters[point.cluster_index].name,
            model=spec.models[point.model_index].name,
            p=point.p, d=point.d, w=point.w, tp=point.tp,
            num_microbatches=point.num_microbatches,
            microbatch_size=point.microbatch_size,
            total_batch=point.total_batch,
            result=result,
            cached=was_cached,
        ))
    return SweepTable(rows=rows, stats=stats)
