"""Point-to-point channels between thread workers.

Emulates the NCCL/mpi4py communication surface the paper's runtime
uses: ordered per-pair message streams, tag-matched receives, a
``batch_isend_irecv``-style grouped post, and timeout-based deadlock
detection (a hung pipeline raises :class:`DeadlockError` instead of
hanging the test suite).

Sends are buffered (non-blocking): this matches
``torch.distributed.isend`` semantics and is what makes prefetch
overlap possible with plain threads.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any

from ..errors import CommError, DeadlockError
from ..actions.ops import Tag


@dataclass
class _Mailbox:
    q: "queue.Queue[tuple[Tag, Any]]" = field(default_factory=queue.Queue)
    #: out-of-order arrivals parked until their tag is requested
    parked: dict[Tag, Any] = field(default_factory=dict)


class PeerNetwork:
    """All-to-all P2P fabric over ``num_devices`` thread workers."""

    def __init__(self, num_devices: int, timeout_s: float = 30.0):
        if num_devices < 1:
            raise CommError("PeerNetwork needs >= 1 device")
        self.num_devices = num_devices
        self.timeout_s = timeout_s
        self._boxes: dict[tuple[int, int], _Mailbox] = {
            (src, dst): _Mailbox()
            for src in range(num_devices)
            for dst in range(num_devices)
            if src != dst
        }
        self._lock = threading.Lock()
        self.sent_messages = 0

    def _box(self, src: int, dst: int) -> _Mailbox:
        try:
            return self._boxes[(src, dst)]
        except KeyError:
            raise CommError(
                f"invalid channel {src}->{dst} (devices={self.num_devices})"
            ) from None

    def send(self, src: int, dst: int, tag: Tag, payload: Any) -> None:
        """Non-blocking buffered send."""
        self._box(src, dst).q.put((tag, payload))
        with self._lock:
            self.sent_messages += 1

    def recv(self, dst: int, src: int, tag: Tag) -> Any:
        """Blocking tag-matched receive.

        Out-of-order messages on the same channel are parked; a missing
        message raises :class:`DeadlockError` after the timeout rather
        than blocking forever.
        """
        box = self._box(src, dst)
        if tag in box.parked:
            return box.parked.pop(tag)
        while True:
            try:
                got_tag, payload = box.q.get(timeout=self.timeout_s)
            except queue.Empty:
                raise DeadlockError(
                    f"device {dst}: timed out waiting for {tag} from {src}"
                ) from None
            if got_tag == tag:
                return payload
            if got_tag in box.parked:
                raise CommError(
                    f"duplicate in-flight message {got_tag} on {src}->{dst}"
                )
            box.parked[got_tag] = payload

    def drain_check(self) -> None:
        """Assert every channel is empty (end-of-iteration hygiene)."""
        leftovers = []
        for (src, dst), box in self._boxes.items():
            if not box.q.empty() or box.parked:
                leftovers.append((src, dst, box.q.qsize(), len(box.parked)))
        if leftovers:
            raise CommError(f"undrained channels after run: {leftovers}")


def batch_isend_irecv(
    network: PeerNetwork,
    device: int,
    sends: list[tuple[int, Tag, Any]],
    recvs: list[tuple[int, Tag]],
) -> list[Any]:
    """Grouped post: issue all sends, then wait all receives.

    With buffered channels the grouping is about *ordering discipline*
    (all posts precede all waits), mirroring the NCCL requirement the
    paper handles; the deadlock the grouping prevents is demonstrated by
    the rendezvous-mode validator in :mod:`repro.actions.validate`.
    """
    for dst, tag, payload in sends:
        network.send(device, dst, tag, payload)
    return [network.recv(device, src, tag) for src, tag in recvs]
