"""The NumPy executor: binds action lists to real stage modules.

One :class:`EngineExecutor` per worker thread.  It owns the device's
model chunks, routes boundary tensors (locally or through the
:class:`~repro.engine.channels.PeerNetwork`), evaluates the loss on the
final stage, and seeds the backward pass.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..actions.ops import CommKind, Tag
from ..errors import EngineError
from ..schedules.base import Schedule
from ..types import OpKind
from . import tensor_ops as T
from .channels import PeerNetwork
from .module import StageModule


class EngineExecutor:
    """Executor protocol implementation over NumPy stages."""

    def __init__(
        self,
        device: int,
        schedule: Schedule,
        stages: dict[int, StageModule],   # chunk -> module
        network: PeerNetwork,
        microbatch_inputs: dict[int, np.ndarray],
        microbatch_targets: dict[int, np.ndarray],
        optimizer=None,
    ):
        self.device = device
        self.schedule = schedule
        self.stages = stages
        self.network = network
        self.inputs = microbatch_inputs
        self.targets = microbatch_targets
        self.optimizer = optimizer
        self.num_stages = schedule.num_stages
        # boundary tensors produced locally: (kind, m, stage) -> array
        self._outputs: dict[tuple, Any] = {}
        # tensors received from peers
        self._inbox: dict[Tag, Any] = {}
        self._loss_cache: dict[int, tuple] = {}
        self.losses: dict[int, float] = {}
        self.steps_applied = 0

    # -- helpers ---------------------------------------------------------

    def _chunk_module(self, stage: int, chunk: int) -> StageModule:
        try:
            module = self.stages[chunk]
        except KeyError:
            raise EngineError(
                f"device {self.device} has no chunk {chunk} (stage {stage})"
            ) from None
        return module

    def _take_input(self, microbatch: int, stage: int) -> np.ndarray:
        """Fetch the forward input of ``stage`` for a micro-batch."""
        if stage == 0:
            try:
                return self.inputs[microbatch]
            except KeyError:
                raise EngineError(
                    f"no input bound for micro-batch {microbatch}"
                ) from None
        replica = self.schedule.replica_of(microbatch)
        src = self.schedule.placement.device_of(stage - 1, replica)
        key = (CommKind.ACTIVATION, microbatch, stage - 1)
        if src == self.device:
            return self._outputs.pop(key)
        tag = Tag(*key)
        try:
            return self._inbox.pop(tag)
        except KeyError:
            raise EngineError(
                f"device {self.device}: activation {tag} not received "
                f"before compute (missing Recv in the action list?)"
            ) from None

    def _take_grad(self, microbatch: int, stage: int) -> np.ndarray:
        """Fetch the output-gradient of ``stage`` for a micro-batch."""
        if stage == self.num_stages - 1:
            return self._loss_grad(microbatch)
        replica = self.schedule.replica_of(microbatch)
        src = self.schedule.placement.device_of(stage + 1, replica)
        key = (CommKind.GRADIENT, microbatch, stage + 1)
        if src == self.device:
            return self._outputs.pop(key)
        tag = Tag(*key)
        try:
            return self._inbox.pop(tag)
        except KeyError:
            raise EngineError(
                f"device {self.device}: gradient {tag} not received "
                f"before compute"
            ) from None

    def _loss_grad(self, microbatch: int) -> np.ndarray:
        try:
            cache = self._loss_cache.pop(microbatch)
        except KeyError:
            raise EngineError(
                f"backward of m{microbatch} before its loss forward"
            ) from None
        # Mean over micro-batches: each contributes 1/B of the grad.
        return T.cross_entropy_backward(
            cache, scale=1.0 / self.schedule.num_microbatches
        )

    # -- Executor protocol ------------------------------------------------

    def compute_forward(self, microbatch: int, stage: int, chunk: int) -> None:
        module = self._chunk_module(stage, chunk)
        x = self._take_input(microbatch, stage)
        y = module.forward(microbatch, x)
        if stage == self.num_stages - 1:
            targets = self.targets.get(microbatch)
            if targets is None:
                raise EngineError(
                    f"no targets bound for micro-batch {microbatch}"
                )
            loss, cache = T.cross_entropy_forward(y, targets)
            self.losses[microbatch] = loss
            self._loss_cache[microbatch] = cache
        else:
            self._outputs[(CommKind.ACTIVATION, microbatch, stage)] = y

    def compute_backward(self, microbatch: int, stage: int, chunk: int) -> None:
        module = self._chunk_module(stage, chunk)
        dy = self._take_grad(microbatch, stage)
        dx = module.backward(microbatch, dy)
        if stage > 0:
            if dx is None:
                raise EngineError(
                    f"stage {stage} returned no input grad but is not first"
                )
            self._outputs[(CommKind.GRADIENT, microbatch, stage)] = dx

    def post_send(self, peer: int, tag: Tag) -> None:
        key = (tag.kind, tag.microbatch, tag.stage)
        try:
            payload = self._outputs.pop(key)
        except KeyError:
            raise EngineError(
                f"device {self.device}: send of {tag} before it was produced"
            ) from None
        self.network.send(self.device, peer, tag, payload)

    def post_recv(self, peer: int, tag: Tag) -> None:
        # Buffered channels: the message is already in flight (or will
        # be); actual matching happens in wait_recv.
        pass

    def wait_recv(self, peer: int, tag: Tag) -> None:
        self._inbox[tag] = self.network.recv(self.device, peer, tag)

    def flush(self) -> None:
        leftovers = [
            str(m) for mod in self.stages.values()
            for m in sorted(mod.live_microbatches())
        ]
        if leftovers:
            raise EngineError(
                f"device {self.device}: flush with live activations "
                f"for micro-batches {leftovers}"
            )

    def optimizer_step(self) -> None:
        if self.optimizer is not None:
            self.optimizer.step()
        self.steps_applied += 1

    # -- post-run accessors ------------------------------------------------

    def mean_loss(self) -> float:
        """Mean loss over the micro-batches this device evaluated."""
        if not self.losses:
            raise EngineError("this device does not hold the final stage")
        return float(np.mean(list(self.losses.values())))
