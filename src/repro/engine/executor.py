"""The NumPy executor: binds a compiled program to real stage modules.

One :class:`EngineExecutor` per worker thread.  It owns the device's
model chunks, evaluates the loss on the final stage, and seeds the
backward pass.  It consumes the :class:`~repro.actions.Program` IR
only — no schedule walking, no placement lookups:

Every boundary tensor lives in one buffer keyed by its wire
:class:`~repro.actions.ops.Tag`.  The tag of a compute's input is pure
IR arithmetic — the forward of stage ``s`` consumes
``act(m, s-1)``, the backward consumes ``grad(m, s+1)`` — and *how*
the tensor got there is decided entirely by the compiled action list:
a local producer stored it, or a ``Recv`` fetched it from the
:class:`~repro.engine.channels.PeerNetwork`.  Routing is therefore a
property of the program, never re-derived here — which is what the
program-parity suite pins down against the simulator.

Since the lowered-plan refactor the trainer hands each worker the
*decoded* action list of its :class:`~repro.actions.ExecutablePlan`
(pinned value-identical to ``program.actions`` by the round-trip
tests), so the order this executor runs is the same lowered order the
event core times.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..actions.ops import CommKind, Tag
from ..actions.program import Program
from ..errors import EngineError
from . import tensor_ops as T
from .channels import PeerNetwork
from .module import StageModule


class EngineExecutor:
    """Executor protocol implementation over NumPy stages."""

    def __init__(
        self,
        device: int,
        program: Program,
        stages: dict[int, StageModule],   # chunk -> module
        network: PeerNetwork,
        microbatch_inputs: dict[int, np.ndarray],
        microbatch_targets: dict[int, np.ndarray],
        optimizer=None,
    ):
        self.device = device
        self.program = program
        self.stages = stages
        self.network = network
        self.inputs = microbatch_inputs
        self.targets = microbatch_targets
        self.optimizer = optimizer
        self.num_stages = program.num_stages
        #: every in-flight boundary tensor, locally produced or
        #: received, keyed by wire identity
        self._tensors: dict[Tag, Any] = {}
        self._loss_cache: dict[int, tuple] = {}
        self.losses: dict[int, float] = {}
        self.steps_applied = 0

    # -- helpers ---------------------------------------------------------

    def _chunk_module(self, stage: int, chunk: int) -> StageModule:
        try:
            module = self.stages[chunk]
        except KeyError:
            raise EngineError(
                f"device {self.device} has no chunk {chunk} (stage {stage})"
            ) from None
        return module

    def _take_input(self, microbatch: int, stage: int) -> np.ndarray:
        """Fetch the forward input of ``stage`` for a micro-batch."""
        if stage == 0:
            try:
                return self.inputs[microbatch]
            except KeyError:
                raise EngineError(
                    f"no input bound for micro-batch {microbatch}"
                ) from None
        tag = Tag(CommKind.ACTIVATION, microbatch, stage - 1)
        try:
            return self._tensors.pop(tag)
        except KeyError:
            raise EngineError(
                f"device {self.device}: activation {tag} not received "
                f"before compute (missing Recv in the action list?)"
            ) from None

    def _take_grad(self, microbatch: int, stage: int) -> np.ndarray:
        """Fetch the output-gradient of ``stage`` for a micro-batch."""
        if stage == self.num_stages - 1:
            return self._loss_grad(microbatch)
        tag = Tag(CommKind.GRADIENT, microbatch, stage + 1)
        try:
            return self._tensors.pop(tag)
        except KeyError:
            raise EngineError(
                f"device {self.device}: gradient {tag} not received "
                f"before compute"
            ) from None

    def _loss_grad(self, microbatch: int) -> np.ndarray:
        try:
            cache = self._loss_cache.pop(microbatch)
        except KeyError:
            raise EngineError(
                f"backward of m{microbatch} before its loss forward"
            ) from None
        # Mean over micro-batches: each contributes 1/B of the grad.
        return T.cross_entropy_backward(
            cache, scale=1.0 / self.program.num_microbatches
        )

    # -- Executor protocol ------------------------------------------------

    def compute_forward(self, microbatch: int, stage: int, chunk: int) -> None:
        module = self._chunk_module(stage, chunk)
        x = self._take_input(microbatch, stage)
        y = module.forward(microbatch, x)
        if stage == self.num_stages - 1:
            targets = self.targets.get(microbatch)
            if targets is None:
                raise EngineError(
                    f"no targets bound for micro-batch {microbatch}"
                )
            loss, cache = T.cross_entropy_forward(y, targets)
            self.losses[microbatch] = loss
            self._loss_cache[microbatch] = cache
        else:
            self._tensors[Tag(CommKind.ACTIVATION, microbatch, stage)] = y

    def compute_backward(self, microbatch: int, stage: int, chunk: int) -> None:
        module = self._chunk_module(stage, chunk)
        dy = self._take_grad(microbatch, stage)
        dx = module.backward(microbatch, dy)
        if stage > 0:
            if dx is None:
                raise EngineError(
                    f"stage {stage} returned no input grad but is not first"
                )
            self._tensors[Tag(CommKind.GRADIENT, microbatch, stage)] = dx

    def post_send(self, peer: int, tag: Tag) -> None:
        try:
            payload = self._tensors.pop(tag)
        except KeyError:
            raise EngineError(
                f"device {self.device}: send of {tag} before it was produced"
            ) from None
        self.network.send(self.device, peer, tag, payload)

    def post_recv(self, peer: int, tag: Tag) -> None:
        # Buffered channels: the message is already in flight (or will
        # be); actual matching happens in wait_recv.
        pass

    def wait_recv(self, peer: int, tag: Tag) -> None:
        self._tensors[tag] = self.network.recv(self.device, peer, tag)

    def collective(self, op) -> None:
        raise EngineError(
            f"device {self.device}: {op} reached a per-worker executor; "
            "collectives are driven by the data-parallel layer "
            "(repro.engine.dataparallel) — execute the un-annotated "
            "pipeline program here"
        )

    def flush(self) -> None:
        leftovers = [
            str(m) for mod in self.stages.values()
            for m in sorted(mod.live_microbatches())
        ]
        if leftovers:
            raise EngineError(
                f"device {self.device}: flush with live activations "
                f"for micro-batches {leftovers}"
            )

    def optimizer_step(self) -> None:
        if self.optimizer is not None:
            self.optimizer.step()
        self.steps_applied += 1

    # -- post-run accessors ------------------------------------------------

    def mean_loss(self) -> float:
        """Mean loss over the micro-batches this device evaluated."""
        if not self.losses:
            raise EngineError("this device does not hold the final stage")
        return float(np.mean(list(self.losses.values())))
