"""Stage modules: contiguous layer runs with per-micro-batch activation state."""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from ..models.spec import ModelSpec
from .layers import Layer, instantiate_layer


class StageModule:
    """One pipeline stage: a contiguous run of layers.

    Forward caches the layer contexts per micro-batch; backward consumes
    and frees them.  Parameter gradients accumulate across micro-batches
    until :meth:`zero_grad`.

    With ``recompute=True`` the stage implements activation
    checkpointing: forward keeps only its boundary *input*, and backward
    first re-runs the forward to rebuild the layer contexts — trading a
    second forward pass for dropping the per-layer activation cache
    (the Sec.-6 memory-saving technique, orthogonal to the schedule).
    """

    def __init__(self, stage_id: int, layers: list[Layer],
                 recompute: bool = False):
        self.stage_id = stage_id
        self.layers = layers
        self.recompute = recompute
        self._ctx: dict[int, list[object]] = {}
        self._saved_input: dict[int, np.ndarray] = {}

    def _run_forward(self, x: np.ndarray) -> tuple[np.ndarray, list[object]]:
        ctxs: list[object] = []
        for layer in self.layers:
            x, ctx = layer.forward(x)
            ctxs.append(ctx)
        return x, ctxs

    def forward(self, microbatch: int, x: np.ndarray) -> np.ndarray:
        if microbatch in self._ctx or microbatch in self._saved_input:
            raise EngineError(
                f"stage {self.stage_id}: duplicate forward for m{microbatch}"
            )
        y, ctxs = self._run_forward(x)
        if self.recompute:
            self._saved_input[microbatch] = x
        else:
            self._ctx[microbatch] = ctxs
        return y

    def backward(self, microbatch: int, dy: np.ndarray) -> np.ndarray | None:
        if self.recompute:
            try:
                x = self._saved_input.pop(microbatch)
            except KeyError:
                raise EngineError(
                    f"stage {self.stage_id}: backward for m{microbatch} "
                    "without a cached forward"
                ) from None
            _, ctxs = self._run_forward(x)
        else:
            try:
                ctxs = self._ctx.pop(microbatch)
            except KeyError:
                raise EngineError(
                    f"stage {self.stage_id}: backward for m{microbatch} "
                    "without a cached forward"
                ) from None
        for layer, ctx in zip(reversed(self.layers), reversed(ctxs)):
            dy = layer.backward(dy, ctx)
        return dy

    def live_microbatches(self) -> set[int]:
        return set(self._ctx) | set(self._saved_input)

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_params(self) -> dict[str, np.ndarray]:
        return {
            f"s{self.stage_id}.l{i}.{name}": p
            for i, layer in enumerate(self.layers)
            for name, p in layer.params.items()
        }

    def named_grads(self) -> dict[str, np.ndarray]:
        return {
            f"s{self.stage_id}.l{i}.{name}": g
            for i, layer in enumerate(self.layers)
            for name, g in layer.grads.items()
        }

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)


def build_stages(
    spec: ModelSpec,
    num_stages: int,
    seed: int = 0,
    causal: bool | None = None,
    recompute: bool = False,
) -> list[StageModule]:
    """Instantiate the spec's layers and split them into stages.

    The split uses the same cost-balanced contiguous partition as the
    simulator's cost model (:func:`repro.models.costs.partition_layers`)
    so that simulated and executed stage boundaries agree.  The RNG is
    consumed in layer order, making parameters independent of the stage
    count — the seed alone fixes the model, which is what lets a P-stage
    pipeline be compared against a 1-stage sequential reference.
    """
    from ..models.costs import partition_layers

    causal = spec.name.startswith("gpt") if causal is None else causal
    rng = np.random.default_rng(seed)
    groups = partition_layers(spec, num_stages)
    stages: list[StageModule] = []
    for sid, group in enumerate(groups):
        layers = [
            instantiate_layer(l, spec.seq_len, rng, causal) for l in group
        ]
        stages.append(StageModule(sid, layers, recompute=recompute))
    return stages
