"""End-to-end pipeline training on thread workers.

``PipelineTrainer`` is the library's "it actually runs" proof: it takes
any :class:`~repro.config.PipelineConfig`, compiles the schedule **once**
into the execution IR (:class:`~repro.actions.Program`), spins up one
thread per (simulated) device, executes a real NumPy training step
through the interpreter, and exposes losses and gradients.  The
gradient-equivalence tests run every scheme through this path and
compare against :mod:`repro.engine.reference`; the program-parity suite
feeds the *same* :attr:`PipelineTrainer.program` object to the
event-driven simulator and asserts both consumers execute the identical
action sequence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..actions.interpreter import Interpreter
from ..actions.lowering import ExecutablePlan
from ..actions.program import Program, compile_program
from ..config import PipelineConfig
from ..errors import EngineError
from ..models.spec import ModelSpec
from ..schedules.base import Schedule
from ..schedules.factory import build_schedule
from .channels import PeerNetwork
from .executor import EngineExecutor
from .module import StageModule, build_stages
from .optimizer import Optimizer


@dataclass
class StepResult:
    """Outcome of one synchronous training iteration."""

    loss: float
    per_microbatch_loss: dict[int, float]
    #: parameter-name -> gradient, summed across replicas
    grads: dict[str, np.ndarray]
    messages_sent: int

    def grad_norm(self) -> float:
        return float(np.sqrt(sum(
            float((g**2).sum()) for g in self.grads.values()
        )))


class PipelineTrainer:
    """Owns the model chunks, the network, and the worker programs."""

    def __init__(
        self,
        spec: ModelSpec,
        config: PipelineConfig,
        seed: int = 0,
        timeout_s: float = 30.0,
        prefetch: bool = True,
        batch_cross_comm: bool = True,
        recompute: bool = False,
    ):
        self.spec = spec
        self.config = config
        self._prefetch = prefetch
        self._batch_cross_comm = batch_cross_comm
        self.schedule: Schedule = build_schedule(config)
        self.program: Program = self._compile(self.schedule)
        #: the lowered form of :attr:`program`; the worker threads
        #: execute its *decoded* action lists, so the order the engine
        #: runs is — by round-trip — the order the simulator's lowered
        #: plan executes (pinned by the program-parity suite)
        self.plan: ExecutablePlan = ExecutablePlan.lower(self.program)
        self._worker_actions: dict[int, list] = self.plan.decode()
        #: per-worker executed action order of the latest train_step —
        #: the engine half of the program-parity witness
        self.action_trace: dict[int, list] = {}
        num_replicas = self.schedule.placement.num_replicas
        # Replicas start from identical weights (same seed), as Chimera's
        # bidirectional model copies do.
        self.replica_stages: list[list[StageModule]] = [
            build_stages(spec, self.schedule.num_stages, seed=seed,
                         recompute=recompute)
            for _ in range(num_replicas)
        ]
        self.network = PeerNetwork(config.num_devices, timeout_s=timeout_s)
        self.timeout_s = timeout_s

    def _compile(self, schedule: Schedule) -> Program:
        program = compile_program(
            schedule, prefetch=self._prefetch,
            batch_cross_comm=self._batch_cross_comm, add_step=False,
            # float64 boundary activations of shape (mb, seq, hidden)
            boundary_bytes=(self.config.microbatch_size * self.spec.seq_len
                            * self.spec.hidden * 8.0),
        )
        program.validate()
        return program

    def use_schedule(self, schedule: Schedule) -> None:
        """Adopt a hand-built schedule by recompiling the program IR.

        The schedule must share the trainer's shape — the stage modules
        and data routing were sized by the constructor — so mismatches
        are rejected here rather than surfacing as opaque worker
        failures (or a silently wrong 1/B loss scale) mid-step.
        """
        mismatches = [
            f"{name}: {got} != {want}"
            for name, got, want in (
                ("num_devices", schedule.num_devices,
                 self.schedule.num_devices),
                ("num_stages", schedule.num_stages,
                 self.schedule.num_stages),
                ("num_microbatches", schedule.num_microbatches,
                 self.schedule.num_microbatches),
                ("num_replicas", schedule.placement.num_replicas,
                 self.schedule.placement.num_replicas),
            )
            if got != want
        ]
        if mismatches:
            raise EngineError(
                f"schedule {schedule.name!r} does not match the trainer's "
                f"shape: {'; '.join(mismatches)}"
            )
        self.schedule = schedule
        self.program = self._compile(schedule)
        self.plan = ExecutablePlan.lower(self.program)
        self._worker_actions = self.plan.decode()

    @property
    def actions(self) -> dict[int, list]:
        """The per-worker action lists the workers execute.

        These are the *plan-decoded* lists — value-identical to
        ``program.actions`` by the lowering round-trip — so the IR
        remains the single truth while the engine consumes the lowered
        order.
        """
        return self._worker_actions

    # -- assembly ---------------------------------------------------------

    def _device_chunks(self, device: int) -> dict[int, StageModule]:
        chunks: dict[int, StageModule] = {}
        for stage, replica in self.schedule.placement.stages_on(device):
            chunk = self.schedule.placement.chunk_of(stage, replica)
            chunks[chunk] = self.replica_stages[replica][stage]
        return chunks

    def _route_microbatch_data(
        self, data: dict[int, np.ndarray], stage: int
    ) -> dict[int, dict[int, np.ndarray]]:
        """Split per-micro-batch arrays to the devices owning ``stage``."""
        routed: dict[int, dict[int, np.ndarray]] = {}
        for m, array in data.items():
            replica = self.schedule.replica_of(m)
            device = self.schedule.placement.device_of(stage, replica)
            routed.setdefault(device, {})[m] = array
        return routed

    # -- the step ----------------------------------------------------------

    def train_step(
        self,
        inputs: dict[int, np.ndarray],
        targets: dict[int, np.ndarray],
        optimizer: Optimizer | None = None,
    ) -> StepResult:
        """Run one iteration; optionally apply ``optimizer`` afterwards.

        ``inputs``/``targets`` map micro-batch index to arrays of shape
        ``(microbatch_size, seq_len)``.  The optimizer, if given, must
        be bound to ``self.parameter_stages()`` (replica 0); replica
        gradients are reduced into replica 0 before stepping — the
        fused equivalent of Chimera's post-iteration all-reduce.
        """
        b = self.config.num_microbatches
        if set(inputs) != set(range(b)) or set(targets) != set(range(b)):
            raise EngineError(
                f"need inputs/targets for micro-batches 0..{b - 1}"
            )
        last = self.schedule.num_stages - 1
        routed_inputs = self._route_microbatch_data(inputs, 0)
        routed_targets = self._route_microbatch_data(targets, last)

        executors: dict[int, EngineExecutor] = {}
        for device in range(self.config.num_devices):
            executors[device] = EngineExecutor(
                device=device,
                program=self.program,
                stages=self._device_chunks(device),
                network=self.network,
                microbatch_inputs=routed_inputs.get(device, {}),
                microbatch_targets=routed_targets.get(device, {}),
            )

        errors: dict[int, BaseException] = {}
        interpreters: dict[int, Interpreter] = {
            d: Interpreter(d, executors[d])
            for d in range(self.config.num_devices)
        }

        def worker(device: int) -> None:
            try:
                # the plan-decoded lists: value-identical to
                # program.actions (round-trip pinned), so the engine
                # consumes the same lowered order the simulator times
                interpreters[device].run(self._worker_actions[device])
            except BaseException as exc:  # propagated to the caller
                errors[device] = exc

        threads = [
            threading.Thread(target=worker, args=(d,), name=f"worker-{d}")
            for d in range(self.config.num_devices)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.timeout_s * 4)
        hung = [t.name for t in threads if t.is_alive()]
        if hung:
            raise EngineError(f"workers hung past timeout: {hung}")
        if errors:
            device, exc = sorted(errors.items())[0]
            raise EngineError(f"worker {device} failed: {exc!r}") from exc
        self.network.drain_check()
        self.action_trace = {
            d: interp.trace for d, interp in interpreters.items()
        }

        losses: dict[int, float] = {}
        for ex in executors.values():
            losses.update(ex.losses)
        if set(losses) != set(range(b)):
            raise EngineError(
                f"losses missing for micro-batches "
                f"{sorted(set(range(b)) - set(losses))}"
            )
        grads = self._reduced_grads()
        if optimizer is not None:
            optimizer.step()
        return StepResult(
            loss=float(np.mean([losses[m] for m in range(b)])),
            per_microbatch_loss=losses,
            grads=grads,
            messages_sent=self.network.sent_messages,
        )

    # -- parameters & gradients --------------------------------------------

    def parameter_stages(self) -> list[StageModule]:
        """Replica-0 stages: the canonical parameter set."""
        return self.replica_stages[0]

    def zero_grad(self) -> None:
        for stages in self.replica_stages:
            for stage in stages:
                stage.zero_grad()

    def _reduced_grads(self) -> dict[str, np.ndarray]:
        """Replica-summed gradients, accumulated into replica 0."""
        if len(self.replica_stages) > 1:
            for replica in self.replica_stages[1:]:
                for s0, sr in zip(self.replica_stages[0], replica):
                    g0, gr = s0.named_grads(), sr.named_grads()
                    for name in g0:
                        g0[name] += gr[name]
        out: dict[str, np.ndarray] = {}
        for stage in self.replica_stages[0]:
            out.update(stage.named_grads())
        return out


def make_batch(
    spec: ModelSpec,
    num_microbatches: int,
    microbatch_size: int = 1,
    seed: int = 1234,
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    """Synthetic language-modeling micro-batches (ids and shifted targets)."""
    rng = np.random.default_rng(seed)
    inputs, targets = {}, {}
    for m in range(num_microbatches):
        ids = rng.integers(0, spec.vocab,
                           size=(microbatch_size, spec.seq_len))
        inputs[m] = ids
        targets[m] = np.roll(ids, -1, axis=-1)
    return inputs, targets
