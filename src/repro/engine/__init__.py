"""Real NumPy execution engine: layers, channels, workers, trainer."""

from .channels import PeerNetwork, batch_isend_irecv
from .dataparallel import (
    DataParallelPipelines,
    DPStepResult,
    allreduce_average,
    ring_allreduce,
)
from .executor import EngineExecutor
from .layers import (
    Embedding,
    Gelu,
    Head,
    Layer,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    TransformerBlock,
    instantiate_layer,
)
from .module import StageModule, build_stages
from .optimizer import SGD, Adam, Optimizer
from .reference import ReferenceResult, sequential_step, sequential_step_on
from .trainer import PipelineTrainer, StepResult, make_batch

__all__ = [
    "Adam",
    "DPStepResult",
    "DataParallelPipelines",
    "Embedding",
    "EngineExecutor",
    "Gelu",
    "Head",
    "Layer",
    "LayerNorm",
    "Linear",
    "MultiHeadAttention",
    "Optimizer",
    "PeerNetwork",
    "PipelineTrainer",
    "ReferenceResult",
    "SGD",
    "StageModule",
    "StepResult",
    "TransformerBlock",
    "allreduce_average",
    "ring_allreduce",
    "batch_isend_irecv",
    "build_stages",
    "instantiate_layer",
    "make_batch",
    "sequential_step",
    "sequential_step_on",
]
