"""NumPy optimizers operating on stage modules."""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from .module import StageModule


class Optimizer:
    """Base: binds to stage modules, steps on their (param, grad) pairs."""

    def __init__(self, stages: list[StageModule]):
        if not stages:
            raise EngineError("optimizer needs at least one stage")
        self.stages = stages

    def _pairs(self):
        for stage in self.stages:
            params = stage.named_params()
            grads = stage.named_grads()
            for name in params:
                yield name, params[name], grads[name]

    def zero_grad(self) -> None:
        for stage in self.stages:
            stage.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, stages: list[StageModule], lr: float = 0.1,
                 momentum: float = 0.0):
        super().__init__(stages)
        if lr <= 0:
            raise EngineError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        for name, p, g in self._pairs():
            if self.momentum:
                v = self._velocity.setdefault(name, np.zeros_like(p))
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class Adam(Optimizer):
    def __init__(self, stages: list[StageModule], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(stages)
        if lr <= 0:
            raise EngineError("lr must be positive")
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def step(self) -> None:
        self.t += 1
        for name, p, g in self._pairs():
            m = self._m.setdefault(name, np.zeros_like(p))
            v = self._v.setdefault(name, np.zeros_like(p))
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            mhat = m / (1 - self.b1**self.t)
            vhat = v / (1 - self.b2**self.t)
            p -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
