"""Data parallelism across pipeline replicas (all-reduce emulation).

The paper folds Chimera's model replication into standard data
parallelism (Sec. 3.2); this module provides that DP layer for the real
engine: ``D`` independent :class:`PipelineTrainer` replicas process
disjoint micro-batch shards, then gradients are averaged — a ring
all-reduce's numerical result, computed centrally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PipelineConfig
from ..errors import ConfigError, EngineError
from ..models.spec import ModelSpec
from .trainer import PipelineTrainer, StepResult


def allreduce_average(grads_list: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Element-wise average of named gradient dicts (all-reduce / D)."""
    if not grads_list:
        raise EngineError("allreduce of zero participants")
    names = set(grads_list[0])
    for g in grads_list[1:]:
        if set(g) != names:
            raise EngineError("gradient name mismatch across replicas")
    d = len(grads_list)
    return {
        name: sum(g[name] for g in grads_list) / d for name in names
    }


@dataclass
class DPStepResult:
    loss: float
    grads: dict[str, np.ndarray]
    replica_results: list[StepResult]


class DataParallelPipelines:
    """``D`` pipeline replicas with gradient averaging."""

    def __init__(self, spec: ModelSpec, config: PipelineConfig, seed: int = 0):
        if config.data_parallel < 1:
            raise ConfigError("data_parallel must be >= 1")
        self.spec = spec
        self.config = config
        self.trainers = [
            PipelineTrainer(spec, config, seed=seed)
            for _ in range(config.data_parallel)
        ]

    def train_step(
        self,
        inputs: dict[int, np.ndarray],
        targets: dict[int, np.ndarray],
    ) -> DPStepResult:
        """Shard micro-batches round-robin over replicas and step.

        ``inputs`` holds ``B * D`` micro-batches; replica ``r`` takes
        those with ``m % D == r``, re-indexed to ``0..B-1`` locally.
        """
        b, d = self.config.num_microbatches, self.config.data_parallel
        if set(inputs) != set(range(b * d)):
            raise EngineError(f"need {b * d} micro-batches, got {len(inputs)}")
        results: list[StepResult] = []
        for r, trainer in enumerate(self.trainers):
            local_in = {i: inputs[i * d + r] for i in range(b)}
            local_tg = {i: targets[i * d + r] for i in range(b)}
            results.append(trainer.train_step(local_in, local_tg))
        grads = allreduce_average([res.grads for res in results])
        return DPStepResult(
            loss=float(np.mean([res.loss for res in results])),
            grads=grads,
            replica_results=results,
        )
