"""Data parallelism across pipeline replicas (program-driven ring).

The paper folds Chimera's model replication into standard data
parallelism (Sec. 3.2); this module provides that DP layer for the real
engine: ``D`` independent :class:`PipelineTrainer` replicas process
disjoint micro-batch shards, then gradients are synchronised.

Synchronisation is **program-driven**: the same
:func:`repro.actions.with_gradient_sync` transform that feeds the
simulator annotates the trainer's compiled program with one
:class:`~repro.actions.CollectiveOp` per stage, and ``train_step``
executes each of them as a real chunked ring all-reduce
(:func:`ring_allreduce`) over the replicas' NumPy gradients —
reduce-scatter then all-gather, ``2 * (D - 1)`` chunk steps, exactly
the decomposition the event core times.  The central
:func:`allreduce_average` is retained as the numerical parity oracle:
the ring's result must match it (bit-for-bit for ``D = 2``, where ring
and list-order summation coincide; ``allclose`` beyond, where float
summation order differs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..actions.collectives import collectives_in, with_gradient_sync
from ..actions.ops import CollectiveKind
from ..actions.program import Program
from ..config import PipelineConfig
from ..errors import ConfigError, EngineError
from ..models.spec import ModelSpec
from .trainer import PipelineTrainer, StepResult


def allreduce_average(grads_list: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Element-wise average of named gradient dicts (all-reduce / D)."""
    if not grads_list:
        raise EngineError("allreduce of zero participants")
    names = set(grads_list[0])
    for g in grads_list[1:]:
        if set(g) != names:
            raise EngineError("gradient name mismatch across replicas")
    d = len(grads_list)
    return {
        name: sum(g[name] for g in grads_list) / d for name in names
    }


def _flatten(named: dict[str, np.ndarray]
             ) -> tuple[np.ndarray, list[tuple[str, tuple, int]]]:
    """Pack named arrays (sorted by name) into one contiguous buffer."""
    meta: list[tuple[str, tuple, int]] = []
    parts = []
    offset = 0
    for name in sorted(named):
        arr = np.asarray(named[name], dtype=np.float64)
        parts.append(arr.reshape(-1))
        meta.append((name, arr.shape, offset))
        offset += arr.size
    flat = (np.concatenate(parts) if parts
            else np.empty(0, dtype=np.float64))
    return flat, meta


def _unflatten(flat: np.ndarray,
               meta: list[tuple[str, tuple, int]]) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for name, shape, offset in meta:
        size = int(np.prod(shape)) if shape else 1
        out[name] = flat[offset:offset + size].reshape(shape)
    return out


def ring_allreduce(grads_list: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Chunked ring all-reduce average — the executable decomposition.

    Each participant's gradients are flattened into one buffer, split
    into ``D`` contiguous chunks, and moved through the ``2 * (D - 1)``
    ring steps: ``D - 1`` reduce-scatter steps in which every rank
    forwards one chunk to its successor and accumulates the chunk it
    receives, then ``D - 1`` all-gather steps that circulate the
    reduced chunks.  Numerically equal to :func:`allreduce_average`
    (the parity oracle): bit-for-bit for ``D = 2``, ``allclose``
    otherwise (ring summation order differs from list order).
    """
    if not grads_list:
        raise EngineError("allreduce of zero participants")
    d = len(grads_list)
    if d == 1:
        return {name: g.copy() for name, g in grads_list[0].items()}
    names = set(grads_list[0])
    for g in grads_list[1:]:
        if set(g) != names:
            raise EngineError("gradient name mismatch across replicas")
    flats, meta = [], None
    for named in grads_list:
        flat, m = _flatten(named)
        flats.append(flat.copy())
        meta = m
    n = flats[0].size
    bounds = [len(arr) for arr in np.array_split(np.empty(n), d)]
    slices = []
    start = 0
    for width in bounds:
        slices.append(slice(start, start + width))
        start += width

    # Reduce-scatter: step s moves chunk (r - s) mod D from rank r to
    # rank r+1, which accumulates it onto its own copy.  After D-1
    # steps chunk c is fully reduced at rank (c - 1) mod D.
    for step in range(d - 1):
        sent = {}
        for r in range(d):
            c = (r - step) % d
            sent[(r + 1) % d] = (c, flats[r][slices[c]].copy())
        for r, (c, data) in sent.items():
            flats[r][slices[c]] = data + flats[r][slices[c]]

    # All-gather: circulate each reduced chunk around the ring.
    for step in range(d - 1):
        sent = {}
        for r in range(d):
            c = (r + 1 - step) % d
            sent[(r + 1) % d] = (c, flats[r][slices[c]].copy())
        for r, (c, data) in sent.items():
            flats[r][slices[c]] = data

    return _unflatten(flats[0] / d, meta)


@dataclass
class DPStepResult:
    loss: float
    grads: dict[str, np.ndarray]
    replica_results: list[StepResult]
    #: how many per-stage ring collectives the program drove (0 under
    #: ``sync="average"``)
    sync_collectives: int = 0


class DataParallelPipelines:
    """``D`` pipeline replicas with program-driven gradient sync.

    ``sync="ring"`` (the default) executes the compiled program's
    per-stage :class:`~repro.actions.CollectiveOp`\\ s as real chunked
    ring all-reduces; ``sync="average"`` keeps the centralised oracle.
    """

    def __init__(self, spec: ModelSpec, config: PipelineConfig,
                 seed: int = 0, sync: str = "ring"):
        if config.data_parallel < 1:
            raise ConfigError("data_parallel must be >= 1")
        if sync not in ("ring", "average"):
            raise ConfigError(
                f"unknown sync mode {sync!r}; expected 'ring' or 'average'"
            )
        self.spec = spec
        self.config = config
        self.sync = sync
        self.trainers = [
            PipelineTrainer(spec, config, seed=seed)
            for _ in range(config.data_parallel)
        ]
        #: the trainer program annotated with gradient-sync collectives
        #: over *replica indices* — the engine's logical DP ring — built
        #: with the same transform the simulator path compiles with
        self.sync_program: Program = self._annotate(self.trainers[0])

    def _annotate(self, trainer: PipelineTrainer) -> Program:
        d = self.config.data_parallel
        program = trainer.program
        groups = {dev: tuple(range(d)) for dev in program.actions}
        grad_bytes = {
            stage.stage_id: float(stage.param_count() * 8.0)
            for stage in trainer.replica_stages[0]
        }
        return with_gradient_sync(program, groups, grad_bytes)

    def sync_stages(self) -> list[int]:
        """Stages the program syncs, in collective order (deduplicated).

        Chimera's two replicas each carry a collective for their stage;
        the engine reduces replica-summed gradients, so each stage rings
        once.
        """
        seen: list[int] = []
        for _device, coll in collectives_in(self.sync_program):
            if (coll.kind is CollectiveKind.GRAD_SYNC
                    and coll.stage not in seen):
                seen.append(coll.stage)
        return seen

    def train_step(
        self,
        inputs: dict[int, np.ndarray],
        targets: dict[int, np.ndarray],
    ) -> DPStepResult:
        """Shard micro-batches round-robin over replicas and step.

        ``inputs`` holds ``B * D`` micro-batches; replica ``r`` takes
        those with ``m % D == r``, re-indexed to ``0..B-1`` locally.
        After the pipelines drain, gradient sync follows the compiled
        program: one chunked ring per stage bucket (``sync="ring"``) or
        the centralised average (``sync="average"``).
        """
        b, d = self.config.num_microbatches, self.config.data_parallel
        if set(inputs) != set(range(b * d)):
            raise EngineError(f"need {b * d} micro-batches, got {len(inputs)}")
        results: list[StepResult] = []
        for r, trainer in enumerate(self.trainers):
            local_in = {i: inputs[i * d + r] for i in range(b)}
            local_tg = {i: targets[i * d + r] for i in range(b)}
            results.append(trainer.train_step(local_in, local_tg))
        replica_grads = [res.grads for res in results]
        if self.sync == "ring" and d > 1:
            grads, executed = self._ring_sync(replica_grads)
        else:
            grads, executed = allreduce_average(replica_grads), 0
        return DPStepResult(
            loss=float(np.mean([res.loss for res in results])),
            grads=grads,
            replica_results=results,
            sync_collectives=executed,
        )

    def _ring_sync(
        self, replica_grads: list[dict[str, np.ndarray]]
    ) -> tuple[dict[str, np.ndarray], int]:
        """Execute the program's grad-sync collectives, stage by stage."""
        out: dict[str, np.ndarray] = {}
        executed = 0
        for stage in self.sync_stages():
            prefix = f"s{stage}."
            bucket = [
                {k: v for k, v in grads.items() if k.startswith(prefix)}
                for grads in replica_grads
            ]
            if not bucket[0]:
                raise EngineError(
                    f"program syncs stage {stage} but no gradient is "
                    f"named {prefix}*"
                )
            out.update(ring_allreduce(bucket))
            executed += 1
        missing = set(replica_grads[0]) - set(out)
        if missing:
            raise EngineError(
                f"gradients not covered by any sync collective: "
                f"{sorted(missing)[:4]}"
            )
        return out, executed
