"""Real (NumPy) transformer layers with explicit backward passes.

These instantiate the :class:`~repro.models.spec.ModelSpec` layer stack
so that pipeline schedules can be *executed*, not just simulated — the
gradient-equivalence tests compare every schedule against a sequential
run of the same layers.

Contract: ``forward(x)`` returns ``(y, ctx)``; ``backward(dy, ctx)``
returns ``dx`` and accumulates parameter gradients into ``grads``
(gradient accumulation across micro-batches is the caller dividing by
``B`` at the loss, matching standard pipeline training).
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from ..models.spec import LayerKind, LayerSpec
from . import tensor_ops as T


class Layer:
    """Base layer: named parameters plus matching gradient buffers."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def _add_param(self, name: str, value: np.ndarray) -> None:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def zero_grad(self) -> None:
        for g in self.grads.values():
            g[...] = 0.0

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        raise NotImplementedError

    def backward(self, dy: np.ndarray, ctx: object) -> np.ndarray:
        raise NotImplementedError

    def param_count(self) -> int:
        return sum(p.size for p in self.params.values())


class Linear(Layer):
    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator):
        super().__init__()
        scale = 1.0 / np.sqrt(d_in)
        self._add_param("w", rng.normal(0.0, scale, size=(d_in, d_out)))
        self._add_param("b", np.zeros(d_out))

    def forward(self, x):
        y, cache = T.linear_forward(x, self.params["w"], self.params["b"])
        return y, cache

    def backward(self, dy, ctx):
        dx, dw, db = T.linear_backward(dy, ctx, self.params["w"])
        self.grads["w"] += dw
        self.grads["b"] += db
        return dx


class LayerNorm(Layer):
    def __init__(self, d: int):
        super().__init__()
        self._add_param("gamma", np.ones(d))
        self._add_param("beta", np.zeros(d))

    def forward(self, x):
        y, cache = T.layernorm_forward(x, self.params["gamma"], self.params["beta"])
        return y, cache

    def backward(self, dy, ctx):
        dx, dgamma, dbeta = T.layernorm_backward(dy, ctx)
        self.grads["gamma"] += dgamma
        self.grads["beta"] += dbeta
        return dx


class Gelu(Layer):
    def forward(self, x):
        return T.gelu_forward(x)

    def backward(self, dy, ctx):
        return T.gelu_backward(dy, ctx)


class MultiHeadAttention(Layer):
    """Bidirectional multi-head self-attention (BERT-style)."""

    def __init__(self, hidden: int, heads: int, rng: np.random.Generator,
                 causal: bool = False):
        super().__init__()
        if hidden % heads:
            raise EngineError(f"hidden {hidden} % heads {heads} != 0")
        self.h = hidden
        self.n = heads
        self.dh = hidden // heads
        self.causal = causal
        scale = 1.0 / np.sqrt(hidden)
        self._add_param("wqkv", rng.normal(0.0, scale, size=(hidden, 3 * hidden)))
        self._add_param("bqkv", np.zeros(3 * hidden))
        self._add_param("wo", rng.normal(0.0, scale, size=(hidden, hidden)))
        self._add_param("bo", np.zeros(hidden))

    def _split(self, x: np.ndarray) -> np.ndarray:
        # (B, S, h) -> (B, n, S, dh)
        b, s, _ = x.shape
        return x.reshape(b, s, self.n, self.dh).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        b, n, s, dh = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, n * dh)

    def forward(self, x):
        qkv, x_cache = T.linear_forward(x, self.params["wqkv"], self.params["bqkv"])
        q, k, v = np.split(qkv, 3, axis=-1)
        qh, kh, vh = self._split(q), self._split(k), self._split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(self.dh)
        if self.causal:
            s = scores.shape[-1]
            mask = np.triu(np.ones((s, s), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        attn, attn_cache = T.softmax_forward(scores, axis=-1)
        ctx_h = attn @ vh
        merged = self._merge(ctx_h)
        out, merged_cache = T.linear_forward(merged, self.params["wo"], self.params["bo"])
        return out, (x_cache, qh, kh, vh, attn_cache, merged_cache)

    def backward(self, dy, ctx):
        x_cache, qh, kh, vh, attn, merged_cache = ctx
        dmerged, dwo, dbo = T.linear_backward(dy, merged_cache, self.params["wo"])
        self.grads["wo"] += dwo
        self.grads["bo"] += dbo
        dctx_h = self._split(dmerged)
        dattn = dctx_h @ vh.transpose(0, 1, 3, 2)
        dvh = attn.transpose(0, 1, 3, 2) @ dctx_h
        dscores = T.softmax_backward(dattn, attn, axis=-1)
        if self.causal:
            s = dscores.shape[-1]
            mask = np.triu(np.ones((s, s), dtype=bool), k=1)
            dscores = np.where(mask, 0.0, dscores)
        dscores = dscores / np.sqrt(self.dh)
        dqh = dscores @ kh
        dkh = dscores.transpose(0, 1, 3, 2) @ qh
        dqkv = np.concatenate(
            [self._merge(dqh), self._merge(dkh), self._merge(dvh)], axis=-1
        )
        dx, dwqkv, dbqkv = T.linear_backward(dqkv, x_cache, self.params["wqkv"])
        self.grads["wqkv"] += dwqkv
        self.grads["bqkv"] += dbqkv
        return dx


class TransformerBlock(Layer):
    """Pre-LN block: x + attn(ln1(x)); x + mlp(ln2(x))."""

    def __init__(self, hidden: int, heads: int, ffn_mult: int,
                 rng: np.random.Generator, causal: bool = False):
        super().__init__()
        self.ln1 = LayerNorm(hidden)
        self.attn = MultiHeadAttention(hidden, heads, rng, causal)
        self.ln2 = LayerNorm(hidden)
        self.fc1 = Linear(hidden, ffn_mult * hidden, rng)
        self.act = Gelu()
        self.fc2 = Linear(ffn_mult * hidden, hidden, rng)
        self._subs = [self.ln1, self.attn, self.ln2, self.fc1, self.act, self.fc2]
        for i, sub in enumerate(self._subs):
            for name, p in sub.params.items():
                self.params[f"{i}.{name}"] = p
                self.grads[f"{i}.{name}"] = sub.grads[name]

    def zero_grad(self) -> None:
        for sub in self._subs:
            sub.zero_grad()

    def forward(self, x):
        n1, c1 = self.ln1.forward(x)
        a, ca = self.attn.forward(n1)
        r1 = x + a
        n2, c2 = self.ln2.forward(r1)
        f1, cf1 = self.fc1.forward(n2)
        g, cg = self.act.forward(f1)
        f2, cf2 = self.fc2.forward(g)
        y = r1 + f2
        return y, (c1, ca, c2, cf1, cg, cf2)

    def backward(self, dy, ctx):
        c1, ca, c2, cf1, cg, cf2 = ctx
        df2 = self.fc2.backward(dy, cf2)
        dg = self.act.backward(df2, cg)
        dn2 = self.fc1.backward(dg, cf1)
        dr1 = self.ln2.backward(dn2, c2) + dy
        da = self.attn.backward(dr1, ca)
        dx = self.ln1.backward(da, c1) + dr1
        return dx


class Embedding(Layer):
    """Token + learned positional embedding; input is int ids (B, S)."""

    def __init__(self, vocab: int, hidden: int, max_seq: int,
                 rng: np.random.Generator):
        super().__init__()
        self._add_param("tok", rng.normal(0.0, 0.02, size=(vocab, hidden)))
        self._add_param("pos", rng.normal(0.0, 0.02, size=(max_seq, hidden)))

    def forward(self, ids):
        if not np.issubdtype(ids.dtype, np.integer):
            raise EngineError("Embedding expects integer token ids")
        s = ids.shape[-1]
        y = self.params["tok"][ids] + self.params["pos"][:s]
        return y, ids

    def backward(self, dy, ctx):
        ids = ctx
        np.add.at(self.grads["tok"], ids, dy)
        self.grads["pos"][: dy.shape[1]] += dy.sum(axis=0)
        return None  # nothing upstream of the embedding


class Head(Layer):
    """Final projection to vocabulary logits."""

    def __init__(self, hidden: int, vocab: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(hidden, vocab, rng)
        self.params = self.proj.params
        self.grads = self.proj.grads

    def zero_grad(self) -> None:
        self.proj.zero_grad()

    def forward(self, x):
        return self.proj.forward(x)

    def backward(self, dy, ctx):
        return self.proj.backward(dy, ctx)


def instantiate_layer(spec: LayerSpec, seq_len: int,
                      rng: np.random.Generator, causal: bool) -> Layer:
    """Build the real layer for one spec entry."""
    if spec.kind is LayerKind.TRANSFORMER:
        return TransformerBlock(spec.hidden, spec.heads, spec.ffn_mult, rng,
                                causal)
    if spec.kind is LayerKind.EMBEDDING:
        return Embedding(spec.vocab, spec.hidden, seq_len, rng)
    if spec.kind is LayerKind.HEAD:
        return Head(spec.hidden, spec.vocab, rng)
    raise EngineError(f"cannot instantiate {spec.kind}")
