"""Numerically careful NumPy kernels with hand-written backward passes.

All kernels return ``(output, cache)`` from the forward and take
``(grad_output, cache)`` in the backward — the contract the layer
classes build on.  Everything runs in float64 so that pipeline-vs-
sequential gradient equivalence can be asserted to ~1e-12.
"""

from __future__ import annotations

import numpy as np

_GELU_C = float(np.sqrt(2.0 / np.pi))
_GELU_A = 0.044715


def gelu_forward(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    """tanh-approximated GELU (the transformer default)."""
    inner = _GELU_C * (x + _GELU_A * x**3)
    t = np.tanh(inner)
    y = 0.5 * x * (1.0 + t)
    return y, (x, t)


def gelu_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x, t = cache
    dinner = _GELU_C * (1.0 + 3.0 * _GELU_A * x**2)
    dt = (1.0 - t**2) * dinner
    return dy * (0.5 * (1.0 + t) + 0.5 * x * dt)


def softmax_forward(x: np.ndarray, axis: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Shift-stabilised softmax; cache is the output itself."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    y = e / np.sum(e, axis=axis, keepdims=True)
    return y, y


def softmax_backward(dy: np.ndarray, y: np.ndarray, axis: int = -1) -> np.ndarray:
    inner = np.sum(dy * y, axis=axis, keepdims=True)
    return (dy - inner) * y


def layernorm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis."""
    mu = x.mean(axis=-1, keepdims=True)
    xc = x - mu
    var = (xc**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = xc * inv_std
    y = gamma * xhat + beta
    return y, (xhat, inv_std, gamma)


def layernorm_backward(
    dy: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dgamma, dbeta)."""
    xhat, inv_std, gamma = cache
    d = xhat.shape[-1]
    dgamma = np.sum(dy * xhat, axis=tuple(range(dy.ndim - 1)))
    dbeta = np.sum(dy, axis=tuple(range(dy.ndim - 1)))
    dxhat = dy * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * inv_std
    assert dx.shape[-1] == d
    return dx, dgamma, dbeta


def linear_forward(
    x: np.ndarray, w: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """y = x @ w + b over the last axis; cache is x."""
    return x @ w + b, x


def linear_backward(
    dy: np.ndarray, x: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dw, db) for arbitrary leading batch dims."""
    dx = dy @ w.T
    x2 = x.reshape(-1, x.shape[-1])
    dy2 = dy.reshape(-1, dy.shape[-1])
    dw = x2.T @ dy2
    db = dy2.sum(axis=0)
    return dx, dw, db


def cross_entropy_forward(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, tuple]:
    """Mean token-level cross entropy.

    ``logits``: (..., vocab) floats; ``targets``: (...) int ids.
    """
    probs, _ = softmax_forward(logits, axis=-1)
    flat = probs.reshape(-1, probs.shape[-1])
    idx = targets.reshape(-1)
    n = idx.shape[0]
    picked = flat[np.arange(n), idx]
    loss = float(-np.log(np.maximum(picked, 1e-300)).mean())
    return loss, (probs, targets)


def cross_entropy_backward(cache: tuple, scale: float = 1.0) -> np.ndarray:
    """d(loss * scale)/dlogits."""
    probs, targets = cache
    flat = probs.reshape(-1, probs.shape[-1]).copy()
    idx = targets.reshape(-1)
    n = idx.shape[0]
    flat[np.arange(n), idx] -= 1.0
    return (flat / n * scale).reshape(probs.shape)
