"""Sequential single-worker reference implementation.

Runs the same stages, micro-batches and loss scaling as the pipeline
trainer but on one thread with no schedule at all — plain loop over
micro-batches, forward then backward.  Pipeline parallelism must be a
pure reordering of this computation, so gradients must match to
floating-point accumulation order (float64 ⇒ ~1e-12 relative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.spec import ModelSpec
from . import tensor_ops as T
from .module import StageModule, build_stages


@dataclass
class ReferenceResult:
    loss: float
    per_microbatch_loss: dict[int, float]
    grads: dict[str, np.ndarray]


def sequential_step(
    spec: ModelSpec,
    num_stages: int,
    inputs: dict[int, np.ndarray],
    targets: dict[int, np.ndarray],
    seed: int = 0,
) -> ReferenceResult:
    """One full training iteration without any parallelism."""
    stages = build_stages(spec, num_stages, seed=seed)
    return sequential_step_on(stages, inputs, targets)


def sequential_step_on(
    stages: list[StageModule],
    inputs: dict[int, np.ndarray],
    targets: dict[int, np.ndarray],
) -> ReferenceResult:
    """Run the iteration on existing stages (grads accumulate in place)."""
    b = len(inputs)
    losses: dict[int, float] = {}
    for m in sorted(inputs):
        x = inputs[m]
        for stage in stages:
            x = stage.forward(m, x)
        loss, cache = T.cross_entropy_forward(x, targets[m])
        losses[m] = loss
        dy = T.cross_entropy_backward(cache, scale=1.0 / b)
        for stage in reversed(stages):
            dy = stage.backward(m, dy)
    grads: dict[str, np.ndarray] = {}
    for stage in stages:
        grads.update(stage.named_grads())
    return ReferenceResult(
        loss=float(np.mean(list(losses.values()))),
        per_microbatch_loss=losses,
        grads=grads,
    )
