"""Communication-time model used by the discrete-event simulator.

Resolves a (source rank, destination rank, bytes) triple to seconds via
the cluster topology, and models the paper's batched cross-communication
(Sec. 4.2): opposing transfers between the same device pair issued in
one ``batch_isend_irecv`` share the wire sequentially but pay a single
launch latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .presets import Cluster
from .topology import Topology


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message."""

    src: int
    dst: int
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ConfigError("negative transfer size")


class CommModel:
    """Transfer-time oracle over a topology.

    ``uniform_tc`` overrides the topology with a flat per-message cost —
    this is how abstract-cost experiments (Fig. 1 style, ``T_C``
    symbolics) run through the same simulator code path.
    """

    def __init__(self, topology: Topology | None = None,
                 uniform_tc: float | None = None):
        if topology is None and uniform_tc is None:
            raise ConfigError("CommModel needs a topology or a uniform cost")
        self.topology = topology
        self.uniform_tc = uniform_tc

    @classmethod
    def from_cluster(cls, cluster: Cluster) -> "CommModel":
        return cls(topology=cluster.topology)

    @classmethod
    def uniform(cls, t_c: float) -> "CommModel":
        if t_c < 0:
            raise ConfigError("t_c must be >= 0")
        return cls(uniform_tc=t_c)

    def transfer_time(self, transfer: Transfer) -> float:
        if transfer.src == transfer.dst:
            return 0.0
        if self.uniform_tc is not None:
            return self.uniform_tc
        assert self.topology is not None
        return self.topology.transfer_time(transfer.src, transfer.dst,
                                           transfer.nbytes)

    def rank_transfer_time(self, a: int, b: int, nbytes: float) -> float:
        """Transfer seconds between two *global* ranks, unshifted.

        Collective rings address cluster ranks directly, so this
        resolves against the raw topology even in oracles whose
        :meth:`transfer_time` re-bases program-local device ids.
        """
        if a == b:
            return 0.0
        if self.uniform_tc is not None:
            return self.uniform_tc
        assert self.topology is not None
        return self.topology.transfer_time(a, b, nbytes)

    def batched_time(self, transfers: list[Transfer]) -> float:
        """Duration of one batched isend/irecv group.

        Transfers between distinct pairs proceed in parallel; transfers
        sharing an unordered device pair serialize on the wire but pay
        the launch latency once.  The group completes when its slowest
        pair completes (NCCL group semantics).
        """
        if not transfers:
            return 0.0
        by_pair: dict[frozenset[int], list[Transfer]] = {}
        for t in transfers:
            if t.src == t.dst:
                continue
            by_pair.setdefault(frozenset((t.src, t.dst)), []).append(t)
        if not by_pair:
            return 0.0
        pair_times = []
        for group in by_pair.values():
            times = [self.transfer_time(t) for t in group]
            if self.uniform_tc is not None:
                # Uniform mode: t_c is a per-message cost with no
                # latency/bandwidth split; batching saves nothing but
                # serialization is still modeled.
                pair_times.append(sum(times))
                continue
            assert self.topology is not None
            link = self.topology.effective_link(group[0].src, group[0].dst)
            serialized = link.latency + sum(
                t.nbytes / link.bandwidth for t in group
            )
            pair_times.append(serialized)
        return max(pair_times)
