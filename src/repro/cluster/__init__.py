"""Cluster topologies, presets, and the communication cost model."""

from .comm_model import CommModel, Transfer
from .presets import (
    Cluster,
    all_clusters,
    get_cluster,
    make_fc,
    make_pc,
    make_tacc,
    make_tc,
)
from .topology import (
    CLOUD_NET,
    INTER_NODE,
    NVLINK2,
    NVLINK3,
    PCIE4,
    LinkClass,
    Topology,
    ring_transfer_chain,
)

__all__ = [
    "CLOUD_NET",
    "INTER_NODE",
    "NVLINK2",
    "NVLINK3",
    "PCIE4",
    "Cluster",
    "CommModel",
    "LinkClass",
    "Topology",
    "Transfer",
    "all_clusters",
    "get_cluster",
    "make_fc",
    "make_pc",
    "make_tacc",
    "make_tc",
    "ring_transfer_chain",
]
