"""The four evaluation clusters from Section 5 of the paper.

* ``TACC``  — Lonestar6: 3x A100-40G per node (GPU0 on socket 0, GPU1/2
  on socket 1), no NVLink, nodes joined by InfiniBand.  Represents
  supercomputers with modest intra-node GPU connectivity.
* ``TC``    — Tencent GN10Xp cloud node: 8x V100-32G with NVLink
  (V100 hybrid-cube-mesh), nodes joined by cloud 25G networking.
* ``PC``    — local server: 8x A100-80G, NVLink only within pairs
  (0-1, 2-3, 4-5, 6-7), PCIe otherwise.
* ``FC``    — local server: 8x A100-80G fully connected via NVSwitch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..models.costs import A100_40G, A100_80G, V100_32G, DeviceModel
from .topology import (
    CLOUD_NET,
    INTER_NODE,
    NVLINK2,
    NVLINK3,
    PCIE4,
    LinkClass,
    Topology,
)


@dataclass(frozen=True)
class Cluster:
    """A named cluster: device model + interconnect topology."""

    name: str
    device: DeviceModel
    topology: Topology
    gpus_per_node: int

    @property
    def num_devices(self) -> int:
        return self.topology.num_devices

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def describe(self) -> str:
        return (f"{self.name}: {self.num_devices}x {self.device.name}, "
                f"{self.gpus_per_node}/node")


def _fully_connected(name: str, n: int, link: LinkClass) -> Topology:
    topo = Topology(name, n)
    for a in range(n):
        for b in range(a + 1, n):
            topo.add_link(a, b, link)
    return topo


def make_fc(num_devices: int = 8) -> Cluster:
    """Local cluster, A100-80G fully connected with NVLink (NVSwitch)."""
    topo = _fully_connected("FC", num_devices, NVLINK3)
    return Cluster("FC", A100_80G, topo, gpus_per_node=num_devices)


def make_pc(num_devices: int = 8) -> Cluster:
    """Local cluster, A100-80G with NVLink pairs, PCIe elsewhere."""
    if num_devices % 2:
        raise ConfigError("PC cluster pairs GPUs; device count must be even")
    topo = Topology("PC", num_devices)
    for a in range(0, num_devices, 2):
        topo.add_link(a, a + 1, NVLINK3)
    for a in range(num_devices):
        for b in range(a + 1, num_devices):
            if topo.link_between(a, b) is None:
                topo.add_link(a, b, PCIE4)
    return Cluster("PC", A100_80G, topo, gpus_per_node=num_devices)


def make_tc(num_devices: int = 8) -> Cluster:
    """Tencent GN10Xp cloud node(s): V100-32G, NVLink hybrid cube mesh.

    We model the V100 DGX-style mesh as NVLink2 between all GPUs of a
    node (the cube-mesh gives every pair a <=2-hop NVLink path) and
    cloud networking across nodes.
    """
    per_node = 8
    topo = Topology("TC", num_devices)
    for a in range(num_devices):
        for b in range(a + 1, num_devices):
            if a // per_node == b // per_node:
                topo.add_link(a, b, NVLINK2)
            else:
                topo.add_link(a, b, CLOUD_NET)
    return Cluster("TC", V100_32G, topo, gpus_per_node=per_node)


def make_tacc(num_devices: int = 8) -> Cluster:
    """TACC Lonestar6 GPU nodes: 3x A100-40G per node, no NVLink.

    GPU 0 sits on socket 0 while GPUs 1 and 2 share socket 1, so the
    0-1 and 0-2 hops cross the socket interconnect; we fold that into
    the PCIe link class.  Everything across nodes rides InfiniBand.
    """
    per_node = 3
    topo = Topology("TACC", num_devices)
    for a in range(num_devices):
        for b in range(a + 1, num_devices):
            link = PCIE4 if a // per_node == b // per_node else INTER_NODE
            topo.add_link(a, b, link)
    return Cluster("TACC", A100_40G, topo, gpus_per_node=per_node)


_FACTORIES = {
    "FC": make_fc,
    "PC": make_pc,
    "TC": make_tc,
    "TACC": make_tacc,
}


def get_cluster(name: str, num_devices: int = 8) -> Cluster:
    """Look up one of the paper's four clusters by name."""
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown cluster {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(num_devices)


def all_clusters(num_devices: int = 8) -> list[Cluster]:
    """The four evaluation clusters, in the paper's presentation order."""
    return [make_pc(num_devices), make_fc(num_devices),
            make_tacc(num_devices), make_tc(num_devices)]
