"""Device interconnect topology.

A :class:`Topology` is an undirected multigraph of devices where each
edge carries a :class:`LinkClass` (NVLink generation, PCIe, inter-node
fabric).  Communication cost between two ranks is resolved by the best
link class on the shortest path — a deliberate simplification of NCCL
ring construction that preserves the ordering the paper relies on:
NVLink pairs ≫ PCIe ≫ cross-node.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import ConfigError


@dataclass(frozen=True)
class LinkClass:
    """A class of interconnect with an alpha-beta cost model."""

    name: str
    bandwidth: float   # bytes / second, effective
    latency: float     # seconds per message

    def transfer_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ConfigError(f"negative transfer size {nbytes}")
        return self.latency + nbytes / self.bandwidth


# Effective (not peak) bandwidths under training congestion; see
# DESIGN.md §6.  The inter-node figure reflects a shared, contended NIC
# per 3-GPU Lonestar6 node, not the fabric's line rate.
NVLINK3 = LinkClass("nvlink3", 200e9, 5e-6)
NVLINK2 = LinkClass("nvlink2", 100e9, 8e-6)
PCIE4 = LinkClass("pcie4", 6e9, 15e-6)
INTER_NODE = LinkClass("ib-shared", 1.5e9, 25e-6)
CLOUD_NET = LinkClass("cloud-vpc", 2.5e9, 30e-6)


class Topology:
    """Interconnect graph over ``num_devices`` ranks."""

    def __init__(self, name: str, num_devices: int):
        if num_devices < 1:
            raise ConfigError("num_devices must be >= 1")
        self.name = name
        self.num_devices = num_devices
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(num_devices))

    def add_link(self, a: int, b: int, link: LinkClass) -> None:
        if not (0 <= a < self.num_devices and 0 <= b < self.num_devices):
            raise ConfigError(f"link ({a},{b}) outside device range")
        if a == b:
            raise ConfigError("self links are implicit (zero cost)")
        existing = self._graph.get_edge_data(a, b)
        # Keep the fastest link if several are declared between a pair.
        if existing is None or existing["link"].bandwidth < link.bandwidth:
            self._graph.add_edge(a, b, link=link, weight=1.0 / link.bandwidth)

    def link_between(self, a: int, b: int) -> LinkClass | None:
        """Direct link between two ranks, if any."""
        data = self._graph.get_edge_data(a, b)
        return None if data is None else data["link"]

    def effective_link(self, a: int, b: int) -> LinkClass:
        """Link class governing a transfer from ``a`` to ``b``.

        Direct edge if present; otherwise the bottleneck (slowest) link
        along the bandwidth-shortest path, with per-hop latency summed.
        Same-rank transfers are free and must be filtered by callers.
        """
        if a == b:
            raise ConfigError("effective_link called for a self transfer")
        direct = self.link_between(a, b)
        if direct is not None:
            return direct
        try:
            path = nx.shortest_path(self._graph, a, b, weight="weight")
        except nx.NetworkXNoPath as exc:
            raise ConfigError(
                f"{self.name}: no route between {a} and {b}"
            ) from exc
        links = [self._graph[u][v]["link"] for u, v in zip(path, path[1:])]
        bottleneck = min(links, key=lambda l: l.bandwidth)
        total_latency = sum(l.latency for l in links)
        return LinkClass(
            name=f"path({bottleneck.name}x{len(links)})",
            bandwidth=bottleneck.bandwidth,
            latency=total_latency,
        )

    def transfer_time(self, a: int, b: int, nbytes: float) -> float:
        if a == b:
            return 0.0
        return self.effective_link(a, b).transfer_time(nbytes)

    def links(self) -> list[tuple[int, int, LinkClass]]:
        """All declared links as sorted ``(low_rank, high_rank, link)``
        triples — a canonical, order-independent dump used by cache
        fingerprinting and debugging."""
        return sorted(
            (min(a, b), max(a, b), data["link"])
            for a, b, data in self._graph.edges(data=True)
        )

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph) if self.num_devices > 1 else True

    def neighbors(self, rank: int) -> list[int]:
        return sorted(self._graph.neighbors(rank))

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, devices={self.num_devices}, "
                f"links={self._graph.number_of_edges()})")


def ring_transfer_chain(topology: Topology, ranks: list[int], nbytes: float) -> float:
    """Time for a chain of P2P transfers along consecutive rank pairs.

    Used by the data-parallel all-reduce model: a ring all-reduce of
    ``nbytes`` over ``len(ranks)`` devices costs ``2*(n-1)/n * nbytes``
    over the slowest link in the ring.
    """
    n = len(ranks)
    if n < 2:
        return 0.0
    slowest = max(
        topology.effective_link(a, b).transfer_time(nbytes / n)
        for a, b in zip(ranks, ranks[1:] + ranks[:1])
    )
    return 2 * (n - 1) * slowest
