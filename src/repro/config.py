"""Configuration objects shared across the library.

A :class:`PipelineConfig` fully determines a schedule's *shape*: how
many workers participate in one pipeline (``P``), how many micro-batches
an iteration is split into (``B``), how many waves a wave-like schedule
folds the model into (``W``), and how many data-parallel pipeline
replicas run side by side (``D``).  Symbols follow Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Schemes with closed-form or greedy generators in :mod:`repro.schedules`.
KNOWN_SCHEMES = (
    "gpipe",
    "dapple",          # 1F1B
    "interleaved",     # Megatron interleaved 1F1B
    "gems",
    "chimera",         # bidirectional, 2 model replicas
    "chimera-wave",    # Chimera after the wave transform of Sec. 3.2
    "hanayo",
    "async-1f1b",      # PipeDream-style, no flush
)


@dataclass(frozen=True)
class PipelineConfig:
    """Shape of one training iteration under pipeline parallelism.

    Attributes
    ----------
    scheme:
        One of :data:`KNOWN_SCHEMES`.
    num_devices:
        ``P`` — workers in one pipeline.
    num_microbatches:
        ``B`` — micro-batches per iteration (per pipeline replica).
    num_waves:
        ``W`` — waves for wave-like schemes (``S = 2*W*P`` stages).
        Ignored (forced to the scheme's natural value) otherwise.
    data_parallel:
        ``D`` — replicated pipelines doing standard data parallelism.
    microbatch_size:
        Sequences per micro-batch (used by cost and memory models).
    """

    scheme: str
    num_devices: int
    num_microbatches: int
    num_waves: int = 1
    data_parallel: int = 1
    microbatch_size: int = 1

    def __post_init__(self) -> None:
        if self.scheme not in KNOWN_SCHEMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; expected one of {KNOWN_SCHEMES}"
            )
        for name in ("num_devices", "num_microbatches", "num_waves",
                     "data_parallel", "microbatch_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(f"{name} must be a positive int, got {value!r}")
        if self.scheme in ("chimera", "chimera-wave", "gems"):
            if self.num_microbatches % 2:
                raise ConfigError(
                    f"{self.scheme} splits micro-batches across two directions; "
                    f"B must be even, got {self.num_microbatches}"
                )
        if self.scheme == "chimera" and self.num_devices % 2:
            raise ConfigError("chimera requires an even number of devices")

    # -- derived shape ---------------------------------------------------

    @property
    def waves(self) -> int:
        """Effective wave count.

        Classic single-direction schemes are "half a wave" in the
        paper's terms; we expose their stage count directly instead.
        """
        if self.scheme == "hanayo":
            return self.num_waves
        if self.scheme == "chimera-wave":
            return 1
        return 1

    @property
    def num_stages(self) -> int:
        """``S`` — total pipeline stages."""
        if self.scheme == "hanayo":
            return 2 * self.num_waves * self.num_devices
        if self.scheme == "chimera-wave":
            return 2 * self.num_devices
        if self.scheme == "interleaved":
            return self.num_waves * self.num_devices
        # gpipe / dapple / chimera / gems / async: one stage per device
        return self.num_devices

    @property
    def chunks_per_device(self) -> int:
        """Model chunks each device owns (the paper's local module count)."""
        if self.scheme == "chimera":
            return 2  # two replicas, one stage of each
        return self.num_stages // self.num_devices

    @property
    def total_devices(self) -> int:
        """Devices used by the full job: pipeline × data parallel."""
        return self.num_devices * self.data_parallel

    @property
    def total_batch(self) -> int:
        """Sequences consumed per iteration by the full job."""
        return self.num_microbatches * self.microbatch_size * self.data_parallel

    def with_scheme(self, scheme: str, **kwargs) -> "PipelineConfig":
        return replace(self, scheme=scheme, **kwargs)

    def describe(self) -> str:
        core = (f"{self.scheme}(P={self.num_devices}, B={self.num_microbatches}, "
                f"D={self.data_parallel}")
        if self.scheme in ("hanayo", "interleaved"):
            core += f", W={self.num_waves}"
        return core + ")"


@dataclass(frozen=True)
class CostConfig:
    """Abstract per-stage time costs (Table 1 symbols).

    ``t_f``/``t_b`` are the forward/backward time of *one device's worth
    of layers* (the paper's ``T_F``/``T_B``); per-stage chunk costs are
    obtained by dividing by the device's chunk count.  ``t_c`` is one
    P2P transfer.  Units are arbitrary but must be consistent.
    """

    t_f: float = 1.0
    t_b: float = 2.0
    t_c: float = 0.0

    def __post_init__(self) -> None:
        if self.t_f <= 0 or self.t_b <= 0 or self.t_c < 0:
            raise ConfigError(f"invalid costs: {self}")

    def scaled(self, factor: float) -> "CostConfig":
        return CostConfig(self.t_f * factor, self.t_b * factor, self.t_c * factor)


@dataclass(frozen=True)
class RunConfig:
    """Options controlling simulation fidelity.

    ``contention`` serializes transfers sharing a device pair on one
    wire (NCCL-style); off by default so abstract-cost experiments keep
    the paper's uncontended ``T_C`` model.
    """

    prefetch: bool = True           # overlap recv with previous compute
    batch_cross_comm: bool = True   # batch opposing sends at wave turns
    track_memory: bool = True
    contention: bool = False        # one wire per device pair
    iterations: int = 1             # pipeline iterations to simulate

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
