"""Shared primitive types for schedules and runtimes.

The schedule IR is deliberately tiny: a schedule is a per-device ordered
list of :class:`ScheduleOp`.  Everything else in the library (analysis,
compilation to action lists, simulation, real execution) is derived from
this one representation, which is what lets a single runtime execute any
pipeline-parallel algorithm (the paper's "unified framework" claim).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator


class OpKind(enum.Enum):
    """The two compute op kinds in a training pipeline."""

    FORWARD = "F"
    BACKWARD = "B"

    @property
    def short(self) -> str:
        return self.value

    def __repr__(self) -> str:  # compact reprs keep test output readable
        return self.value


# Direction of a pipeline pass.  Bidirectional (Chimera) and wave
# (Hanayo) schedules use both; classic pipelines only DOWN.
class Direction(enum.Enum):
    DOWN = +1   # stage index increases with device index
    UP = -1     # stage index decreases with device index


@dataclass(frozen=True, order=True)
class ScheduleOp:
    """One unit of compute in a pipeline schedule.

    Attributes
    ----------
    kind:
        Forward or backward.
    microbatch:
        Micro-batch index in ``[0, B)``.
    stage:
        Global pipeline stage index in ``[0, S)``.  Stage 0 holds the
        first layers of the model, stage S-1 the last.
    device:
        Worker rank executing this op.
    chunk:
        Local model-chunk index on ``device`` (the paper's "local module
        rank"): position of ``stage`` in the device's stage list.
    replica:
        Pipeline replica id (Chimera keeps two model replicas; all other
        schemes use replica 0).
    """

    # Order matters only for deterministic sorting in tests; runtime
    # ordering is positional within each device list.
    device: int
    kind: OpKind
    microbatch: int
    stage: int
    chunk: int = 0
    replica: int = 0

    @property
    def key(self) -> tuple:
        """Identity of the work item independent of placement."""
        return (self.kind, self.microbatch, self.stage)

    def with_device(self, device: int, chunk: int | None = None) -> "ScheduleOp":
        return replace(self, device=device, chunk=self.chunk if chunk is None else chunk)

    def __str__(self) -> str:
        return f"{self.kind.short}(m{self.microbatch},s{self.stage})@d{self.device}"


@dataclass(frozen=True)
class TimedOp:
    """A schedule op bound to an execution interval by a cost model."""

    op: ScheduleOp
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TimedOp") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """Per-device timed ops, the output of simulation.

    ``spans[d]`` is the time-ordered list of :class:`TimedOp` executed by
    device ``d``.  ``makespan`` is the end of the last op anywhere.
    """

    spans: dict[int, list[TimedOp]] = field(default_factory=dict)

    def add(self, top: TimedOp) -> None:
        self.spans.setdefault(top.op.device, []).append(top)

    @property
    def devices(self) -> list[int]:
        return sorted(self.spans)

    @property
    def makespan(self) -> float:
        ends = [t.end for spans in self.spans.values() for t in spans]
        return max(ends) if ends else 0.0

    @property
    def start_time(self) -> float:
        starts = [t.start for spans in self.spans.values() for t in spans]
        return min(starts) if starts else 0.0

    def busy_time(self, device: int) -> float:
        # t.end - t.start inline: the property call is measurable at
        # sweep op counts, and the sum order is unchanged
        return sum(t.end - t.start for t in self.spans.get(device, ()))

    def iter_ops(self) -> Iterator[TimedOp]:
        for spans in self.spans.values():
            yield from spans

    def device_spans(self, device: int) -> list[TimedOp]:
        return list(self.spans.get(device, ()))

    # -- serialization (archiving simulated results) ----------------------

    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            str(d): [
                {
                    "kind": t.op.kind.value,
                    "microbatch": t.op.microbatch,
                    "stage": t.op.stage,
                    "chunk": t.op.chunk,
                    "replica": t.op.replica,
                    "start": t.start,
                    "end": t.end,
                }
                for t in spans
            ]
            for d, spans in self.spans.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        tl = cls()
        for d_str, spans in data.items():
            device = int(d_str)
            for rec in spans:
                op = ScheduleOp(
                    device=device,
                    kind=OpKind(rec["kind"]),
                    microbatch=rec["microbatch"],
                    stage=rec["stage"],
                    chunk=rec["chunk"],
                    replica=rec["replica"],
                )
                tl.add(TimedOp(op=op, start=rec["start"], end=rec["end"]))
        return tl


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary unit, for reports."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")
