"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SchedulingError(ReproError):
    """A schedule could not be constructed (bad shape, greedy deadlock)."""


class ValidationError(ReproError):
    """A schedule or action list violates a structural invariant."""


class CommError(ReproError):
    """A communication primitive was misused (unmatched send/recv)."""


class DeadlockError(CommError):
    """The action graph or live channel state contains a cycle."""


class OutOfMemoryError(ReproError):
    """Modeled device memory was exceeded.

    Mirrors a CUDA OOM: raised by the memory tracker when the peak
    footprint passes device capacity.  Carries the device and the peak
    in bytes so benches can report which rank OOM'd.
    """

    def __init__(self, device: int, peak_bytes: int, capacity_bytes: int):
        self.device = device
        self.peak_bytes = peak_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"device {device}: peak {peak_bytes / 2**30:.2f} GiB exceeds "
            f"capacity {capacity_bytes / 2**30:.2f} GiB"
        )


class SynthesisError(ReproError):
    """A schedule-synthesis operation failed.

    Raised when a mutation operator is inapplicable to an ordering
    (the search samples another), or when a serialized schedule cannot
    be replayed against the program it claims to reorder.
    """


class EngineError(ReproError):
    """The NumPy execution engine hit an internal inconsistency."""
