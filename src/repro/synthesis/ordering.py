"""The candidate representation of the synthesis search.

A :class:`ScheduleOrdering` is an immutable, hashable snapshot of the
one thing the search varies: per device, the order of that device's
**ordering entries** — compute keys ``(kind, microbatch, stage)`` plus
asynchronous :class:`~repro.actions.ops.CollectiveOp`\\ s — along with
an optional activation-recompute frontier.  Everything else (the work
set, dataflow edges, tensor sizes, placement) is fixed by the base
:class:`~repro.actions.program.Program` the ordering was extracted
from; :func:`repro.actions.reorder.reorder_program` turns any ordering
back into an executable program.

Hashability matters: the searcher deduplicates candidates by the
ordering itself, and the property tests pin that mutation + inverse
round-trips to an ``==``-identical object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from ..actions.ops import CollectiveOp
from ..actions.program import Program
from ..actions.reorder import OrderEntry, ordering_entries
from ..errors import SynthesisError
from ..types import OpKind


@dataclass(frozen=True)
class ScheduleOrdering:
    """Per-device ordering entries, as an immutable value object.

    ``device_entries`` is a tuple of ``(device, entries)`` pairs sorted
    by device; ``recompute_frontier`` selects the partial-recompute
    resource model (stages ``>= frontier`` checkpoint; ``None`` keeps
    the base program's resources untouched).
    """

    device_entries: tuple[tuple[int, tuple[OrderEntry, ...]], ...]
    recompute_frontier: int | None = None

    @classmethod
    def from_program(cls, program: Program,
                     recompute_frontier: int | None = None,
                     ) -> "ScheduleOrdering":
        """The program's own ordering (the search's identity start)."""
        return cls.from_orders(ordering_entries(program),
                               recompute_frontier)

    @classmethod
    def from_orders(cls, orders: Mapping[int, Sequence[OrderEntry]],
                    recompute_frontier: int | None = None,
                    ) -> "ScheduleOrdering":
        return cls(
            device_entries=tuple(
                (device, tuple(orders[device]))
                for device in sorted(orders)
            ),
            recompute_frontier=recompute_frontier,
        )

    # -- access ----------------------------------------------------------

    @property
    def devices(self) -> tuple[int, ...]:
        return tuple(d for d, _ in self.device_entries)

    def entries(self, device: int) -> tuple[OrderEntry, ...]:
        for d, entries in self.device_entries:
            if d == device:
                return entries
        raise SynthesisError(f"no device {device} in ordering")

    def to_orders(self) -> dict[int, list[OrderEntry]]:
        """The mutable per-device mapping ``reorder_program`` consumes."""
        return {d: list(entries) for d, entries in self.device_entries}

    def entry_count(self) -> int:
        return sum(len(entries) for _, entries in self.device_entries)

    # -- derivation ------------------------------------------------------

    def replace_entries(self, device: int,
                        entries: Iterable[OrderEntry],
                        ) -> "ScheduleOrdering":
        new = tuple(
            (d, tuple(entries) if d == device else old)
            for d, old in self.device_entries
        )
        if not any(d == device for d, _ in self.device_entries):
            raise SynthesisError(f"no device {device} in ordering")
        return replace(self, device_entries=new)

    def with_frontier(self, frontier: int | None) -> "ScheduleOrdering":
        return replace(self, recompute_frontier=frontier)

    def describe(self) -> str:
        sizes = {d: len(e) for d, e in self.device_entries}
        frontier = (f", recompute>={self.recompute_frontier}"
                    if self.recompute_frontier is not None else "")
        return f"ordering[{sizes}{frontier}]"


def gpipe_like_ordering(program: Program) -> ScheduleOrdering:
    """A GPipe-disciplined start: all forwards, then all backwards.

    Per device, forwards keep their relative order, then backwards keep
    theirs, with collective entries trailing.  This is always legal
    (forward dataflow only references forwards, backward only backwards
    + the own forward, and relative orders within each kind are
    preserved), always memory-hungry (every activation is live at the
    turnaround — the GPipe penalty), and — on a wave placement — the
    canonical *bad* start the searcher is asked to improve into
    Hanayo-like interleaving (see ``docs/synthesis.md``).
    """
    orders: dict[int, list[OrderEntry]] = {}
    for device, entries in ordering_entries(program).items():
        forwards = [e for e in entries
                    if not isinstance(e, CollectiveOp)
                    and e[0] is OpKind.FORWARD]
        backwards = [e for e in entries
                     if not isinstance(e, CollectiveOp)
                     and e[0] is OpKind.BACKWARD]
        colls = [e for e in entries if isinstance(e, CollectiveOp)]
        orders[device] = forwards + backwards + colls
    return ScheduleOrdering.from_orders(orders)
