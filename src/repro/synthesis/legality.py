"""Legality of an arbitrary ordering, as structured violations.

:func:`check_ordering` validates a :class:`ScheduleOrdering` against
the base program's facts and returns a list of :class:`Violation`\\ s —
never a bare bool — so the searcher can skip illegal candidates cheaply
and the tests can assert *which* rule broke.

The checks mirror the event core's blocking semantics exactly, which is
what the differential fuzz harness pins:

* **Structural** (``missing-op`` / ``extra-op`` / ``device-set``): each
  device's entries must be a permutation of the program's own — the
  work set and placement are not the search's degrees of freedom.
* **Deadlock** (``dep-inversion`` / ``cross-device-cycle``): in the
  event core a compute blocks on its local producers having retired and
  its remote producers' sends being posted; sends post the instant the
  producing compute retires and collectives never block.  Hence a
  rebuilt program deadlocks *iff* the graph of per-device entry order
  plus dataflow edges has a cycle.  Same-device inversions are reported
  individually; genuine cross-device cycles come with a concrete
  ``a -> b -> ... -> a`` witness (shared
  :func:`~repro.schedules.validation.residual_cycle` machinery).
* **Memory** (``capacity``): per device, activation deltas apply in
  program order — alloc at forward start, free at backward end, checked
  against capacity after each alloc — so a sequential walk reproduces
  the event core's OOM verdict without simulating a single event.  The
  ordering's recompute frontier is honored.
* **Semantic** (``collective-order``): a gradient-sync collective must
  sit after every backward of its ``(stage, replica)`` on its device —
  earlier placements *run* fine in simulation (collectives never
  block) but would reduce unfinished gradients, so they are illegal
  without being deadlocks.  :data:`DEADLOCK_KINDS` / :data:`OOM_KINDS`
  classify kinds for callers pinning verdicts against replays.

:class:`LegalityChecker` is the search-rate form: it precomputes every
program-side fact (entry multisets, interned dependency edges, per-rule
indices) once, so the per-candidate cost is a few linear passes over
the ordering itself.  :func:`check_ordering` builds a throwaway
checker — same verdicts, one-shot convenience.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..actions.ops import CollectiveKind, CollectiveOp
from ..actions.program import ComputeKey, Program
from ..actions.reorder import OrderEntry, ordering_entries
from ..errors import SchedulingError
from ..schedules.validation import residual_cycle
from ..types import OpKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ordering import ScheduleOrdering

#: Violation kinds that make the rebuilt program deadlock in replay.
DEADLOCK_KINDS = frozenset({"dep-inversion", "cross-device-cycle"})
#: Violation kinds that make a capacity-armed replay raise OOM.
OOM_KINDS = frozenset({"capacity"})


@dataclass(frozen=True)
class Violation:
    """One broken legality rule.

    ``kind`` is a stable machine-readable string (see module doc);
    ``device`` the device the rule broke on (``-1`` for program-wide
    problems such as a wrong device set); ``subject`` holds the compute
    keys (or entries) involved, for tests and tooling that need more
    than prose.
    """

    kind: str
    device: int
    message: str
    subject: tuple = ()

    def __str__(self) -> str:
        where = f"d{self.device}" if self.device >= 0 else "program"
        return f"[{self.kind}@{where}] {self.message}"


def _fmt(key: ComputeKey) -> str:
    return f"{key[0].value}(m{key[1]},s{key[2]})"


def _fmt_entry(entry: OrderEntry) -> str:
    return str(entry) if isinstance(entry, CollectiveOp) else _fmt(entry)


class LegalityChecker:
    """Reusable checker over one program's (immutable) dataflow facts.

    Construction pays the program-side extraction once; :meth:`check`
    then validates any number of candidate orderings.  ``structural``
    may be turned off per call when the caller guarantees the ordering
    is a per-device permutation of the program's entries — true for
    every mutation-produced candidate, whose operators only ever *move*
    entries — which skips the multiset comparison entirely.
    """

    def __init__(self, program: Program,
                 capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and not program.tracks_memory:
            raise SchedulingError(
                f"{program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
        self.program = program
        self.capacity_bytes = capacity_bytes
        self.base_entries = ordering_entries(program)
        self._counters = {
            device: Counter(entries)
            for device, entries in self.base_entries.items()
        }
        # Interned compute keys: Kahn runs over ints, not tuples.
        self._index: dict[ComputeKey, int] = {
            key: i for i, key in enumerate(program.ops)
        }
        self._keys: tuple[ComputeKey, ...] = tuple(program.ops)
        idx = self._index
        #: all dataflow edges as (producer_idx, consumer_idx)
        self._dep_edges: list[tuple[int, int]] = []
        #: per device, the local (producer, consumer) key pairs whose
        #: relative order the ordering must preserve
        self._local_pairs: dict[int, list[tuple[ComputeKey, ComputeKey]]] = {
            device: [] for device in self.base_entries
        }
        for key, deps in program.deps.items():
            ci = idx[key]
            for dep in deps:
                self._dep_edges.append((idx[dep.producer], ci))
                if dep.tag is None:
                    device = program.ops[key].device
                    self._local_pairs[device].append((dep.producer, key))
        #: per device, per grad-sync (stage, replica): how many matching
        #: backwards the collective must trail
        self._sync_totals: dict[int, dict[tuple[int, int], int]] = {}
        for device, entries in self.base_entries.items():
            sites = {
                (e.stage, e.replica)
                for e in entries
                if isinstance(e, CollectiveOp)
                and e.kind is CollectiveKind.GRAD_SYNC
            }
            if not sites:
                continue
            totals = dict.fromkeys(sites, 0)
            for e in entries:
                if isinstance(e, CollectiveOp):
                    continue
                if e[0] is OpKind.BACKWARD:
                    site = (e[2], program.ops[e].replica)
                    if site in totals:
                        totals[site] += 1
            self._sync_totals[device] = totals

    # -- entry point ------------------------------------------------------

    def check(self, ordering: "ScheduleOrdering",
              structural: bool = True) -> list[Violation]:
        """Every rule ``ordering`` breaks, in severity order
        (structural, then deadlock, then memory, then semantic).

        An empty list means
        :func:`repro.actions.reorder.reorder_program` will produce a
        program that replays to completion (and, when the checker
        carries a capacity, within it).  Structural violations suppress
        the downstream checks — positions are meaningless when the work
        set is wrong.
        """
        program = self.program
        frontier = ordering.recompute_frontier
        if frontier is not None and program.resources is None:
            raise SchedulingError(
                f"{program.name}: a recompute frontier needs a "
                "resource-annotated program (compile with resources=...)"
            )
        if structural:
            violations = self._check_structure(ordering)
            if violations:
                return violations
        else:
            violations = []
        violations.extend(self._check_dependencies(ordering))
        if program.tracks_memory:
            violations.extend(self._check_capacity(ordering))
        violations.extend(self._check_collectives(ordering))
        return violations

    # -- structural -------------------------------------------------------

    def _check_structure(self,
                         ordering: "ScheduleOrdering") -> list[Violation]:
        out: list[Violation] = []
        have = set(ordering.devices)
        want = set(self.base_entries)
        if have != want:
            out.append(Violation(
                kind="device-set", device=-1,
                message=(f"ordering covers devices {sorted(have)}, "
                         f"program has {sorted(want)}"),
            ))
            return out
        for device, base_counts in self._counters.items():
            theirs = Counter(ordering.entries(device))
            if theirs == base_counts:
                continue
            missing = sorted(map(_fmt_entry,
                                 (base_counts - theirs).elements()))
            extra = sorted(map(_fmt_entry,
                               (theirs - base_counts).elements()))
            if missing:
                out.append(Violation(
                    kind="missing-op", device=device,
                    message=f"entries absent from ordering: {missing[:3]}",
                    subject=tuple(missing),
                ))
            if extra:
                out.append(Violation(
                    kind="extra-op", device=device,
                    message=f"entries foreign to this device: {extra[:3]}",
                    subject=tuple(extra),
                ))
        return out

    # -- deadlock ---------------------------------------------------------

    def _check_dependencies(
        self, ordering: "ScheduleOrdering",
    ) -> list[Violation]:
        out: list[Violation] = []
        for device in ordering.devices:
            pairs = self._local_pairs.get(device)
            if not pairs:
                continue
            pos: dict[ComputeKey, int] = {}
            for i, entry in enumerate(ordering.entries(device)):
                if not isinstance(entry, CollectiveOp):
                    pos[entry] = i
            for producer, consumer in pairs:
                if pos[producer] > pos[consumer]:
                    out.append(Violation(
                        kind="dep-inversion", device=device,
                        message=(f"{_fmt(consumer)} placed before its "
                                 f"local producer {_fmt(producer)}"),
                        subject=(producer, consumer),
                    ))
        if out:
            # Local inversions already are cycles (order edge one way,
            # dep edge the other); the global pass would re-report them.
            return out
        cycle = self._find_cycle(ordering)
        if cycle:
            path = " -> ".join(_fmt(k) for k in cycle)
            out.append(Violation(
                kind="cross-device-cycle",
                device=self.program.ops[cycle[0]].device,
                message=(f"order and dataflow edges form a wait cycle: "
                         f"{path} -> {_fmt(cycle[0])}"),
                subject=tuple(cycle),
            ))
        return out

    def _find_cycle(
        self, ordering: "ScheduleOrdering",
    ) -> list[ComputeKey]:
        """Kahn over per-device entry order + dataflow edges; a concrete
        cycle if one exists, else ``[]``."""
        n = len(self._keys)
        indeg = [0] * n
        out: list[list[int]] = [[] for _ in range(n)]
        index = self._index
        for pi, ci in self._dep_edges:
            out[pi].append(ci)
            indeg[ci] += 1
        order_edges: list[tuple[int, int]] = []
        for device in ordering.devices:
            prev = -1
            for entry in ordering.entries(device):
                if isinstance(entry, CollectiveOp):
                    continue  # never blocks; irrelevant to deadlock
                cur = index[entry]
                if prev >= 0:
                    out[prev].append(cur)
                    indeg[cur] += 1
                    order_edges.append((prev, cur))
                prev = cur

        queue = deque(i for i in range(n) if indeg[i] == 0)
        visited = 0
        while queue:
            i = queue.popleft()
            visited += 1
            for j in out[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    queue.append(j)
        if visited == n:
            return []
        # Rare path: rebuild in key space for a readable witness.
        keys = self._keys
        key_out: dict[ComputeKey, list[ComputeKey]] = {
            k: [] for k in keys
        }
        key_indeg: dict[ComputeKey, int] = {
            keys[i]: indeg[i] for i in range(n)
        }
        for pi, ci in self._dep_edges + order_edges:
            key_out[keys[pi]].append(keys[ci])
        return residual_cycle(key_out, key_indeg)

    # -- memory -----------------------------------------------------------

    def _check_capacity(
        self, ordering: "ScheduleOrdering",
    ) -> list[Violation]:
        """The event core's per-device watermark walk, without events.

        Per device the deltas apply in program order — alloc at forward
        start, free at backward end, the capacity check firing after
        each alloc — so execution timing never changes a device's peak
        and this sequential walk is *exact*, not a bound.
        """
        program = self.program
        capacity_bytes = self.capacity_bytes
        resources = program.resources
        assert resources is not None
        frontier = ordering.recompute_frontier
        if frontier is not None:
            resources = resources.with_recompute_from(frontier)
        activation = resources.activation_bytes
        out: list[Violation] = []
        if capacity_bytes is None:
            return out
        for device in ordering.devices:
            level = program.static_bytes.get(device, 0.0)
            if level > capacity_bytes:
                out.append(Violation(
                    kind="capacity", device=device,
                    message=(f"static residency {level:.0f} bytes alone "
                             f"exceeds capacity {capacity_bytes}"),
                ))
                continue
            for entry in ordering.entries(device):
                if isinstance(entry, CollectiveOp):
                    continue
                if entry[0] is OpKind.FORWARD:
                    level += activation[entry[2]]
                    if level > capacity_bytes:
                        out.append(Violation(
                            kind="capacity", device=device,
                            message=(f"allocating {_fmt(entry)} lifts "
                                     f"the watermark to {level:.0f} "
                                     f"bytes, over capacity "
                                     f"{capacity_bytes}"),
                            subject=(entry,),
                        ))
                        break
                else:
                    level -= activation[entry[2]]
        return out

    # -- collectives ------------------------------------------------------

    def _check_collectives(
        self, ordering: "ScheduleOrdering",
    ) -> list[Violation]:
        program = self.program
        out: list[Violation] = []
        for device, totals in self._sync_totals.items():
            entries = ordering.entries(device)
            seen = dict.fromkeys(totals, 0)
            for i, entry in enumerate(entries):
                if not isinstance(entry, CollectiveOp):
                    if entry[0] is OpKind.BACKWARD:
                        site = (entry[2], program.ops[entry].replica)
                        if site in seen:
                            seen[site] += 1
                    continue
                if entry.kind is not CollectiveKind.GRAD_SYNC:
                    continue
                site = (entry.stage, entry.replica)
                if seen.get(site, 0) >= totals.get(site, 0):
                    continue
                late = [
                    other for other in entries[i + 1:]
                    if not isinstance(other, CollectiveOp)
                    and other[0] is OpKind.BACKWARD
                    and other[2] == entry.stage
                    and program.ops[other].replica == entry.replica
                ]
                out.append(Violation(
                    kind="collective-order", device=device,
                    message=(f"{entry} posted before "
                             f"{_fmt_entry(late[0])} finalizes its "
                             "gradient"),
                    subject=(entry, *late),
                ))
        return out


def check_ordering(
    program: Program,
    ordering: "ScheduleOrdering",
    capacity_bytes: int | None = None,
) -> list[Violation]:
    """One-shot form of :meth:`LegalityChecker.check`."""
    return LegalityChecker(program, capacity_bytes).check(ordering)


def is_legal(
    program: Program,
    ordering: "ScheduleOrdering",
    capacity_bytes: int | None = None,
) -> bool:
    """Convenience predicate over :func:`check_ordering`."""
    return not check_ordering(program, ordering, capacity_bytes)
