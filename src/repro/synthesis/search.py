"""Hill-climb/beam search over legality-checked orderings.

The loop is deliberately plain: keep a small beam of the best scored
orderings, draw seeded mutations from beam members, discard illegal or
already-seen candidates, score the survivors by *simulated step time*,
and stop after ``patience`` rounds without improvement.  What makes it
fast enough to matter is the evaluation path, not the loop:

* a candidate never goes back through a schedule — it is recompiled
  from the base program by :func:`repro.actions.reorder.reorder_program`
  (action surgery, no dependency re-derivation);
* the lowered candidate adopts the base plan's lazily-filled compute
  cost column (:func:`repro.analysis.plans.candidate_plan`), so the
  cost oracle is consulted once per distinct compute across the *whole
  search*, not once per candidate;
* legality (:func:`~repro.synthesis.legality.check_ordering`) is a few
  linear passes and rejects deadlocks/OOMs before any event is
  simulated.

``benchmarks/bench_synthesis.py`` pins the resulting candidate
throughput; the determinism contract (same seed ⇒ same best ordering,
same provenance) is pinned by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from random import Random
from typing import Iterable, Mapping

from ..actions.lowering import ExecutablePlan, RetimeBuffers
from ..actions.program import compile_program
from ..actions.reorder import Reorderer
from ..actions.resources import StageResources
from ..analysis.plans import PlanEntry
from ..config import RunConfig
from ..errors import OutOfMemoryError, SchedulingError, SynthesisError
from ..runtime.batched import PlanBatch, execute_batch
from ..runtime.costs import CostOracle
from ..runtime.events import execute_plan
from ..runtime.metrics import bubble_stats
from ..schedules.base import Schedule
from ..types import OpKind, ScheduleOp
from .legality import LegalityChecker
from .mutations import Mutation, default_operators, propose_mutation
from .ordering import ScheduleOrdering, gpipe_like_ordering


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one synthesis run (all deterministic given ``seed``)."""

    seed: int = 0
    rounds: int = 60
    samples_per_round: int = 32
    beam_width: int = 4
    patience: int = 12
    max_shift: int = 4
    #: operator kinds to draw from; None = every applicable family
    operators: tuple[str, ...] | None = None
    #: give candidates a movable recompute frontier (needs resources)
    recompute: bool = False


@dataclass(frozen=True)
class ProvenanceStep:
    """One applied mutation on the path from the start to a candidate."""

    round: int
    mutation: Mutation
    makespan: float
    bubble_ratio: float


@dataclass(frozen=True)
class ScoredOrdering:
    """A legality-checked, simulated candidate."""

    ordering: ScheduleOrdering
    makespan: float
    bubble_ratio: float
    provenance: tuple[ProvenanceStep, ...] = ()

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.makespan)


@dataclass
class SearchResult:
    """Everything one :func:`synthesize` call produced."""

    name: str
    config: SearchConfig
    start: ScoredOrdering
    best: ScoredOrdering
    #: structural content hash of the best candidate's lowered plan —
    #: the replay pin serialized schedules carry
    plan_key: str
    rounds_run: int
    evaluated: int
    illegal: int
    infeasible: int

    @property
    def improved(self) -> bool:
        return self.best.makespan < self.start.makespan

    def describe(self) -> str:
        return (f"synthesize[{self.name}]: start {self.start.makespan:.3f}"
                f" -> best {self.best.makespan:.3f} "
                f"(bubble {self.best.bubble_ratio:.4f}) after "
                f"{self.rounds_run} rounds, {self.evaluated} evaluated, "
                f"{self.illegal} illegal, {self.infeasible} infeasible, "
                f"{len(self.best.provenance)} mutations")


class _RecomputeCosts:
    """Charge re-run forwards to backwards of checkpointed stages.

    Stages at or past the frontier keep only their boundary tensor, so
    their backward re-executes the stage forward first.  Everything
    except :meth:`duration` delegates to the wrapped oracle — transfer
    times, ring steps and rank mapping are recompute-blind.
    """

    def __init__(self, inner: CostOracle, frontier: int) -> None:
        self._inner = inner
        self._frontier = frontier

    def duration(self, op: ScheduleOp) -> float:
        d = self._inner.duration(op)
        if op.kind is OpKind.BACKWARD and op.stage >= self._frontier:
            d += self._inner.duration(replace(op, kind=OpKind.FORWARD))
        return d

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SynthesisContext:
    """Shared state of one search: base program, per-frontier plans.

    Compiles the schedule exactly like :func:`repro.runtime.simulate`
    (byte-accurate boundary tensors from the oracle), then memoizes,
    per recompute frontier, the resource-adjusted program, the wrapped
    oracle and a cost-bound base plan whose compute-cost column every
    candidate of that frontier shares.
    """

    def __init__(
        self,
        schedule: Schedule,
        costs: CostOracle,
        run: RunConfig | None = None,
        *,
        resources: StageResources | None = None,
        capacity_bytes: int | None = None,
    ) -> None:
        self.schedule = schedule
        self.costs = costs
        self.run = run or RunConfig()
        self.capacity_bytes = capacity_bytes
        if capacity_bytes is not None and resources is None:
            raise SynthesisError(
                f"{schedule.name}: a capacity cap needs resources"
            )
        self.base_program = compile_program(
            schedule,
            prefetch=self.run.prefetch,
            batch_cross_comm=self.run.batch_cross_comm,
            add_step=False,
            boundary_bytes=lambda tag: costs.tensor_nbytes(tag.stage),
            resources=resources,
        )
        self.checker = LegalityChecker(self.base_program, capacity_bytes)
        self._entries: dict[int | None, PlanEntry] = {}
        self._oracles: dict[int | None, CostOracle] = {}
        self._reorderers: dict[int | None, Reorderer] = {}
        #: scoring scratch: every candidate re-times into these columns
        #: (a scored plan is dropped before the next one binds, so the
        #: aliasing contract of RetimeBuffers holds by construction)
        self._score_buffers = RetimeBuffers()
        self.evaluated = 0
        self.illegal = 0
        self.infeasible = 0

    # -- per-frontier memos ----------------------------------------------

    def oracle_for(self, frontier: int | None) -> CostOracle:
        if frontier is None or frontier >= self.base_program.num_stages:
            return self.costs
        found = self._oracles.get(frontier)
        if found is None:
            found = self._oracles.setdefault(
                frontier, _RecomputeCosts(self.costs, frontier))
        return found

    def entry_for(self, frontier: int | None) -> PlanEntry:
        found = self._entries.get(frontier)
        if found is not None:
            return found
        if frontier is None:
            program = self.base_program
        else:
            program = self.base_program.with_resources(
                self.base_program.resources.with_recompute_from(frontier))
        plan = ExecutablePlan.lower(program, self.oracle_for(frontier))
        entry = PlanEntry(schedule=self.schedule, program=program,
                          plan=plan)
        return self._entries.setdefault(frontier, entry)

    def reorderer_for(self, frontier: int | None) -> Reorderer:
        found = self._reorderers.get(frontier)
        if found is None:
            found = self._reorderers.setdefault(
                frontier, Reorderer(self.entry_for(frontier).program))
        return found

    def _candidate_plan(self, ordering: ScheduleOrdering,
                        check: bool,
                        scratch: bool = False) -> ExecutablePlan:
        """Lower a candidate, adopting the base's cost column.

        ``scratch=True`` re-times into the context's shared
        :class:`RetimeBuffers` — the returned plan is only valid until
        the next scratch candidate binds (the score-then-drop loop).
        """
        frontier = ordering.recompute_frontier
        entry = self.entry_for(frontier)
        oracle = self.oracle_for(frontier)
        program = self.reorderer_for(frontier).reorder(
            ordering.to_orders(), check=check)
        plan = ExecutablePlan.lower(program).retime(
            oracle, buffers=self._score_buffers if scratch else None)
        if entry.plan.bound and entry.plan.costs is oracle:
            # Same ops dict => identical compute table index-for-index;
            # sharing the lazily-filled column means the oracle resolves
            # each duration once per *search*, not once per candidate.
            plan.comp_cost = entry.plan.comp_cost
        return plan

    # -- candidate evaluation --------------------------------------------

    def evaluate(
        self,
        ordering: ScheduleOrdering,
        provenance: tuple[ProvenanceStep, ...] = (),
        structural: bool = True,
    ) -> ScoredOrdering | None:
        """Score a candidate, or ``None`` if illegal/infeasible.

        ``structural=False`` skips the permutation check — safe for
        mutation-produced orderings, whose operators only move entries.
        """
        self.evaluated += 1
        violations = self.checker.check(ordering, structural=structural)
        if violations:
            self.illegal += 1
            return None
        plan = self._candidate_plan(ordering, check=structural,
                                    scratch=True)
        try:
            result = execute_plan(plan, self.run,
                                  capacity_bytes=self.capacity_bytes,
                                  detail="lean")
        except OutOfMemoryError:  # pragma: no cover - legality is exact
            self.infeasible += 1
            return None
        timeline = result.timeline
        return ScoredOrdering(
            ordering=ordering,
            makespan=timeline.makespan,
            bubble_ratio=bubble_stats(timeline).bubble_ratio,
            provenance=provenance,
        )

    def evaluate_round(
        self,
        orderings: list[ScheduleOrdering],
    ) -> list[ScoredOrdering | None]:
        """Score one round's deduplicated candidates back-to-back.

        Candidates of a round are *reorderings* — each compiles to its
        own program with its own ``plan_key`` — but candidates sharing
        a permutation and differing only in recompute frontier are
        structurally *congruent* (the frontier moves costs and memory
        deltas, never actions or edges), so such groups score as one
        lockstep batch through the batched runtime.  Lone candidates
        keep the scratch scalar path: they re-time into the context's
        single :class:`RetimeBuffers` and execute at ``detail="lean"``,
        one event pass with no column allocations (batched lanes bind
        fresh columns instead — buffer columns alias, and a batch needs
        every lane's columns live at once).  Scores are bit-identical
        either way (the batched-runtime invariant), so the search
        trajectory is unchanged.  Verdicts come back aligned with
        ``orderings`` (``None`` = illegal or infeasible).
        """
        verdicts: list[ScoredOrdering | None] = [None] * len(orderings)
        groups: dict[ScheduleOrdering, list[int]] = {}
        for i, ordering in enumerate(orderings):
            groups.setdefault(ordering.with_frontier(None), []).append(i)
        for idxs in groups.values():
            if len(idxs) == 1:
                i = idxs[0]
                verdicts[i] = self.evaluate(orderings[i],
                                            structural=False)
                continue
            legal: list[int] = []
            for i in idxs:
                self.evaluated += 1
                if self.checker.check(orderings[i], structural=False):
                    self.illegal += 1
                else:
                    legal.append(i)
            if not legal:
                continue
            plans = [self._candidate_plan(orderings[i], check=False)
                     for i in legal]
            try:
                stacked = PlanBatch.from_plans(
                    plans, [self.capacity_bytes] * len(plans))
            except SchedulingError:  # pragma: no cover - defensive
                # frontier congruence should hold by construction;
                # score the group scalar rather than abort the search
                for i, plan in zip(legal, plans):
                    verdicts[i] = self._score_lean(orderings[i], plan)
                continue
            batch = execute_batch(stacked, self.run, detail="lean")
            for i, res, err in zip(legal, batch.results, batch.errors):
                if err is not None:
                    self.infeasible += 1
                    continue
                timeline = res.timeline
                verdicts[i] = ScoredOrdering(
                    ordering=orderings[i],
                    makespan=timeline.makespan,
                    bubble_ratio=bubble_stats(timeline).bubble_ratio,
                )
        return verdicts

    def _score_lean(self, ordering: ScheduleOrdering,
                    plan: ExecutablePlan) -> ScoredOrdering | None:
        """Scalar lean scoring of an already-lowered candidate."""
        try:
            result = execute_plan(plan, self.run,
                                  capacity_bytes=self.capacity_bytes,
                                  detail="lean")
        except OutOfMemoryError:  # pragma: no cover - legality is exact
            self.infeasible += 1
            return None
        timeline = result.timeline
        return ScoredOrdering(
            ordering=ordering,
            makespan=timeline.makespan,
            bubble_ratio=bubble_stats(timeline).bubble_ratio,
        )

    def plan_for(self, ordering: ScheduleOrdering) -> ExecutablePlan:
        """A bound plan of a (legal) ordering — for keys and replays."""
        return self._candidate_plan(ordering, check=True)


def _start_ordering(
    ctx: SynthesisContext,
    config: SearchConfig,
    start: ScheduleOrdering | str | None,
) -> ScheduleOrdering:
    program = ctx.base_program
    if isinstance(start, ScheduleOrdering):
        ordering = start
    elif start in (None, "program"):
        ordering = ScheduleOrdering.from_program(program)
    elif start == "gpipe":
        ordering = gpipe_like_ordering(program)
    else:
        raise SynthesisError(
            f"unknown start {start!r}; expected an ordering, "
            "'program' or 'gpipe'"
        )
    if (config.recompute and ordering.recompute_frontier is None
            and program.resources is not None):
        # Movable frontier, starting at "recompute nothing".
        ordering = ordering.with_frontier(program.num_stages)
    return ordering


def synthesize(
    schedule: Schedule,
    costs: CostOracle,
    config: SearchConfig | None = None,
    *,
    run: RunConfig | None = None,
    resources: StageResources | None = None,
    capacity_bytes: int | None = None,
    start: ScheduleOrdering | str | None = None,
    name: str | None = None,
) -> SearchResult:
    """Search for a faster legal ordering of ``schedule`` under ``costs``.

    ``start`` picks the initial point: the compiled program's own order
    (default), ``"gpipe"`` for the all-forwards-then-all-backwards
    discipline (the canonical bad start of the rediscovery demo), or an
    explicit :class:`ScheduleOrdering`.  A start that breaks dependency
    legality raises; a start that merely busts the capacity cap is
    admitted at infinite score so the search can mutate *into*
    feasibility.

    Deterministic: one ``random.Random(config.seed)`` drives every
    draw, candidates are deduplicated by value, and ties break by
    discovery order — the same call yields the same best ordering,
    provenance and plan key, which the serialization round-trip tests
    rely on.
    """
    config = config or SearchConfig()
    ctx = SynthesisContext(schedule, costs, run, resources=resources,
                           capacity_bytes=capacity_bytes)
    rng = Random(config.seed)
    start_ordering = _start_ordering(ctx, config, start)

    violations = ctx.checker.check(start_ordering)
    hard = [v for v in violations if v.kind not in ("capacity",)]
    if hard:
        raise SynthesisError(
            f"{schedule.name}: start ordering is illegal: "
            + "; ".join(str(v) for v in hard[:3])
        )
    if violations:  # capacity-only: admit at infinite score
        ctx.evaluated += 1
        ctx.illegal += 1
        scored_start = ScoredOrdering(ordering=start_ordering,
                                      makespan=math.inf,
                                      bubble_ratio=math.inf)
    else:
        scored_start = ctx.evaluate(start_ordering)
        assert scored_start is not None

    operators = (tuple(config.operators) if config.operators is not None
                 else tuple(default_operators(ctx.base_program,
                                              start_ordering)))
    beam: list[ScoredOrdering] = [scored_start]
    seen: set[ScheduleOrdering] = {start_ordering}
    best = scored_start
    stall = 0
    rounds_run = 0
    for round_no in range(config.rounds):
        rounds_run = round_no + 1
        # propose-then-score: all of a round's rng draws happen before
        # any simulation (the trajectory stays a pure function of the
        # seed), and the scorer runs the survivors as one round batch
        proposals: list[tuple] = []
        for _ in range(config.samples_per_round):
            parent = beam[rng.randrange(len(beam))]
            try:
                mutation, mutated = propose_mutation(
                    rng, ctx.base_program, parent.ordering,
                    operators=operators, max_shift=config.max_shift)
            except SynthesisError:
                continue
            if mutated in seen:
                continue
            seen.add(mutated)
            proposals.append((mutation, mutated, parent))
        fresh: list[ScoredOrdering] = []
        verdicts = ctx.evaluate_round([m for _, m, _ in proposals])
        for (mutation, _mutated, parent), scored in zip(proposals,
                                                        verdicts):
            if scored is None:
                continue
            step = ProvenanceStep(round=round_no, mutation=mutation,
                                  makespan=scored.makespan,
                                  bubble_ratio=scored.bubble_ratio)
            fresh.append(replace(scored,
                                 provenance=parent.provenance + (step,)))
        # Stable sort: ties keep discovery order, so the beam (and
        # hence the whole trajectory) is a pure function of the seed.
        beam = sorted(beam + fresh,
                      key=lambda s: s.makespan)[:config.beam_width]
        if beam[0].makespan < best.makespan:
            best = beam[0]
            stall = 0
        else:
            stall += 1
        if stall >= config.patience:
            break

    plan_key = (ctx.plan_for(best.ordering).plan_key
                if best.feasible else "")
    return SearchResult(
        name=name or schedule.name,
        config=config,
        start=scored_start,
        best=best,
        plan_key=plan_key,
        rounds_run=rounds_run,
        evaluated=ctx.evaluated,
        illegal=ctx.illegal,
        infeasible=ctx.infeasible,
    )


def synthesize_families(
    schedules: Iterable[Schedule] | Mapping[str, Schedule],
    costs,
    config: SearchConfig | None = None,
    *,
    run: RunConfig | None = None,
    resources: StageResources | None = None,
    capacity_bytes: int | None = None,
    start: ScheduleOrdering | str | None = None,
) -> dict[str, SearchResult]:
    """Run one search per schedule family, from each family's own start.

    ``costs`` is a single :class:`CostOracle` shared by every family,
    or — because families of one shape can differ in stage count, and
    e.g. :class:`~repro.runtime.costs.AbstractCosts` is per-stage — a
    callable ``schedule -> CostOracle`` building each family's oracle.

    Because every family's compiled ordering is an admissible start and
    the search never accepts a worse best, the overall winner matches
    or beats the best hand-designed family by construction (on the
    searched metric; see ``docs/synthesis.md`` for the demo configs).
    """
    if isinstance(schedules, Mapping):
        named = list(schedules.items())
    else:
        named = [(s.name, s) for s in schedules]
    return {
        label: synthesize(schedule,
                          costs(schedule) if callable(costs) else costs,
                          config, run=run, resources=resources,
                          capacity_bytes=capacity_bytes, start=start,
                          name=label)
        for label, schedule in named
    }
