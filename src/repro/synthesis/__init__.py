"""Schedule synthesis: legality-checked mutation search over orderings.

The paper hand-designs 8 schedule families; ROADMAP item 3 asks whether
the action-list runtime can do better by *searching*.  This package
implements that search over the one degree of freedom the execution IR
leaves open — the per-device order of compute (and async collective)
actions — on top of the lowered-plan machinery that makes candidate
evaluation cheap:

* :mod:`ordering` — the immutable :class:`ScheduleOrdering` candidates
  are expressed in, extracted from / recompiled to a Program via
  :mod:`repro.actions.reorder`;
* :mod:`legality` — :func:`check_ordering` validates an arbitrary
  ordering against the program's dependency edges, memory capacity and
  collective placement rules, returning structured
  :class:`Violation`\\ s (the fuzz harness pins the verdict equal to
  "replay neither deadlocks nor OOMs");
* :mod:`mutations` — invertible local operators (adjacent swaps, block
  shifts, micro-batch wave shifts, collective-bucket moves, recompute
  boundary moves) with a seeded sampler;
* :mod:`search` — the hill-climb/beam searcher scoring candidates by
  simulated step time through shared lowered plans (thousands of
  candidates per second; see ``benchmarks/bench_synthesis.py``);
* :mod:`serialize` — replayable JSON schedules (ordering + plan_key +
  mutation provenance) for re-simulation and regression pinning.

The ``repro synthesize`` CLI is the front door; ``docs/synthesis.md``
documents operators, legality rules and the Hanayo-rediscovery recipe.
"""

from .legality import (
    DEADLOCK_KINDS,
    OOM_KINDS,
    LegalityChecker,
    Violation,
    check_ordering,
    is_legal,
)
from .mutations import (
    MOVE_RECOMPUTE,
    MUTATION_KINDS,
    MoveRecomputeBoundary,
    Mutation,
    ReorderCollective,
    ShiftEntry,
    ShiftMicrobatch,
    SwapAdjacent,
    mutation_from_payload,
    propose_mutation,
)
from .ordering import ScheduleOrdering, gpipe_like_ordering
from .search import (
    SearchConfig,
    SearchResult,
    ScoredOrdering,
    SynthesisContext,
    synthesize,
    synthesize_families,
)
from .serialize import (
    SCHEDULE_FORMAT,
    ReplayReport,
    load_schedule,
    payload_for,
    replay_payload,
    save_schedule,
)

__all__ = [
    "DEADLOCK_KINDS",
    "LegalityChecker",
    "MOVE_RECOMPUTE",
    "MUTATION_KINDS",
    "OOM_KINDS",
    "MoveRecomputeBoundary",
    "Mutation",
    "ReorderCollective",
    "ReplayReport",
    "SCHEDULE_FORMAT",
    "ScheduleOrdering",
    "ScoredOrdering",
    "SearchConfig",
    "SearchResult",
    "ShiftEntry",
    "ShiftMicrobatch",
    "SwapAdjacent",
    "SynthesisContext",
    "Violation",
    "check_ordering",
    "gpipe_like_ordering",
    "is_legal",
    "load_schedule",
    "mutation_from_payload",
    "payload_for",
    "propose_mutation",
    "replay_payload",
    "save_schedule",
    "synthesize",
    "synthesize_families",
]
