"""Invertible local mutation operators over schedule orderings.

Each operator is a small frozen dataclass with three duties:

* ``apply(ordering)`` — produce the mutated :class:`ScheduleOrdering`,
  raising :class:`~repro.errors.SynthesisError` when the operator is
  inapplicable (out-of-range index, no matching entry); the sampler
  and searcher treat that as "draw again", never as a crash;
* ``inverse()`` — the operator that undoes it.  The property suite
  pins ``m.inverse().apply(m.apply(o)) == o`` (and plan-key equality of
  the recompiled programs), which is what makes search trajectories
  replayable backwards and the provenance log trustworthy;
* ``payload()`` / :func:`mutation_from_payload` — a JSON-safe
  round-trip so serialized schedules can carry their mutation history.

Operators are deliberately *mechanical*: an applied mutation may well
be illegal (that is :func:`~repro.synthesis.legality.check_ordering`'s
verdict to give), and the differential fuzz harness relies on exactly
that to generate deadlocking/OOMing candidates.

:func:`propose_mutation` is the seeded sampler the searcher draws
from: given a ``random.Random`` it picks an operator family and
parameters, retrying internally until something applies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import ClassVar, Sequence

from ..actions.ops import CollectiveKind, CollectiveOp
from ..actions.program import Program
from ..errors import SynthesisError
from ..types import OpKind
from .ordering import ScheduleOrdering

SWAP_ADJACENT = "swap-adjacent"
SHIFT_ENTRY = "shift-entry"
SHIFT_MICROBATCH = "shift-microbatch"
REORDER_COLLECTIVE = "reorder-collective"
MOVE_RECOMPUTE = "move-recompute"


@dataclass(frozen=True)
class Mutation:
    """Base operator; concrete mutations below."""

    kind: ClassVar[str] = ""

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        raise NotImplementedError

    def inverse(self) -> "Mutation":
        raise NotImplementedError

    def payload(self) -> dict:
        """JSON-safe encoding; see :func:`mutation_from_payload`."""
        out: dict = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.value if isinstance(value, OpKind) else value
        return out

    @classmethod
    def from_payload(cls, payload: dict) -> "Mutation":
        kwargs = {k: v for k, v in payload.items() if k != "kind"}
        return cls(**kwargs)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.payload().items()
                          if k != "kind")
        return f"{self.kind}({inner})"


def _move(entries: list, i: int, j: int) -> None:
    """Relocate ``entries[i]`` to final position ``j`` in place."""
    entry = entries.pop(i)
    entries.insert(j, entry)


@dataclass(frozen=True)
class SwapAdjacent(Mutation):
    """Exchange a device's entries at ``index`` and ``index + 1``.

    The smallest step in the space — and its own inverse.
    """

    device: int
    index: int

    kind: ClassVar[str] = SWAP_ADJACENT

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        entries = list(ordering.entries(self.device))
        if not 0 <= self.index < len(entries) - 1:
            raise SynthesisError(
                f"swap index {self.index} out of range on device "
                f"{self.device} ({len(entries)} entries)"
            )
        entries[self.index], entries[self.index + 1] = (
            entries[self.index + 1], entries[self.index])
        return ordering.replace_entries(self.device, entries)

    def inverse(self) -> "SwapAdjacent":
        return self


@dataclass(frozen=True)
class ShiftEntry(Mutation):
    """Move one entry of a device by ``delta`` positions."""

    device: int
    index: int
    delta: int

    kind: ClassVar[str] = SHIFT_ENTRY

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        entries = list(ordering.entries(self.device))
        j = self.index + self.delta
        if self.delta == 0 or not 0 <= self.index < len(entries) \
                or not 0 <= j < len(entries):
            raise SynthesisError(
                f"shift {self.index} -> {j} out of range on device "
                f"{self.device} ({len(entries)} entries)"
            )
        _move(entries, self.index, j)
        return ordering.replace_entries(self.device, entries)

    def inverse(self) -> "ShiftEntry":
        return ShiftEntry(device=self.device, index=self.index + self.delta,
                          delta=-self.delta)


@dataclass(frozen=True)
class ShiftMicrobatch(Mutation):
    """Shift every compute of one ``(kind, microbatch)`` wave by ``delta``.

    This is the wave-structure operator: on each device holding such
    computes, each one moves ``delta`` slots (right-to-left for
    positive deltas, left-to-right for negative, so earlier moves never
    disturb the indices of later ones — which is also what makes the
    operator invert exactly).
    """

    microbatch: int
    op_kind: OpKind
    delta: int

    kind: ClassVar[str] = SHIFT_MICROBATCH

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        if self.delta == 0:
            raise SynthesisError("microbatch shift with delta 0")
        orders = {}
        hit = False
        for device in ordering.devices:
            entries = list(ordering.entries(device))
            matches = [
                i for i, e in enumerate(entries)
                if not isinstance(e, CollectiveOp)
                and e[0] is self.op_kind and e[1] == self.microbatch
            ]
            if matches:
                hit = True
                order = reversed(matches) if self.delta > 0 else matches
                for i in order:
                    j = i + self.delta
                    if not 0 <= j < len(entries):
                        raise SynthesisError(
                            f"microbatch shift {i} -> {j} out of range "
                            f"on device {device} ({len(entries)} entries)"
                        )
                    _move(entries, i, j)
            orders[device] = entries
        if not hit:
            raise SynthesisError(
                f"no {self.op_kind.value} computes of microbatch "
                f"{self.microbatch} in ordering"
            )
        return ScheduleOrdering.from_orders(
            orders, ordering.recompute_frontier)

    def inverse(self) -> "ShiftMicrobatch":
        return ShiftMicrobatch(microbatch=self.microbatch,
                               op_kind=self.op_kind, delta=-self.delta)

    @classmethod
    def from_payload(cls, payload: dict) -> "ShiftMicrobatch":
        return cls(microbatch=payload["microbatch"],
                   op_kind=OpKind(payload["op_kind"]),
                   delta=payload["delta"])


@dataclass(frozen=True)
class ReorderCollective(Mutation):
    """Move a gradient-sync bucket by ``delta`` slots on its device.

    The bucket is addressed by ``(stage, replica)`` — unique per device
    by construction of
    :func:`~repro.actions.collectives.with_gradient_sync` — so the
    inverse can re-locate it after the move.
    """

    device: int
    stage: int
    replica: int
    delta: int

    kind: ClassVar[str] = REORDER_COLLECTIVE

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        if self.delta == 0:
            raise SynthesisError("collective reorder with delta 0")
        entries = list(ordering.entries(self.device))
        idxs = [
            i for i, e in enumerate(entries)
            if isinstance(e, CollectiveOp)
            and e.kind is CollectiveKind.GRAD_SYNC
            and e.stage == self.stage and e.replica == self.replica
        ]
        if len(idxs) != 1:
            raise SynthesisError(
                f"device {self.device} has {len(idxs)} grad-sync "
                f"collectives for stage {self.stage} replica "
                f"{self.replica}; need exactly one"
            )
        i = idxs[0]
        j = i + self.delta
        if not 0 <= j < len(entries):
            raise SynthesisError(
                f"collective move {i} -> {j} out of range on device "
                f"{self.device} ({len(entries)} entries)"
            )
        _move(entries, i, j)
        return ordering.replace_entries(self.device, entries)

    def inverse(self) -> "ReorderCollective":
        return ReorderCollective(device=self.device, stage=self.stage,
                                 replica=self.replica, delta=-self.delta)


@dataclass(frozen=True)
class MoveRecomputeBoundary(Mutation):
    """Move the partial-recompute frontier from ``src`` to ``dst``.

    Only the resource/cost model changes — the ordering's entries stay
    put — so this operator trades activation memory against recompute
    time (stages ``>= frontier`` checkpoint; see
    :meth:`~repro.actions.resources.StageResources.with_recompute_from`).
    """

    src: int
    dst: int

    kind: ClassVar[str] = MOVE_RECOMPUTE

    def apply(self, ordering: ScheduleOrdering) -> ScheduleOrdering:
        if self.src == self.dst:
            raise SynthesisError("recompute move with src == dst")
        if ordering.recompute_frontier != self.src:
            raise SynthesisError(
                f"ordering's recompute frontier is "
                f"{ordering.recompute_frontier}, mutation expects "
                f"{self.src}"
            )
        return ordering.with_frontier(self.dst)

    def inverse(self) -> "MoveRecomputeBoundary":
        return MoveRecomputeBoundary(src=self.dst, dst=self.src)


MUTATION_KINDS: dict[str, type[Mutation]] = {
    cls.kind: cls
    for cls in (SwapAdjacent, ShiftEntry, ShiftMicrobatch,
                ReorderCollective, MoveRecomputeBoundary)
}


def mutation_from_payload(payload: dict) -> Mutation:
    """Rebuild an operator from its :meth:`Mutation.payload` dict."""
    try:
        cls = MUTATION_KINDS[payload["kind"]]
    except KeyError:
        raise SynthesisError(
            f"unknown mutation kind {payload.get('kind')!r}"
        ) from None
    return cls.from_payload(payload)


# -- seeded sampling ------------------------------------------------------


def _signed_delta(rng: Random, max_shift: int) -> int:
    delta = rng.randrange(1, max_shift + 1)
    return delta if rng.random() < 0.5 else -delta


def _grad_sync_sites(
    ordering: ScheduleOrdering,
) -> list[tuple[int, int, int]]:
    sites = []
    for device in ordering.devices:
        for entry in ordering.entries(device):
            if (isinstance(entry, CollectiveOp)
                    and entry.kind is CollectiveKind.GRAD_SYNC):
                sites.append((device, entry.stage, entry.replica))
    return sites


def default_operators(program: Program,
                      ordering: ScheduleOrdering) -> list[str]:
    """The operator families applicable to this program/ordering."""
    kinds = [SWAP_ADJACENT, SHIFT_ENTRY, SHIFT_MICROBATCH]
    if _grad_sync_sites(ordering):
        kinds.append(REORDER_COLLECTIVE)
    if (ordering.recompute_frontier is not None
            and program.resources is not None):
        kinds.append(MOVE_RECOMPUTE)
    return kinds


def propose_mutation(
    rng: Random,
    program: Program,
    ordering: ScheduleOrdering,
    *,
    operators: Sequence[str] | None = None,
    max_shift: int = 4,
) -> tuple[Mutation, ScheduleOrdering]:
    """Draw one applicable mutation and its result, deterministically.

    Samples an operator family and parameters from ``rng``, retrying
    internally (inapplicable draws are common near list edges) and
    raising :class:`SynthesisError` only if nothing applies after many
    attempts — which for any non-degenerate program means the operator
    list was empty or the ordering has fewer than two entries
    everywhere.
    """
    kinds = (list(operators) if operators is not None
             else default_operators(program, ordering))
    if not kinds:
        raise SynthesisError("no mutation operators to sample from")
    busy = [d for d in ordering.devices if len(ordering.entries(d)) >= 2]
    for _ in range(64):
        kind = kinds[rng.randrange(len(kinds))]
        try:
            mutation = _sample(kind, rng, program, ordering, busy,
                               max_shift)
            return mutation, mutation.apply(ordering)
        except SynthesisError:
            continue
    raise SynthesisError(
        f"no applicable mutation among {kinds} after 64 draws"
    )


def _sample(kind: str, rng: Random, program: Program,
            ordering: ScheduleOrdering, busy: list[int],
            max_shift: int) -> Mutation:
    if kind in (SWAP_ADJACENT, SHIFT_ENTRY):
        if not busy:
            raise SynthesisError("every device has fewer than 2 entries")
        device = busy[rng.randrange(len(busy))]
        size = len(ordering.entries(device))
        if kind == SWAP_ADJACENT:
            return SwapAdjacent(device=device,
                                index=rng.randrange(size - 1))
        return ShiftEntry(device=device, index=rng.randrange(size),
                          delta=_signed_delta(rng, max_shift))
    if kind == SHIFT_MICROBATCH:
        return ShiftMicrobatch(
            microbatch=rng.randrange(program.num_microbatches),
            op_kind=OpKind.FORWARD if rng.random() < 0.5
            else OpKind.BACKWARD,
            delta=_signed_delta(rng, max_shift),
        )
    if kind == REORDER_COLLECTIVE:
        sites = _grad_sync_sites(ordering)
        if not sites:
            raise SynthesisError("no gradient-sync collectives to move")
        device, stage, replica = sites[rng.randrange(len(sites))]
        return ReorderCollective(device=device, stage=stage,
                                 replica=replica,
                                 delta=_signed_delta(rng, max_shift))
    if kind == MOVE_RECOMPUTE:
        src = ordering.recompute_frontier
        if src is None:
            raise SynthesisError("ordering carries no recompute frontier")
        dst = rng.randrange(program.num_stages + 1)
        return MoveRecomputeBoundary(src=src, dst=dst)
    raise SynthesisError(f"unknown mutation kind {kind!r}")
