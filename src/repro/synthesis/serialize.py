"""Replayable schedule serialization: JSON ordering + plan key.

A found schedule is only as good as its replay: the searcher emits a
JSON payload that carries (a) everything needed to rebuild the base
program bit-identically — scheme shape, compile flags, abstract cost
triple, optional resource model — (b) the per-device action ordering
itself, (c) the structural ``plan_key`` of the winning candidate's
lowered plan, and (d) provenance: the seed and the mutation path that
produced it.  :func:`replay_payload` reconstructs the program, recompiles
the ordering, *verifies the plan key matches* (a drifted compiler or a
hand-edited file fails loudly with :class:`SynthesisError`, never
silently re-times a different schedule), and re-simulates — so a
committed schedule doubles as a regression pin.

The payload is deliberately restricted to abstract-cost pipelines
(:class:`~repro.config.PipelineConfig` + :class:`~repro.config.CostConfig`
+ optional :class:`~repro.actions.resources.StageResources`): those are
fully value-determined, which is what makes byte-exact replay possible
from JSON alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..actions.ops import CollectiveKind, CollectiveOp
from ..actions.reorder import OrderEntry
from ..actions.resources import StageResources
from ..config import CostConfig, PipelineConfig, RunConfig
from ..errors import SynthesisError
from ..runtime.costs import AbstractCosts
from ..runtime.metrics import bubble_stats
from ..types import OpKind
from .ordering import ScheduleOrdering
from .search import SearchResult

#: payload format version; bump on any incompatible layout change
SCHEDULE_FORMAT = 1


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of re-simulating a serialized schedule."""

    name: str
    makespan: float
    bubble_ratio: float
    plan_key: str
    stored_makespan: float
    stored_bubble_ratio: float

    @property
    def consistent(self) -> bool:
        """Replay reproduced the stored score bit-for-bit."""
        return (self.makespan == self.stored_makespan
                and self.bubble_ratio == self.stored_bubble_ratio)

    def describe(self) -> str:
        verdict = "consistent" if self.consistent else (
            f"DRIFTED (stored makespan {self.stored_makespan!r}, "
            f"bubble {self.stored_bubble_ratio!r})")
        return (f"replay[{self.name}]: makespan={self.makespan:.3f} "
                f"bubble={self.bubble_ratio:.4f} — {verdict}")


# -- entry codec ----------------------------------------------------------


def _encode_entry(entry: OrderEntry):
    if isinstance(entry, CollectiveOp):
        return {
            "coll": {
                "kind": entry.kind.value,
                "group": list(entry.group),
                "nbytes": entry.nbytes,
                "stage": entry.stage,
                "replica": entry.replica,
                "blocking": entry.blocking,
                "count": entry.count,
            }
        }
    kind, microbatch, stage = entry
    return [kind.value, microbatch, stage]


def _decode_entry(raw) -> OrderEntry:
    if isinstance(raw, dict):
        coll = raw["coll"]
        return CollectiveOp(
            kind=CollectiveKind(coll["kind"]),
            group=tuple(coll["group"]),
            nbytes=float(coll["nbytes"]),
            stage=int(coll["stage"]),
            replica=int(coll["replica"]),
            blocking=bool(coll["blocking"]),
            count=float(coll["count"]),
        )
    kind, microbatch, stage = raw
    return (OpKind(kind), int(microbatch), int(stage))


def _encode_orders(ordering: ScheduleOrdering) -> dict:
    return {
        str(device): [_encode_entry(e) for e in entries]
        for device, entries in ordering.device_entries
    }


def _decode_orders(raw: dict, frontier: int | None) -> ScheduleOrdering:
    return ScheduleOrdering.from_orders(
        {int(device): [_decode_entry(e) for e in entries]
         for device, entries in raw.items()},
        recompute_frontier=frontier,
    )


# -- payload --------------------------------------------------------------


def payload_for(
    result: SearchResult,
    config: PipelineConfig,
    cost: CostConfig,
    *,
    run: RunConfig | None = None,
    resources: StageResources | None = None,
    capacity_bytes: int | None = None,
) -> dict:
    """The JSON-safe replay payload of a search result.

    ``config``/``cost``/``resources``/``capacity_bytes`` must be the
    ones the search ran with — they are what replay rebuilds the base
    program from, and the embedded ``plan_key`` will expose any
    mismatch at load time.
    """
    run = run or RunConfig()
    best = result.best
    if not best.feasible:
        raise SynthesisError(
            f"{result.name}: best candidate is infeasible; nothing to "
            "serialize"
        )
    return {
        "format": SCHEDULE_FORMAT,
        "name": result.name,
        "scheme": config.scheme,
        "num_devices": config.num_devices,
        "num_microbatches": config.num_microbatches,
        "num_waves": config.num_waves,
        "prefetch": run.prefetch,
        "batch_cross_comm": run.batch_cross_comm,
        "cost": {"t_f": cost.t_f, "t_b": cost.t_b, "t_c": cost.t_c},
        "resources": (
            None if resources is None else {
                "weight_bytes": list(resources.weight_bytes),
                "activation_bytes": list(resources.activation_bytes),
                "boundary_bytes": resources.boundary_bytes,
            }
        ),
        "capacity_bytes": capacity_bytes,
        "recompute_frontier": best.ordering.recompute_frontier,
        "plan_key": result.plan_key,
        "makespan": best.makespan,
        "bubble_ratio": best.bubble_ratio,
        "seed": result.config.seed,
        "provenance": [
            {
                "round": step.round,
                "mutation": step.mutation.payload(),
                "makespan": step.makespan,
                "bubble_ratio": step.bubble_ratio,
            }
            for step in best.provenance
        ],
        "orders": _encode_orders(best.ordering),
    }


def replay_payload(payload: dict) -> ReplayReport:
    """Rebuild, verify and re-simulate a serialized schedule.

    Raises :class:`SynthesisError` when the payload format is unknown
    or when the recompiled candidate's plan key differs from the stored
    one — the schedule no longer describes the program it claims to
    reorder.  Legality (and capacity, when the payload carries a cap)
    is enforced by the same checker the search used.
    """
    from .search import SynthesisContext

    fmt = payload.get("format")
    if fmt != SCHEDULE_FORMAT:
        raise SynthesisError(
            f"unsupported schedule format {fmt!r} "
            f"(this build reads {SCHEDULE_FORMAT})"
        )
    from ..schedules import build_schedule

    config = PipelineConfig(
        scheme=payload["scheme"],
        num_devices=payload["num_devices"],
        num_microbatches=payload["num_microbatches"],
        num_waves=payload["num_waves"],
    )
    cost = CostConfig(**payload["cost"])
    run = RunConfig(prefetch=payload["prefetch"],
                    batch_cross_comm=payload["batch_cross_comm"])
    raw_res = payload.get("resources")
    resources = None
    if raw_res is not None:
        resources = StageResources(
            weight_bytes=tuple(raw_res["weight_bytes"]),
            activation_bytes=tuple(raw_res["activation_bytes"]),
            boundary_bytes=raw_res["boundary_bytes"],
        )
    schedule = build_schedule(config, cost)
    oracle = AbstractCosts(cost, config.num_devices, schedule.num_stages)
    ctx = SynthesisContext(schedule, oracle, run, resources=resources,
                           capacity_bytes=payload.get("capacity_bytes"))
    ordering = _decode_orders(payload["orders"],
                              payload.get("recompute_frontier"))

    plan_key = ctx.plan_for(ordering).plan_key
    stored_key = payload.get("plan_key", "")
    if stored_key and plan_key != stored_key:
        raise SynthesisError(
            f"{payload.get('name', '?')}: plan key mismatch — stored "
            f"{stored_key[:12]}…, recompiled {plan_key[:12]}…; the "
            "serialized ordering no longer matches this build's "
            "compiler output"
        )
    scored = ctx.evaluate(ordering)
    if scored is None:
        raise SynthesisError(
            f"{payload.get('name', '?')}: serialized ordering is no "
            "longer legal for this program"
        )
    return ReplayReport(
        name=payload.get("name", "?"),
        makespan=scored.makespan,
        bubble_ratio=scored.bubble_ratio,
        plan_key=plan_key,
        stored_makespan=payload["makespan"],
        stored_bubble_ratio=payload["bubble_ratio"],
    )


def save_schedule(path: str | Path, payload: dict) -> Path:
    """Write a payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_schedule(path: str | Path) -> dict:
    """Read a payload back (format checking happens at replay)."""
    return json.loads(Path(path).read_text())
