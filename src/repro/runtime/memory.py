"""Byte-accurate per-device memory accounting (paper Fig. 8).

Memory on a device is::

    static  = weights + gradients + optimizer state of resident stages
              (x2 replicas for Chimera)
    dynamic = live activation chunks: allocated when a micro-batch's
              forward for a stage starts, freed when its backward ends

Since memory became a first-class runtime resource, the **event core
itself maintains these watermarks** while it executes a
resource-annotated :class:`~repro.actions.Program`
(see :mod:`repro.runtime.events`), and this module is primarily the
thin reader over that stream: :func:`memory_stats_from_result` lifts a
simulation's live peaks into a :class:`MemoryStats`.

:func:`memory_stats` — the original offline *replay* over a finished
:class:`~repro.types.Timeline` — is retained for two reasons: archived
timelines (``Timeline.from_dict``) carry no program, and the replay is
the independent oracle the parity suite pins the runtime watermarks
against, byte for byte, on every schedule family.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import StageCosts
from ..schedules.base import Schedule
from ..types import OpKind, Timeline


@dataclass(frozen=True)
class MemoryStats:
    """Peak memory per device plus distribution summaries."""

    static_bytes: dict[int, float]
    peak_bytes: dict[int, float]

    @property
    def highest_peak(self) -> float:
        return max(self.peak_bytes.values())

    @property
    def mean_peak(self) -> float:
        vals = list(self.peak_bytes.values())
        return sum(vals) / len(vals)

    @property
    def variance(self) -> float:
        """Population variance of per-device peaks, in GiB² (the unit the
        paper quotes: e.g. DAPPLE 16.85, Hanayo 1.44)."""
        gib = [v / 2**30 for v in self.peak_bytes.values()]
        mean = sum(gib) / len(gib)
        return sum((g - mean) ** 2 for g in gib) / len(gib)

    def check_capacity(self, capacity_bytes: int) -> None:
        for device, peak in sorted(self.peak_bytes.items()):
            if peak > capacity_bytes:
                raise OutOfMemoryError(device, int(peak), capacity_bytes)

    def fits(self, capacity_bytes: int) -> bool:
        return self.highest_peak <= capacity_bytes


def static_memory(schedule: Schedule, costs: StageCosts) -> dict[int, float]:
    """Weights + grads + optimizer bytes of every stage resident per device."""
    static = {d: 0.0 for d in schedule.device_ops}
    placement = schedule.placement
    for device in static:
        for stage, _replica in placement.stages_on(device):
            static[device] += costs.weight_bytes[stage]
    return static


def memory_stats_from_result(result) -> MemoryStats:
    """Read a simulation's live watermarks as :class:`MemoryStats`.

    ``result`` is a :class:`~repro.runtime.SimResult` whose program was
    compiled with :class:`~repro.actions.StageResources` — the event
    core already tracked every alloc/free, so this is a field read, not
    a replay.
    """
    memory = getattr(result, "memory", None)
    if memory is None:
        raise ConfigError(
            "simulation carries no memory watermarks; pass resources= "
            "to simulate() (or compile the program with resources=...)"
        )
    return memory


def memory_stats(
    schedule: Schedule,
    timeline: Timeline,
    costs: StageCosts,
    capacity_bytes: int | None = None,
) -> MemoryStats:
    """Replay a finished timeline and compute per-device peak memory.

    Activation lifetime: F start → B end for each (micro-batch, stage).
    The replay is event-ordered per device, so peaks are exact for the
    executed schedule, not a bound — and bit-identical to the event
    core's live watermarks for the same program (the parity suite
    asserts it).  Prefer :func:`memory_stats_from_result` for fresh
    simulations; this replay serves archived timelines and acts as the
    independent oracle.
    """
    static = static_memory(schedule, costs)
    peak = dict(static)
    current = dict(static)

    events: list[tuple[float, int, int, float]] = []  # (time, order, device, delta)
    for span in timeline.iter_ops():
        op = span.op
        nbytes = costs.activation_bytes[op.stage]
        if op.kind is OpKind.FORWARD:
            # order=1: at equal timestamps, a backward that *ends* at t
            # frees its activation before the forward that *starts* at t
            # allocates — the device serialises the two ops.
            events.append((span.start, 1, op.device, +nbytes))
        else:
            events.append((span.end, 0, op.device, -nbytes))
    events.sort(key=lambda e: (e[0], e[1]))
    for _t, _o, device, delta in events:
        current[device] += delta
        if current[device] > peak[device]:
            peak[device] = current[device]
    for device, level in current.items():
        drift = level - static[device]
        # tolerance: float accumulation over many alloc/free pairs of
        # non-representable byte counts (e.g. TP-sharded sizes)
        if abs(drift) > max(64.0, 1e-9 * peak[device]):
            raise AssertionError(
                f"activation leak on device {device}: {drift} bytes"
            )
    stats = MemoryStats(static_bytes=static, peak_bytes=peak)
    if capacity_bytes is not None:
        stats.check_capacity(capacity_bytes)
    return stats
