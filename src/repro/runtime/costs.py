"""Cost oracles: what the simulator asks about op durations and transfers.

Two implementations cover the two experiment families:

* :class:`AbstractCosts` — the paper's symbolic ``T_F``/``T_B``/``T_C``
  model (Table 1).  Used for bubble-ratio figures where hardware is
  abstracted away.
* :class:`ConcreteCosts` — per-stage seconds from a model spec lowered
  onto a device (:func:`repro.models.stage_costs`) plus a topology-aware
  :class:`~repro.cluster.CommModel`.  Used for throughput figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.comm_model import CommModel, Transfer
from ..config import CostConfig
from ..errors import ConfigError
from ..models.costs import StageCosts
from ..types import OpKind, ScheduleOp


class CostOracle:
    """Interface the simulator consumes."""

    def duration(self, op: ScheduleOp) -> float:
        raise NotImplementedError

    def transfer_time(self, src: int, dst: int, stage: int) -> float:
        """Seconds to move one boundary tensor (activation or gradient)."""
        raise NotImplementedError

    def link_latency(self, src: int, dst: int) -> float:
        """Launch latency of the link — the part one batched
        ``isend_irecv`` group pays once.  Zero for abstract models."""
        return 0.0

    def tensor_nbytes(self, stage: int) -> float:
        """Payload size of one boundary tensor, for program sizing and
        traces.  Abstract models have no byte notion (unit size)."""
        return 1.0

    def global_rank(self, device: int) -> int:
        """Cluster rank of a program-local device.

        Programs are compiled for one pipeline's workers ``0..P-1``;
        oracles that place the pipeline elsewhere in a cluster (rank
        blocks, TP spacing) override this so link contention and
        collective routes resolve against *physical* ranks.
        """
        return device

    def collective_link_time(self, a: int, b: int, nbytes: float) -> float:
        """Seconds for one ring-step chunk between **global** ranks.

        Collective groups address cluster ranks directly (they span
        pipelines), so this bypasses the program-local view that
        :meth:`transfer_time` resolves.
        """
        raise ConfigError(
            f"{type(self).__name__} cannot time collectives "
            "(no topology route between global ranks)"
        )


@dataclass
class AbstractCosts(CostOracle):
    """Symbolic unit costs; durations follow Table 1 conventions.

    ``T_F`` is one device-worth of forward compute, so a single chunk
    stage costs ``T_F * P / S`` (each device holds ``S / P`` chunks).
    """

    costs: CostConfig
    num_devices: int
    num_stages: int

    def __post_init__(self) -> None:
        if self.num_stages % self.num_devices:
            raise ConfigError(
                f"S={self.num_stages} not divisible by P={self.num_devices}"
            )
        self._per_stage = self.num_devices / self.num_stages

    def duration(self, op: ScheduleOp) -> float:
        base = self.costs.t_f if op.kind is OpKind.FORWARD else self.costs.t_b
        return base * self._per_stage

    def transfer_time(self, src: int, dst: int, stage: int) -> float:
        return 0.0 if src == dst else self.costs.t_c

    def collective_link_time(self, a: int, b: int, nbytes: float) -> float:
        # Abstract comm is per-message: a ring chunk costs one t_c hop.
        return 0.0 if a == b else self.costs.t_c


@dataclass
class ConcreteCosts(CostOracle):
    """Seconds from a lowered model + a cluster communication model."""

    stage_costs: StageCosts
    comm: CommModel
    #: Chimera holds two replicas of every stage; duration lookups are
    #: by global stage index regardless of replica.

    def duration(self, op: ScheduleOp) -> float:
        table = (self.stage_costs.forward if op.kind is OpKind.FORWARD
                 else self.stage_costs.backward)
        if not (0 <= op.stage < len(table)):
            raise ConfigError(
                f"op stage {op.stage} outside cost table of {len(table)}"
            )
        return table[op.stage]

    def transfer_time(self, src: int, dst: int, stage: int) -> float:
        if src == dst:
            return 0.0
        return self.comm.transfer_time(
            Transfer(src, dst, self.stage_costs.boundary_bytes)
        )

    def link_latency(self, src: int, dst: int) -> float:
        if src == dst or self.comm.topology is None:
            return 0.0
        return self.comm.topology.effective_link(src, dst).latency

    def tensor_nbytes(self, stage: int) -> float:
        return self.stage_costs.boundary_bytes

    def collective_link_time(self, a: int, b: int, nbytes: float) -> float:
        return self.comm.rank_transfer_time(a, b, nbytes)
