"""Metrics extracted from simulated timelines.

The paper's headline metric is the **bubble ratio** — the fraction of
device-time spent idle inside the pipeline's active window — plus
throughput in sequences per second for the evaluation figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schedules.base import Schedule
from ..types import OpKind, Timeline


@dataclass(frozen=True)
class BubbleStats:
    """Idle-time accounting for one simulated iteration."""

    makespan: float
    busy: dict[int, float]          # per device compute time
    idle: dict[int, float]          # per device makespan - busy
    bubble_ratio: float             # aggregate: idle / (P * makespan)
    per_device_ratio: dict[int, float]


def bubble_stats(timeline: Timeline) -> BubbleStats:
    """Aggregate bubble accounting over the whole iteration window.

    The window is ``[0, makespan]`` on every device — the paper's
    convention, where warm-up and drain idleness count as bubbles.
    """
    makespan = timeline.makespan
    busy = {d: timeline.busy_time(d) for d in timeline.devices}
    idle = {d: makespan - b for d, b in busy.items()}
    denom = makespan * max(1, len(busy))
    ratio = sum(idle.values()) / denom if denom > 0 else 0.0
    per_device = {
        d: (idle[d] / makespan if makespan > 0 else 0.0) for d in busy
    }
    return BubbleStats(
        makespan=makespan,
        busy=busy,
        idle=idle,
        bubble_ratio=ratio,
        per_device_ratio=per_device,
    )


def steady_state_bubble_ratio(timeline: Timeline, trim: float = 0.25) -> float:
    """Bubble ratio excluding a ``trim`` fraction at both ends.

    Asynchronous schedules have no flush, so their meaningful number is
    the steady-state idle fraction (paper Fig. 4(b)); trimming removes
    the one-time warm-up and the artificial end-of-simulation drain.
    """
    makespan = timeline.makespan
    lo, hi = makespan * trim, makespan * (1 - trim)
    window = hi - lo
    if window <= 0:
        return 0.0
    ratios = []
    for d in timeline.devices:
        busy = 0.0
        for span in timeline.device_spans(d):
            busy += max(0.0, min(span.end, hi) - max(span.start, lo))
        ratios.append(1.0 - busy / window)
    return sum(ratios) / len(ratios) if ratios else 0.0


def throughput_seq_per_s(
    makespan_s: float,
    num_microbatches: int,
    microbatch_size: int,
    data_parallel: int = 1,
    overhead_s: float = 0.0,
) -> float:
    """Sequences per second for one iteration of the full job."""
    if makespan_s <= 0:
        raise ValueError("makespan must be positive")
    total = num_microbatches * microbatch_size * data_parallel
    return total / (makespan_s + overhead_s)


def compute_time_lower_bound(schedule: Schedule, duration_of) -> float:
    """Per-device compute if bubbles were zero: max over devices of work."""
    work: dict[int, float] = {}
    for op in schedule.all_ops():
        work[op.device] = work.get(op.device, 0.0) + duration_of(op)
    return max(work.values()) if work else 0.0


def kind_time(timeline: Timeline, kind: OpKind) -> float:
    """Total device-time spent in ops of ``kind`` (for sanity checks)."""
    return sum(t.duration for t in timeline.iter_ops() if t.op.kind is kind)
