"""Discrete-event execution of a schedule against a cost oracle.

Each device executes its schedule list **in order** (the order *is* the
program — reordering here would silently change the algorithm under
test).  An op starts when the device is free and its input tensors have
arrived; arrival of a cross-device tensor is its producer's completion
plus the transfer time.

Prefetching (paper Sec. 4.2) decides *who pays* for the transfer:

* ``prefetch=True`` — receives are posted ahead (asynchronous
  communication), so transfers overlap the receiver's previous compute
  and only surface as waiting when the receiver is otherwise idle.
* ``prefetch=False`` — the receiver blocks for each transfer: the
  transfer occupies its timeline as an explicit recv span.

The gap between those two modes is the paper's communication-overlap
claim, which `benchmarks/bench_ablation_prefetch.py` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RunConfig
from ..errors import SchedulingError
from ..schedules.base import Schedule
from ..types import OpKind, ScheduleOp, TimedOp, Timeline
from .costs import CostOracle


@dataclass
class SimResult:
    """Everything a simulation produces."""

    schedule: Schedule
    timeline: Timeline
    #: per-device explicit recv spans (only populated without prefetch)
    recv_busy: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan


@dataclass
class TrainingSimResult:
    """A multi-iteration training run (synchronous schedules).

    A flush separates iterations, so every iteration replays the same
    timeline; total time is ``iterations * (makespan + step_cost)``.
    """

    iteration: SimResult
    iterations: int
    step_cost: float

    @property
    def iteration_time(self) -> float:
        return self.iteration.makespan + self.step_cost

    @property
    def total_time(self) -> float:
        return self.iterations * self.iteration_time


def simulate_training(
    schedule: Schedule,
    costs: CostOracle,
    run: RunConfig | None = None,
    step_cost: float = 0.0,
) -> TrainingSimResult:
    """Simulate ``run.iterations`` flushed iterations.

    The flush makes iterations independent, so one simulation suffices;
    ``step_cost`` charges the optimizer step + any per-iteration sync.
    """
    run = run or RunConfig()
    if step_cost < 0:
        raise SchedulingError("step_cost must be >= 0")
    one = simulate(schedule, costs, run)
    return TrainingSimResult(iteration=one, iterations=run.iterations,
                             step_cost=step_cost)


def simulate(
    schedule: Schedule,
    costs: CostOracle,
    run: RunConfig | None = None,
) -> SimResult:
    """Execute ``schedule`` under ``costs`` and return its timeline.

    Raises :class:`SchedulingError` if the per-device orders deadlock
    (an op waits for a producer that is queued behind it) — a condition
    :func:`repro.schedules.validation.check_executable` rules out for
    generator-produced schedules, but which hand-written schedules can
    trigger.
    """
    run = run or RunConfig()
    # Index ops once; dependency lookups are by (kind, microbatch, stage).
    op_index: dict[tuple, ScheduleOp] = {
        (op.kind, op.microbatch, op.stage): op for op in schedule.all_ops()
    }
    # Producer completion times, filled as ops retire.
    done: dict[tuple, float] = {}
    cursors = {d: 0 for d in schedule.device_ops}
    free_at = {d: 0.0 for d in schedule.device_ops}
    recv_busy = {d: 0.0 for d in schedule.device_ops}
    timeline = Timeline()
    total = schedule.op_count()
    retired = 0

    while retired < total:
        progressed = False
        for d, ops in schedule.device_ops.items():
            while cursors[d] < len(ops):
                op = ops[cursors[d]]
                deps = schedule.dependencies(op)
                if any(dep not in done for dep in deps):
                    break
                data_ready = 0.0
                blocking_recv = 0.0
                for dep in deps:
                    src = op_index[dep].device
                    t_done = done[dep]
                    t_comm = costs.transfer_time(src, d, op.stage)
                    if src == d or t_comm == 0.0:
                        data_ready = max(data_ready, t_done)
                    elif run.prefetch:
                        data_ready = max(data_ready, t_done + t_comm)
                    else:
                        # Blocking recv: device participates in the
                        # transfer, so it occupies the device timeline.
                        data_ready = max(data_ready, t_done)
                        blocking_recv += t_comm
                start = max(free_at[d], data_ready) + blocking_recv
                recv_busy[d] += blocking_recv
                end = start + costs.duration(op)
                timeline.add(TimedOp(op=op, start=start, end=end))
                free_at[d] = end
                done[(op.kind, op.microbatch, op.stage)] = end
                cursors[d] += 1
                retired += 1
                progressed = True
        if not progressed and retired < total:
            stuck = {
                d: str(ops[cursors[d]])
                for d, ops in schedule.device_ops.items()
                if cursors[d] < len(ops)
            }
            raise SchedulingError(
                f"{schedule.name}: simulation deadlock; heads = {stuck}"
            )

    # Sort spans per device by start for downstream consumers.
    for spans in timeline.spans.values():
        spans.sort(key=lambda t: t.start)
    return SimResult(schedule=schedule, timeline=timeline, recv_busy=recv_busy)
