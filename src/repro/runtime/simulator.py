"""Simulation front door: compile once, execute the program IR.

``simulate`` lowers a schedule to the single execution IR
(:func:`repro.actions.compile_program`) and times it with the
event-driven core in :mod:`repro.runtime.events` — the same per-worker
action lists the real NumPy engine interprets, so prefetch and
batched-P2P semantics are identical across the modeled and real paths
by construction (the parity suite asserts it).

Prefetching (paper Sec. 4.2) decides *who pays* for a transfer:

* ``prefetch=True`` — receives are posted ahead (asynchronous
  communication), so transfers overlap the receiver's previous compute
  and only surface as recv wait when the receiver is otherwise idle.
* ``prefetch=False`` — the receiver blocks for each transfer: the
  transfer occupies the receiver's clock and is charged to its
  ``recv_busy`` account (timelines keep compute spans only, so the
  blocked time counts as bubble, per the paper's convention).

The gap between those two modes is the paper's communication-overlap
claim, which `benchmarks/bench_ablation_prefetch.py` quantifies via the
per-device ``recv_busy`` accounting — populated in **both** modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..actions.lowering import ExecutablePlan
from ..actions.ops import Action
from ..actions.program import Program, compile_program
from ..actions.resources import StageResources
from ..config import RunConfig
from ..errors import SchedulingError
from ..schedules.base import Schedule
from ..types import Timeline
from .. import profiling
from .costs import CostOracle
from .events import (
    CollectiveEvent,
    CommEvent,
    MemoryEvent,
    execute_plan,
    execute_program,
)
from .memory import MemoryStats


@dataclass
class SimResult:
    """Everything a simulation produces."""

    schedule: Schedule | None
    timeline: Timeline
    #: per-device seconds stalled on incoming tensors: full transfer
    #: durations without prefetch, residual (un-overlapped) arrival
    #: waits with prefetch — never silently empty while transfers
    #: cost time
    recv_busy: dict[int, float] = field(default_factory=dict)
    #: the execution IR this result was produced from
    program: Program | None = None
    #: every point-to-point transfer, in posting order
    comm: list[CommEvent] = field(default_factory=list)
    #: per-device executed action order (the parity witness: equals the
    #: program's action lists action-for-action)
    action_order: dict[int, list[Action]] = field(default_factory=dict)
    #: per-device memory watermark peaks + statics, maintained live by
    #: the event core; None when the program carries no resources
    memory: MemoryStats | None = None
    #: every watermark change, in per-device execution order (feeds the
    #: Chrome-trace memory counter lanes)
    mem_events: list[MemoryEvent] = field(default_factory=list)
    #: every executed collective (ring all-reduces with per-step
    #: schedules), in posting order; empty for programs without
    #: compiled collectives
    collectives: list[CollectiveEvent] = field(default_factory=list)
    #: per-device end-of-program clocks (compute + blocking comm)
    device_end: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def busy_end(self) -> float:
        """End of all compute and blocking communication — the base
        the gradient-sync exposure is measured against."""
        return max([self.timeline.makespan]
                   + list(self.device_end.values()))

    def sync_done(self) -> float:
        """End of the last asynchronous gradient sync (0 if none)."""
        from ..actions.ops import CollectiveKind

        ends = [c.end for c in self.collectives
                if c.op.kind is CollectiveKind.GRAD_SYNC]
        return max(ends) if ends else 0.0


@dataclass
class TrainingSimResult:
    """A multi-iteration training run (synchronous schedules).

    A flush separates iterations, so every iteration replays the same
    timeline; total time is ``iterations * (makespan + step_cost)``.
    """

    iteration: SimResult
    iterations: int
    step_cost: float

    @property
    def iteration_time(self) -> float:
        return self.iteration.makespan + self.step_cost

    @property
    def total_time(self) -> float:
        return self.iterations * self.iteration_time


def simulate_training(
    schedule: Schedule,
    costs: CostOracle,
    run: RunConfig | None = None,
    step_cost: float = 0.0,
) -> TrainingSimResult:
    """Simulate ``run.iterations`` flushed iterations.

    The flush makes iterations independent, so one simulation suffices;
    ``step_cost`` charges the optimizer step + any per-iteration sync.
    """
    run = run or RunConfig()
    if step_cost < 0:
        raise SchedulingError("step_cost must be >= 0")
    one = simulate(schedule, costs, run)
    return TrainingSimResult(iteration=one, iterations=run.iterations,
                             step_cost=step_cost)


def simulate(
    schedule: Schedule,
    costs: CostOracle,
    run: RunConfig | None = None,
    *,
    resources: StageResources | None = None,
    capacity_bytes: int | None = None,
) -> SimResult:
    """Compile ``schedule`` to a program and execute it under ``costs``.

    Raises :class:`SchedulingError` if the per-device orders deadlock
    (an op waits for a producer that is queued behind it) — a condition
    :func:`repro.schedules.validation.check_executable` rules out for
    generator-produced schedules, but which hand-written schedules can
    trigger.

    ``resources`` annotates the compiled program with per-stage memory
    footprints, turning on live watermark tracking (``result.memory``);
    ``capacity_bytes`` additionally enforces a device capacity — the
    run aborts with :class:`~repro.errors.OutOfMemoryError` at the
    first violating allocation in replay order, after a free O(P)
    static pre-check.
    """
    run = run or RunConfig()
    with profiling.phase("lower"):
        program = compile_program(
            schedule,
            prefetch=run.prefetch,
            batch_cross_comm=run.batch_cross_comm,
            add_step=False,
            boundary_bytes=lambda tag: costs.tensor_nbytes(tag.stage),
            resources=resources,
        )
    return simulate_program(program, costs, run, schedule=schedule,
                            capacity_bytes=capacity_bytes)


def simulate_ordering(
    program: Program,
    orders,
    costs: CostOracle,
    run: RunConfig | None = None,
    *,
    capacity_bytes: int | None = None,
) -> SimResult:
    """Execute ``program`` under an externally supplied action ordering.

    ``orders`` maps each device to a permutation of that device's
    ordering entries (see :func:`repro.actions.reorder.reorder_program`,
    which performs the recompile).  This is the replay entry the
    schedule-synthesis pipeline uses: a serialized or searched ordering
    is recompiled against the base program and simulated exactly like
    any compiled schedule — including deadlocking or OOMing when the
    ordering is illegal, which the differential fuzz harness pins
    against the legality checker's verdict.
    """
    from ..actions.reorder import reorder_program

    reordered = reorder_program(program, orders)
    return simulate_program(reordered, costs, run,
                            capacity_bytes=capacity_bytes)


def simulate_program(
    program: Program,
    costs: CostOracle,
    run: RunConfig | None = None,
    schedule: Schedule | None = None,
    *,
    plan: ExecutablePlan | None = None,
    capacity_bytes: int | None = None,
) -> SimResult:
    """Execute an already-compiled program — sim side of the parity pair.

    The engine trainer exposes its compiled program
    (:attr:`repro.engine.PipelineTrainer.program`); passing that same
    object here guarantees the simulator times exactly the action
    sequence the engine executes.  Recv semantics (blocking vs
    overlapped) follow ``program.prefetch`` — the flag the program was
    compiled with — while ``run`` contributes fidelity knobs such as
    ``contention``.

    ``plan`` short-circuits the lowering pass: callers that already
    hold a cost-bound :class:`~repro.actions.lowering.ExecutablePlan`
    of this program (the sweep plan cache) execute it directly instead
    of re-lowering per call.
    """
    if plan is not None and plan.program is not program:
        raise SchedulingError(
            f"{program.name}: plan was lowered from a different program"
        )
    with profiling.phase("simulate"):
        if plan is not None:
            result = execute_plan(plan, run, capacity_bytes=capacity_bytes)
        else:
            result = execute_program(program, costs, run,
                                     capacity_bytes=capacity_bytes)
    return sim_result_from_events(program, result, schedule=schedule)


def sim_result_from_events(program: Program, result,
                           schedule: Schedule | None = None) -> SimResult:
    """Fold one :class:`~repro.runtime.events.EventResult` into a
    :class:`SimResult`.

    The single folding path :func:`simulate_program` and the batched
    measurement layer (:mod:`repro.runtime.batched` consumers) share,
    so the per-lane results of a lockstep run assemble exactly like a
    scalar simulation's.
    """
    memory = None
    if program.tracks_memory:
        memory = MemoryStats(static_bytes=dict(program.static_bytes),
                             peak_bytes=result.mem_peak)
    return SimResult(
        schedule=schedule,
        timeline=result.timeline,
        recv_busy=result.recv_wait,
        program=program,
        comm=result.comm,
        action_order=result.order,
        memory=memory,
        mem_events=result.mem_events,
        collectives=result.collectives,
        device_end=result.device_end,
    )
