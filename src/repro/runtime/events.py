"""Event-driven execution of a compiled program, on its lowered form.

This is the cluster-level event core both modeled executions share.
Since the lowered-plan refactor it no longer interprets the rich
Program IR directly: :func:`execute_program` first lowers the program
to an :class:`~repro.actions.lowering.ExecutablePlan` — flat integer
arrays with precomputed costs, interned wires and CSR dependency edges
— and :func:`execute_plan` runs the event loop over those indices.
Array ready-state (``comp_done`` / ``posted`` byte arrays, per-slot
transfer times) replaces the old ``produced: dict[tuple, float]`` and
``(device, tag)`` transfer dicts; wires and batched exchanges are
pre-interned ints instead of ``frozenset`` keys; per-device cursors are
preallocated lists.  The result is bit-identical to the retained
reference interpreter (:mod:`repro.runtime.events_ref`) — pinned by the
parity suite over the full schedule-family × prefetch × batching
matrix — at a multiple of its speed (see ``benchmarks/bench_perf_core``
and the committed ``BENCH_core.json``).

Timing model
------------

* **Compute** starts when the device is free, its local inputs are
  produced, and (with prefetch) its remote inputs have arrived.
* **Send** is a non-blocking post: the transfer is scheduled the moment
  the sender's cursor passes the action (which, by compiler invariant,
  is the instant the producing compute retires).
* **Recv** under ``prefetch=True`` is a free post — the transfer
  overlaps the receiver's earlier compute and only surfaces as *recv
  wait* when the receiver goes idle for it.  Under ``prefetch=False``
  the receiver participates in the transfer: its clock advances by the
  full transfer duration (charged to ``recv_wait``; the timeline keeps
  compute spans only, so bubble accounting treats the transfer as
  idle — matching the paper's bubble convention).
* **BatchedP2P** posts its whole group before waiting (the
  ``batch_isend_irecv`` discipline of Sec. 4.2).
* **CollectiveOp** (see :mod:`repro.actions.collectives`) executes a
  ring all-reduce as its ``2 * (D - 1)`` per-chunk steps, each lasting
  as long as the slowest ring link; a device's collectives serialize on
  a per-device NIC cursor (bucketed-NCCL style).  Asynchronous
  collectives (DP gradient sync) never advance the device clock — their
  completion only bounds the *iteration* end, which is how bubble
  overlap is measured instead of assumed.  Blocking collectives (TP
  boundary all-reduces) advance the clock like compute.  Replica
  symmetry: every data-parallel replica executes the same program, so
  the off-program ring peers are ready exactly when the owning device
  is — one simulated pipeline times the whole ring.

Both modes account ``recv_wait`` per device: blocking transfers charge
their full duration, prefetched transfers charge the residual stall
between "device ready" and "tensor arrived".

Optional fidelity knobs (:class:`~repro.config.RunConfig`):

* ``contention=True`` serializes transfers that share an (unordered)
  device pair — one wire per pair, NCCL-style.
* Under contention, opposing transfers posted as one batched group
  share the wire back-to-back and the follower skips the link launch
  latency (:meth:`CostOracle.link_latency`) — the batched-P2P saving.

Memory model
------------

When the program carries :class:`~repro.actions.StageResources`, the
core maintains **live per-device watermarks** from the plan's
precomputed per-compute resource deltas: every device starts at its
static residency bytes, each forward start allocates its stage's
activation bytes, each backward end frees them.  Per device the deltas
are applied in execution (= program) order, which makes the resulting
peaks bit-identical to the offline timeline replay
(:func:`repro.runtime.memory.memory_stats`) — pinned by the parity
suite.  An optional ``capacity_bytes`` turns the watermarks into an
enforcement mechanism: a violating allocation aborts the run with a
structured :class:`~repro.errors.OutOfMemoryError` (after an O(P)
static pre-check that rejects statically-infeasible programs before a
single event is simulated).  The abort fires at the first violation
*in replay order* — deterministic per driver, but the attributed
device/peak may differ between the greedy and time-ordered drivers
when several devices would violate; the OOM *verdict* is
driver-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..actions.lowering import (
    OP_BATCH,
    OP_COLL,
    OP_COMPUTE,
    OP_RECV,
    OP_SEND,
    ExecutablePlan,
)
from ..actions.ops import Action, CollectiveKind, CollectiveOp, Tag
from ..actions.program import Program
from ..config import RunConfig
from ..errors import OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .costs import CostOracle


@dataclass(frozen=True)
class CommEvent:
    """One completed point-to-point transfer."""

    tag: Tag
    src: int
    dst: int
    post: float     # sender posted the transfer
    start: float    # the wire picked it up (== post without contention)
    end: float      # arrival at the receiver
    nbytes: float
    batched: bool   # posted from inside a BatchedP2P group

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveEvent:
    """One executed collective, with its per-step ring schedule.

    ``steps`` holds the ``(start, end)`` interval of each of the first
    ring round's ``2 * (D - 1)`` chunk steps; for ``op.count != 1`` the
    remaining rounds extend ``end`` without per-step detail (they
    repeat the first round back-to-back).
    """

    op: CollectiveOp
    device: int      # program-local device that owns this collective
    post: float      # the cursor reached the action
    start: float     # first ring step began (>= post: NIC + wire waits)
    end: float       # last chunk arrived everywhere
    steps: tuple[tuple[float, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class MemoryEvent:
    """One watermark change on a device: an activation alloc or free."""

    device: int
    time: float     # forward start (alloc) or backward end (free)
    delta: float    # signed bytes
    level: float    # device watermark after applying the delta
    key: tuple      # the compute (kind, microbatch, stage) responsible


@dataclass
class EventResult:
    """Everything one program execution produces."""

    timeline: Timeline
    #: per-device seconds stalled on incoming tensors (see module doc)
    recv_wait: dict[int, float]
    #: every transfer, in posting order
    comm: list[CommEvent] = field(default_factory=list)
    #: per-device executed action order — the parity witness: always a
    #: prefix-complete replay of ``program.actions``
    order: dict[int, list[Action]] = field(default_factory=dict)
    #: per-device peak memory bytes (static + live activations); empty
    #: when the program carries no resources
    mem_peak: dict[int, float] = field(default_factory=dict)
    #: every watermark change, in per-device execution order
    mem_events: list[MemoryEvent] = field(default_factory=list)
    #: every executed collective, in posting order
    collectives: list[CollectiveEvent] = field(default_factory=list)
    #: per-device clock when its program finished — unlike the compute
    #: timeline this includes blocking communication (TP collectives,
    #: blocking receives) that trails the device's last compute span
    device_end: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def busy_end(self) -> float:
        """End of all compute *and* blocking communication."""
        return max([self.timeline.makespan]
                   + list(self.device_end.values()))

    def sync_done(self) -> float:
        """When the last asynchronous gradient sync completed (0 if none)."""
        ends = [c.end for c in self.collectives
                if c.op.kind is CollectiveKind.GRAD_SYNC]
        return max(ends) if ends else 0.0


def execute_program(
    program: Program,
    costs: CostOracle,
    run: RunConfig | None = None,
    capacity_bytes: int | None = None,
) -> EventResult:
    """Lower ``program`` against ``costs`` and execute the plan.

    The one-shot convenience entry: callers that execute the same
    structure repeatedly (sweeps, benches) lower once with
    :meth:`ExecutablePlan.lower` / :meth:`ExecutablePlan.retime` and
    call :func:`execute_plan` directly.

    Raises :class:`SchedulingError` if the worker programs deadlock —
    an action waits for a transfer whose sender is queued behind it.

    ``capacity_bytes`` (requires a resource-annotated program) arms the
    memory watermarks: the run aborts with
    :class:`~repro.errors.OutOfMemoryError` at the first violating
    allocation encountered in replay order — statically-infeasible
    programs are rejected in O(P) before the event loop starts.
    """
    if capacity_bytes is not None:
        # Reject statically-infeasible programs before lowering binds
        # the oracle: an OOM verdict on static bytes alone must not
        # pay (or depend on) a single cost lookup.
        if not program.tracks_memory:
            raise SchedulingError(
                f"{program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
        program.check_static_memory(capacity_bytes)
    return execute_plan(ExecutablePlan.lower(program, costs), run,
                        capacity_bytes=capacity_bytes)


def execute_plan(
    plan: ExecutablePlan,
    run: RunConfig | None = None,
    capacity_bytes: int | None = None,
    *,
    detail: str = "full",
) -> EventResult:
    """Run the event loop over a lowered (and cost-bound) plan.

    Blocking-vs-overlapped receives are a property of the *compiled*
    program (the prefetch hoisting pass and asynchronous recv semantics
    belong together), so execution follows the plan's flag — a
    RunConfig compiled-elsewhere mismatch cannot silently mis-time the
    run.  RunConfig contributes the fidelity knobs (``contention``).

    ``detail="lean"`` elides the comm log, executed order and memory
    events from the result (see :func:`_materialize`); every field it
    does produce is unchanged.  Scoring paths (sweeps, synthesis) that
    fold only timelines, collectives and peaks use it to skip object
    construction they would throw away.
    """
    run = run or RunConfig()
    if not plan.bound:
        raise SchedulingError(
            f"{plan.name}: plan is not cost-bound; lower with an oracle "
            "or call plan.retime(costs) first"
        )
    program = plan.program
    tracked = program.tracks_memory
    if capacity_bytes is not None:
        if not tracked:
            raise SchedulingError(
                f"{program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
        program.check_static_memory(capacity_bytes)
    prefetch = plan.prefetch
    contention = run.contention

    devices = plan.devices
    num_devices = len(devices)
    codes, args = plan.codes, plan.args
    dep_ptr, dep_remote, dep_idx = plan.dep_ptr, plan.dep_remote, plan.dep_idx
    comp_cost = plan.comp_cost
    comp_ops = plan.comp_ops
    oracle = plan.costs
    comp_alloc, comp_free_b = plan.comp_alloc, plan.comp_free
    send_time, send_lat = plan.send_time, plan.send_lat
    send_wire, send_slot = plan.send_wire, plan.send_slot
    batch_send_ids, batch_recv_ids = plan.batch_send_ids, plan.batch_recv_ids
    batch_exch = plan.batch_exch
    recv_slot = plan.recv_slot
    coll_active, coll_step_time = plan.coll_active, plan.coll_step_time
    coll_wires, coll_nsteps = plan.coll_wires, plan.coll_nsteps
    coll_count, coll_blocking = plan.coll_count, plan.coll_blocking

    n_comp = plan.n_computes
    n_send = len(plan.send_src)
    n_slot = plan.n_slots

    # preallocated per-device cursors and clocks
    cursors = [0] * num_devices
    clock = [0.0] * num_devices
    recv_wait = [0.0] * num_devices
    coll_free = [0.0] * num_devices
    # array ready-state: replaces produced:dict and transfers:dict
    comp_done = bytearray(n_comp)
    comp_start_a = [0.0] * n_comp
    comp_end_a = [0.0] * n_comp
    exec_seq: list[int] = []
    posted = bytearray(n_slot)
    tr_start = [0.0] * n_slot
    tr_end = [0.0] * n_slot
    send_post_a = [0.0] * n_send
    send_start_a = [0.0] * n_send
    send_end_a = [0.0] * n_send
    send_batched = bytearray(n_send)
    post_seq: list[int] = []
    batch_posted = bytearray(len(batch_send_ids))
    wire_free = [0.0] * plan.n_wires
    wire_exch = [-1] * plan.n_wires
    #: (lid, di, post, start, end, steps) in execution order
    coll_log: list[tuple] = []
    static = [program.static_bytes.get(d, 0.0) for d in devices]
    mem_level = list(static)
    mem_peak = list(static)
    #: (di, time, delta, level, cid) in execution order
    mem_log: list[tuple] = []

    def step(di: int, i: int) -> bool:
        """Execute one action; False if the device must block."""
        code = codes[di][i]
        a = args[di][i]
        if code == OP_COMPUTE:
            ready = clock[di]
            arrival = 0.0
            have_arrival = False
            in_flight = 0.0
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                x = dep_idx[e]
                if dep_remote[e]:
                    # Without prefetch the blocking Recv already
                    # advanced the clock past the arrival.
                    if prefetch:
                        if not posted[x]:
                            return False  # sender hasn't posted yet
                        te = tr_end[x]
                        if not have_arrival or te > arrival:
                            arrival = te
                        have_arrival = True
                        in_flight += te - tr_start[x]
                else:
                    # Local hand-off: the producer must have retired
                    # earlier on this device; if it hasn't, the program
                    # order is inverted and the device blocks (deadlock
                    # detection reports it).
                    if not comp_done[x]:
                        return False
                    de = comp_end_a[x]
                    if de > ready:
                        ready = de
            start = ready
            if have_arrival and arrival > ready:
                # Only the transfer-attributable share of the stall
                # counts as recv wait; waiting on the *producer* is a
                # bubble, not communication.
                stall = arrival - ready
                recv_wait[di] += stall if stall < in_flight else in_flight
                start = arrival
            cost = comp_cost[a]
            if cost is None:  # lazy duration fill (see retime)
                cost = oracle.duration(comp_ops[a])
                comp_cost[a] = cost
            end = start + cost
            comp_start_a[a] = start
            comp_end_a[a] = end
            comp_done[a] = 1
            exec_seq.append(a)
            clock[di] = end
            if tracked:
                alloc = comp_alloc[a]
                if alloc:
                    level = mem_level[di] + alloc
                    mem_level[di] = level
                    mem_log.append((di, start, alloc, level, a))
                    if level > mem_peak[di]:
                        mem_peak[di] = level
                        if (capacity_bytes is not None
                                and level > capacity_bytes):
                            raise OutOfMemoryError(devices[di], int(level),
                                                   capacity_bytes)
                freed = comp_free_b[a]
                if freed:
                    level = mem_level[di] - freed
                    mem_level[di] = level
                    mem_log.append((di, end, -freed, level, a))
            return True
        if code == OP_SEND:
            t = send_time[a]
            post = clock[di]
            start = post
            duration = t
            if contention and t > 0.0:
                w = send_wire[a]
                if post < wire_free[w]:
                    start = wire_free[w]
                wire_free[w] = start + duration
                wire_exch[w] = -1
            slot = send_slot[a]
            tr_start[slot] = start
            tr_end[slot] = start + duration
            posted[slot] = 1
            send_post_a[a] = post
            send_start_a[a] = start
            send_end_a[a] = start + duration
            post_seq.append(a)
            return True
        if code == OP_COLL:
            post = clock[di]
            cf = coll_free[di]
            start = post if post >= cf else cf
            t = start
            steps: tuple = ()
            if coll_active[a]:
                step_time = coll_step_time[a]
                wids = coll_wires[a]
                step_log = []
                round_time = 0.0
                for _ in range(coll_nsteps[a]):
                    step_start = t
                    if contention:
                        for w in wids:
                            wf = wire_free[w]
                            if wf > step_start:
                                step_start = wf
                    step_end = step_start + step_time
                    step_log.append((step_start, step_end))
                    round_time += step_time
                    if contention:
                        for w in wids:
                            wire_free[w] = step_end
                            wire_exch[w] = -1
                    t = step_end
                count = coll_count[a]
                if count != 1.0:
                    # Remaining rounds repeat the first back-to-back;
                    # the wires stay held for the whole run.
                    t += (count - 1.0) * round_time
                    if contention:
                        for w in wids:
                            wire_free[w] = t
                steps = tuple(step_log)
            coll_free[di] = t
            coll_log.append((a, di, post, start, t, steps))
            if coll_blocking[a]:
                clock[di] = t
            return True
        if code == OP_RECV:
            if prefetch:
                return True  # free post; arrival is awaited by computes
            slot = recv_slot[a]
            if not posted[slot]:
                return False
            s = tr_start[slot]
            duration = tr_end[slot] - s
            cl = clock[di]
            start = cl if cl >= s else s
            clock[di] = start + duration
            recv_wait[di] += duration
            return True
        if code == OP_BATCH:
            # Group semantics: all posts are issued the moment the
            # cursor reaches the group — even while its own waits
            # block — or opposing groups would deadlock each other.
            if not batch_posted[a]:
                exch = batch_exch[a]
                for sid in batch_send_ids[a]:
                    t = send_time[sid]
                    post = clock[di]
                    start = post
                    duration = t
                    if contention and t > 0.0:
                        w = send_wire[sid]
                        if post < wire_free[w]:
                            start = wire_free[w]
                            if wire_exch[w] == exch:
                                # The opposing transfer of the *same*
                                # batched exchange holds the wire; the
                                # follower pays bytes only, not a
                                # second launch latency.
                                duration = t - send_lat[sid]
                                if duration < 0.0:
                                    duration = 0.0
                        wire_free[w] = start + duration
                        wire_exch[w] = exch
                    slot = send_slot[sid]
                    tr_start[slot] = start
                    tr_end[slot] = start + duration
                    posted[slot] = 1
                    send_post_a[sid] = post
                    send_start_a[sid] = start
                    send_end_a[sid] = start + duration
                    send_batched[sid] = 1
                    post_seq.append(sid)
                batch_posted[a] = 1
            if not prefetch:
                recvs = batch_recv_ids[a]
                for rid in recvs:
                    if not posted[recv_slot[rid]]:
                        return False
                for rid in recvs:
                    slot = recv_slot[rid]
                    s = tr_start[slot]
                    duration = tr_end[slot] - s
                    cl = clock[di]
                    start = cl if cl >= s else s
                    clock[di] = start + duration
                    recv_wait[di] += duration
            return True
        return True  # OP_NOOP: flush/step; simulate_training charges it

    def peek(di: int) -> float | None:
        """Earliest execution time of the device's head, None if blocked."""
        i = cursors[di]
        dev_codes = codes[di]
        if i >= len(dev_codes):
            return None
        code = dev_codes[i]
        a = args[di][i]
        if code == OP_COMPUTE:
            at = clock[di]
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                x = dep_idx[e]
                if dep_remote[e]:
                    if prefetch:
                        if not posted[x]:
                            return None
                        te = tr_end[x]
                        if te > at:
                            at = te
                else:
                    if not comp_done[x]:
                        return None
                    de = comp_end_a[x]
                    if de > at:
                        at = de
            return at
        if code == OP_RECV and not prefetch:
            slot = recv_slot[a]
            if not posted[slot]:
                return None
            s = tr_start[slot]
            cl = clock[di]
            return cl if cl >= s else s
        if code == OP_BATCH and not prefetch:
            if not batch_posted[a]:
                return clock[di]  # the posts themselves are due
            earliest = None
            for rid in batch_recv_ids[a]:
                slot = recv_slot[rid]
                if not posted[slot]:
                    return None
                s = tr_start[slot]
                if earliest is None or s < earliest:
                    earliest = s
            cl = clock[di]
            return cl if cl >= earliest else earliest
        return clock[di]  # sends, free posts, collectives, flush, step

    def _deadlock() -> None:
        heads = {
            d: str(acts[cursors[di]])
            for di, (d, acts) in enumerate(program.actions.items())
            if cursors[di] < len(acts)
        }
        # Explain the stall: every blocked device waits on exactly one
        # other device (the sender of an unposted slot, or itself for a
        # same-device dependency inversion); following those pointers
        # from any blocked device must revisit a device — that
        # repetition is the wait cycle.
        slot_sender = {}
        slot_tag = {}
        for sid in range(n_send):
            slot = send_slot[sid]
            slot_sender[slot] = plan.send_src[sid]
            slot_tag[slot] = plan.tags[plan.send_tag[sid]]

        def blocker(di: int) -> tuple[int, str] | None:
            """(blocking device index, reason) for ``di``'s head."""
            i = cursors[di]
            if i >= len(codes[di]):
                return None
            code = codes[di][i]
            a = args[di][i]
            if code == OP_COMPUTE:
                for e in range(dep_ptr[a], dep_ptr[a + 1]):
                    x = dep_idx[e]
                    if dep_remote[e]:
                        if prefetch and not posted[x]:
                            return (slot_sender[x],
                                    f"unposted {slot_tag[x]}")
                    elif not comp_done[x]:
                        kind, mb, st = plan.comp_keys[x]
                        return (plan.comp_device[x],
                                f"unretired {kind.value}(m{mb},s{st})")
            elif code == OP_RECV and not prefetch:
                slot = recv_slot[a]
                if not posted[slot]:
                    return (slot_sender[slot], f"unposted {slot_tag[slot]}")
            elif code == OP_BATCH and not prefetch:
                for rid in batch_recv_ids[a]:
                    slot = recv_slot[rid]
                    if not posted[slot]:
                        return (slot_sender[slot],
                                f"unposted {slot_tag[slot]}")
            return None

        cycle = ""
        start_di = next(
            (di for di in range(num_devices) if blocker(di) is not None),
            None,
        )
        if start_di is not None:
            hops: list[tuple[int, int, str]] = []
            first = {start_di: 0}
            cur = start_di
            while True:
                blk = blocker(cur)
                if blk is None:  # pragma: no cover - defensive
                    break
                nxt, why = blk
                hops.append((cur, nxt, why))
                if nxt in first:
                    # keep only the cyclic suffix of the walk
                    hops = hops[first[nxt]:]
                    cycle = "; wait cycle: " + " -> ".join(
                        f"d{devices[a_]} waits on d{devices[b_]} ({w})"
                        for a_, b_, w in hops
                    )
                    break
                first[nxt] = len(hops)
                cur = nxt
        raise SchedulingError(
            f"{program.name}: simulation deadlock; heads = {heads}{cycle}"
        )

    total = plan.n_actions
    done = 0
    if contention:
        # Contention driver: execute heads in global time order.  Wire
        # arbitration happens at send-post time, so posts must be
        # issued in nondecreasing simulated time or an earlier-posted
        # transfer could queue behind a later one (a replay-order
        # artifact).  Executing the globally earliest eligible head is
        # sufficient: any action enabled by an execution at time ``t``
        # becomes eligible no earlier than ``t``, so execution times
        # are monotone and wire grants follow post order
        # deterministically (ties broken by device rank).
        while done < total:
            best_at = None
            best_di = -1
            for di in range(num_devices):
                at = peek(di)
                if at is not None and (best_at is None or at < best_at):
                    best_at, best_di = at, di
            if best_di < 0:
                _deadlock()
            if step(best_di, cursors[best_di]):
                cursors[best_di] += 1
                done += 1
            # else: a batched group posted its sends but still blocks
            # on inbound transfers — posting was the progress.
    else:
        # Fast driver: advance each device as far as it can.  Correct
        # whenever timing is independent of replay order — i.e. without
        # contention, where every formula depends only on already-fixed
        # quantities (producer ends, post times).
        while done < total:
            progressed = False
            for di in range(num_devices):
                n = len(codes[di])
                i = cursors[di]
                while i < n and step(di, i):
                    i += 1
                    done += 1
                    progressed = True
                cursors[di] = i
            if not progressed and done < total:
                _deadlock()

    if tracked:
        for di in range(num_devices):
            drift = mem_level[di] - static[di]
            # tolerance: float accumulation over many alloc/free pairs
            # of non-representable byte counts (e.g. TP-sharded sizes)
            if abs(drift) > max(64.0, 1e-9 * mem_peak[di]):
                raise AssertionError(
                    f"activation leak on device {devices[di]}: "
                    f"{drift} bytes"
                )

    return _materialize(plan, exec_seq, comp_start_a, comp_end_a,
                        post_seq, send_post_a, send_start_a, send_end_a,
                        send_batched, coll_log, mem_log, clock, recv_wait,
                        mem_peak if tracked else None, detail=detail)


def _materialize(plan, exec_seq, comp_start_a, comp_end_a, post_seq,
                 send_post_a, send_start_a, send_end_a, send_batched,
                 coll_log, mem_log, clock, recv_wait, mem_peak,
                 detail="full", timeline=None):
    """Rebuild the rich event objects from the run's flat arrays.

    Object construction is deferred out of the hot loop: timeline
    spans, comm/collective/memory events and the executed order are
    assembled once, in the exact order (and with the exact sort keys)
    the reference core produces them, so results stay bit-identical.

    ``detail="lean"`` leaves ``comm``, ``order`` and ``mem_events``
    empty — the fields scoring paths never read — and is otherwise an
    exact subset of the full result.

    ``timeline`` accepts a prebuilt (already start-ordered) timeline:
    the lockstep executor groups spans per device from the structural
    replay, where per-device monotonicity makes the generic build +
    sort below a no-op reordering, so it skips both.
    """
    program = plan.program
    devices = plan.devices
    if timeline is None:
        timeline = Timeline()
        comp_ops = plan.comp_ops
        for cid in exec_seq:
            timeline.add(TimedOp(op=comp_ops[cid], start=comp_start_a[cid],
                                 end=comp_end_a[cid]))
        for spans in timeline.spans.values():
            spans.sort(key=lambda t: t.start)

    full = detail != "lean"
    comm: list[CommEvent] = []
    if full:
        tags, send_tag = plan.tags, plan.send_tag
        send_src, send_dst = plan.send_src, plan.send_dst
        send_nbytes = plan.send_nbytes
        comm = [
            CommEvent(
                tag=tags[send_tag[sid]],
                src=devices[send_src[sid]],
                dst=devices[send_dst[sid]],
                post=send_post_a[sid],
                start=send_start_a[sid],
                end=send_end_a[sid],
                nbytes=send_nbytes[sid],
                batched=bool(send_batched[sid]),
            )
            for sid in post_seq
        ]
        comm.sort(key=lambda e: (e.post, e.start))

    coll_ops = plan.coll_ops
    collectives = [
        CollectiveEvent(op=coll_ops[lid], device=devices[di], post=post,
                        start=start, end=end, steps=steps)
        for lid, di, post, start, end, steps in coll_log
    ]
    collectives.sort(key=lambda e: (e.post, e.start, e.device))

    mem_events: list[MemoryEvent] = []
    order: dict[int, list[Action]] = {}
    if full:
        comp_keys = plan.comp_keys
        mem_events = [
            MemoryEvent(device=devices[di], time=time, delta=delta,
                        level=level, key=comp_keys[cid])
            for di, time, delta, level, cid in mem_log
        ]
        # A completed run replays every device list prefix-complete, so
        # the executed order IS the program's lists.
        order = {d: list(program.actions[d]) for d in devices}
    return EventResult(
        timeline=timeline,
        recv_wait={devices[di]: recv_wait[di]
                   for di in range(len(devices))},
        comm=comm,
        order=order,
        mem_peak=({devices[di]: mem_peak[di]
                   for di in range(len(devices))}
                  if mem_peak is not None else {}),
        mem_events=mem_events,
        collectives=collectives,
        device_end={devices[di]: clock[di]
                    for di in range(len(devices))},
    )
