"""Event-driven execution of a compiled :class:`~repro.actions.Program`.

This is the cluster-level event core both modeled executions share: it
walks every worker's action list — the *same* list the NumPy engine's
interpreter executes — and assigns times from a
:class:`~repro.runtime.costs.CostOracle`.  Nothing here re-derives
communication from the schedule; sends, receives and batched groups are
taken verbatim from the program, so what gets timed is exactly what the
engine runs.

Timing model
------------

* **Compute** starts when the device is free, its local inputs are
  produced, and (with prefetch) its remote inputs have arrived.
* **Send** is a non-blocking post: the transfer is scheduled the moment
  the sender's cursor passes the action (which, by compiler invariant,
  is the instant the producing compute retires).
* **Recv** under ``prefetch=True`` is a free post — the transfer
  overlaps the receiver's earlier compute and only surfaces as *recv
  wait* when the receiver goes idle for it.  Under ``prefetch=False``
  the receiver participates in the transfer: its clock advances by the
  full transfer duration (charged to ``recv_wait``; the timeline keeps
  compute spans only, so bubble accounting treats the transfer as
  idle — matching the paper's bubble convention).
* **BatchedP2P** posts its whole group before waiting (the
  ``batch_isend_irecv`` discipline of Sec. 4.2).
* **CollectiveOp** (see :mod:`repro.actions.collectives`) executes a
  ring all-reduce as its ``2 * (D - 1)`` per-chunk steps, each lasting
  as long as the slowest ring link; a device's collectives serialize on
  a per-device NIC cursor (bucketed-NCCL style).  Asynchronous
  collectives (DP gradient sync) never advance the device clock — their
  completion only bounds the *iteration* end, which is how bubble
  overlap is measured instead of assumed.  Blocking collectives (TP
  boundary all-reduces) advance the clock like compute.  Replica
  symmetry: every data-parallel replica executes the same program, so
  the off-program ring peers are ready exactly when the owning device
  is — one simulated pipeline times the whole ring.

Both modes account ``recv_wait`` per device: blocking transfers charge
their full duration, prefetched transfers charge the residual stall
between "device ready" and "tensor arrived".

Optional fidelity knobs (:class:`~repro.config.RunConfig`):

* ``contention=True`` serializes transfers that share an (unordered)
  device pair — one wire per pair, NCCL-style.
* Under contention, opposing transfers posted as one batched group
  share the wire back-to-back and the follower skips the link launch
  latency (:meth:`CostOracle.link_latency`) — the batched-P2P saving.

Memory model
------------

When the program carries :class:`~repro.actions.StageResources`, the
core maintains **live per-device watermarks**: every device starts at
its static residency bytes, each forward start allocates its stage's
activation bytes, each backward end frees them.  Per device the deltas
are applied in execution (= program) order, which makes the resulting
peaks bit-identical to the offline timeline replay
(:func:`repro.runtime.memory.memory_stats`) — pinned by the parity
suite.  An optional ``capacity_bytes`` turns the watermarks into an
enforcement mechanism: a violating allocation aborts the run with a
structured :class:`~repro.errors.OutOfMemoryError` (after an O(P)
static pre-check that rejects statically-infeasible programs before a
single event is simulated).  The abort fires at the first violation
*in replay order* — deterministic per driver, but the attributed
device/peak may differ between the greedy and time-ordered drivers
when several devices would violate; the OOM *verdict* is
driver-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..actions.collectives import ring_pairs, ring_step_count
from ..actions.ops import (
    Action,
    BatchedP2P,
    CollectiveKind,
    CollectiveOp,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)
from ..actions.program import Program, compute_key
from ..config import RunConfig
from ..errors import OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .costs import CostOracle


@dataclass(frozen=True)
class CommEvent:
    """One completed point-to-point transfer."""

    tag: Tag
    src: int
    dst: int
    post: float     # sender posted the transfer
    start: float    # the wire picked it up (== post without contention)
    end: float      # arrival at the receiver
    nbytes: float
    batched: bool   # posted from inside a BatchedP2P group

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveEvent:
    """One executed collective, with its per-step ring schedule.

    ``steps`` holds the ``(start, end)`` interval of each of the first
    ring round's ``2 * (D - 1)`` chunk steps; for ``op.count != 1`` the
    remaining rounds extend ``end`` without per-step detail (they
    repeat the first round back-to-back).
    """

    op: CollectiveOp
    device: int      # program-local device that owns this collective
    post: float      # the cursor reached the action
    start: float     # first ring step began (>= post: NIC + wire waits)
    end: float       # last chunk arrived everywhere
    steps: tuple[tuple[float, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class MemoryEvent:
    """One watermark change on a device: an activation alloc or free."""

    device: int
    time: float     # forward start (alloc) or backward end (free)
    delta: float    # signed bytes
    level: float    # device watermark after applying the delta
    key: tuple      # the compute (kind, microbatch, stage) responsible


@dataclass
class EventResult:
    """Everything one program execution produces."""

    timeline: Timeline
    #: per-device seconds stalled on incoming tensors (see module doc)
    recv_wait: dict[int, float]
    #: every transfer, in posting order
    comm: list[CommEvent] = field(default_factory=list)
    #: per-device executed action order — the parity witness: always a
    #: prefix-complete replay of ``program.actions``
    order: dict[int, list[Action]] = field(default_factory=dict)
    #: per-device peak memory bytes (static + live activations); empty
    #: when the program carries no resources
    mem_peak: dict[int, float] = field(default_factory=dict)
    #: every watermark change, in per-device execution order
    mem_events: list[MemoryEvent] = field(default_factory=list)
    #: every executed collective, in posting order
    collectives: list[CollectiveEvent] = field(default_factory=list)
    #: per-device clock when its program finished — unlike the compute
    #: timeline this includes blocking communication (TP collectives,
    #: blocking receives) that trails the device's last compute span
    device_end: dict[int, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def busy_end(self) -> float:
        """End of all compute *and* blocking communication."""
        return max([self.timeline.makespan]
                   + list(self.device_end.values()))

    def sync_done(self) -> float:
        """When the last asynchronous gradient sync completed (0 if none)."""
        ends = [c.end for c in self.collectives
                if c.op.kind is CollectiveKind.GRAD_SYNC]
        return max(ends) if ends else 0.0


class _Wire:
    """Per-pair link state for the contention model."""

    __slots__ = ("free", "last_exchange")

    def __init__(self) -> None:
        self.free = 0.0
        #: tag set of the batched exchange whose transfer last held the
        #: wire — the latency waiver applies only within one exchange
        self.last_exchange: frozenset | None = None


def execute_program(
    program: Program,
    costs: CostOracle,
    run: RunConfig | None = None,
    capacity_bytes: int | None = None,
) -> EventResult:
    """Time ``program`` against ``costs`` and return its event log.

    Raises :class:`SchedulingError` if the worker programs deadlock —
    an action waits for a transfer whose sender is queued behind it.

    ``capacity_bytes`` (requires a resource-annotated program) arms the
    memory watermarks: the run aborts with
    :class:`~repro.errors.OutOfMemoryError` at the first violating
    allocation encountered in replay order — statically-infeasible
    programs are rejected in O(P) before the event loop starts.
    """
    run = run or RunConfig()
    tracked = program.tracks_memory
    if capacity_bytes is not None:
        if not tracked:
            raise SchedulingError(
                f"{program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
        program.check_static_memory(capacity_bytes)
    # Blocking-vs-overlapped receives are a property of the *compiled*
    # program (the prefetch hoisting pass and asynchronous recv
    # semantics belong together), so execution follows the program's
    # flag — a RunConfig compiled-elsewhere mismatch cannot silently
    # mis-time the run.  RunConfig contributes the fidelity knobs.
    prefetch = program.prefetch
    contention = run.contention

    cursors = {d: 0 for d in program.actions}
    clock = {d: 0.0 for d in program.actions}
    recv_wait = {d: 0.0 for d in program.actions}
    order: dict[int, list[Action]] = {d: [] for d in program.actions}
    produced: dict[tuple, float] = {}
    transfers: dict[tuple[int, Tag], CommEvent] = {}
    #: batched groups whose sends are already posted (posts must not be
    #: re-issued while the group blocks on its inbound transfers)
    posted_groups: set[tuple[int, int]] = set()
    # Wires are keyed by *global* rank pairs so pipeline P2P and
    # cross-pipeline collective rings arbitrate the same physical links
    # (for identity-mapped oracles the keys are unchanged).
    wires: dict[frozenset, _Wire] = {}
    timeline = Timeline()
    comm: list[CommEvent] = []
    collectives: list[CollectiveEvent] = []
    #: per-device NIC cursor: a device's collectives run back-to-back
    coll_free = {d: 0.0 for d in program.actions}
    mem_level = dict(program.static_bytes)
    mem_peak = dict(mem_level)
    mem_events: list[MemoryEvent] = []

    def account_memory(device: int, key: tuple, start: float,
                       end: float) -> None:
        """Fold one compute's alloc/free effect into the watermarks.

        The deltas come from the program's own effect methods — the
        single encoding of what each compute pins and releases.
        """
        alloc = program.alloc_bytes(key)
        if alloc:
            level = mem_level[device] + alloc
            mem_level[device] = level
            mem_events.append(MemoryEvent(
                device=device, time=start, delta=+alloc, level=level,
                key=key,
            ))
            if level > mem_peak[device]:
                mem_peak[device] = level
                if capacity_bytes is not None and level > capacity_bytes:
                    raise OutOfMemoryError(device, int(level),
                                           capacity_bytes)
        free = program.free_bytes(key)
        if free:
            level = mem_level[device] - free
            mem_level[device] = level
            mem_events.append(MemoryEvent(
                device=device, time=end, delta=-free, level=level,
                key=key,
            ))

    def post_send(device: int, send: Send,
                  exchange: frozenset | None) -> None:
        tag, dst = send.tag, send.peer
        t_comm = costs.transfer_time(device, dst, tag.stage)
        post = start = clock[device]
        duration = t_comm
        if contention and t_comm > 0.0:
            wire = wires.setdefault(
                frozenset((costs.global_rank(device),
                           costs.global_rank(dst))), _Wire())
            if post < wire.free:
                start = wire.free
                if exchange is not None and wire.last_exchange == exchange:
                    # The opposing transfer of the *same* batched
                    # exchange holds the wire; the follower pays bytes
                    # only, not a second launch latency.  A different
                    # batched group is a separate launch and pays full.
                    duration = max(0.0, t_comm
                                   - costs.link_latency(device, dst))
            wire.free = start + duration
            wire.last_exchange = exchange
        event = CommEvent(
            tag=tag, src=device, dst=dst, post=post, start=start,
            end=start + duration,
            nbytes=program.tensor_bytes.get(tag, 0.0),
            batched=exchange is not None,
        )
        transfers[(dst, tag)] = event
        comm.append(event)

    def run_collective(device: int, coll: CollectiveOp) -> None:
        """Execute one ring all-reduce through the wire machinery.

        The ring advances in synchronised steps: every participant
        forwards one ``nbytes / D`` chunk to its successor, so a step
        lasts as long as the slowest ring link — the same model the
        closed form :func:`repro.cluster.topology.ring_transfer_chain`
        expresses, which the parity tests pin to 1e-9.
        """
        post = clock[device]
        start = max(post, coll_free[device])
        pairs = ring_pairs(coll.group)
        steps: list[tuple[float, float]] = []
        t = start
        if pairs and coll.nbytes > 0 and coll.count > 0:
            chunk = coll.nbytes / len(coll.group)
            step_time = max(
                costs.collective_link_time(a, b, chunk) for a, b in pairs
            )
            round_time = 0.0
            for _ in range(ring_step_count(len(coll.group))):
                step_start = t
                if contention:
                    ws = [wires.setdefault(frozenset(pair), _Wire())
                          for pair in pairs]
                    step_start = max([t] + [w.free for w in ws])
                step_end = step_start + step_time
                steps.append((step_start, step_end))
                round_time += step_time
                if contention:
                    for w in ws:
                        w.free = step_end
                        w.last_exchange = None
                t = step_end
            if coll.count != 1.0:
                # Remaining rounds repeat the first back-to-back; the
                # wires stay held for the whole run.
                t += (coll.count - 1.0) * round_time
                if contention:
                    for pair in pairs:
                        wires[frozenset(pair)].free = t
        end = t
        coll_free[device] = end
        collectives.append(CollectiveEvent(
            op=coll, device=device, post=post, start=start, end=end,
            steps=tuple(steps),
        ))
        if coll.blocking:
            clock[device] = end

    def blocking_recv(device: int, recv: Recv) -> bool:
        """Execute one blocking receive; False if the send isn't posted."""
        event = transfers.get((device, recv.tag))
        if event is None:
            return False
        start = max(clock[device], event.start)
        clock[device] = start + event.duration
        recv_wait[device] += event.duration
        return True

    def try_compute(device: int, act: Action) -> bool:
        key = compute_key(act)
        deps = program.deps[key]
        ready = clock[device]
        arrival = None
        in_flight = 0.0
        for dep in deps:
            if dep.tag is None:
                # Local hand-off: the producer must have retired earlier
                # on this device; if it hasn't, the program order is
                # inverted and the device blocks (deadlock detection
                # reports it).
                done_at = produced.get(dep.producer)
                if done_at is None:
                    return False
                ready = max(ready, done_at)
            elif prefetch:
                event = transfers.get((device, dep.tag))
                if event is None:
                    return False  # sender hasn't posted yet
                arrival = event.end if arrival is None else max(arrival,
                                                                event.end)
                in_flight += event.duration
            # Without prefetch the blocking Recv already advanced the
            # clock past the arrival; nothing more to wait on.
        start = ready
        if arrival is not None and arrival > ready:
            # Only the transfer-attributable share of the stall counts
            # as recv wait; waiting on the *producer* is a bubble, not
            # communication.
            recv_wait[device] += min(arrival - ready, in_flight)
            start = arrival
        op = program.ops[key]
        end = start + costs.duration(op)
        timeline.add(TimedOp(op=op, start=start, end=end))
        clock[device] = end
        produced[key] = end
        if tracked:
            account_memory(device, key, start, end)
        return True

    def step(device: int, index: int, act: Action) -> bool:
        """Execute one action; False if the device must block."""
        if compute_key(act) is not None:
            return try_compute(device, act)
        if isinstance(act, Send):
            post_send(device, act, exchange=None)
            return True
        if isinstance(act, CollectiveOp):
            run_collective(device, act)
            return True
        if isinstance(act, Recv):
            if prefetch:
                return True  # free post; arrival is awaited by computes
            return blocking_recv(device, act)
        if isinstance(act, BatchedP2P):
            # Group semantics: all posts are issued the moment the
            # cursor reaches the group — even while its own waits
            # block — or opposing groups would deadlock each other.
            if (device, index) not in posted_groups:
                # The logical exchange is identified by its full tag
                # set — identical on both peers (sends/recvs swapped).
                exchange = frozenset(
                    [s.tag for s in act.sends] + [r.tag for r in act.recvs]
                )
                for send in act.sends:
                    post_send(device, send, exchange=exchange)
                posted_groups.add((device, index))
            if not prefetch:
                if any((device, r.tag) not in transfers for r in act.recvs):
                    return False
                for recv in act.recvs:
                    blocking_recv(device, recv)
            return True
        if isinstance(act, (Flush, OptimizerStep)):
            return True  # zero-cost here; simulate_training charges it
        raise SchedulingError(f"unknown action {act!r} in program")

    def peek(device: int) -> float | None:
        """Earliest execution time of the device's head, None if blocked."""
        actions = program.actions[device]
        if cursors[device] >= len(actions):
            return None
        act = actions[cursors[device]]
        key = compute_key(act)
        if key is not None:
            at = clock[device]
            for dep in program.deps[key]:
                if dep.tag is None:
                    done_at = produced.get(dep.producer)
                    if done_at is None:
                        return None
                    at = max(at, done_at)
                elif prefetch:
                    event = transfers.get((device, dep.tag))
                    if event is None:
                        return None
                    at = max(at, event.end)
            return at
        if isinstance(act, Recv) and not prefetch:
            event = transfers.get((device, act.tag))
            if event is None:
                return None
            return max(clock[device], event.start)
        if isinstance(act, BatchedP2P) and not prefetch:
            if (device, cursors[device]) not in posted_groups:
                return clock[device]  # the posts themselves are due
            events = [transfers.get((device, r.tag)) for r in act.recvs]
            if any(e is None for e in events):
                return None
            return max(clock[device], min(e.start for e in events))
        return clock[device]  # sends, free posts, flush, step

    def run_greedy() -> None:
        """Fast driver: advance each device as far as it can.

        Correct whenever timing is independent of replay order — i.e.
        without contention, where every formula depends only on already
        -fixed quantities (producer ends, post times).
        """
        done = 0
        while done < total:
            progressed = False
            for device, actions in program.actions.items():
                while cursors[device] < len(actions):
                    act = actions[cursors[device]]
                    if not step(device, cursors[device], act):
                        break
                    order[device].append(act)
                    cursors[device] += 1
                    done += 1
                    progressed = True
            if not progressed and done < total:
                _deadlock()

    def run_time_ordered() -> None:
        """Contention driver: execute heads in global time order.

        Wire arbitration happens at send-post time, so posts must be
        issued in nondecreasing simulated time or an earlier-posted
        transfer could queue behind a later one (a replay-order
        artifact).  Executing the globally earliest eligible head is
        sufficient: any action enabled by an execution at time ``t``
        becomes eligible no earlier than ``t``, so execution times are
        monotone and wire grants follow post order deterministically
        (ties broken by device rank).
        """
        done = 0
        while done < total:
            best_at = best_device = None
            for device in program.actions:
                at = peek(device)
                if at is not None and (best_at is None or at < best_at):
                    best_at, best_device = at, device
            if best_device is None:
                _deadlock()
            act = program.actions[best_device][cursors[best_device]]
            if step(best_device, cursors[best_device], act):
                order[best_device].append(act)
                cursors[best_device] += 1
                done += 1
            # else: a batched group posted its sends but still blocks
            # on inbound transfers — posting was the progress.

    def _deadlock() -> None:
        heads = {
            d: str(acts[cursors[d]])
            for d, acts in program.actions.items()
            if cursors[d] < len(acts)
        }
        raise SchedulingError(
            f"{program.name}: simulation deadlock; heads = {heads}"
        )

    total = program.action_count()
    if contention:
        run_time_ordered()
    else:
        run_greedy()

    if tracked:
        for device, level in mem_level.items():
            drift = level - program.static_bytes[device]
            # tolerance: float accumulation over many alloc/free pairs
            # of non-representable byte counts (e.g. TP-sharded sizes)
            if abs(drift) > max(64.0, 1e-9 * mem_peak[device]):
                raise AssertionError(
                    f"activation leak on device {device}: {drift} bytes"
                )

    for spans in timeline.spans.values():
        spans.sort(key=lambda t: t.start)
    comm.sort(key=lambda e: (e.post, e.start))
    collectives.sort(key=lambda e: (e.post, e.start, e.device))
    return EventResult(timeline=timeline, recv_wait=recv_wait, comm=comm,
                       order=order, mem_peak=mem_peak, mem_events=mem_events,
                       collectives=collectives, device_end=dict(clock))
