"""Batched multi-plan execution: a vectorized lockstep stepper.

One :class:`~repro.actions.lowering.ExecutablePlan` structure often
meets many cost bindings — the cost-only axes of a sweep (clusters,
capacities), placement candidates, what-if queries.  The scalar event
core (:func:`~repro.runtime.events.execute_plan`) replays the same
control flow for every one of them, paying full interpreter overhead
per lane.  This module amortizes that overhead: a :class:`PlanBatch`
stacks N cost-bound plans sharing one structural ``plan_key`` and
:func:`execute_batch` advances **all lanes at once**, one NumPy array
op per event instead of one Python step per event per lane.

The enabling invariant
----------------------

Under the fast (uncontended) driver, the event core's *control flow* is
purely structural: whether an action blocks depends only on posted/done
flags, never on simulated times (see the driver comment in
``events.py`` — "timing is independent of replay order").  Two plans
with equal structure therefore execute the *identical* event sequence,
whatever their cost columns say.  Execution splits cleanly in two:

1. a **structural pass** — a cost-blind twin of the greedy driver that
   runs once per structure (cached on the program object) and records
   the global event sequence, the executed compute order, the posting
   order, and the per-device memory trace (watermark levels are
   structural too: resource deltas apply in program order);
2. a **timed pass** — replays that event sequence with every per-lane
   quantity held as an ``[N]`` float64 array: clocks, collective/NIC
   frontiers, recv-wait accumulators, per-slot transfer windows.  Each
   event becomes a handful of NumPy elementwise ops over the lane axis.

A second invariant makes the compute step branch-free: a *local*
dependency edge always names a producer on the consumer's own device
(compiler invariant, asserted by the structural pass), and per-device
clocks are monotone — so a retired local producer can never push the
consumer's start past the device clock.  Local deps gate *blocking*
only; vectorized compute timing needs just the device clock and the
remote arrival frontier.

Bit-identity
------------

Every lane's :class:`~repro.runtime.events.EventResult` is **bit
identical** to a scalar :func:`execute_plan` of that lane alone (pinned
by ``tests/test_batched.py`` across the full schedule-family × prefetch
× capacity × collectives matrix).  The array formulas are chosen for
exact float equality, not just closeness: ``maximum``/``minimum``
return the argument bitwise for equal doubles, additive identities
(``x + 0.0``) only ever apply to non-negative accumulators, and every
sequential accumulation (in-flight bytes, collective round times)
folds in the same order as the scalar core.

Lane masking
------------

Lanes are masked *logically*, not arithmetically.  A lane that fails
the static capacity pre-check resolves zero costs and reports its
:class:`~repro.errors.OutOfMemoryError`; a lane whose capacity is
violated mid-run aborts at the first violating allocation **in replay
order** (exactly the scalar abort point — watermark levels are
structural, so the scan is a single array comparison) and resolves
lazy compute costs only up to and including the aborting compute.
Dead lanes ride the remaining lockstep arithmetic inertly — their
columns are never observed again — which keeps the hot loop free of
per-event mask branches; live lanes never stall on them.

Scalar fallbacks (``contention=True``, singleton groups, structures
the invariants do not cover) go through :func:`execute_plan` unchanged;
:func:`repro.profiling.batching_stats` records time spent on each path.

Known divergence: a *deadlocking* structure raises
:class:`~repro.errors.SchedulingError` for the whole batch (replayed
through the scalar core for the identical message) even if some lane's
capacity would have aborted with an OOM first under scalar execution.
Deadlock is a structural property — no measurement-layer batch can
contain one lane that deadlocks and another that does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import profiling
from ..actions.lowering import (
    OP_BATCH,
    OP_COLL,
    OP_COMPUTE,
    OP_RECV,
    OP_SEND,
    ExecutablePlan,
)
from ..config import RunConfig
from ..errors import OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .events import EventResult, _materialize, execute_plan

#: lockstep event kinds (first element of each event tuple)
_COMP = 0      # (_, cid, di, remote_slots)
_SEND = 1      # (_, sid, di)
_RECV = 2      # (_, rid, di)         blocking receive (prefetch off)
_POST = 3      # (_, bid, di)         batched group posts its sends
_WAIT = 4      # (_, bid, di)         batched group's blocking waits
_COLL = 5      # (_, lid, di)

_LOCKSTEP_ATTR = "_lockstep_schedule"


@dataclass
class LockstepSchedule:
    """The structural replay of one plan, shared by every lane.

    Everything here is cost-independent: the global event sequence the
    greedy driver produces, the executed compute order, the posting
    order, and the full memory trace (deltas *and* watermark levels —
    they depend only on per-device program order).
    """

    events: list[tuple]
    exec_seq: list[int]
    #: computes grouped per device id (execution order within a device,
    #: devices in first-appearance order) — per-device starts are
    #: monotone under the greedy driver, so these lists are exactly the
    #: sorted timeline spans and lanes can build their
    #: :class:`~repro.types.Timeline` without the generic sort pass
    dev_cids: list[tuple[int, list[int]]]
    post_seq: list[int]
    send_batched: bytearray
    #: (di, cid, signed delta, level-after, is_alloc) in replay order
    mem_trace: list[tuple]
    #: per-allocation watermark levels / positions, for the OOM scan
    alloc_levels: np.ndarray
    alloc_pos: list[int]       # index into ``exec_seq`` of the alloc
    alloc_di: list[int]
    mem_peak: list[float]
    deadlock: bool
    #: False when a compiler invariant the vector step relies on does
    #: not hold (never for compiled programs; defensive)
    vectorizable: bool
    #: last stacked cost matrices ``(key, Cm, Tm, Sm)`` — reused when
    #: the same fully-resolved lane set executes again (see
    #: :func:`_execute_lockstep`)
    cost_rows: tuple | None = None


def _build_lockstep(plan: ExecutablePlan) -> LockstepSchedule:
    """Run the cost-blind greedy driver once, recording every event.

    Mirrors the fast driver in :func:`execute_plan` statement for
    statement, with times stripped out: blocking predicates are pure
    flag reads, so the produced order is the order every cost binding
    replays.
    """
    program = plan.program
    devices = plan.devices
    num_devices = len(devices)
    codes, args = plan.codes, plan.args
    dep_ptr, dep_remote, dep_idx = plan.dep_ptr, plan.dep_remote, plan.dep_idx
    comp_device = plan.comp_device
    comp_alloc, comp_free_b = plan.comp_alloc, plan.comp_free
    send_slot = plan.send_slot
    batch_send_ids, batch_recv_ids = plan.batch_send_ids, plan.batch_recv_ids
    recv_slot = plan.recv_slot
    prefetch = plan.prefetch
    tracked = program.tracks_memory

    cursors = [0] * num_devices
    comp_done = bytearray(plan.n_computes)
    posted = bytearray(plan.n_slots)
    batch_posted = bytearray(len(batch_send_ids))
    send_batched = bytearray(len(plan.send_src))
    events: list[tuple] = []
    exec_seq: list[int] = []
    post_seq: list[int] = []
    static = [program.static_bytes.get(d, 0.0) for d in devices]
    mem_level = list(static)
    mem_peak = list(static)
    mem_trace: list[tuple] = []
    alloc_levels: list[float] = []
    alloc_pos: list[int] = []
    alloc_di: list[int] = []
    vectorizable = True

    def step(di: int, i: int) -> bool:
        nonlocal vectorizable
        code = codes[di][i]
        a = args[di][i]
        if code == OP_COMPUTE:
            rslots: list[int] = []
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                x = dep_idx[e]
                if dep_remote[e]:
                    if prefetch:
                        if not posted[x]:
                            return False
                        rslots.append(x)
                else:
                    if not comp_done[x]:
                        return False
                    if comp_device[x] != di:
                        # a cross-device local edge would reintroduce a
                        # timing dependency on another device's compute
                        # ends; no compiler emits one, but refuse to
                        # vectorize rather than trust it
                        vectorizable = False
            comp_done[a] = 1
            events.append((_COMP, a, di, tuple(rslots)))
            exec_seq.append(a)
            if tracked:
                alloc = comp_alloc[a]
                if alloc:
                    level = mem_level[di] + alloc
                    mem_level[di] = level
                    mem_trace.append((di, a, alloc, level, True))
                    alloc_levels.append(level)
                    alloc_pos.append(len(exec_seq) - 1)
                    alloc_di.append(di)
                    if level > mem_peak[di]:
                        mem_peak[di] = level
                freed = comp_free_b[a]
                if freed:
                    level = mem_level[di] - freed
                    mem_level[di] = level
                    mem_trace.append((di, a, -freed, level, False))
            return True
        if code == OP_SEND:
            posted[send_slot[a]] = 1
            events.append((_SEND, a, di))
            post_seq.append(a)
            return True
        if code == OP_COLL:
            events.append((_COLL, a, di))
            return True
        if code == OP_RECV:
            if prefetch:
                return True
            if not posted[recv_slot[a]]:
                return False
            events.append((_RECV, a, di))
            return True
        if code == OP_BATCH:
            if not batch_posted[a]:
                for sid in batch_send_ids[a]:
                    posted[send_slot[sid]] = 1
                    send_batched[sid] = 1
                    post_seq.append(sid)
                batch_posted[a] = 1
                events.append((_POST, a, di))
            if not prefetch:
                recvs = batch_recv_ids[a]
                for rid in recvs:
                    if not posted[recv_slot[rid]]:
                        return False
                events.append((_WAIT, a, di))
            return True
        return True  # OP_NOOP

    total = plan.n_actions
    done = 0
    deadlock = False
    while done < total:
        progressed = False
        for di in range(num_devices):
            n = len(codes[di])
            i = cursors[di]
            while i < n and step(di, i):
                i += 1
                done += 1
                progressed = True
            cursors[di] = i
        if not progressed and done < total:
            deadlock = True
            break

    if tracked and not deadlock:
        for di in range(num_devices):
            drift = mem_level[di] - static[di]
            if abs(drift) > max(64.0, 1e-9 * mem_peak[di]):
                raise AssertionError(
                    f"activation leak on device {devices[di]}: "
                    f"{drift} bytes"
                )

    comp_ops = plan.comp_ops
    by_device: dict[int, list[int]] = {}
    for cid in exec_seq:
        by_device.setdefault(comp_ops[cid].device, []).append(cid)

    return LockstepSchedule(
        events=events,
        exec_seq=exec_seq,
        dev_cids=list(by_device.items()),
        post_seq=post_seq,
        send_batched=send_batched,
        mem_trace=mem_trace,
        alloc_levels=np.array(alloc_levels, dtype=np.float64),
        alloc_pos=alloc_pos,
        alloc_di=alloc_di,
        mem_peak=mem_peak,
        deadlock=deadlock,
        vectorizable=vectorizable,
    )


def lockstep_schedule(plan: ExecutablePlan) -> LockstepSchedule:
    """The (cached) structural replay for ``plan``'s program.

    Cached on the program object: every retime of one cached structure
    shares the same program, so a sweep pays the structural pass once
    per structure, not once per batch execution.
    """
    ls = getattr(plan.program, _LOCKSTEP_ATTR, None)
    if ls is None:
        ls = _build_lockstep(plan)
        try:
            setattr(plan.program, _LOCKSTEP_ATTR, ls)
        except AttributeError:  # pragma: no cover - Program is mutable
            pass
    return ls


@dataclass
class PlanBatch:
    """N cost-bound plans stacked over one shared structure."""

    plans: list[ExecutablePlan]
    #: per-lane capacity in bytes; ``None`` disarms enforcement
    capacities: list[int | None]

    @classmethod
    def from_plans(cls, plans, capacities=None) -> "PlanBatch":
        """Stack ``plans`` (all cost-bound, structurally identical).

        Plans sharing a program object are accepted directly (retimes
        of one cached structure — the sweep path); otherwise equality
        of the content-hashed ``plan_key`` is required, the same oracle
        the plan cache uses to prove interchangeability.
        """
        plans = list(plans)
        if not plans:
            raise SchedulingError("PlanBatch: empty batch")
        head = plans[0]
        for plan in plans:
            if not plan.bound:
                raise SchedulingError(
                    f"{plan.name}: plan is not cost-bound; lower with "
                    "an oracle or call plan.retime(costs) first"
                )
            if plan.program is not head.program \
                    and plan.plan_key != head.plan_key:
                raise SchedulingError(
                    f"PlanBatch: {plan.name} does not share "
                    f"{head.name}'s structure (plan_key mismatch)"
                )
        if capacities is None:
            capacities = [None] * len(plans)
        capacities = list(capacities)
        if len(capacities) != len(plans):
            raise SchedulingError(
                "PlanBatch: one capacity per lane required "
                f"({len(capacities)} != {len(plans)})"
            )
        return cls(plans=plans, capacities=capacities)

    def __len__(self) -> int:
        return len(self.plans)


@dataclass
class BatchResult:
    """Per-lane outcomes of one batch execution, in lane order.

    ``results[k]`` is lane k's :class:`EventResult` and ``errors[k]``
    is ``None`` — or the lane OOM-aborted and the fields swap roles,
    mirroring the raise/return split of the scalar core.
    """

    results: list[EventResult | None]
    errors: list[OutOfMemoryError | None]


def execute_batch(
    batch: PlanBatch,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Advance every lane of ``batch`` in lockstep.

    ``detail="lean"`` skips materializing the comm log, executed order
    and memory events of each :class:`EventResult` — the measurement
    layer only folds timelines, collectives, peaks and device ends, and
    object construction is the dominant per-lane cost once the stepping
    is shared.  Parity with the scalar core is pinned field-for-field
    in full detail; lean results are an exact subset.
    """
    run = run or RunConfig()
    plans, caps_raw = batch.plans, batch.capacities
    head = plans[0]
    program = head.program
    tracked = program.tracks_memory
    if any(c is not None for c in caps_raw) and not tracked:
        raise SchedulingError(
            f"{program.name}: capacity enforcement needs a "
            "resource-annotated program (compile with resources=...)"
        )

    if run.contention:
        # Wire arbitration couples timing back into control flow; the
        # lockstep invariant does not hold. Scalar per lane.
        return _scalar_batch(batch, run, detail=detail)
    ls = lockstep_schedule(head)
    if ls.deadlock:
        # Replay one lane through the scalar core for the identical
        # SchedulingError (heads + wait cycle); deadlock is structural,
        # so capacity is irrelevant to the verdict (see module doc).
        execute_plan(plans[0], run)
        raise SchedulingError(  # pragma: no cover - scalar core raised
            f"{program.name}: simulation deadlock"
        )
    if not ls.vectorizable:  # pragma: no cover - defensive
        return _scalar_batch(batch, run, detail=detail)

    t0 = time.perf_counter()
    result = _execute_lockstep(ls, plans, caps_raw, detail=detail)
    profiling.record_batch(len(plans), time.perf_counter() - t0)
    return result


def _scalar_batch(batch: PlanBatch, run: RunConfig, *,
                  detail: str) -> BatchResult:
    results: list = []
    errors: list = []
    for plan, cap in zip(batch.plans, batch.capacities):
        res, err = _scalar_lane(plan, run, cap, detail=detail)
        results.append(res)
        errors.append(err)
    return BatchResult(results=results, errors=errors)


def _scalar_lane(plan, run, capacity_bytes, *, detail):
    """One lane through the scalar core, OOM captured, stats recorded."""
    t0 = time.perf_counter()
    try:
        res = execute_plan(plan, run, capacity_bytes=capacity_bytes,
                           detail=detail)
        return res, None
    except OutOfMemoryError as exc:
        return None, exc
    finally:
        profiling.record_scalar(1, time.perf_counter() - t0)


def _execute_lockstep(ls: LockstepSchedule, plans, caps_raw, *,
                      detail: str) -> BatchResult:
    head = plans[0]
    program = head.program
    devices = head.devices
    num_devices = len(devices)
    n_lanes = len(plans)
    full = detail != "lean"
    n_comp = head.n_computes
    n_send = len(head.send_src)
    exec_seq = ls.exec_seq
    comp_ops = head.comp_ops
    send_slot = head.send_slot
    batch_send_ids, batch_recv_ids = head.batch_send_ids, head.batch_recv_ids
    recv_slot = head.recv_slot
    coll_active, coll_nsteps = head.coll_active, head.coll_nsteps
    coll_count, coll_blocking = head.coll_count, head.coll_blocking

    # -- per-lane gating: static pre-check, then the OOM scan ------------
    errors: list[OutOfMemoryError | None] = [None] * n_lanes
    #: computes (as exec_seq positions) each lane actually reaches;
    #: the lazy-cost contract: an aborted lane resolves nothing beyond
    #: its aborting compute, a statically-rejected lane resolves nothing
    resolve_upto = [len(exec_seq)] * n_lanes
    for k, cap in enumerate(caps_raw):
        if cap is None:
            continue
        try:
            program.check_static_memory(cap)
        except OutOfMemoryError as exc:
            errors[k] = exc
            resolve_upto[k] = 0
    if len(ls.alloc_levels):
        for k, cap in enumerate(caps_raw):
            if cap is None or errors[k] is not None:
                continue
            viol = ls.alloc_levels > cap
            if viol.any():
                j = int(np.argmax(viol))
                errors[k] = OutOfMemoryError(
                    devices[ls.alloc_di[j]],
                    int(ls.alloc_levels[j]), cap)
                resolve_upto[k] = ls.alloc_pos[j] + 1

    # -- per-lane cost columns -> [n, N] matrices ------------------------
    # A repeated pass over the same bound plans (the cached-binding
    # sweep steady state) produces the same matrices: once every lane's
    # column is fully resolved the stacked rows are cached on the
    # schedule, keyed by the exact lane set and replay extents.
    mat_key = (tuple(id(p) for p in plans), tuple(resolve_upto))
    cached = ls.cost_rows
    if (cached is not None and cached[0] == mat_key
            and all(getattr(p, "_fully_resolved", False) for p in plans)):
        _, Cm, Tm, Sm = cached
    else:
        cols = []
        for k, plan in enumerate(plans):
            comp_cost = plan.comp_cost
            oracle = plan.costs
            for a in exec_seq[:resolve_upto[k]]:
                if comp_cost[a] is None:
                    comp_cost[a] = oracle.duration(comp_ops[a])
            if resolve_upto[k] == len(exec_seq):
                plan._fully_resolved = True
            cols.append([0.0 if c is None else c for c in comp_cost])
        # row lists: plain list indexing per event beats ndarray row
        # slicing at sweep-typical lane counts
        Cm = list(np.ascontiguousarray(np.array(cols, dtype=np.float64).T))
        Tm = list(np.ascontiguousarray(
            np.array([p.send_time for p in plans], dtype=np.float64).T))
        Sm = list(np.ascontiguousarray(
            np.array([p.coll_step_time for p in plans], dtype=np.float64).T))
        if all(getattr(p, "_fully_resolved", False) for p in plans):
            ls.cost_rows = (mat_key, Cm, Tm, Sm)

    # -- lane-axis state -------------------------------------------------
    zero = np.zeros(n_lanes)
    clock = [zero] * num_devices
    coll_free = [zero] * num_devices
    recv_wait = [zero] * num_devices
    # every record below is reference-assigned (each slot posts once,
    # each compute/send executes once, and the lane vectors are never
    # mutated in place); the compute/send rows are stacked to matrices
    # after the loop so per-lane materialization is a single strided
    # column extraction
    ts_l: list = [None] * head.n_slots
    te_l: list = [None] * head.n_slots
    cs_l: list = [None] * n_comp
    ce_l: list = [None] * n_comp
    sp_l: list = [None] * n_send if full else None
    se_l: list = [None] * n_send if full else None
    coll_log: list[tuple] = []

    maximum, minimum = np.maximum, np.minimum
    for ev in ls.events:
        kind = ev[0]
        if kind == _COMP:
            _, a, di, rslots = ev
            ready = clock[di]
            if rslots:
                r = rslots[0]
                arrival = te_l[r]
                in_flight = te_l[r] - ts_l[r]
                for r in rslots[1:]:
                    arrival = maximum(arrival, te_l[r])
                    in_flight = in_flight + (te_l[r] - ts_l[r])
                # scalar: only when arrival > ready, add
                # min(stall, in_flight); adding an exact 0.0 elsewhere
                # is bitwise neutral (the accumulator is never -0.0).
                # max(min(stall, in_flight), 0) is that select in one
                # ufunc: in_flight >= 0, so the min is the stall-capped
                # wait when stall > 0 and clamps to +0.0 otherwise
                recv_wait[di] = recv_wait[di] + maximum(
                    minimum(arrival - ready, in_flight), 0.0)
                start = maximum(ready, arrival)
            else:
                start = ready
            end = start + Cm[a]
            cs_l[a] = start
            ce_l[a] = end
            clock[di] = end
        elif kind == _SEND:
            _, sid, di = ev
            post = clock[di]
            end = post + Tm[sid]
            slot = send_slot[sid]
            ts_l[slot] = post
            te_l[slot] = end
            if full:
                sp_l[sid] = post
                se_l[sid] = end
        elif kind == _POST:
            _, bid, di = ev
            post = clock[di]
            for sid in batch_send_ids[bid]:
                end = post + Tm[sid]
                slot = send_slot[sid]
                ts_l[slot] = post
                te_l[slot] = end
                if full:
                    sp_l[sid] = post
                    se_l[sid] = end
        elif kind == _RECV:
            _, rid, di = ev
            slot = recv_slot[rid]
            s = ts_l[slot]
            duration = te_l[slot] - s
            clock[di] = maximum(clock[di], s) + duration
            recv_wait[di] = recv_wait[di] + duration
        elif kind == _WAIT:
            _, bid, di = ev
            for rid in batch_recv_ids[bid]:
                slot = recv_slot[rid]
                s = ts_l[slot]
                duration = te_l[slot] - s
                clock[di] = maximum(clock[di], s) + duration
                recv_wait[di] = recv_wait[di] + duration
        else:  # _COLL
            _, lid, di = ev
            post = clock[di]
            start = maximum(post, coll_free[di])
            t = start
            steps: tuple = ()
            if coll_active[lid]:
                step_time = Sm[lid]
                step_log = []
                round_time = None
                for _ in range(coll_nsteps[lid]):
                    e = t + step_time
                    step_log.append((t, e))
                    round_time = (step_time if round_time is None
                                  else round_time + step_time)
                    t = e
                count = coll_count[lid]
                if count != 1.0:
                    t = t + (count - 1.0) * round_time
                steps = tuple(step_log)
            coll_free[di] = t
            coll_log.append((lid, di, post, start, t, steps))
            if coll_blocking[lid]:
                clock[di] = t

    # -- materialize live lanes ------------------------------------------
    empty = np.empty((0, n_lanes))
    CS = np.array(cs_l) if cs_l else empty
    CE = np.array(ce_l) if ce_l else empty
    if full:
        SP = np.array(sp_l) if sp_l else empty
        SE = np.array(se_l) if se_l else empty
    mem_peak = ls.mem_peak if program.tracks_memory else None
    results: list[EventResult | None] = [None] * n_lanes
    tl_new = TimedOp.__new__
    for k, plan in enumerate(plans):
        if errors[k] is not None:
            continue
        cs = CS[:, k].tolist()
        ce = CE[:, k].tolist()
        spans: dict = {}
        for dev, cids in ls.dev_cids:
            row = []
            push = row.append
            for cid in cids:
                # frozen-dataclass __init__ dominates lane fold time at
                # this op count; filling the field dict directly keeps
                # eq/hash semantics while skipping the guarded setattrs
                top = tl_new(TimedOp)
                d = top.__dict__
                d["op"] = comp_ops[cid]
                d["start"] = cs[cid]
                d["end"] = ce[cid]
                push(top)
            spans[dev] = row
        lane_tl = Timeline(spans=spans)
        clock_k = [float(clock[di][k]) for di in range(num_devices)]
        recv_k = [float(recv_wait[di][k]) for di in range(num_devices)]
        coll_k = [
            (lid, di, float(post[k]), float(start[k]), float(end[k]),
             tuple((float(s[k]), float(e[k])) for s, e in steps))
            for lid, di, post, start, end, steps in coll_log
        ]
        if full:
            sp = SP[:, k].tolist()
            se = SE[:, k].tolist()
            mem_k = [(di, cs[cid] if is_alloc else ce[cid], delta, level,
                      cid)
                     for di, cid, delta, level, is_alloc in ls.mem_trace]
        else:
            sp = se = []
            mem_k = []
        results[k] = _materialize(
            plan, exec_seq, cs, ce, ls.post_seq, sp, sp, se,
            ls.send_batched, coll_k, mem_k, clock_k, recv_k, mem_peak,
            detail=detail, timeline=lane_tl)
    return BatchResult(results=results, errors=errors)


def execute_many(
    items,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Execute ``(plan, capacity_bytes)`` pairs, batching where legal.

    Groups lanes that share a program object (retimes of one cached
    structure — how the measurement layer produces them), executes each
    multi-lane group through :func:`execute_batch` and everything else
    through the scalar core, and returns outcomes in item order.
    """
    run = run or RunConfig()
    items = list(items)
    groups: dict[int, list[int]] = {}
    for idx, (plan, _) in enumerate(items):
        groups.setdefault(id(plan.program), []).append(idx)

    results: list[EventResult | None] = [None] * len(items)
    errors: list[OutOfMemoryError | None] = [None] * len(items)
    for lane_ids in groups.values():
        if len(lane_ids) == 1 or run.contention:
            for idx in lane_ids:
                plan, cap = items[idx]
                results[idx], errors[idx] = _scalar_lane(
                    plan, run, cap, detail=detail)
            continue
        sub = execute_batch(
            PlanBatch.from_plans([items[i][0] for i in lane_ids],
                                 [items[i][1] for i in lane_ids]),
            run, detail=detail)
        for pos, idx in enumerate(lane_ids):
            results[idx] = sub.results[pos]
            errors[idx] = sub.errors[pos]
    return BatchResult(results=results, errors=errors)
