"""Batched multi-plan execution: a vectorized lockstep stepper.

One :class:`~repro.actions.lowering.ExecutablePlan` structure often
meets many cost bindings — the cost-only axes of a sweep (clusters,
capacities), placement candidates, what-if queries.  The scalar event
core (:func:`~repro.runtime.events.execute_plan`) replays the same
control flow for every one of them, paying full interpreter overhead
per lane.  This module amortizes that overhead: a :class:`PlanBatch`
stacks N cost-bound plans sharing one control-flow structure and
:func:`execute_batch` advances **all lanes at once**, one NumPy array
op per event instead of one Python step per event per lane.

The enabling invariant
----------------------

Under the fast (uncontended) driver, the event core's *control flow* is
purely structural: whether an action blocks depends only on posted/done
flags, never on simulated times (see the driver comment in
``events.py`` — "timing is independent of replay order").  Two plans
with equal structure therefore execute the *identical* event sequence,
whatever their cost columns say.  Execution splits cleanly in two:

1. a **structural pass** — a cost-blind twin of the greedy driver that
   runs once per structure (cached on the program object) and records
   the global event sequence, the executed compute order, the posting
   order, and the per-device memory trace (watermark levels are
   structural too: resource deltas apply in program order);
2. a **timed pass** — replays that event sequence with every per-lane
   quantity held as an ``[N]`` float64 array: clocks, collective/NIC
   frontiers, recv-wait accumulators, per-slot transfer windows.  Each
   event becomes a handful of NumPy elementwise ops over the lane axis.

A second invariant makes the compute step branch-free: a *local*
dependency edge always names a producer on the consumer's own device
(compiler invariant, asserted by the structural pass), and per-device
clocks are monotone — so a retired local producer can never push the
consumer's start past the device clock.  Local deps gate *blocking*
only; vectorized compute timing needs just the device clock and the
remote arrival frontier.

Congruent structure groups
--------------------------

Lanes need not share one ``plan_key``:
:attr:`~repro.actions.lowering.ExecutablePlan.congruence_key` hashes
exactly the control-flow arrays (action streams, dependency edges,
transfer slots, exchange membership, collective step structure) and
plans with equal keys — same family/P/B/prefetch but, say, recompute
toggled, a different model, or retimed collective bucket sizes — stack
into one batch.  Each distinct program still contributes its own cached
structural replay (memory traces and materialization tables are
per-lane), but the *event sequence* is shared, so the timed pass runs
once for the whole group.  Defensively, a lane whose recorded event
list does not match the head's (impossible when the keys match, since
the key covers every array the structural pass reads) falls back to
the scalar core whole-lane — the ``structure-divergence`` fallback.

Vectorized contention
---------------------

``contention=True`` lanes stay in the batch when only the lean result
subset is requested.  The per-link arbitration state of the scalar core
(``wire_free`` / ``wire_exch``) is lifted to ``[N]``-wide arrays and
the batched-P2P latency-sharing arithmetic becomes masked selects, so
the exact scalar formulas run once per wire touch for all lanes.  The
scalar contention driver executes actions in global *time* order while
the lockstep replay is structural, so each lane is checked as it runs:
per wire, the action times must be nondecreasing with equal-time ties
only between actions of one device (whose relative order both drivers
preserve).  A lane passing that check computes the time-ordered
driver's fixpoint exactly; a lane failing it is replayed through the
scalar core (the ``contention`` fallback), as is a contention lane
whose capacity aborts mid-run (the abort attribution is
driver-dependent).  Full-detail contention requests always go scalar:
the ``comm`` and ``mem_events`` logs interleave in driver order, which
only the scalar driver produces.

Bit-identity
------------

Every lane's :class:`~repro.runtime.events.EventResult` is **bit
identical** to a scalar :func:`execute_plan` of that lane alone (pinned
by ``tests/test_batched.py`` across the full schedule-family × prefetch
× capacity × collectives × TP/DP × contention matrix).  The array
formulas are chosen for exact float equality, not just closeness:
``maximum``/``minimum`` return the argument bitwise for equal doubles,
``where`` selects stored values untouched, additive identities
(``x + 0.0``) only ever apply to non-negative accumulators, and every
sequential accumulation (in-flight bytes, collective round times, wire
grants) folds in the same order as the scalar core.

Lane masking
------------

Lanes are masked *logically*, not arithmetically.  A lane that fails
the static capacity pre-check resolves zero costs and reports its
:class:`~repro.errors.OutOfMemoryError`; a lane whose capacity is
violated mid-run aborts at the first violating allocation **in replay
order** (exactly the scalar abort point — watermark levels are
structural, so the scan is a single array comparison) and resolves
lazy compute costs only up to and including the aborting compute.
Dead lanes ride the remaining lockstep arithmetic inertly — their
columns are never observed again — which keeps the hot loop free of
per-event mask branches; live lanes never stall on them.

Remaining scalar fallbacks go through :func:`execute_plan` unchanged,
and every fallback is *reason-coded* —
``contention`` / ``singleton`` / ``tp>1`` / ``deadlock`` /
``structure-divergence`` — in
:func:`repro.profiling.batching_stats`, so batch-coverage regressions
are visible in ``--profile`` output.

Known divergence: a *deadlocking* structure raises
:class:`~repro.errors.SchedulingError` for the whole batch (replayed
through the scalar core for the identical message) even if some lane's
capacity would have aborted with an OOM first under scalar execution.
Deadlock is a control-flow property covered by the congruence key — no
batch can contain one lane that deadlocks and another that does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import profiling
from ..actions.lowering import (
    OP_BATCH,
    OP_COLL,
    OP_COMPUTE,
    OP_RECV,
    OP_SEND,
    ExecutablePlan,
)
from ..config import RunConfig
from ..errors import ConfigError, OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .events import EventResult, _materialize, execute_plan

#: lockstep event kinds (first element of each event tuple)
_COMP = 0      # (_, cid, di, remote_slots)
_SEND = 1      # (_, sid, di)
_RECV = 2      # (_, rid, di)         blocking receive (prefetch off)
_POST = 3      # (_, bid, di)         batched group posts its sends
_WAIT = 4      # (_, bid, di)         batched group's blocking waits
_COLL = 5      # (_, lid, di)

_LOCKSTEP_ATTR = "_lockstep_schedule"
_CONGRUENCE_ATTR = "_congruence_key_cache"


@dataclass
class LockstepSchedule:
    """The structural replay of one plan, shared by every lane.

    Everything here is cost-independent: the global event sequence the
    greedy driver produces, the executed compute order, the posting
    order, and the full memory trace (deltas *and* watermark levels —
    they depend only on per-device program order).
    """

    events: list[tuple]
    exec_seq: list[int]
    #: computes grouped per device id (execution order within a device,
    #: devices in first-appearance order) — per-device starts are
    #: monotone under the greedy driver, so these lists are exactly the
    #: sorted timeline spans and lanes can build their
    #: :class:`~repro.types.Timeline` without the generic sort pass
    dev_cids: list[tuple[int, list[int]]]
    post_seq: list[int]
    send_batched: bytearray
    #: (di, cid, signed delta, level-after, is_alloc) in replay order
    mem_trace: list[tuple]
    #: per-allocation watermark levels / positions, for the OOM scan
    alloc_levels: np.ndarray
    alloc_pos: list[int]       # index into ``exec_seq`` of the alloc
    alloc_di: list[int]
    mem_peak: list[float]
    deadlock: bool
    #: False when a compiler invariant the vector step relies on does
    #: not hold (never for compiled programs; defensive)
    vectorizable: bool
    #: last stacked cost matrices ``(key, Cm, Tm, Sm, Lm)`` — reused
    #: when the same fully-resolved lane set executes again (see
    #: :func:`_execute_lockstep`); ``Lm`` (send latencies) is filled
    #: lazily, on the first contention execution of the lane set
    cost_rows: tuple | None = None
    #: memoized event-stream parity verdicts against other structural
    #: replays (congruent-group check); values hold a strong reference
    #: to the compared schedule so its ``id`` stays valid
    event_parity: dict = field(default_factory=dict)


def _build_lockstep(plan: ExecutablePlan) -> LockstepSchedule:
    """Run the cost-blind greedy driver once, recording every event.

    Mirrors the fast driver in :func:`execute_plan` statement for
    statement, with times stripped out: blocking predicates are pure
    flag reads, so the produced order is the order every cost binding
    replays.
    """
    program = plan.program
    devices = plan.devices
    num_devices = len(devices)
    codes, args = plan.codes, plan.args
    dep_ptr, dep_remote, dep_idx = plan.dep_ptr, plan.dep_remote, plan.dep_idx
    comp_device = plan.comp_device
    comp_alloc, comp_free_b = plan.comp_alloc, plan.comp_free
    send_slot = plan.send_slot
    batch_send_ids, batch_recv_ids = plan.batch_send_ids, plan.batch_recv_ids
    recv_slot = plan.recv_slot
    prefetch = plan.prefetch
    tracked = program.tracks_memory

    cursors = [0] * num_devices
    comp_done = bytearray(plan.n_computes)
    posted = bytearray(plan.n_slots)
    batch_posted = bytearray(len(batch_send_ids))
    send_batched = bytearray(len(plan.send_src))
    events: list[tuple] = []
    exec_seq: list[int] = []
    post_seq: list[int] = []
    static = [program.static_bytes.get(d, 0.0) for d in devices]
    mem_level = list(static)
    mem_peak = list(static)
    mem_trace: list[tuple] = []
    alloc_levels: list[float] = []
    alloc_pos: list[int] = []
    alloc_di: list[int] = []
    vectorizable = True

    def step(di: int, i: int) -> bool:
        nonlocal vectorizable
        code = codes[di][i]
        a = args[di][i]
        if code == OP_COMPUTE:
            rslots: list[int] = []
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                x = dep_idx[e]
                if dep_remote[e]:
                    if prefetch:
                        if not posted[x]:
                            return False
                        rslots.append(x)
                else:
                    if not comp_done[x]:
                        return False
                    if comp_device[x] != di:
                        # a cross-device local edge would reintroduce a
                        # timing dependency on another device's compute
                        # ends; no compiler emits one, but refuse to
                        # vectorize rather than trust it
                        vectorizable = False
            comp_done[a] = 1
            events.append((_COMP, a, di, tuple(rslots)))
            exec_seq.append(a)
            if tracked:
                alloc = comp_alloc[a]
                if alloc:
                    level = mem_level[di] + alloc
                    mem_level[di] = level
                    mem_trace.append((di, a, alloc, level, True))
                    alloc_levels.append(level)
                    alloc_pos.append(len(exec_seq) - 1)
                    alloc_di.append(di)
                    if level > mem_peak[di]:
                        mem_peak[di] = level
                freed = comp_free_b[a]
                if freed:
                    level = mem_level[di] - freed
                    mem_level[di] = level
                    mem_trace.append((di, a, -freed, level, False))
            return True
        if code == OP_SEND:
            posted[send_slot[a]] = 1
            events.append((_SEND, a, di))
            post_seq.append(a)
            return True
        if code == OP_COLL:
            events.append((_COLL, a, di))
            return True
        if code == OP_RECV:
            if prefetch:
                return True
            if not posted[recv_slot[a]]:
                return False
            events.append((_RECV, a, di))
            return True
        if code == OP_BATCH:
            if not batch_posted[a]:
                for sid in batch_send_ids[a]:
                    posted[send_slot[sid]] = 1
                    send_batched[sid] = 1
                    post_seq.append(sid)
                batch_posted[a] = 1
                events.append((_POST, a, di))
            if not prefetch:
                recvs = batch_recv_ids[a]
                for rid in recvs:
                    if not posted[recv_slot[rid]]:
                        return False
                events.append((_WAIT, a, di))
            return True
        return True  # OP_NOOP

    total = plan.n_actions
    done = 0
    deadlock = False
    while done < total:
        progressed = False
        for di in range(num_devices):
            n = len(codes[di])
            i = cursors[di]
            while i < n and step(di, i):
                i += 1
                done += 1
                progressed = True
            cursors[di] = i
        if not progressed and done < total:
            deadlock = True
            break

    if tracked and not deadlock:
        for di in range(num_devices):
            drift = mem_level[di] - static[di]
            if abs(drift) > max(64.0, 1e-9 * mem_peak[di]):
                raise AssertionError(
                    f"activation leak on device {devices[di]}: "
                    f"{drift} bytes"
                )

    comp_ops = plan.comp_ops
    by_device: dict[int, list[int]] = {}
    for cid in exec_seq:
        by_device.setdefault(comp_ops[cid].device, []).append(cid)

    return LockstepSchedule(
        events=events,
        exec_seq=exec_seq,
        dev_cids=list(by_device.items()),
        post_seq=post_seq,
        send_batched=send_batched,
        mem_trace=mem_trace,
        alloc_levels=np.array(alloc_levels, dtype=np.float64),
        alloc_pos=alloc_pos,
        alloc_di=alloc_di,
        mem_peak=mem_peak,
        deadlock=deadlock,
        vectorizable=vectorizable,
    )


def lockstep_schedule(plan: ExecutablePlan) -> LockstepSchedule:
    """The (cached) structural replay for ``plan``'s program.

    Cached on the program object: every retime of one cached structure
    shares the same program, so a sweep pays the structural pass once
    per structure, not once per batch execution.
    """
    ls = getattr(plan.program, _LOCKSTEP_ATTR, None)
    if ls is None:
        ls = _build_lockstep(plan)
        try:
            setattr(plan.program, _LOCKSTEP_ATTR, ls)
        except AttributeError:  # pragma: no cover - Program is mutable
            pass
    return ls


def _events_match(head_ls: LockstepSchedule,
                  lane_ls: LockstepSchedule) -> bool:
    """Whether two structural replays recorded the same event stream.

    Congruent plans always do (the congruence key covers every array
    the structural pass reads); this is the defensive verification,
    memoized per schedule pair — the tuple comparison is C-speed but
    linear, and batches re-execute in tight loops.
    """
    if head_ls is lane_ls:
        return True
    hit = head_ls.event_parity.get(id(lane_ls))
    if hit is not None and hit[0] is lane_ls:
        return hit[1]
    verdict = head_ls.events == lane_ls.events
    head_ls.event_parity[id(lane_ls)] = (lane_ls, verdict)
    return verdict


@dataclass
class PlanBatch:
    """N cost-bound plans stacked over one shared control-flow structure."""

    plans: list[ExecutablePlan]
    #: per-lane capacity in bytes; ``None`` disarms enforcement
    capacities: list[int | None]

    @classmethod
    def from_plans(cls, plans, capacities=None) -> "PlanBatch":
        """Stack ``plans`` (all cost-bound, structurally congruent).

        Plans sharing a program object are accepted directly (retimes
        of one cached structure — the sweep path); otherwise equality
        of the content-hashed ``congruence_key`` is required — the
        control-flow hash that proves two structures replay the same
        event sequence (equal ``plan_key``, the plan cache's stronger
        oracle, implies it).

        A capacity list of the wrong arity is a caller bug, rejected
        with a structured :class:`~repro.errors.ConfigError` naming the
        offending lane indices.
        """
        plans = list(plans)
        if not plans:
            raise SchedulingError("PlanBatch: empty batch")
        head = plans[0]
        for plan in plans:
            if not plan.bound:
                raise SchedulingError(
                    f"{plan.name}: plan is not cost-bound; lower with "
                    "an oracle or call plan.retime(costs) first"
                )
            if plan.program is not head.program \
                    and plan.congruence_key != head.congruence_key:
                raise SchedulingError(
                    f"PlanBatch: {plan.name} does not share "
                    f"{head.name}'s control-flow structure "
                    "(congruence_key mismatch)"
                )
        if capacities is None:
            capacities = [None] * len(plans)
        capacities = list(capacities)
        if len(capacities) != len(plans):
            if len(capacities) < len(plans):
                offending = list(range(len(capacities), len(plans)))
                what = f"lanes {offending} have no capacity"
            else:
                offending = list(range(len(plans), len(capacities)))
                what = f"capacities {offending} name no lane"
            raise ConfigError(
                "PlanBatch: one capacity per lane required — "
                f"{len(capacities)} capacities for {len(plans)} lanes "
                f"({what})"
            )
        return cls(plans=plans, capacities=capacities)

    def __len__(self) -> int:
        return len(self.plans)


@dataclass
class BatchResult:
    """Per-lane outcomes of one batch execution, in lane order.

    ``results[k]`` is lane k's :class:`EventResult` and ``errors[k]``
    is ``None`` — or the lane OOM-aborted and the fields swap roles,
    mirroring the raise/return split of the scalar core.
    """

    results: list[EventResult | None]
    errors: list[OutOfMemoryError | None]


def execute_batch(
    batch: PlanBatch,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Advance every lane of ``batch`` in lockstep.

    ``detail="lean"`` skips materializing the comm log, executed order
    and memory events of each :class:`EventResult` — the measurement
    layer only folds timelines, collectives, peaks and device ends, and
    object construction is the dominant per-lane cost once the stepping
    is shared.  Parity with the scalar core is pinned field-for-field
    in full detail; lean results are an exact subset.

    Contention batches require ``detail="lean"`` — the full-detail
    ``comm``/``mem_events`` logs interleave in driver order, which the
    structural replay cannot reproduce under wire arbitration — and
    fall back to the scalar core per lane otherwise.
    """
    run = run or RunConfig()
    plans, caps_raw = batch.plans, batch.capacities
    head = plans[0]
    for plan, cap in zip(plans, caps_raw):
        if cap is not None and not plan.program.tracks_memory:
            raise SchedulingError(
                f"{plan.program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
    if run.contention and detail != "lean":
        return _scalar_batch(batch, run, detail=detail,
                             reason="contention")
    ls = lockstep_schedule(head)
    if ls.deadlock:
        # Replay one lane through the scalar core for the identical
        # SchedulingError (heads + wait cycle); deadlock is structural,
        # so capacity is irrelevant to the verdict (see module doc).
        t0 = time.perf_counter()
        try:
            execute_plan(plans[0], run)
        finally:
            profiling.record_scalar(1, time.perf_counter() - t0,
                                    "deadlock")
        raise SchedulingError(  # pragma: no cover - scalar core raised
            f"{head.program.name}: simulation deadlock"
        )
    if not ls.vectorizable:  # pragma: no cover - defensive
        return _scalar_batch(batch, run, detail=detail,
                             reason="structure-divergence")

    # Congruent groups: each distinct program contributes its own
    # structural replay (memory traces / materialization tables are
    # per-lane); the event stream must match the head's.
    n_lanes = len(plans)
    lane_lss = [ls] * n_lanes
    scalar_k: dict[int, str] = {}
    for k in range(1, n_lanes):
        plan = plans[k]
        if plan.program is head.program:
            continue
        lls = lockstep_schedule(plan)
        if not _events_match(ls, lls):  # pragma: no cover - defensive
            scalar_k[k] = "structure-divergence"
            continue
        lane_lss[k] = lls
    if run.contention:
        # The [N]-wide wire state requires every lane to intern the
        # same wires; the interning lives in global-rank space, so a
        # lane whose oracle maps ranks differently cannot share it.
        sw, cw, nw = head.send_wire, head.coll_wires, head.n_wires
        for k in range(1, n_lanes):
            if k in scalar_k:
                continue
            plan = plans[k]
            if (plan.n_wires != nw or plan.send_wire != sw
                    or plan.coll_wires != cw):
                scalar_k[k] = "structure-divergence"

    live = [k for k in range(n_lanes) if k not in scalar_k]
    results: list[EventResult | None] = [None] * n_lanes
    errors: list[OutOfMemoryError | None] = [None] * n_lanes
    if live:
        t0 = time.perf_counter()
        sub, redo = _execute_lockstep(
            ls, [plans[k] for k in live], [lane_lss[k] for k in live],
            [caps_raw[k] for k in live], run, detail=detail)
        lanes_kept = len(live) - len(redo)
        if lanes_kept:
            profiling.record_batch(lanes_kept, time.perf_counter() - t0)
        for pos, k in enumerate(live):
            if pos in redo:
                # per-lane wire-order divergence or a mid-run OOM whose
                # abort attribution is driver-dependent
                scalar_k[k] = "contention"
            else:
                results[k] = sub.results[pos]
                errors[k] = sub.errors[pos]
    for k, reason in scalar_k.items():
        results[k], errors[k] = _scalar_lane(plans[k], run, caps_raw[k],
                                             detail=detail, reason=reason)
    return BatchResult(results=results, errors=errors)


def _scalar_batch(batch: PlanBatch, run: RunConfig, *,
                  detail: str, reason: str) -> BatchResult:
    results: list = []
    errors: list = []
    for plan, cap in zip(batch.plans, batch.capacities):
        res, err = _scalar_lane(plan, run, cap, detail=detail,
                                reason=reason)
        results.append(res)
        errors.append(err)
    return BatchResult(results=results, errors=errors)


def _scalar_lane(plan, run, capacity_bytes, *, detail, reason):
    """One lane through the scalar core, OOM captured, stats recorded."""
    t0 = time.perf_counter()
    try:
        res = execute_plan(plan, run, capacity_bytes=capacity_bytes,
                           detail=detail)
        return res, None
    except OutOfMemoryError as exc:
        return None, exc
    finally:
        profiling.record_scalar(1, time.perf_counter() - t0, reason)


def _execute_lockstep(ls: LockstepSchedule, plans, lane_lss, caps_raw,
                      run: RunConfig, *,
                      detail: str) -> tuple[BatchResult, set[int]]:
    """The timed pass over one structural replay.

    Returns the per-lane outcomes plus the set of lane positions that
    must be *redone* through the scalar core (contention lanes whose
    wire-grant order diverged from the time-ordered driver, or whose
    capacity aborts mid-run under contention) — their columns here are
    garbage and were never materialized.
    """
    head = plans[0]
    devices = head.devices
    num_devices = len(devices)
    n_lanes = len(plans)
    contention = run.contention
    full = detail != "lean"
    n_comp = head.n_computes
    n_send = len(head.send_src)
    exec_seq = ls.exec_seq
    send_slot = head.send_slot
    batch_send_ids, batch_recv_ids = head.batch_send_ids, head.batch_recv_ids
    batch_exch = head.batch_exch
    recv_slot = head.recv_slot
    coll_active, coll_nsteps = head.coll_active, head.coll_nsteps
    coll_count, coll_blocking = head.coll_count, head.coll_blocking
    send_wire, coll_wires_t = head.send_wire, head.coll_wires

    # -- per-lane gating: static pre-check, then the OOM scan ------------
    errors: list[OutOfMemoryError | None] = [None] * n_lanes
    redo: set[int] = set()
    #: computes (as exec_seq positions) each lane actually reaches;
    #: the lazy-cost contract: an aborted lane resolves nothing beyond
    #: its aborting compute, a statically-rejected lane resolves nothing
    resolve_upto = [len(exec_seq)] * n_lanes
    for k, cap in enumerate(caps_raw):
        if cap is None:
            continue
        try:
            plans[k].program.check_static_memory(cap)
        except OutOfMemoryError as exc:
            errors[k] = exc
            resolve_upto[k] = 0
    for k, cap in enumerate(caps_raw):
        if cap is None or errors[k] is not None:
            continue
        lane_ls = lane_lss[k]
        if not len(lane_ls.alloc_levels):
            continue
        viol = lane_ls.alloc_levels > cap
        if viol.any():
            if contention:
                # mid-run abort attribution (device / peak) follows the
                # driver's replay order; redo the lane scalar
                redo.add(k)
                resolve_upto[k] = 0
                continue
            j = int(np.argmax(viol))
            errors[k] = OutOfMemoryError(
                devices[lane_ls.alloc_di[j]],
                int(lane_ls.alloc_levels[j]), cap)
            resolve_upto[k] = lane_ls.alloc_pos[j] + 1

    # -- per-lane cost columns -> [n, N] matrices ------------------------
    # A repeated pass over the same bound plans (the cached-binding
    # sweep steady state) produces the same matrices: once every lane's
    # column is fully resolved the stacked rows are cached on the
    # schedule, keyed by the exact lane set and replay extents.
    mat_key = (tuple(id(p) for p in plans), tuple(resolve_upto))
    cached = ls.cost_rows
    Lm = None
    if (cached is not None and cached[0] == mat_key
            and all(getattr(p, "_fully_resolved", False) for p in plans)):
        _, Cm, Tm, Sm, Lm = cached
    else:
        cols = []
        for k, plan in enumerate(plans):
            comp_cost = plan.comp_cost
            oracle = plan.costs
            comp_ops_k = plan.comp_ops
            for a in exec_seq[:resolve_upto[k]]:
                if comp_cost[a] is None:
                    comp_cost[a] = oracle.duration(comp_ops_k[a])
            if resolve_upto[k] == len(exec_seq):
                plan._fully_resolved = True
            cols.append([0.0 if c is None else c for c in comp_cost])
        # row lists: plain list indexing per event beats ndarray row
        # slicing at sweep-typical lane counts
        Cm = list(np.ascontiguousarray(np.array(cols, dtype=np.float64).T))
        Tm = list(np.ascontiguousarray(
            np.array([p.send_time for p in plans], dtype=np.float64).T))
        Sm = list(np.ascontiguousarray(
            np.array([p.coll_step_time for p in plans],
                     dtype=np.float64).T))
        if all(getattr(p, "_fully_resolved", False) for p in plans):
            ls.cost_rows = (mat_key, Cm, Tm, Sm, None)
    if contention and Lm is None:
        Lm = list(np.ascontiguousarray(
            np.array([p.send_lat for p in plans], dtype=np.float64).T))
        if ls.cost_rows is not None and ls.cost_rows[0] == mat_key:
            ls.cost_rows = ls.cost_rows[:4] + (Lm,)

    # -- lane-axis state -------------------------------------------------
    zero = np.zeros(n_lanes)
    clock = [zero] * num_devices
    coll_free = [zero] * num_devices
    recv_wait = [zero] * num_devices
    # every record below is reference-assigned (each slot posts once,
    # each compute/send executes once, and the lane vectors are never
    # mutated in place); the compute/send rows are stacked to matrices
    # after the loop so per-lane materialization is a single strided
    # column extraction
    ts_l: list = [None] * head.n_slots
    te_l: list = [None] * head.n_slots
    cs_l: list = [None] * n_comp
    ce_l: list = [None] * n_comp
    sp_l: list = [None] * n_send if full else None
    se_l: list = [None] * n_send if full else None
    coll_log: list[tuple] = []

    maximum, minimum = np.maximum, np.minimum
    where = np.where
    if contention:
        # [N]-wide mirrors of the scalar wire-arbitration state, plus
        # the per-wire driver-order witness: the last action time and
        # device that touched each wire, per lane.  A lane observing a
        # time inversion (or an equal-time tie across devices) computes
        # a grant order the time-ordered scalar driver may not produce
        # and is flagged for scalar replay.
        neg1 = np.full(n_lanes, -1)
        neg_inf = np.full(n_lanes, -np.inf)
        wire_free = [zero] * head.n_wires
        wire_exch = [neg1] * head.n_wires
        wire_last_t = [neg_inf] * head.n_wires
        wire_last_di = [neg1] * head.n_wires
        diverged = np.zeros(n_lanes, dtype=bool)

        def wire_mark(w, tarr, di, applies):
            lt = wire_last_t[w]
            ld = wire_last_di[w]
            diverged.__ior__(
                applies & ((tarr < lt) | ((tarr == lt) & (ld != di))))
            wire_last_t[w] = where(applies, tarr, lt)
            wire_last_di[w] = where(applies, di, ld)

    for ev in ls.events:
        kind = ev[0]
        if kind == _COMP:
            _, a, di, rslots = ev
            ready = clock[di]
            if rslots:
                r = rslots[0]
                arrival = te_l[r]
                in_flight = te_l[r] - ts_l[r]
                for r in rslots[1:]:
                    arrival = maximum(arrival, te_l[r])
                    in_flight = in_flight + (te_l[r] - ts_l[r])
                # scalar: only when arrival > ready, add
                # min(stall, in_flight); adding an exact 0.0 elsewhere
                # is bitwise neutral (the accumulator is never -0.0).
                # max(min(stall, in_flight), 0) is that select in one
                # ufunc: in_flight >= 0, so the min is the stall-capped
                # wait when stall > 0 and clamps to +0.0 otherwise
                recv_wait[di] = recv_wait[di] + maximum(
                    minimum(arrival - ready, in_flight), 0.0)
                start = maximum(ready, arrival)
            else:
                start = ready
            end = start + Cm[a]
            cs_l[a] = start
            ce_l[a] = end
            clock[di] = end
        elif kind == _SEND:
            _, sid, di = ev
            post = clock[di]
            t = Tm[sid]
            if contention and (t > 0.0).any():
                tpos = t > 0.0
                w = send_wire[sid]
                wire_mark(w, post, di, tpos)
                wf = wire_free[w]
                busy = tpos & (post < wf)
                start = where(busy, wf, post)
                end = start + t
                wire_free[w] = where(tpos, end, wf)
                wire_exch[w] = where(tpos, neg1, wire_exch[w])
            else:
                start = post
                end = post + t
            slot = send_slot[sid]
            ts_l[slot] = start
            te_l[slot] = end
            if full:
                sp_l[sid] = post
                se_l[sid] = end
        elif kind == _POST:
            _, bid, di = ev
            post = clock[di]
            exch = batch_exch[bid]
            for sid in batch_send_ids[bid]:
                t = Tm[sid]
                if contention and (t > 0.0).any():
                    tpos = t > 0.0
                    w = send_wire[sid]
                    wire_mark(w, post, di, tpos)
                    wf = wire_free[w]
                    we = wire_exch[w]
                    busy = tpos & (post < wf)
                    start = where(busy, wf, post)
                    # the opposing transfer of the *same* batched
                    # exchange holds the wire: the follower pays bytes
                    # only, not a second launch latency
                    dur = where(busy & (we == exch),
                                maximum(t - Lm[sid], 0.0), t)
                    end = start + dur
                    wire_free[w] = where(tpos, end, wf)
                    wire_exch[w] = where(tpos, exch, we)
                else:
                    start = post
                    end = post + t
                slot = send_slot[sid]
                ts_l[slot] = start
                te_l[slot] = end
                if full:
                    sp_l[sid] = post
                    se_l[sid] = end
        elif kind == _RECV:
            _, rid, di = ev
            slot = recv_slot[rid]
            s = ts_l[slot]
            duration = te_l[slot] - s
            clock[di] = maximum(clock[di], s) + duration
            recv_wait[di] = recv_wait[di] + duration
        elif kind == _WAIT:
            _, bid, di = ev
            for rid in batch_recv_ids[bid]:
                slot = recv_slot[rid]
                s = ts_l[slot]
                duration = te_l[slot] - s
                clock[di] = maximum(clock[di], s) + duration
                recv_wait[di] = recv_wait[di] + duration
        else:  # _COLL
            _, lid, di = ev
            post = clock[di]
            start = maximum(post, coll_free[di])
            t = start
            steps: tuple = ()
            if coll_active[lid]:
                step_time = Sm[lid]
                step_log = []
                round_time = None
                if contention:
                    wids = coll_wires_t[lid]
                    for w in wids:
                        wire_mark(w, post, di, True)
                    for _ in range(coll_nsteps[lid]):
                        step_start = t
                        for w in wids:
                            step_start = maximum(step_start, wire_free[w])
                        step_end = step_start + step_time
                        step_log.append((step_start, step_end))
                        round_time = (step_time if round_time is None
                                      else round_time + step_time)
                        for w in wids:
                            wire_free[w] = step_end
                            wire_exch[w] = neg1
                        t = step_end
                    count = coll_count[lid]
                    if count != 1.0:
                        t = t + (count - 1.0) * round_time
                        for w in wids:
                            wire_free[w] = t
                else:
                    for _ in range(coll_nsteps[lid]):
                        e = t + step_time
                        step_log.append((t, e))
                        round_time = (step_time if round_time is None
                                      else round_time + step_time)
                        t = e
                    count = coll_count[lid]
                    if count != 1.0:
                        t = t + (count - 1.0) * round_time
                steps = tuple(step_log)
            coll_free[di] = t
            coll_log.append((lid, di, post, start, t, steps))
            if coll_blocking[lid]:
                clock[di] = t

    if contention and diverged.any():
        redo.update(int(k) for k in np.nonzero(diverged)[0])

    # -- materialize live lanes ------------------------------------------
    empty = np.empty((0, n_lanes))
    CS = np.array(cs_l) if cs_l else empty
    CE = np.array(ce_l) if ce_l else empty
    if full:
        SP = np.array(sp_l) if sp_l else empty
        SE = np.array(se_l) if se_l else empty
    results: list[EventResult | None] = [None] * n_lanes
    tl_new = TimedOp.__new__
    for k, plan in enumerate(plans):
        if errors[k] is not None or k in redo:
            continue
        lane_ls = lane_lss[k]
        comp_ops = plan.comp_ops
        cs = CS[:, k].tolist()
        ce = CE[:, k].tolist()
        spans: dict = {}
        for dev, cids in lane_ls.dev_cids:
            row = []
            push = row.append
            for cid in cids:
                # frozen-dataclass __init__ dominates lane fold time at
                # this op count; filling the field dict directly keeps
                # eq/hash semantics while skipping the guarded setattrs
                top = tl_new(TimedOp)
                d = top.__dict__
                d["op"] = comp_ops[cid]
                d["start"] = cs[cid]
                d["end"] = ce[cid]
                push(top)
            spans[dev] = row
        lane_tl = Timeline(spans=spans)
        clock_k = [float(clock[di][k]) for di in range(num_devices)]
        recv_k = [float(recv_wait[di][k]) for di in range(num_devices)]
        coll_k = [
            (lid, di, float(post[k]), float(start[k]), float(end[k]),
             tuple((float(s[k]), float(e[k])) for s, e in steps))
            for lid, di, post, start, end, steps in coll_log
        ]
        if full:
            sp = SP[:, k].tolist()
            se = SE[:, k].tolist()
            mem_k = [(di, cs[cid] if is_alloc else ce[cid], delta, level,
                      cid)
                     for di, cid, delta, level, is_alloc
                     in lane_ls.mem_trace]
        else:
            sp = se = []
            mem_k = []
        mem_peak = (lane_ls.mem_peak if plan.program.tracks_memory
                    else None)
        results[k] = _materialize(
            plan, exec_seq, cs, ce, ls.post_seq, sp, sp, se,
            ls.send_batched, coll_k, mem_k, clock_k, recv_k, mem_peak,
            detail=detail, timeline=lane_tl)
    return BatchResult(results=results, errors=errors), redo


def _plan_congruence(plan: ExecutablePlan) -> str:
    """``plan.congruence_key``, memoized on the (shared) program object.

    Retimed plans are fresh dataclass instances, so the lazy per-plan
    cache alone would re-hash once per lane; every retime of one cached
    structure shares its program, which makes the program the natural
    memo site.
    """
    program = plan.program
    key = getattr(program, _CONGRUENCE_ATTR, None)
    if key is None:
        key = plan.congruence_key
        try:
            setattr(program, _CONGRUENCE_ATTR, key)
        except AttributeError:  # pragma: no cover - Program is mutable
            pass
    return key


def execute_many(
    items,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Execute ``(plan, capacity_bytes)`` pairs, batching where legal.

    Groups lanes by control-flow congruence (plans sharing a program
    object trivially agree; so do structurally congruent plans of
    *different* programs — see
    :attr:`~repro.actions.lowering.ExecutablePlan.congruence_key`),
    executes each multi-lane group through :func:`execute_batch` and
    everything else through the scalar core, and returns outcomes in
    item order.  Contention lanes batch too when ``detail="lean"``;
    full-detail contention requests and singleton groups take the
    (reason-coded) scalar path.
    """
    run = run or RunConfig()
    items = list(items)
    results: list[EventResult | None] = [None] * len(items)
    errors: list[OutOfMemoryError | None] = [None] * len(items)
    if run.contention and detail != "lean":
        for idx, (plan, cap) in enumerate(items):
            results[idx], errors[idx] = _scalar_lane(
                plan, run, cap, detail=detail, reason="contention")
        return BatchResult(results=results, errors=errors)

    groups: dict[str, list[int]] = {}
    for idx, (plan, _) in enumerate(items):
        groups.setdefault(_plan_congruence(plan), []).append(idx)

    for lane_ids in groups.values():
        if len(lane_ids) == 1:
            idx = lane_ids[0]
            plan, cap = items[idx]
            results[idx], errors[idx] = _scalar_lane(
                plan, run, cap, detail=detail, reason="singleton")
            continue
        sub = execute_batch(
            PlanBatch.from_plans([items[i][0] for i in lane_ids],
                                 [items[i][1] for i in lane_ids]),
            run, detail=detail)
        for pos, idx in enumerate(lane_ids):
            results[idx] = sub.results[pos]
            errors[idx] = sub.errors[pos]
    return BatchResult(results=results, errors=errors)
