"""Batched multi-plan execution: a vectorized lockstep stepper.

One :class:`~repro.actions.lowering.ExecutablePlan` structure often
meets many cost bindings — the cost-only axes of a sweep (clusters,
capacities), placement candidates, what-if queries.  The scalar event
core (:func:`~repro.runtime.events.execute_plan`) replays the same
control flow for every one of them, paying full interpreter overhead
per lane.  This module amortizes that overhead: a :class:`PlanBatch`
stacks N cost-bound plans sharing one control-flow structure and
:func:`execute_batch` advances **all lanes at once**, one NumPy array
op per event instead of one Python step per event per lane.

The enabling invariant
----------------------

Under the fast (uncontended) driver, the event core's *control flow* is
purely structural: whether an action blocks depends only on posted/done
flags, never on simulated times (see the driver comment in
``events.py`` — "timing is independent of replay order").  Two plans
with equal structure therefore execute the *identical* event sequence,
whatever their cost columns say.  Execution splits cleanly in two:

1. a **structural pass** — a cost-blind twin of the greedy driver that
   runs once per structure (cached on the program object) and records
   the global event sequence, the executed compute order, the posting
   order, and the per-device memory trace (watermark levels are
   structural too: resource deltas apply in program order);
2. a **timed pass** — replays that event sequence with every per-lane
   quantity held as an ``[N]`` float64 array: clocks, collective/NIC
   frontiers, recv-wait accumulators, per-slot transfer windows.  Each
   event becomes a handful of NumPy elementwise ops over the lane axis.

A second invariant makes the compute step branch-free: a *local*
dependency edge always names a producer on the consumer's own device
(compiler invariant, asserted by the structural pass), and per-device
clocks are monotone — so a retired local producer can never push the
consumer's start past the device clock.  Local deps gate *blocking*
only; vectorized compute timing needs just the device clock and the
remote arrival frontier.

Congruent structure groups
--------------------------

Lanes need not share one ``plan_key``:
:attr:`~repro.actions.lowering.ExecutablePlan.congruence_key` hashes
exactly the control-flow arrays (action streams, dependency edges,
transfer slots, exchange membership, collective step structure) and
plans with equal keys — same family/P/B/prefetch but, say, recompute
toggled, a different model, or retimed collective bucket sizes — stack
into one batch.  Each distinct program still contributes its own cached
structural replay (memory traces and materialization tables are
per-lane), but the *event sequence* is shared, so the timed pass runs
once for the whole group.  Defensively, a lane whose recorded event
list does not match the head's (impossible when the keys match, since
the key covers every array the structural pass reads) falls back to
the scalar core whole-lane — the ``structure-divergence`` fallback.

Vectorized contention
---------------------

``contention=True`` lanes stay in the batch.  The per-link arbitration
state of the scalar core (``wire_free`` / ``wire_exch``) is lifted to
``[N]``-wide arrays and the batched-P2P latency-sharing arithmetic
becomes masked selects, so the exact scalar formulas run once per wire
touch for all lanes.  The scalar contention driver executes actions in
global *time* order while the lockstep replay is structural, so lean
batches run the cheap lockstep pass first and check each lane as it
runs: per wire, the action times must be nondecreasing with equal-time
ties only between actions of one device (whose relative order both
drivers preserve).  A lane passing that check computes the time-ordered
driver's fixpoint exactly.

Time-ordered vector replay
--------------------------

Lanes the witness flags — wire-grant orders that leave structural
order, e.g. hanayo-style wave interleavings on shared-link topologies —
and every full-detail contention lane (whose ``comm``/``mem_events``
logs interleave in driver order) are *recovered* by
:func:`_execute_time_ordered`: a vectorized twin of the scalar
contention driver itself.  Per-lane event cursors advance through the
plan in each lane's own grant-time order; lanes sharing a structural
state — the cursor tuple plus the posted-group bits, which determine
every blocking predicate — form a **cohort**, and each pop evaluates
the scalar driver's exact ``peek``/``step`` expressions lane-wise as
one NumPy op per device over the cohort.  A cohort whose lanes choose
different devices splits; cohorts whose states re-converge merge, so
sibling lanes that diverge only transiently keep amortizing.  Mid-run
capacity aborts stay in-batch too: watermark levels are structural, so
a violating allocation kills exactly the lanes it would kill under the
scalar driver, at the same pop, with the same attribution.  Lanes whose
oracles intern different wire tables batch per wire-signature group
instead of falling back.

Bit-identity
------------

Every lane's :class:`~repro.runtime.events.EventResult` is **bit
identical** to a scalar :func:`execute_plan` of that lane alone (pinned
by ``tests/test_batched.py`` across the full schedule-family × prefetch
× capacity × collectives × TP/DP × contention matrix).  The array
formulas are chosen for exact float equality, not just closeness:
``maximum``/``minimum`` return the argument bitwise for equal doubles,
``where`` selects stored values untouched, additive identities
(``x + 0.0``) only ever apply to non-negative accumulators, and every
sequential accumulation (in-flight bytes, collective round times, wire
grants) folds in the same order as the scalar core.

Lane masking
------------

Lanes are masked *logically*, not arithmetically.  A lane that fails
the static capacity pre-check resolves zero costs and reports its
:class:`~repro.errors.OutOfMemoryError`; a lane whose capacity is
violated mid-run aborts at the first violating allocation **in replay
order** (exactly the scalar abort point — watermark levels are
structural, so the scan is a single array comparison) and resolves
lazy compute costs only up to and including the aborting compute.
Dead lanes ride the remaining lockstep arithmetic inertly — their
columns are never observed again — which keeps the hot loop free of
per-event mask branches; live lanes never stall on them.

Remaining scalar fallbacks go through :func:`execute_plan` unchanged,
and every fallback is *reason-coded* —
``singleton`` / ``tp>1`` / ``deadlock`` / ``structure-divergence``
(defensive; congruent batches cannot reach it) — in
:func:`repro.profiling.batching_stats`, with wall time attributed per
reason and recovered-lane counts for the time-ordered replay, so
batch-coverage regressions are visible in ``--profile`` output.

Known divergence: a *deadlocking* structure raises
:class:`~repro.errors.SchedulingError` for the whole batch (replayed
through the scalar core for the identical message) even if some lane's
capacity would have aborted with an OOM first under scalar execution.
Deadlock is a control-flow property covered by the congruence key — no
batch can contain one lane that deadlocks and another that does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import profiling
from ..actions.lowering import (
    OP_BATCH,
    OP_COLL,
    OP_COMPUTE,
    OP_RECV,
    OP_SEND,
    ExecutablePlan,
)
from ..config import RunConfig
from ..errors import ConfigError, OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .events import EventResult, _materialize, execute_plan

#: lockstep event kinds (first element of each event tuple)
_COMP = 0      # (_, cid, di, remote_slots)
_SEND = 1      # (_, sid, di)
_RECV = 2      # (_, rid, di)         blocking receive (prefetch off)
_POST = 3      # (_, bid, di)         batched group posts its sends
_WAIT = 4      # (_, bid, di)         batched group's blocking waits
_COLL = 5      # (_, lid, di)

_LOCKSTEP_ATTR = "_lockstep_schedule"
_CONGRUENCE_ATTR = "_congruence_key_cache"


@dataclass
class LockstepSchedule:
    """The structural replay of one plan, shared by every lane.

    Everything here is cost-independent: the global event sequence the
    greedy driver produces, the executed compute order, the posting
    order, and the full memory trace (deltas *and* watermark levels —
    they depend only on per-device program order).
    """

    events: list[tuple]
    exec_seq: list[int]
    #: computes grouped per device id (execution order within a device,
    #: devices in first-appearance order) — per-device starts are
    #: monotone under the greedy driver, so these lists are exactly the
    #: sorted timeline spans and lanes can build their
    #: :class:`~repro.types.Timeline` without the generic sort pass
    dev_cids: list[tuple[int, list[int]]]
    post_seq: list[int]
    send_batched: bytearray
    #: (di, cid, signed delta, level-after, is_alloc) in replay order
    mem_trace: list[tuple]
    #: per-allocation watermark levels / positions, for the OOM scan
    alloc_levels: np.ndarray
    alloc_pos: list[int]       # index into ``exec_seq`` of the alloc
    alloc_di: list[int]
    mem_peak: list[float]
    deadlock: bool
    #: False when a compiler invariant the vector step relies on does
    #: not hold (never for compiled programs; defensive)
    vectorizable: bool
    #: stacked cost matrices keyed by ``(lane ids, resolve extents)`` —
    #: reused when the same fully-resolved lane set executes again (see
    #: :func:`_stacked_costs`); a congruence group typically alternates
    #: between its lockstep set and its time-ordered redo set, so a few
    #: keyed entries are kept instead of one.  ``Lm`` (send latencies)
    #: is filled lazily, on the first contention execution of a set
    cost_rows: dict = field(default_factory=dict)
    #: memoized event-stream parity verdicts against other structural
    #: replays (congruent-group check); values hold a strong reference
    #: to the compared schedule so its ``id`` stays valid
    event_parity: dict = field(default_factory=dict)
    #: cost-independent lookup tables of the time-ordered driver,
    #: derived once per program on its first recovered execution
    time_tables: "object | None" = None
    #: per-compute memory-trace entries, keyed by cid — the time-ordered
    #: driver emits them in each lane's own pop order (lazily built)
    mem_by_cid: dict | None = None


def _build_lockstep(plan: ExecutablePlan) -> LockstepSchedule:
    """Run the cost-blind greedy driver once, recording every event.

    Mirrors the fast driver in :func:`execute_plan` statement for
    statement, with times stripped out: blocking predicates are pure
    flag reads, so the produced order is the order every cost binding
    replays.
    """
    program = plan.program
    devices = plan.devices
    num_devices = len(devices)
    codes, args = plan.codes, plan.args
    dep_ptr, dep_remote, dep_idx = plan.dep_ptr, plan.dep_remote, plan.dep_idx
    comp_device = plan.comp_device
    comp_alloc, comp_free_b = plan.comp_alloc, plan.comp_free
    send_slot = plan.send_slot
    batch_send_ids, batch_recv_ids = plan.batch_send_ids, plan.batch_recv_ids
    recv_slot = plan.recv_slot
    prefetch = plan.prefetch
    tracked = program.tracks_memory

    cursors = [0] * num_devices
    comp_done = bytearray(plan.n_computes)
    posted = bytearray(plan.n_slots)
    batch_posted = bytearray(len(batch_send_ids))
    send_batched = bytearray(len(plan.send_src))
    events: list[tuple] = []
    exec_seq: list[int] = []
    post_seq: list[int] = []
    static = [program.static_bytes.get(d, 0.0) for d in devices]
    mem_level = list(static)
    mem_peak = list(static)
    mem_trace: list[tuple] = []
    alloc_levels: list[float] = []
    alloc_pos: list[int] = []
    alloc_di: list[int] = []
    vectorizable = True

    def step(di: int, i: int) -> bool:
        nonlocal vectorizable
        code = codes[di][i]
        a = args[di][i]
        if code == OP_COMPUTE:
            rslots: list[int] = []
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                x = dep_idx[e]
                if dep_remote[e]:
                    if prefetch:
                        if not posted[x]:
                            return False
                        rslots.append(x)
                else:
                    if not comp_done[x]:
                        return False
                    if comp_device[x] != di:
                        # a cross-device local edge would reintroduce a
                        # timing dependency on another device's compute
                        # ends; no compiler emits one, but refuse to
                        # vectorize rather than trust it
                        vectorizable = False
            comp_done[a] = 1
            events.append((_COMP, a, di, tuple(rslots)))
            exec_seq.append(a)
            if tracked:
                alloc = comp_alloc[a]
                if alloc:
                    level = mem_level[di] + alloc
                    mem_level[di] = level
                    mem_trace.append((di, a, alloc, level, True))
                    alloc_levels.append(level)
                    alloc_pos.append(len(exec_seq) - 1)
                    alloc_di.append(di)
                    if level > mem_peak[di]:
                        mem_peak[di] = level
                freed = comp_free_b[a]
                if freed:
                    level = mem_level[di] - freed
                    mem_level[di] = level
                    mem_trace.append((di, a, -freed, level, False))
            return True
        if code == OP_SEND:
            posted[send_slot[a]] = 1
            events.append((_SEND, a, di))
            post_seq.append(a)
            return True
        if code == OP_COLL:
            events.append((_COLL, a, di))
            return True
        if code == OP_RECV:
            if prefetch:
                return True
            if not posted[recv_slot[a]]:
                return False
            events.append((_RECV, a, di))
            return True
        if code == OP_BATCH:
            if not batch_posted[a]:
                for sid in batch_send_ids[a]:
                    posted[send_slot[sid]] = 1
                    send_batched[sid] = 1
                    post_seq.append(sid)
                batch_posted[a] = 1
                events.append((_POST, a, di))
            if not prefetch:
                recvs = batch_recv_ids[a]
                for rid in recvs:
                    if not posted[recv_slot[rid]]:
                        return False
                events.append((_WAIT, a, di))
            return True
        return True  # OP_NOOP

    total = plan.n_actions
    done = 0
    deadlock = False
    while done < total:
        progressed = False
        for di in range(num_devices):
            n = len(codes[di])
            i = cursors[di]
            while i < n and step(di, i):
                i += 1
                done += 1
                progressed = True
            cursors[di] = i
        if not progressed and done < total:
            deadlock = True
            break

    if tracked and not deadlock:
        for di in range(num_devices):
            drift = mem_level[di] - static[di]
            if abs(drift) > max(64.0, 1e-9 * mem_peak[di]):
                raise AssertionError(
                    f"activation leak on device {devices[di]}: "
                    f"{drift} bytes"
                )

    comp_ops = plan.comp_ops
    by_device: dict[int, list[int]] = {}
    for cid in exec_seq:
        by_device.setdefault(comp_ops[cid].device, []).append(cid)

    return LockstepSchedule(
        events=events,
        exec_seq=exec_seq,
        dev_cids=list(by_device.items()),
        post_seq=post_seq,
        send_batched=send_batched,
        mem_trace=mem_trace,
        alloc_levels=np.array(alloc_levels, dtype=np.float64),
        alloc_pos=alloc_pos,
        alloc_di=alloc_di,
        mem_peak=mem_peak,
        deadlock=deadlock,
        vectorizable=vectorizable,
    )


def lockstep_schedule(plan: ExecutablePlan) -> LockstepSchedule:
    """The (cached) structural replay for ``plan``'s program.

    Cached on the program object: every retime of one cached structure
    shares the same program, so a sweep pays the structural pass once
    per structure, not once per batch execution.
    """
    ls = getattr(plan.program, _LOCKSTEP_ATTR, None)
    if ls is None:
        ls = _build_lockstep(plan)
        try:
            setattr(plan.program, _LOCKSTEP_ATTR, ls)
        except AttributeError:  # pragma: no cover - Program is mutable
            pass
    return ls


def _events_match(head_ls: LockstepSchedule,
                  lane_ls: LockstepSchedule) -> bool:
    """Whether two structural replays recorded the same event stream.

    Congruent plans always do (the congruence key covers every array
    the structural pass reads); this is the defensive verification,
    memoized per schedule pair — the tuple comparison is C-speed but
    linear, and batches re-execute in tight loops.
    """
    if head_ls is lane_ls:
        return True
    hit = head_ls.event_parity.get(id(lane_ls))
    if hit is not None and hit[0] is lane_ls:
        return hit[1]
    verdict = head_ls.events == lane_ls.events
    head_ls.event_parity[id(lane_ls)] = (lane_ls, verdict)
    return verdict


@dataclass
class PlanBatch:
    """N cost-bound plans stacked over one shared control-flow structure."""

    plans: list[ExecutablePlan]
    #: per-lane capacity in bytes; ``None`` disarms enforcement
    capacities: list[int | None]

    @classmethod
    def from_plans(cls, plans, capacities=None) -> "PlanBatch":
        """Stack ``plans`` (all cost-bound, structurally congruent).

        Plans sharing a program object are accepted directly (retimes
        of one cached structure — the sweep path); otherwise equality
        of the content-hashed ``congruence_key`` is required — the
        control-flow hash that proves two structures replay the same
        event sequence (equal ``plan_key``, the plan cache's stronger
        oracle, implies it).

        A capacity list of the wrong arity is a caller bug, rejected
        with a structured :class:`~repro.errors.ConfigError` naming the
        offending lane indices.
        """
        plans = list(plans)
        if not plans:
            raise SchedulingError("PlanBatch: empty batch")
        head = plans[0]
        for plan in plans:
            if not plan.bound:
                raise SchedulingError(
                    f"{plan.name}: plan is not cost-bound; lower with "
                    "an oracle or call plan.retime(costs) first"
                )
            if plan.program is not head.program \
                    and plan.congruence_key != head.congruence_key:
                raise SchedulingError(
                    f"PlanBatch: {plan.name} does not share "
                    f"{head.name}'s control-flow structure "
                    "(congruence_key mismatch)"
                )
        if capacities is None:
            capacities = [None] * len(plans)
        capacities = list(capacities)
        if len(capacities) != len(plans):
            if len(capacities) < len(plans):
                offending = list(range(len(capacities), len(plans)))
                what = f"lanes {offending} have no capacity"
            else:
                offending = list(range(len(plans), len(capacities)))
                what = f"capacities {offending} name no lane"
            raise ConfigError(
                "PlanBatch: one capacity per lane required — "
                f"{len(capacities)} capacities for {len(plans)} lanes "
                f"({what})"
            )
        return cls(plans=plans, capacities=capacities)

    def __len__(self) -> int:
        return len(self.plans)


@dataclass
class BatchResult:
    """Per-lane outcomes of one batch execution, in lane order.

    ``results[k]`` is lane k's :class:`EventResult` and ``errors[k]``
    is ``None`` — or the lane OOM-aborted and the fields swap roles,
    mirroring the raise/return split of the scalar core.
    """

    results: list[EventResult | None]
    errors: list[OutOfMemoryError | None]


def execute_batch(
    batch: PlanBatch,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Advance every lane of ``batch`` in lockstep.

    ``detail="lean"`` skips materializing the comm log, executed order
    and memory events of each :class:`EventResult` — the measurement
    layer only folds timelines, collectives, peaks and device ends, and
    object construction is the dominant per-lane cost once the stepping
    is shared.  Parity with the scalar core is pinned field-for-field
    in full detail; lean results are an exact subset.

    Contention batches run the lockstep pass first at ``detail="lean"``
    and recover witness-flagged lanes through the time-ordered vector
    replay; full-detail contention batches (whose ``comm`` and
    ``mem_events`` logs interleave in driver order) go straight to the
    time-ordered replay — no lane leaves the batch either way.
    """
    run = run or RunConfig()
    plans, caps_raw = batch.plans, batch.capacities
    head = plans[0]
    for plan, cap in zip(plans, caps_raw):
        if cap is not None and not plan.program.tracks_memory:
            raise SchedulingError(
                f"{plan.program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
    ls = lockstep_schedule(head)
    if ls.deadlock:
        # Replay one lane through the scalar core for the identical
        # SchedulingError (heads + wait cycle); deadlock is structural,
        # so capacity is irrelevant to the verdict (see module doc).
        t0 = time.perf_counter()
        try:
            execute_plan(plans[0], run)
        finally:
            profiling.record_scalar(1, time.perf_counter() - t0,
                                    "deadlock")
        raise SchedulingError(  # pragma: no cover - scalar core raised
            f"{head.program.name}: simulation deadlock"
        )
    if not ls.vectorizable:  # pragma: no cover - defensive
        return _scalar_batch(batch, run, detail=detail,
                             reason="structure-divergence")

    # Congruent groups: each distinct program contributes its own
    # structural replay (memory traces / materialization tables are
    # per-lane); the event stream must match the head's.
    n_lanes = len(plans)
    lane_lss = [ls] * n_lanes
    scalar_k: dict[int, str] = {}
    for k in range(1, n_lanes):
        plan = plans[k]
        if plan.program is head.program:
            continue
        lls = lockstep_schedule(plan)
        if not _events_match(ls, lls):  # pragma: no cover - defensive
            scalar_k[k] = "structure-divergence"
            continue
        lane_lss[k] = lls

    live = [k for k in range(n_lanes) if k not in scalar_k]
    results: list[EventResult | None] = [None] * n_lanes
    errors: list[OutOfMemoryError | None] = [None] * n_lanes

    def run_time_ordered(group: list[int]) -> None:
        t0 = time.perf_counter()
        tsub = _execute_time_ordered(
            ls, [plans[k] for k in group], [lane_lss[k] for k in group],
            [caps_raw[k] for k in group], run, detail=detail)
        profiling.record_recovered(len(group), time.perf_counter() - t0)
        for pos, k in enumerate(group):
            results[k] = tsub.results[pos]
            errors[k] = tsub.errors[pos]

    if live and not run.contention:
        t0 = time.perf_counter()
        sub, _redo = _execute_lockstep(
            ls, [plans[k] for k in live], [lane_lss[k] for k in live],
            [caps_raw[k] for k in live], run, detail=detail)
        profiling.record_batch(len(live), time.perf_counter() - t0)
        for pos, k in enumerate(live):
            results[k] = sub.results[pos]
            errors[k] = sub.errors[pos]
    elif live:
        # The [N]-wide wire state requires every lane of one vectorized
        # pass to intern the same wires; the interning lives in
        # global-rank space, so lanes whose oracles map ranks
        # differently execute as separate wire-signature groups.
        for group in _wire_groups(plans, live):
            if detail != "lean":
                # driver-order comm/mem logs: time-ordered from the start
                run_time_ordered(group)
                continue
            t0 = time.perf_counter()
            sub, redo = _execute_lockstep(
                ls, [plans[k] for k in group],
                [lane_lss[k] for k in group],
                [caps_raw[k] for k in group], run, detail=detail)
            lanes_kept = len(group) - len(redo)
            if lanes_kept:
                profiling.record_batch(lanes_kept,
                                       time.perf_counter() - t0)
            for pos, k in enumerate(group):
                if pos not in redo:
                    results[k] = sub.results[pos]
                    errors[k] = sub.errors[pos]
            if redo:
                # per-lane wire-grant orders that left structural order,
                # or mid-run OOMs whose abort attribution is
                # driver-dependent: recovered in each lane's own time
                # order instead of replayed scalar
                run_time_ordered([group[pos] for pos in sorted(redo)])
    for k, reason in scalar_k.items():
        results[k], errors[k] = _scalar_lane(plans[k], run, caps_raw[k],
                                             detail=detail, reason=reason)
    return BatchResult(results=results, errors=errors)


def _wire_groups(plans, live: list[int]) -> list[list[int]]:
    """Partition ``live`` lanes by wire signature, first-seen order.

    Two retimes of one structure intern equal wire tables whenever
    their oracles agree on the global-rank map; a lane that interned
    differently cannot share the ``[N]``-wide wire-state arrays, so it
    anchors its own group (wire interning happens at retime, so even
    plans sharing a program object must compare by content).
    """
    groups: list[list[int]] = []
    reps: list = []
    for k in live:
        plan = plans[k]
        for gi, rep in enumerate(reps):
            if (plan.n_wires == rep.n_wires
                    and plan.send_wire == rep.send_wire
                    and plan.coll_wires == rep.coll_wires):
                groups[gi].append(k)
                break
        else:
            reps.append(plan)
            groups.append([k])
    return groups


def _scalar_batch(batch: PlanBatch, run: RunConfig, *,
                  detail: str, reason: str) -> BatchResult:
    results: list = []
    errors: list = []
    for plan, cap in zip(batch.plans, batch.capacities):
        res, err = _scalar_lane(plan, run, cap, detail=detail,
                                reason=reason)
        results.append(res)
        errors.append(err)
    return BatchResult(results=results, errors=errors)


def _scalar_lane(plan, run, capacity_bytes, *, detail, reason):
    """One lane through the scalar core, OOM captured, stats recorded."""
    t0 = time.perf_counter()
    try:
        res = execute_plan(plan, run, capacity_bytes=capacity_bytes,
                           detail=detail)
        return res, None
    except OutOfMemoryError as exc:
        return None, exc
    finally:
        profiling.record_scalar(1, time.perf_counter() - t0, reason)


#: entries kept in the per-schedule stacked-cost cache; a structure's
#: steady state needs at most a handful of distinct lane sets (the
#: lockstep set plus its time-ordered redo set per wire group)
_COST_ROW_CACHE = 4


def _stacked_costs(ls: LockstepSchedule, plans, resolve_upto, *,
                   with_lat: bool, mutable: bool = False):
    """Stack per-lane cost columns into ``[n, N]`` row lists.

    Resolves each lane's lazy compute costs for ``exec_seq`` up to its
    ``resolve_upto`` extent (the lazy-cost contract: an aborted lane
    resolves nothing beyond its aborting compute, a statically-rejected
    lane resolves nothing).  A repeated pass over the same bound plans
    (the cached-binding sweep steady state) produces the same matrices:
    once every lane's column is fully resolved the stacked rows are
    cached on the schedule, keyed by the exact lane set and replay
    extents.  ``Lm`` (send latencies) is filled lazily, on the first
    contention execution of a lane set.  ``mutable=True`` bypasses the
    cache both ways — the time-ordered driver fills mid-run-aborting
    lanes' cells in place as it pops, which must never touch shared
    rows.
    """
    exec_seq = ls.exec_seq
    mat_key = (tuple(id(p) for p in plans), tuple(resolve_upto))
    cached = None if mutable else ls.cost_rows.get(mat_key)
    if (cached is not None
            and all(getattr(p, "_fully_resolved", False) for p in plans)):
        Cm, Tm, Sm, Lm = cached
        if with_lat and Lm is None:
            Lm = list(np.ascontiguousarray(
                np.array([p.send_lat for p in plans],
                         dtype=np.float64).T))
            ls.cost_rows[mat_key] = (Cm, Tm, Sm, Lm)
        return Cm, Tm, Sm, Lm
    cols = []
    for k, plan in enumerate(plans):
        comp_cost = plan.comp_cost
        oracle = plan.costs
        comp_ops_k = plan.comp_ops
        for a in exec_seq[:resolve_upto[k]]:
            if comp_cost[a] is None:
                comp_cost[a] = oracle.duration(comp_ops_k[a])
        if resolve_upto[k] == len(exec_seq):
            plan._fully_resolved = True
        cols.append([0.0 if c is None else c for c in comp_cost])
    # row lists: plain list indexing per event beats ndarray row
    # slicing at sweep-typical lane counts
    Cm = list(np.ascontiguousarray(np.array(cols, dtype=np.float64).T))
    Tm = list(np.ascontiguousarray(
        np.array([p.send_time for p in plans], dtype=np.float64).T))
    Sm = list(np.ascontiguousarray(
        np.array([p.coll_step_time for p in plans], dtype=np.float64).T))
    Lm = None
    if with_lat:
        Lm = list(np.ascontiguousarray(
            np.array([p.send_lat for p in plans], dtype=np.float64).T))
    if (not mutable
            and all(getattr(p, "_fully_resolved", False) for p in plans)):
        if len(ls.cost_rows) >= _COST_ROW_CACHE:
            ls.cost_rows.pop(next(iter(ls.cost_rows)))
        ls.cost_rows[mat_key] = (Cm, Tm, Sm, Lm)
    return Cm, Tm, Sm, Lm


def _lane_timeline(plan, lane_ls: LockstepSchedule, cs, ce) -> Timeline:
    """One lane's timeline from its per-device structural compute order.

    Correct under both drivers: per-device compute order is program
    order whatever the interleaving, and per-device starts are monotone
    (the device clock never regresses), so the rows below are exactly
    the sorted spans :func:`_materialize` would build.
    """
    tl_new = TimedOp.__new__
    comp_ops = plan.comp_ops
    spans: dict = {}
    for dev, cids in lane_ls.dev_cids:
        row = []
        push = row.append
        for cid in cids:
            # frozen-dataclass __init__ dominates lane fold time at
            # this op count; filling the field dict directly keeps
            # eq/hash semantics while skipping the guarded setattrs
            top = tl_new(TimedOp)
            d = top.__dict__
            d["op"] = comp_ops[cid]
            d["start"] = cs[cid]
            d["end"] = ce[cid]
            push(top)
        spans[dev] = row
    return Timeline(spans=spans)


def _execute_lockstep(ls: LockstepSchedule, plans, lane_lss, caps_raw,
                      run: RunConfig, *,
                      detail: str) -> tuple[BatchResult, set[int]]:
    """The timed pass over one structural replay.

    Returns the per-lane outcomes plus the set of lane positions that
    must be *redone* through the time-ordered vector replay (contention
    lanes whose wire-grant order diverged from the time-ordered driver,
    or whose capacity aborts mid-run under contention) — their columns
    here are garbage and were never materialized.
    """
    head = plans[0]
    devices = head.devices
    num_devices = len(devices)
    n_lanes = len(plans)
    contention = run.contention
    full = detail != "lean"
    n_comp = head.n_computes
    n_send = len(head.send_src)
    exec_seq = ls.exec_seq
    send_slot = head.send_slot
    batch_send_ids, batch_recv_ids = head.batch_send_ids, head.batch_recv_ids
    batch_exch = head.batch_exch
    recv_slot = head.recv_slot
    coll_active, coll_nsteps = head.coll_active, head.coll_nsteps
    coll_count, coll_blocking = head.coll_count, head.coll_blocking
    send_wire, coll_wires_t = head.send_wire, head.coll_wires

    # -- per-lane gating: static pre-check, then the OOM scan ------------
    errors: list[OutOfMemoryError | None] = [None] * n_lanes
    redo: set[int] = set()
    #: computes (as exec_seq positions) each lane actually reaches;
    #: the lazy-cost contract: an aborted lane resolves nothing beyond
    #: its aborting compute, a statically-rejected lane resolves nothing
    resolve_upto = [len(exec_seq)] * n_lanes
    for k, cap in enumerate(caps_raw):
        if cap is None:
            continue
        try:
            plans[k].program.check_static_memory(cap)
        except OutOfMemoryError as exc:
            errors[k] = exc
            resolve_upto[k] = 0
    for k, cap in enumerate(caps_raw):
        if cap is None or errors[k] is not None:
            continue
        lane_ls = lane_lss[k]
        if not len(lane_ls.alloc_levels):
            continue
        viol = lane_ls.alloc_levels > cap
        if viol.any():
            if contention:
                # mid-run abort attribution (device / peak) follows the
                # driver's replay order; redo the lane scalar
                redo.add(k)
                resolve_upto[k] = 0
                continue
            j = int(np.argmax(viol))
            errors[k] = OutOfMemoryError(
                devices[lane_ls.alloc_di[j]],
                int(lane_ls.alloc_levels[j]), cap)
            resolve_upto[k] = lane_ls.alloc_pos[j] + 1

    # -- per-lane cost columns -> [n, N] matrices ------------------------
    Cm, Tm, Sm, Lm = _stacked_costs(ls, plans, resolve_upto,
                                    with_lat=contention)

    # -- lane-axis state -------------------------------------------------
    zero = np.zeros(n_lanes)
    clock = [zero] * num_devices
    coll_free = [zero] * num_devices
    recv_wait = [zero] * num_devices
    # every record below is reference-assigned (each slot posts once,
    # each compute/send executes once, and the lane vectors are never
    # mutated in place); the compute/send rows are stacked to matrices
    # after the loop so per-lane materialization is a single strided
    # column extraction
    ts_l: list = [None] * head.n_slots
    te_l: list = [None] * head.n_slots
    cs_l: list = [None] * n_comp
    ce_l: list = [None] * n_comp
    sp_l: list = [None] * n_send if full else None
    se_l: list = [None] * n_send if full else None
    coll_log: list[tuple] = []

    maximum, minimum = np.maximum, np.minimum
    where = np.where
    if contention:
        # [N]-wide mirrors of the scalar wire-arbitration state, plus
        # the per-wire driver-order witness: the last action time and
        # device that touched each wire, per lane.  A lane observing a
        # time inversion (or an equal-time tie across devices) computes
        # a grant order the time-ordered scalar driver may not produce
        # and is flagged for scalar replay.
        neg1 = np.full(n_lanes, -1)
        neg_inf = np.full(n_lanes, -np.inf)
        wire_free = [zero] * head.n_wires
        wire_exch = [neg1] * head.n_wires
        wire_last_t = [neg_inf] * head.n_wires
        wire_last_di = [neg1] * head.n_wires
        diverged = np.zeros(n_lanes, dtype=bool)

        def wire_mark(w, tarr, di, applies):
            lt = wire_last_t[w]
            ld = wire_last_di[w]
            diverged.__ior__(
                applies & ((tarr < lt) | ((tarr == lt) & (ld != di))))
            wire_last_t[w] = where(applies, tarr, lt)
            wire_last_di[w] = where(applies, di, ld)

    for ev in ls.events:
        kind = ev[0]
        if kind == _COMP:
            _, a, di, rslots = ev
            ready = clock[di]
            if rslots:
                r = rslots[0]
                arrival = te_l[r]
                in_flight = te_l[r] - ts_l[r]
                for r in rslots[1:]:
                    arrival = maximum(arrival, te_l[r])
                    in_flight = in_flight + (te_l[r] - ts_l[r])
                # scalar: only when arrival > ready, add
                # min(stall, in_flight); adding an exact 0.0 elsewhere
                # is bitwise neutral (the accumulator is never -0.0).
                # max(min(stall, in_flight), 0) is that select in one
                # ufunc: in_flight >= 0, so the min is the stall-capped
                # wait when stall > 0 and clamps to +0.0 otherwise
                recv_wait[di] = recv_wait[di] + maximum(
                    minimum(arrival - ready, in_flight), 0.0)
                start = maximum(ready, arrival)
            else:
                start = ready
            end = start + Cm[a]
            cs_l[a] = start
            ce_l[a] = end
            clock[di] = end
        elif kind == _SEND:
            _, sid, di = ev
            post = clock[di]
            t = Tm[sid]
            if contention and (t > 0.0).any():
                tpos = t > 0.0
                w = send_wire[sid]
                wire_mark(w, post, di, tpos)
                wf = wire_free[w]
                busy = tpos & (post < wf)
                start = where(busy, wf, post)
                end = start + t
                wire_free[w] = where(tpos, end, wf)
                wire_exch[w] = where(tpos, neg1, wire_exch[w])
            else:
                start = post
                end = post + t
            slot = send_slot[sid]
            ts_l[slot] = start
            te_l[slot] = end
            if full:
                sp_l[sid] = post
                se_l[sid] = end
        elif kind == _POST:
            _, bid, di = ev
            post = clock[di]
            exch = batch_exch[bid]
            for sid in batch_send_ids[bid]:
                t = Tm[sid]
                if contention and (t > 0.0).any():
                    tpos = t > 0.0
                    w = send_wire[sid]
                    wire_mark(w, post, di, tpos)
                    wf = wire_free[w]
                    we = wire_exch[w]
                    busy = tpos & (post < wf)
                    start = where(busy, wf, post)
                    # the opposing transfer of the *same* batched
                    # exchange holds the wire: the follower pays bytes
                    # only, not a second launch latency
                    dur = where(busy & (we == exch),
                                maximum(t - Lm[sid], 0.0), t)
                    end = start + dur
                    wire_free[w] = where(tpos, end, wf)
                    wire_exch[w] = where(tpos, exch, we)
                else:
                    start = post
                    end = post + t
                slot = send_slot[sid]
                ts_l[slot] = start
                te_l[slot] = end
                if full:
                    sp_l[sid] = post
                    se_l[sid] = end
        elif kind == _RECV:
            _, rid, di = ev
            slot = recv_slot[rid]
            s = ts_l[slot]
            duration = te_l[slot] - s
            clock[di] = maximum(clock[di], s) + duration
            recv_wait[di] = recv_wait[di] + duration
        elif kind == _WAIT:
            _, bid, di = ev
            for rid in batch_recv_ids[bid]:
                slot = recv_slot[rid]
                s = ts_l[slot]
                duration = te_l[slot] - s
                clock[di] = maximum(clock[di], s) + duration
                recv_wait[di] = recv_wait[di] + duration
        else:  # _COLL
            _, lid, di = ev
            post = clock[di]
            start = maximum(post, coll_free[di])
            t = start
            steps: tuple = ()
            if coll_active[lid]:
                step_time = Sm[lid]
                step_log = []
                round_time = None
                if contention:
                    wids = coll_wires_t[lid]
                    for w in wids:
                        wire_mark(w, post, di, True)
                    for _ in range(coll_nsteps[lid]):
                        step_start = t
                        for w in wids:
                            step_start = maximum(step_start, wire_free[w])
                        step_end = step_start + step_time
                        step_log.append((step_start, step_end))
                        round_time = (step_time if round_time is None
                                      else round_time + step_time)
                        for w in wids:
                            wire_free[w] = step_end
                            wire_exch[w] = neg1
                        t = step_end
                    count = coll_count[lid]
                    if count != 1.0:
                        t = t + (count - 1.0) * round_time
                        for w in wids:
                            wire_free[w] = t
                else:
                    for _ in range(coll_nsteps[lid]):
                        e = t + step_time
                        step_log.append((t, e))
                        round_time = (step_time if round_time is None
                                      else round_time + step_time)
                        t = e
                    count = coll_count[lid]
                    if count != 1.0:
                        t = t + (count - 1.0) * round_time
                steps = tuple(step_log)
            coll_free[di] = t
            coll_log.append((lid, di, post, start, t, steps))
            if coll_blocking[lid]:
                clock[di] = t

    if contention and diverged.any():
        redo.update(int(k) for k in np.nonzero(diverged)[0])

    # -- materialize live lanes ------------------------------------------
    empty = np.empty((0, n_lanes))
    CS = np.array(cs_l) if cs_l else empty
    CE = np.array(ce_l) if ce_l else empty
    if full:
        SP = np.array(sp_l) if sp_l else empty
        SE = np.array(se_l) if se_l else empty
    results: list[EventResult | None] = [None] * n_lanes
    for k, plan in enumerate(plans):
        if errors[k] is not None or k in redo:
            continue
        lane_ls = lane_lss[k]
        cs = CS[:, k].tolist()
        ce = CE[:, k].tolist()
        lane_tl = _lane_timeline(plan, lane_ls, cs, ce)
        clock_k = [float(clock[di][k]) for di in range(num_devices)]
        recv_k = [float(recv_wait[di][k]) for di in range(num_devices)]
        coll_k = [
            (lid, di, float(post[k]), float(start[k]), float(end[k]),
             tuple((float(s[k]), float(e[k])) for s, e in steps))
            for lid, di, post, start, end, steps in coll_log
        ]
        if full:
            sp = SP[:, k].tolist()
            se = SE[:, k].tolist()
            mem_k = [(di, cs[cid] if is_alloc else ce[cid], delta, level,
                      cid)
                     for di, cid, delta, level, is_alloc
                     in lane_ls.mem_trace]
        else:
            sp = se = []
            mem_k = []
        mem_peak = (lane_ls.mem_peak if plan.program.tracks_memory
                    else None)
        results[k] = _materialize(
            plan, exec_seq, cs, ce, ls.post_seq, sp, sp, se,
            ls.send_batched, coll_k, mem_k, clock_k, recv_k, mem_peak,
            detail=detail, timeline=lane_tl)
    return BatchResult(results=results, errors=errors), redo


class _TimeTables:
    """Cost-independent lookup tables of the time-ordered driver.

    The scalar ``peek``/``step`` walk the CSR dependency arrays per
    visit; the vector driver visits each blocking predicate once per
    *cohort*, so the per-compute local/remote splits are precomputed
    (in dependency order — the fold order every timing expression
    inherits) and cached on the structural replay.
    """

    __slots__ = ("comp_ldeps", "comp_rslots")

    def __init__(self, plan: ExecutablePlan):
        dep_ptr = plan.dep_ptr
        dep_remote, dep_idx = plan.dep_remote, plan.dep_idx
        ldeps: list[tuple] = []
        rslots: list[tuple] = []
        for a in range(plan.n_computes):
            ld: list[int] = []
            rs: list[int] = []
            for e in range(dep_ptr[a], dep_ptr[a + 1]):
                if dep_remote[e]:
                    rs.append(dep_idx[e])
                else:
                    ld.append(dep_idx[e])
            ldeps.append(tuple(ld))
            rslots.append(tuple(rs))
        self.comp_ldeps = ldeps
        self.comp_rslots = rslots


def _mem_by_cid(lane_ls: LockstepSchedule) -> dict:
    """Memory-trace entries grouped per compute, lazily cached.

    The time-ordered driver emits memory events in each lane's own pop
    order; deltas and watermark levels are structural, so grouping the
    structural trace by compute id lets a lane rebuild its driver-order
    log from its compute pop sequence alone.
    """
    m = lane_ls.mem_by_cid
    if m is None:
        m = {}
        for di, cid, delta, level, is_alloc in lane_ls.mem_trace:
            m.setdefault(cid, []).append((di, delta, level, is_alloc))
        lane_ls.mem_by_cid = m
    return m


#: peek-cache sentinel — distinguishes "never computed / stale" from a
#: cached ``None`` ("head is flag-blocked", still a valid cache entry)
_UNSET = object()


class _Cohort:
    """Lanes sharing one structural state of the time-ordered driver.

    Blocking predicates read only flags (``comp_done`` / ``posted`` /
    ``batch_posted``) and cursors — all here, all shared cohort-wide —
    so one peek per device serves every lane; only *times* differ, and
    those live in the group-global ``[*, N]`` arrays indexed by
    ``lanes``.
    """

    __slots__ = ("lanes", "cursors", "comp_done", "posted",
                 "batch_posted", "done", "peeks")

    def __init__(self, lanes, cursors, comp_done, posted, batch_posted,
                 done):
        self.lanes = lanes              # np.intp, ascending
        self.cursors = cursors          # per-device next action index
        self.comp_done = comp_done
        self.posted = posted
        self.batch_posted = batch_posted
        self.done = done                # actions fully executed
        self.peeks = None               # per-device peek cache (lazy)


def _execute_time_ordered(ls: LockstepSchedule, plans, lane_lss,
                          caps_raw, run: RunConfig, *,
                          detail: str) -> BatchResult:
    """A vectorized twin of the scalar time-ordered contention driver.

    Per-lane event cursors advance through the plan in each lane's own
    grant-time order.  Lanes sharing a structural state — the cursor
    tuple plus the posted-group bits — form a cohort; each iteration
    pops the least-advanced cohort once: one vectorized ``peek`` per
    device over the cohort's lanes, the globally-earliest device chosen
    per lane with the scalar driver's exact tie-break (strict ``<``,
    ascending device), and the scalar ``step`` expressions evaluated
    lane-wise for each chosen device.  Lanes choosing different devices
    split the cohort; cohorts whose structural states re-converge merge
    (timing state is global, so a merge is just a lane-set union).

    Mid-run capacity aborts happen in-batch: the violating allocations
    are structural, so each risky lane dies at whichever violating
    compute *its own* pop order reaches first — the scalar abort point
    — with the same device/peak attribution; its lazy compute costs
    resolve in pop order up to and including the aborting compute,
    preserving the lazy-cost contract.

    Every produced :class:`EventResult` is bit-identical to a scalar
    ``execute_plan(plan, run, capacity_bytes=cap, detail=detail)`` of
    that lane alone: the fold orders (dependency order for arrivals and
    in-flight sums, wire-id order for collective steps, per-device
    program order for receives) and tie-breaking selects mirror the
    scalar core expression for expression.
    """
    head = plans[0]
    devices = head.devices
    num_devices = len(devices)
    n = len(plans)
    full = detail != "lean"
    prefetch = head.prefetch
    codes, args = head.codes, head.args
    send_slot, send_wire = head.send_slot, head.send_wire
    batch_send_ids, batch_recv_ids = head.batch_send_ids, head.batch_recv_ids
    batch_exch = head.batch_exch
    recv_slot = head.recv_slot
    coll_active, coll_nsteps = head.coll_active, head.coll_nsteps
    coll_count, coll_blocking = head.coll_count, head.coll_blocking
    coll_wires_t = head.coll_wires
    n_comp = head.n_computes
    n_send = len(head.send_src)
    n_slots = head.n_slots
    n_wires = head.n_wires

    # -- per-lane gating: static pre-check, mid-run violation map --------
    errors: list[OutOfMemoryError | None] = [None] * n
    results: list[EventResult | None] = [None] * n
    resolve_upto = [len(ls.exec_seq)] * n
    #: lanes that will abort mid-run: their costs resolve in pop order
    risky: dict[int, ExecutablePlan] = {}
    #: cid -> [(lane, level, device index)] violating allocations
    viol_map: dict[int, list[tuple[int, float, int]]] = {}
    for k, cap in enumerate(caps_raw):
        if cap is None:
            continue
        try:
            plans[k].program.check_static_memory(cap)
        except OutOfMemoryError as exc:
            errors[k] = exc
            resolve_upto[k] = 0
            continue
        lane_ls = lane_lss[k]
        if not len(lane_ls.alloc_levels):
            continue
        viol = lane_ls.alloc_levels > cap
        if viol.any():
            risky[k] = plans[k]
            resolve_upto[k] = 0
            lane_seq = lane_ls.exec_seq
            for j in np.nonzero(viol)[0]:
                j = int(j)
                cid = lane_seq[lane_ls.alloc_pos[j]]
                viol_map.setdefault(cid, []).append(
                    (k, float(lane_ls.alloc_levels[j]),
                     lane_ls.alloc_di[j]))

    Cm, Tm, Sm, Lm = _stacked_costs(ls, plans, resolve_upto,
                                    with_lat=True, mutable=bool(risky))

    tt = ls.time_tables
    if tt is None:
        tt = ls.time_tables = _TimeTables(head)
    comp_ldeps, comp_rslots = tt.comp_ldeps, tt.comp_rslots

    # -- group-global timing state, [*, N] -------------------------------
    CLK = np.zeros((num_devices, n))
    CF = np.zeros((num_devices, n))     # per-device NIC cursors
    RW = np.zeros((num_devices, n))
    TS = np.zeros((n_slots, n))
    TE = np.zeros((n_slots, n))
    CS = np.zeros((n_comp, n))
    CE = np.zeros((n_comp, n))
    WF = np.zeros((n_wires, n))
    WE = np.full((n_wires, n), -1, dtype=np.int64)
    tracked_any = any(p.program.tracks_memory for p in plans)
    if full:
        SP = np.zeros((n_send, n))
        SS = np.zeros((n_send, n))
        SE_ = np.zeros((n_send, n))
        #: per-lane driver-order send posting / compute pop logs — the
        #: only per-lane bookkeeping the vector pops do, and only at
        #: full detail (the comm-sort and mem-event tie-breaks are the
        #: sole consumers of driver order)
        pop_post: list[list[int]] | None = [[] for _ in range(n)]
        pop_comp: list[list[int]] | None = (
            [[] for _ in range(n)] if tracked_any else None)
    else:
        SP = SS = SE_ = None
        pop_post = pop_comp = None
    #: lid -> (device, post, start, end, [(step start, step end), ...])
    coll_recs: dict[int, tuple] = {}

    maximum, minimum, where = np.maximum, np.minimum, np.where

    def peek_vec(co: _Cohort, di: int, X):
        """Earliest execution times of the device's head, None if blocked.

        ``X`` indexes the cohort's lanes into the [*, N] state arrays —
        ``slice(None)`` when the cohort holds every lane (views, no
        fancy-index copies), its lane array otherwise.
        """
        i = co.cursors[di]
        dev_codes = codes[di]
        if i >= len(dev_codes):
            return None
        code = dev_codes[i]
        a = args[di][i]
        if code == OP_COMPUTE:
            comp_done = co.comp_done
            for x in comp_ldeps[a]:
                if not comp_done[x]:
                    return None
            at = CLK[di, X]
            if prefetch:
                posted = co.posted
                rs = comp_rslots[a]
                for r in rs:
                    if not posted[r]:
                        return None
                for r in rs:
                    at = maximum(at, TE[r, X])
            return at
        if code == OP_RECV and not prefetch:
            slot = recv_slot[a]
            if not co.posted[slot]:
                return None
            s = TS[slot, X]
            cl = CLK[di, X]
            return where(cl >= s, cl, s)
        if code == OP_BATCH and not prefetch:
            if not co.batch_posted[a]:
                return CLK[di, X]  # the posts themselves are due
            earliest = None
            for rid in batch_recv_ids[a]:
                slot = recv_slot[rid]
                if not co.posted[slot]:
                    return None
                s = TS[slot, X]
                earliest = s if earliest is None else minimum(earliest, s)
            cl = CLK[di, X]
            return where(cl >= earliest, cl, earliest)
        return CLK[di, X]  # sends, free posts, collectives, flush, step

    def step_vec(co: _Cohort, di: int, L, X) -> bool:
        """Execute one action lane-wise; False if the device must block.

        ``L`` is the cohort's lane array (bookkeeping: pop logs, lazy
        cost resolution, OOM kills); ``X`` is the state-array indexer —
        ``slice(None)`` when the cohort holds every lane.
        """
        i = co.cursors[di]
        code = codes[di][i]
        a = args[di][i]
        if code == OP_COMPUTE:
            ready = CLK[di, X]
            rs = comp_rslots[a] if prefetch else ()
            if rs:
                r = rs[0]
                arrival = TE[r, X]
                in_flight = arrival - TS[r, X]
                for r in rs[1:]:
                    te = TE[r, X]
                    arrival = maximum(arrival, te)
                    in_flight = in_flight + (te - TS[r, X])
                # the lockstep formula (see _execute_lockstep): the
                # scalar stall-vs-in-flight select in one ufunc, exact
                RW[di, X] = RW[di, X] + maximum(
                    minimum(arrival - ready, in_flight), 0.0)
                start = maximum(ready, arrival)
            else:
                start = ready
            row = Cm[a]
            if risky:
                for lane in L.tolist():
                    p = risky.get(lane)
                    if p is not None:
                        c = p.comp_cost[a]
                        if c is None:
                            c = p.costs.duration(p.comp_ops[a])
                            p.comp_cost[a] = c
                        row[lane] = c
            end = start + row[X]
            CS[a, X] = start
            CE[a, X] = end
            CLK[di, X] = end
            co.comp_done[a] = 1
            if pop_comp is not None:
                for lane in L.tolist():
                    pop_comp[lane].append(a)
            hit = viol_map.get(a)
            if hit:
                dead = []
                for lane, level, adi in hit:
                    if (L == lane).any():
                        errors[lane] = OutOfMemoryError(
                            devices[adi], int(level), caps_raw[lane])
                        dead.append(lane)
                if dead:
                    co.lanes = co.lanes[~np.isin(co.lanes, dead)]
            return True
        if code == OP_SEND:
            post = CLK[di, X]
            t = Tm[a][X]
            tpos = t > 0.0
            slot = send_slot[a]
            if tpos.any():
                w = send_wire[a]
                wf = WF[w, X]
                busy = tpos & (post < wf)
                start = where(busy, wf, post)
                end = start + t
                WF[w, X] = where(tpos, end, wf)
                WE[w, X] = where(tpos, -1, WE[w, X])
            else:
                start = post
                end = post + t
            TS[slot, X] = start
            TE[slot, X] = end
            co.posted[slot] = 1
            if full:
                SP[a, X] = post
                SS[a, X] = start
                SE_[a, X] = end
                for lane in L.tolist():
                    pop_post[lane].append(a)
            return True
        if code == OP_COLL:
            post = CLK[di, X]
            cf = CF[di, X]
            start = where(post >= cf, post, cf)
            t = start
            rec = coll_recs.get(a)
            if rec is None:
                rec = (di, np.zeros(n), np.zeros(n), np.zeros(n), [])
                coll_recs[a] = rec
            if coll_active[a]:
                step_time = Sm[a][X]
                wids = coll_wires_t[a]
                steps = rec[4]
                round_time = None
                for si in range(coll_nsteps[a]):
                    step_start = t
                    for w in wids:
                        step_start = maximum(step_start, WF[w, X])
                    step_end = step_start + step_time
                    if len(steps) <= si:
                        steps.append((np.zeros(n), np.zeros(n)))
                    steps[si][0][X] = step_start
                    steps[si][1][X] = step_end
                    round_time = (step_time if round_time is None
                                  else round_time + step_time)
                    for w in wids:
                        WF[w, X] = step_end
                        WE[w, X] = -1
                    t = step_end
                count = coll_count[a]
                if count != 1.0:
                    # remaining rounds repeat the first back-to-back;
                    # the wires stay held for the whole run
                    t = t + (count - 1.0) * round_time
                    for w in wids:
                        WF[w, X] = t
            CF[di, X] = t
            rec[1][X] = post
            rec[2][X] = start
            rec[3][X] = t
            if coll_blocking[a]:
                CLK[di, X] = t
            return True
        if code == OP_RECV:
            if prefetch:
                return True  # free post; arrival is awaited by computes
            slot = recv_slot[a]
            s = TS[slot, X]
            duration = TE[slot, X] - s
            cl = CLK[di, X]
            CLK[di, X] = where(cl >= s, cl, s) + duration
            RW[di, X] = RW[di, X] + duration
            return True
        if code == OP_BATCH:
            if not co.batch_posted[a]:
                exch = batch_exch[a]
                post = CLK[di, X]
                for sid in batch_send_ids[a]:
                    t = Tm[sid][X]
                    tpos = t > 0.0
                    slot = send_slot[sid]
                    if tpos.any():
                        w = send_wire[sid]
                        wf = WF[w, X]
                        we = WE[w, X]
                        busy = tpos & (post < wf)
                        start = where(busy, wf, post)
                        # the opposing transfer of the *same* batched
                        # exchange holds the wire: the follower pays
                        # bytes only, not a second launch latency
                        dur = where(busy & (we == exch),
                                    maximum(t - Lm[sid][X], 0.0), t)
                        end = start + dur
                        WF[w, X] = where(tpos, end, wf)
                        WE[w, X] = where(tpos, exch, we)
                    else:
                        start = post
                        end = post + t
                    TS[slot, X] = start
                    TE[slot, X] = end
                    co.posted[slot] = 1
                    if full:
                        SP[sid, X] = post
                        SS[sid, X] = start
                        SE_[sid, X] = end
                        for lane in L.tolist():
                            pop_post[lane].append(sid)
                co.batch_posted[a] = 1
            if not prefetch:
                recvs = batch_recv_ids[a]
                posted = co.posted
                for rid in recvs:
                    if not posted[recv_slot[rid]]:
                        # the posts were the progress; the cohort keeps
                        # its cursor and re-peeks once the senders post
                        return False
                for rid in recvs:
                    slot = recv_slot[rid]
                    s = TS[slot, X]
                    duration = TE[slot, X] - s
                    cl = CLK[di, X]
                    CLK[di, X] = where(cl >= s, cl, s) + duration
                    RW[di, X] = RW[di, X] + duration
            return True
        return True  # OP_NOOP: flush/step; simulate_training charges it

    # -- the cohort pop loop ---------------------------------------------
    live = [k for k in range(n) if errors[k] is None]
    total = head.n_actions
    pool: dict[tuple, _Cohort] = {}
    finished: list[_Cohort] = []

    def pool_add(co: _Cohort) -> None:
        if not len(co.lanes):
            return
        if co.done == total:
            finished.append(co)
            return
        key = (tuple(co.cursors), bytes(co.batch_posted))
        ex = pool.get(key)
        if ex is not None:
            ex.lanes = np.sort(np.concatenate((ex.lanes, co.lanes)))
            ex.peeks = None  # lane set changed: cached vectors are stale
        else:
            pool[key] = co

    if live:
        pool_add(_Cohort(
            lanes=np.array(live, dtype=np.intp),
            cursors=[0] * num_devices,
            comp_done=bytearray(n_comp),
            posted=bytearray(n_slots),
            batch_posted=bytearray(len(batch_send_ids)),
            done=0,
        ))
    full_slice = slice(None)
    while pool:
        # the least-advanced cohort steps first: cohorts can only merge
        # at equal structural progress (the key fixes it), so keeping
        # the pool's progress spread tight maximizes re-convergence
        if len(pool) == 1:
            key, best = next(iter(pool.items()))
        else:
            key = best = best_p = None
            for k, co in pool.items():
                p = co.done + sum(co.batch_posted)
                if best_p is None or p < best_p:
                    key, best, best_p = k, co, p
        del pool[key]
        L = best.lanes
        X = full_slice if len(L) == n else L
        # per-device peek cache: a non-None peek reads only that
        # device's clock and transfer slots already posted (whose times
        # are final), so it stays valid until the device itself steps;
        # a cached None (blocked head) can only flip after a step that
        # sets flags.  _UNSET marks entries that must be recomputed.
        peeks = best.peeks
        if peeks is None:
            peeks = best.peeks = [_UNSET] * num_devices
        # fold per-device peeks; ``uni`` tracks the winning device while
        # every lane still agrees so the common case skips np.unique
        best_at = best_di = uni = None
        for di in range(num_devices):
            at = peeks[di]
            if at is _UNSET:
                at = peek_vec(best, di, X)
                peeks[di] = at
            if at is None:
                continue
            if best_at is None:
                best_at, uni = at, di
            else:
                m = at < best_at
                if m.any():
                    if m.all():
                        best_at, best_di, uni = at, None, di
                    else:
                        if best_di is None:
                            best_di = np.full(len(L), uni, dtype=np.intp)
                        best_at = where(m, at, best_at)
                        best_di = where(m, di, best_di)
                        uni = None
        if best_at is None:  # pragma: no cover - structurally impossible
            # blocking is flag-monotone, so any pop order completes
            # whenever the greedy structural pass did
            raise SchedulingError(
                f"{head.program.name}: simulation deadlock"
            )
        if uni is not None:
            # whole cohort agrees: advance in place, no split machinery
            code = codes[uni][best.cursors[uni]]
            n_before = len(L)
            if step_vec(best, uni, L, X):
                best.cursors[uni] += 1
                best.done += 1
            if len(best.lanes) != n_before:
                best.peeks = None  # OOM kill shrank the lane set
            else:
                peeks[uni] = _UNSET
                if (code == OP_COMPUTE or code == OP_SEND
                        or code == OP_BATCH):
                    # the step set flags: blocked heads may now be due
                    for j in range(num_devices):
                        if peeks[j] is None:
                            peeks[j] = _UNSET
            pool_add(best)
            continue
        best.peeks = None  # splitting: every child re-peeks
        for dv in np.unique(best_di):
            dv = int(dv)
            sub = L[best_di == dv]
            if len(sub) == len(L):
                child = best  # whole cohort agrees: advance in place
            else:
                child = _Cohort(
                    lanes=sub,
                    cursors=list(best.cursors),
                    comp_done=bytearray(best.comp_done),
                    posted=bytearray(best.posted),
                    batch_posted=bytearray(best.batch_posted),
                    done=best.done,
                )
            if step_vec(child, dv, sub, sub):
                child.cursors[dv] += 1
                child.done += 1
            pool_add(child)

    # -- materialize finished lanes --------------------------------------
    coll_order = [(ev[1], ev[2]) for ev in ls.events if ev[0] == _COLL]
    for co in finished:
        for k in co.lanes.tolist():
            plan = plans[k]
            lane_ls = lane_lss[k]
            cs = CS[:, k].tolist()
            ce = CE[:, k].tolist()
            lane_tl = _lane_timeline(plan, lane_ls, cs, ce)
            clock_k = CLK[:, k].tolist()
            recv_k = RW[:, k].tolist()
            # per-device program order — all the (post, start, device)
            # sort key needs, as in the lockstep materializer
            coll_k = []
            for lid, cdi in coll_order:
                _cdi, postv, startv, endv, steps = coll_recs[lid]
                coll_k.append(
                    (lid, cdi, float(postv[k]), float(startv[k]),
                     float(endv[k]),
                     tuple((float(s[k]), float(e[k])) for s, e in steps)))
            tracked_k = plan.program.tracks_memory
            if full:
                sp = SP[:, k].tolist()
                ss = SS[:, k].tolist()
                se = SE_[:, k].tolist()
                post_seq_k = pop_post[k]
                mem_k = []
                if tracked_k and pop_comp is not None:
                    mbc = _mem_by_cid(lane_ls)
                    for cid in pop_comp[k]:
                        ent = mbc.get(cid)
                        if ent:
                            s_, e_ = cs[cid], ce[cid]
                            for adi, delta, level, is_alloc in ent:
                                mem_k.append(
                                    (adi, s_ if is_alloc else e_,
                                     delta, level, cid))
            else:
                sp = ss = se = []
                post_seq_k = []
                mem_k = []
            results[k] = _materialize(
                plan, ls.exec_seq, cs, ce, post_seq_k, sp, ss, se,
                ls.send_batched, coll_k, mem_k, clock_k, recv_k,
                lane_ls.mem_peak if tracked_k else None,
                detail=detail, timeline=lane_tl)
    return BatchResult(results=results, errors=errors)


def _plan_congruence(plan: ExecutablePlan) -> str:
    """``plan.congruence_key``, memoized on the (shared) program object.

    Retimed plans are fresh dataclass instances, so the lazy per-plan
    cache alone would re-hash once per lane; every retime of one cached
    structure shares its program, which makes the program the natural
    memo site.
    """
    program = plan.program
    key = getattr(program, _CONGRUENCE_ATTR, None)
    if key is None:
        key = plan.congruence_key
        try:
            setattr(program, _CONGRUENCE_ATTR, key)
        except AttributeError:  # pragma: no cover - Program is mutable
            pass
    return key


def execute_many(
    items,
    run: RunConfig | None = None,
    *,
    detail: str = "full",
) -> BatchResult:
    """Execute ``(plan, capacity_bytes)`` pairs, batching where legal.

    Groups lanes by control-flow congruence (plans sharing a program
    object trivially agree; so do structurally congruent plans of
    *different* programs — see
    :attr:`~repro.actions.lowering.ExecutablePlan.congruence_key`),
    executes each multi-lane group through :func:`execute_batch` and
    everything else through the scalar core, and returns outcomes in
    item order.  Contention lanes batch at every detail level — lean
    through the lockstep pass with time-ordered recovery, full detail
    through the time-ordered replay directly; only singleton groups
    take the (reason-coded) scalar path.
    """
    run = run or RunConfig()
    items = list(items)
    results: list[EventResult | None] = [None] * len(items)
    errors: list[OutOfMemoryError | None] = [None] * len(items)
    groups: dict[str, list[int]] = {}
    for idx, (plan, _) in enumerate(items):
        groups.setdefault(_plan_congruence(plan), []).append(idx)

    for lane_ids in groups.values():
        if len(lane_ids) == 1:
            idx = lane_ids[0]
            plan, cap = items[idx]
            results[idx], errors[idx] = _scalar_lane(
                plan, run, cap, detail=detail, reason="singleton")
            continue
        sub = execute_batch(
            PlanBatch.from_plans([items[i][0] for i in lane_ids],
                                 [items[i][1] for i in lane_ids]),
            run, detail=detail)
        for pos, idx in enumerate(lane_ids):
            results[idx] = sub.results[pos]
            errors[idx] = sub.errors[pos]
    return BatchResult(results=results, errors=errors)
