"""Reference event core: the pre-lowering interpreter, kept verbatim.

This is the dict-walking implementation :mod:`repro.runtime.events`
shipped before programs were lowered to an
:class:`~repro.actions.lowering.ExecutablePlan`.  It interprets the
Program IR directly — ``(device, tag)`` tuple keys, ``frozenset`` wire
identities, per-action ``isinstance`` dispatch — and is retained for
two jobs:

* **parity oracle**: ``tests/test_program_parity.py`` pins the lowered
  core bit-identical to this implementation (timeline spans, recv
  waits, comm events, memory watermarks, collectives) across the full
  schedule-family × prefetch × batching matrix;
* **perf baseline**: ``benchmarks/bench_perf_core.py`` measures the
  lowered core's speedup against this loop and commits the ratio to
  ``BENCH_core.json``.

Semantics documentation lives with the production core in
:mod:`repro.runtime.events`; the two must only ever differ in
representation.
"""

from __future__ import annotations

from ..actions.collectives import ring_pairs, ring_step_count
from ..actions.ops import (
    Action,
    BatchedP2P,
    CollectiveOp,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)
from ..actions.program import Program, compute_key
from ..config import RunConfig
from ..errors import OutOfMemoryError, SchedulingError
from ..types import TimedOp, Timeline
from .costs import CostOracle
from .events import CollectiveEvent, CommEvent, EventResult, MemoryEvent


class _Wire:
    """Per-pair link state for the contention model."""

    __slots__ = ("free", "last_exchange")

    def __init__(self) -> None:
        self.free = 0.0
        #: tag set of the batched exchange whose transfer last held the
        #: wire — the latency waiver applies only within one exchange
        self.last_exchange: frozenset | None = None


def execute_program_reference(
    program: Program,
    costs: CostOracle,
    run: RunConfig | None = None,
    capacity_bytes: int | None = None,
) -> EventResult:
    """Time ``program`` against ``costs`` with the pre-lowering loop."""
    run = run or RunConfig()
    tracked = program.tracks_memory
    if capacity_bytes is not None:
        if not tracked:
            raise SchedulingError(
                f"{program.name}: capacity enforcement needs a "
                "resource-annotated program (compile with resources=...)"
            )
        program.check_static_memory(capacity_bytes)
    prefetch = program.prefetch
    contention = run.contention

    cursors = {d: 0 for d in program.actions}
    clock = {d: 0.0 for d in program.actions}
    recv_wait = {d: 0.0 for d in program.actions}
    order: dict[int, list[Action]] = {d: [] for d in program.actions}
    produced: dict[tuple, float] = {}
    transfers: dict[tuple[int, Tag], CommEvent] = {}
    posted_groups: set[tuple[int, int]] = set()
    wires: dict[frozenset, _Wire] = {}
    timeline = Timeline()
    comm: list[CommEvent] = []
    collectives: list[CollectiveEvent] = []
    coll_free = {d: 0.0 for d in program.actions}
    mem_level = dict(program.static_bytes)
    mem_peak = dict(mem_level)
    mem_events: list[MemoryEvent] = []

    def account_memory(device: int, key: tuple, start: float,
                       end: float) -> None:
        alloc = program.alloc_bytes(key)
        if alloc:
            level = mem_level[device] + alloc
            mem_level[device] = level
            mem_events.append(MemoryEvent(
                device=device, time=start, delta=+alloc, level=level,
                key=key,
            ))
            if level > mem_peak[device]:
                mem_peak[device] = level
                if capacity_bytes is not None and level > capacity_bytes:
                    raise OutOfMemoryError(device, int(level),
                                           capacity_bytes)
        free = program.free_bytes(key)
        if free:
            level = mem_level[device] - free
            mem_level[device] = level
            mem_events.append(MemoryEvent(
                device=device, time=end, delta=-free, level=level,
                key=key,
            ))

    def post_send(device: int, send: Send,
                  exchange: frozenset | None) -> None:
        tag, dst = send.tag, send.peer
        t_comm = costs.transfer_time(device, dst, tag.stage)
        post = start = clock[device]
        duration = t_comm
        if contention and t_comm > 0.0:
            wire = wires.setdefault(
                frozenset((costs.global_rank(device),
                           costs.global_rank(dst))), _Wire())
            if post < wire.free:
                start = wire.free
                if exchange is not None and wire.last_exchange == exchange:
                    duration = max(0.0, t_comm
                                   - costs.link_latency(device, dst))
            wire.free = start + duration
            wire.last_exchange = exchange
        event = CommEvent(
            tag=tag, src=device, dst=dst, post=post, start=start,
            end=start + duration,
            nbytes=program.tensor_bytes.get(tag, 0.0),
            batched=exchange is not None,
        )
        transfers[(dst, tag)] = event
        comm.append(event)

    def run_collective(device: int, coll: CollectiveOp) -> None:
        post = clock[device]
        start = max(post, coll_free[device])
        pairs = ring_pairs(coll.group)
        steps: list[tuple[float, float]] = []
        t = start
        if pairs and coll.nbytes > 0 and coll.count > 0:
            chunk = coll.nbytes / len(coll.group)
            step_time = max(
                costs.collective_link_time(a, b, chunk) for a, b in pairs
            )
            round_time = 0.0
            for _ in range(ring_step_count(len(coll.group))):
                step_start = t
                if contention:
                    ws = [wires.setdefault(frozenset(pair), _Wire())
                          for pair in pairs]
                    step_start = max([t] + [w.free for w in ws])
                step_end = step_start + step_time
                steps.append((step_start, step_end))
                round_time += step_time
                if contention:
                    for w in ws:
                        w.free = step_end
                        w.last_exchange = None
                t = step_end
            if coll.count != 1.0:
                t += (coll.count - 1.0) * round_time
                if contention:
                    for pair in pairs:
                        wires[frozenset(pair)].free = t
        end = t
        coll_free[device] = end
        collectives.append(CollectiveEvent(
            op=coll, device=device, post=post, start=start, end=end,
            steps=tuple(steps),
        ))
        if coll.blocking:
            clock[device] = end

    def blocking_recv(device: int, recv: Recv) -> bool:
        event = transfers.get((device, recv.tag))
        if event is None:
            return False
        start = max(clock[device], event.start)
        clock[device] = start + event.duration
        recv_wait[device] += event.duration
        return True

    def try_compute(device: int, act: Action) -> bool:
        key = compute_key(act)
        deps = program.deps[key]
        ready = clock[device]
        arrival = None
        in_flight = 0.0
        for dep in deps:
            if dep.tag is None:
                done_at = produced.get(dep.producer)
                if done_at is None:
                    return False
                ready = max(ready, done_at)
            elif prefetch:
                event = transfers.get((device, dep.tag))
                if event is None:
                    return False  # sender hasn't posted yet
                arrival = event.end if arrival is None else max(arrival,
                                                                event.end)
                in_flight += event.duration
        start = ready
        if arrival is not None and arrival > ready:
            recv_wait[device] += min(arrival - ready, in_flight)
            start = arrival
        op = program.ops[key]
        end = start + costs.duration(op)
        timeline.add(TimedOp(op=op, start=start, end=end))
        clock[device] = end
        produced[key] = end
        if tracked:
            account_memory(device, key, start, end)
        return True

    def step(device: int, index: int, act: Action) -> bool:
        if compute_key(act) is not None:
            return try_compute(device, act)
        if isinstance(act, Send):
            post_send(device, act, exchange=None)
            return True
        if isinstance(act, CollectiveOp):
            run_collective(device, act)
            return True
        if isinstance(act, Recv):
            if prefetch:
                return True
            return blocking_recv(device, act)
        if isinstance(act, BatchedP2P):
            if (device, index) not in posted_groups:
                exchange = frozenset(
                    [s.tag for s in act.sends] + [r.tag for r in act.recvs]
                )
                for send in act.sends:
                    post_send(device, send, exchange=exchange)
                posted_groups.add((device, index))
            if not prefetch:
                if any((device, r.tag) not in transfers for r in act.recvs):
                    return False
                for recv in act.recvs:
                    blocking_recv(device, recv)
            return True
        if isinstance(act, (Flush, OptimizerStep)):
            return True
        raise SchedulingError(f"unknown action {act!r} in program")

    def peek(device: int) -> float | None:
        actions = program.actions[device]
        if cursors[device] >= len(actions):
            return None
        act = actions[cursors[device]]
        key = compute_key(act)
        if key is not None:
            at = clock[device]
            for dep in program.deps[key]:
                if dep.tag is None:
                    done_at = produced.get(dep.producer)
                    if done_at is None:
                        return None
                    at = max(at, done_at)
                elif prefetch:
                    event = transfers.get((device, dep.tag))
                    if event is None:
                        return None
                    at = max(at, event.end)
            return at
        if isinstance(act, Recv) and not prefetch:
            event = transfers.get((device, act.tag))
            if event is None:
                return None
            return max(clock[device], event.start)
        if isinstance(act, BatchedP2P) and not prefetch:
            if (device, cursors[device]) not in posted_groups:
                return clock[device]
            events = [transfers.get((device, r.tag)) for r in act.recvs]
            if any(e is None for e in events):
                return None
            return max(clock[device], min(e.start for e in events))
        return clock[device]

    def run_greedy() -> None:
        done = 0
        while done < total:
            progressed = False
            for device, actions in program.actions.items():
                while cursors[device] < len(actions):
                    act = actions[cursors[device]]
                    if not step(device, cursors[device], act):
                        break
                    order[device].append(act)
                    cursors[device] += 1
                    done += 1
                    progressed = True
            if not progressed and done < total:
                _deadlock()

    def run_time_ordered() -> None:
        done = 0
        while done < total:
            best_at = best_device = None
            for device in program.actions:
                at = peek(device)
                if at is not None and (best_at is None or at < best_at):
                    best_at, best_device = at, device
            if best_device is None:
                _deadlock()
            act = program.actions[best_device][cursors[best_device]]
            if step(best_device, cursors[best_device], act):
                order[best_device].append(act)
                cursors[best_device] += 1
                done += 1

    def _deadlock() -> None:
        heads = {
            d: str(acts[cursors[d]])
            for d, acts in program.actions.items()
            if cursors[d] < len(acts)
        }
        raise SchedulingError(
            f"{program.name}: simulation deadlock; heads = {heads}"
        )

    total = program.action_count()
    if contention:
        run_time_ordered()
    else:
        run_greedy()

    if tracked:
        for device, level in mem_level.items():
            drift = level - program.static_bytes[device]
            if abs(drift) > max(64.0, 1e-9 * mem_peak[device]):
                raise AssertionError(
                    f"activation leak on device {device}: {drift} bytes"
                )

    for spans in timeline.spans.values():
        spans.sort(key=lambda t: t.start)
    comm.sort(key=lambda e: (e.post, e.start))
    collectives.sort(key=lambda e: (e.post, e.start, e.device))
    return EventResult(timeline=timeline, recv_wait=recv_wait, comm=comm,
                       order=order, mem_peak=mem_peak, mem_events=mem_events,
                       collectives=collectives, device_end=dict(clock))
