"""Discrete-event runtime: cost oracles, simulator, memory, metrics."""

from .costs import AbstractCosts, ConcreteCosts, CostOracle
from .memory import (
    MemoryStats,
    memory_stats,
    memory_stats_from_result,
    static_memory,
)
from .metrics import (
    BubbleStats,
    bubble_stats,
    compute_time_lower_bound,
    kind_time,
    steady_state_bubble_ratio,
    throughput_seq_per_s,
)
from .events import (
    CollectiveEvent,
    CommEvent,
    EventResult,
    MemoryEvent,
    execute_plan,
    execute_program,
)
from .events_ref import execute_program_reference
from .batched import (
    BatchResult,
    PlanBatch,
    execute_batch,
    execute_many,
)
from .simulator import (
    SimResult,
    TrainingSimResult,
    sim_result_from_events,
    simulate,
    simulate_ordering,
    simulate_program,
    simulate_training,
)

__all__ = [
    "AbstractCosts",
    "BatchResult",
    "BubbleStats",
    "CollectiveEvent",
    "CommEvent",
    "ConcreteCosts",
    "CostOracle",
    "EventResult",
    "MemoryEvent",
    "MemoryStats",
    "PlanBatch",
    "SimResult",
    "TrainingSimResult",
    "bubble_stats",
    "compute_time_lower_bound",
    "execute_batch",
    "execute_many",
    "execute_plan",
    "execute_program",
    "execute_program_reference",
    "sim_result_from_events",
    "kind_time",
    "memory_stats",
    "memory_stats_from_result",
    "simulate",
    "simulate_ordering",
    "simulate_program",
    "simulate_training",
    "static_memory",
    "steady_state_bubble_ratio",
    "throughput_seq_per_s",
]
