"""Text visualisation of schedules."""

from .gantt import render_gantt, render_order
from .trace import timeline_to_chrome_trace, write_chrome_trace

__all__ = [
    "render_gantt",
    "render_order",
    "timeline_to_chrome_trace",
    "write_chrome_trace",
]
