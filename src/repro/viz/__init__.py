"""Text visualisation of schedules."""

from .gantt import render_gantt, render_order
from .trace import (
    sim_to_chrome_trace,
    timeline_to_chrome_trace,
    write_chrome_trace,
    write_sim_trace,
)

__all__ = [
    "render_gantt",
    "render_order",
    "sim_to_chrome_trace",
    "timeline_to_chrome_trace",
    "write_chrome_trace",
    "write_sim_trace",
]
