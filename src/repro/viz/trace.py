"""Chrome trace (``chrome://tracing`` / Perfetto) export of timelines.

Each device becomes a trace thread; forward/backward spans become
complete events with micro-batch/stage/chunk metadata — the standard
way modern training stacks visualise pipeline execution.

:func:`sim_to_chrome_trace` goes further: fed directly by the
event-driven simulator's :class:`~repro.runtime.SimResult`, it adds a
``network`` process with one lane per directed link carrying every
point-to-point transfer (tag, bytes, batched-group membership); a
``collectives`` process with one lane per device showing every ring
all-reduce (DP gradient sync, TP boundary) and its individual chunk
steps; and, when the simulated program carried memory resources, one
**counter lane per device** plotting its live memory watermark (static
residency plus activation allocs/frees, in GiB) — so any run — bench,
sweep or engine — can be inspected in one timeline format at
https://ui.perfetto.dev.
"""

from __future__ import annotations

import json

from ..types import OpKind, Timeline


def timeline_to_chrome_trace(
    timeline: Timeline,
    time_unit_us: float = 1000.0,
    process_name: str = "pipeline",
) -> dict:
    """Convert a timeline to the Chrome trace-event JSON object.

    ``time_unit_us`` scales one simulator time unit to microseconds
    (abstract-cost runs pick something readable; concrete runs pass
    1e6 since their unit is seconds).
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": process_name},
    }]
    for device in timeline.devices:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": device,
            "args": {"name": f"device {device}"},
        })
        for span in timeline.device_spans(device):
            op = span.op
            kind = "forward" if op.kind is OpKind.FORWARD else "backward"
            events.append({
                "name": f"{kind} m{op.microbatch} s{op.stage}",
                "cat": kind,
                "ph": "X",
                "pid": 0,
                "tid": device,
                "ts": span.start * time_unit_us,
                "dur": span.duration * time_unit_us,
                "args": {
                    "microbatch": op.microbatch,
                    "stage": op.stage,
                    "chunk": op.chunk,
                    "replica": op.replica,
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str,
                       time_unit_us: float = 1000.0) -> None:
    """Serialize the trace to ``path`` (open it in Perfetto)."""
    trace = timeline_to_chrome_trace(timeline, time_unit_us)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=None, separators=(",", ":"))


def sim_to_chrome_trace(result, time_unit_us: float = 1000.0,
                        process_name: str = "pipeline") -> dict:
    """Full simulator trace: compute spans plus comm and memory lanes.

    ``result`` is a :class:`~repro.runtime.SimResult`; its ``comm``
    event log (one entry per point-to-point transfer, straight from the
    event core) becomes a second trace process with one thread per
    directed link.  Zero-duration transfers (free abstract comm) are
    kept — they still mark message ordering.  If the simulated program
    carried :class:`~repro.actions.StageResources`, each device also
    gets a ``memory dN`` counter lane sampling its live watermark at
    every alloc/free (Perfetto renders counters as step plots).
    """
    trace = timeline_to_chrome_trace(result.timeline, time_unit_us,
                                     process_name=process_name)
    events = trace["traceEvents"]
    mem_events = getattr(result, "mem_events", None)
    if mem_events:
        program = getattr(result, "program", None)
        static = dict(program.static_bytes) if program is not None else {}
        # anchor every device's counter at its static level so the lane
        # starts where the run starts, not at the first alloc
        for device in sorted(set(static)
                             | {e.device for e in mem_events}):
            events.append({
                "name": f"memory d{device}",
                "ph": "C",
                "pid": 0,
                "ts": 0.0,
                "args": {"GiB": static.get(device, 0.0) / 2**30},
            })
        for e in mem_events:
            events.append({
                "name": f"memory d{e.device}",
                "ph": "C",
                "pid": 0,
                "ts": e.time * time_unit_us,
                "args": {"GiB": e.level / 2**30},
            })
    collectives = getattr(result, "collectives", None)
    if collectives:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "args": {"name": "collectives"},
        })
        for device in sorted({c.device for c in collectives}):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 2,
                "tid": device,
                "args": {"name": f"collectives d{device}"},
            })
        for c in collectives:
            label = (f"{c.op.kind.value} s{c.op.stage}"
                     + (f" r{c.op.replica}" if c.op.replica else ""))
            events.append({
                "name": label,
                "cat": "collective",
                "ph": "X",
                "pid": 2,
                "tid": c.device,
                "ts": c.start * time_unit_us,
                "dur": c.duration * time_unit_us,
                "args": {
                    "group": list(c.op.group),
                    "nbytes": c.op.nbytes,
                    "blocking": c.op.blocking,
                    "count": c.op.count,
                    "posted_at": c.post * time_unit_us,
                    "ring_steps": len(c.steps),
                },
            })
            for k, (s, e) in enumerate(c.steps):
                events.append({
                    "name": f"{label} step {k + 1}/{len(c.steps)}",
                    "cat": "collective-step",
                    "ph": "X",
                    "pid": 2,
                    "tid": c.device,
                    "ts": s * time_unit_us,
                    "dur": (e - s) * time_unit_us,
                    "args": {"step": k},
                })
    if result.comm:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "network"},
        })
        links = sorted({(e.src, e.dst) for e in result.comm})
        tids = {pair: i for i, pair in enumerate(links)}
        for src, dst in links:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[(src, dst)],
                "args": {"name": f"link d{src} -> d{dst}"},
            })
        for e in result.comm:
            events.append({
                "name": str(e.tag),
                "cat": "comm",
                "ph": "X",
                "pid": 1,
                "tid": tids[(e.src, e.dst)],
                "ts": e.start * time_unit_us,
                "dur": e.duration * time_unit_us,
                "args": {
                    "src": e.src,
                    "dst": e.dst,
                    "nbytes": e.nbytes,
                    "posted_at": e.post * time_unit_us,
                    "batched": e.batched,
                },
            })
    return trace


def write_sim_trace(result, path: str,
                    time_unit_us: float = 1000.0) -> None:
    """Serialize a simulator run (compute + comm) to Chrome-trace JSON."""
    trace = sim_to_chrome_trace(result, time_unit_us)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=None, separators=(",", ":"))
