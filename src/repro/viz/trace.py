"""Chrome trace (``chrome://tracing`` / Perfetto) export of timelines.

Each device becomes a trace thread; forward/backward spans become
complete events with micro-batch/stage/chunk metadata — the standard
way modern training stacks visualise pipeline execution.
"""

from __future__ import annotations

import json

from ..types import OpKind, Timeline


def timeline_to_chrome_trace(
    timeline: Timeline,
    time_unit_us: float = 1000.0,
    process_name: str = "pipeline",
) -> dict:
    """Convert a timeline to the Chrome trace-event JSON object.

    ``time_unit_us`` scales one simulator time unit to microseconds
    (abstract-cost runs pick something readable; concrete runs pass
    1e6 since their unit is seconds).
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": process_name},
    }]
    for device in timeline.devices:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": device,
            "args": {"name": f"device {device}"},
        })
        for span in timeline.device_spans(device):
            op = span.op
            kind = "forward" if op.kind is OpKind.FORWARD else "backward"
            events.append({
                "name": f"{kind} m{op.microbatch} s{op.stage}",
                "cat": kind,
                "ph": "X",
                "pid": 0,
                "tid": device,
                "ts": span.start * time_unit_us,
                "dur": span.duration * time_unit_us,
                "args": {
                    "microbatch": op.microbatch,
                    "stage": op.stage,
                    "chunk": op.chunk,
                    "replica": op.replica,
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str,
                       time_unit_us: float = 1000.0) -> None:
    """Serialize the trace to ``path`` (open it in Perfetto)."""
    trace = timeline_to_chrome_trace(timeline, time_unit_us)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=None, separators=(",", ":"))
