"""ASCII Gantt rendering of schedules (paper Figs. 3-6 as text).

Each device is one row; time runs left to right in fixed-width cells.
Forward cells print the micro-batch digit, backward cells print it
bracketed, idle prints dots — enough to eyeball warmup shapes, wave
turns and bubbles in a terminal or a doc snippet.
"""

from __future__ import annotations

from ..types import OpKind, Timeline


def render_gantt(
    timeline: Timeline,
    width: int = 100,
    show_stage: bool = False,
) -> str:
    """Render a timeline as fixed-width rows, one per device."""
    makespan = timeline.makespan
    if makespan <= 0:
        return "(empty timeline)"
    scale = width / makespan
    lines = []
    for d in timeline.devices:
        row = ["."] * width
        for span in timeline.device_spans(d):
            lo = int(span.start * scale)
            hi = max(lo + 1, int(span.end * scale))
            if span.op.kind is OpKind.FORWARD:
                label = (f"{span.op.stage % 10}" if show_stage
                         else f"{span.op.microbatch % 10}")
            else:
                label = "#" if show_stage else chr(
                    ord("a") + span.op.microbatch % 26
                )
            for i in range(lo, min(hi, width)):
                row[i] = label
        lines.append(f"P{d:<2}|" + "".join(row) + "|")
    legend = "forward = micro-batch digit, backward = letter, idle = '.'"
    return "\n".join(lines) + f"\n    ({legend})"


def render_order(device_ops: dict, max_ops: int = 40) -> str:
    """Compact textual dump of per-device op order (for debugging)."""
    lines = []
    for d in sorted(device_ops):
        toks = []
        for op in device_ops[d][:max_ops]:
            k = "F" if op.kind is OpKind.FORWARD else "B"
            toks.append(f"{k}{op.microbatch}.{op.stage}")
        suffix = " ..." if len(device_ops[d]) > max_ops else ""
        lines.append(f"P{d}: " + " ".join(toks) + suffix)
    return "\n".join(lines)
