"""repro — a full reproduction of *Hanayo: Harnessing Wave-like Pipeline
Parallelism for Enhanced Large Model Training Efficiency* (SC '23).

Layers of the library, bottom-up:

* :mod:`repro.models` / :mod:`repro.cluster` — model specs, cost models
  and the four evaluation clusters.
* :mod:`repro.schedules` — schedule generators for GPipe, DAPPLE/1F1B,
  interleaved 1F1B, GEMS, Chimera (+ the wave transform), Hanayo, and
  PipeDream-style async.
* :mod:`repro.actions` — the action-list runtime: compiler, static
  validation (incl. rendezvous deadlock checking), interpreter.
* :mod:`repro.runtime` — discrete-event simulation, memory tracking,
  metrics.
* :mod:`repro.engine` — a real NumPy training engine (thread workers,
  P2P channels) that executes the same action lists.
* :mod:`repro.analysis` — the paper's analytic models, config search,
  and scaling harnesses.
* :mod:`repro.sweep` — the parallel, cached sweep engine that fans the
  search grids of Figs. 9–12 out over worker processes.

Quickstart (a runnable doctest; ``python -m pytest --doctest-modules
src/repro/__init__.py`` checks it):

    >>> from repro import PipelineConfig, build_schedule, simulate
    >>> from repro.config import CostConfig
    >>> from repro.runtime import AbstractCosts, bubble_stats
    >>> cfg = PipelineConfig("hanayo", num_devices=8, num_microbatches=8,
    ...                      num_waves=2)
    >>> sched = build_schedule(cfg)          # 2 waves x 8 devices x 2 dirs
    >>> sched.num_stages
    32
    >>> res = simulate(sched, AbstractCosts(CostConfig(), 8,
    ...                                     sched.num_stages))
    >>> res.makespan                         # T_F units, T_B = 2 T_F
    31.5
    >>> round(bubble_stats(res.timeline).bubble_ratio, 3)
    0.238
"""

from .analysis import measure_throughput
from .config import CostConfig, PipelineConfig, RunConfig
from .errors import ReproError
from .runtime import simulate
from .schedules import build_schedule
from .sweep import ResultCache, SweepSpec, SweepTable, run_sweep

__version__ = "1.1.0"

__all__ = [
    "CostConfig",
    "PipelineConfig",
    "ReproError",
    "ResultCache",
    "RunConfig",
    "SweepSpec",
    "SweepTable",
    "__version__",
    "build_schedule",
    "measure_throughput",
    "run_sweep",
    "simulate",
]
