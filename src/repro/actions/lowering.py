"""Lower a :class:`~repro.actions.program.Program` to an
:class:`ExecutablePlan` — the flat, integer-indexed form the hot path
runs on.

The Program IR is the *semantic* truth: per-worker lists of rich action
objects, dict-keyed dependency edges, ``Tag``-addressed tensors.  That
shape is right for compilation, validation and debugging, but wrong for
the event core's inner loop, which previously paid a dict lookup on a
``(device, tag)`` tuple (and an enum hash) for every edge it touched.
This module performs the classic last-mile lowering (the same move
trace analyzers make when they index events into arrays before
analysis): every action, compute, tensor, wire and batched exchange is
**interned to a small integer** once, and the program becomes a set of
parallel arrays —

* per-device action streams: ``codes[d][i]`` (what kind of action) and
  ``args[d][i]`` (an index into that kind's table);
* a compute table with CSR dependency edges (``dep_ptr`` /
  ``dep_remote`` / ``dep_idx``), pre-resolved per-action compute costs,
  and the alloc/free **resource deltas** each compute applies;
* a send table with pre-resolved transfer seconds, link latencies,
  interned transfer slots (the old ``(device, tag)`` dict keys) and
  interned wire ids (the old ``frozenset`` keys of the contention
  model);
* batched-exchange and collective tables mirroring the grouped
  semantics (exchange ids replace the waiver's tag ``frozenset``,
  per-collective ring-step times and NIC/wire ids are precomputed).

Lowering is split in two so sweeps can share work:

* the **structure** (everything listed above except the cost columns)
  depends only on the compiled program — structurally identical sweep
  cells share it through the analysis-level plan cache, and
  :attr:`ExecutablePlan.plan_key` content-hashes exactly these arrays
  so that sharing is *checkable*: two independently compiled cells are
  interchangeable iff their keys are equal (the safety property the
  plan-cache tests pin across clusters);
* the **cost binding** (:meth:`ExecutablePlan.retime`) resolves a
  :class:`~repro.runtime.costs.CostOracle` into flat cost arrays.
  Cost-only sweep axes (a different cluster timing the same program)
  re-bind a cached plan instead of recompiling the schedule.

The plan also **decodes back**: :meth:`ExecutablePlan.decode_actions`
rebuilds the action objects from the arrays alone, and the round-trip
is pinned action-for-action against the source program across every
schedule family — which is how the engine's interpreter can consume the
lowered order while the parity suite keeps its single-IR guarantee.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

from ..errors import SchedulingError, ValidationError
from ..types import OpKind, ScheduleOp
from .collectives import ring_pairs, ring_step_count
from .ops import (
    Action,
    BatchedP2P,
    CollectiveOp,
    ComputeBackward,
    ComputeForward,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)
from .program import ComputeKey, Program, compute_key

#: action stream opcodes (``codes[d][i]``)
OP_COMPUTE = 0
OP_SEND = 1
OP_RECV = 2
OP_BATCH = 3
OP_COLL = 4
OP_NOOP = 5

#: ``args`` payload of an ``OP_NOOP``
NOOP_FLUSH = 0
NOOP_STEP = 1


class RetimeBuffers:
    """Recyclable cost-column storage for :meth:`ExecutablePlan.retime`.

    Re-timing allocates four columns per call; callers that re-time in
    a tight loop (the synthesis scorer binds thousands of candidate
    orderings of one structure per search) hand the same buffer set to
    every call and the columns are resized in place instead of
    reallocated.

    Aliasing contract: a plan bound through a buffer set shares the
    buffer lists, so it is valid only until the buffers' next
    ``columns``/``retime`` use — score it, fold the result, drop the
    plan before the next candidate.
    """

    __slots__ = ("send_time", "send_lat", "send_wire", "coll_step_time")

    def __init__(self) -> None:
        self.send_time: list[float] = []
        self.send_lat: list[float] = []
        self.send_wire: list[int] = []
        self.coll_step_time: list[float] = []

    def columns(self, n_send: int, n_coll: int):
        """The four columns resized to shape (contents unspecified)."""
        for lst, n in ((self.send_time, n_send), (self.send_lat, n_send),
                       (self.send_wire, n_send),
                       (self.coll_step_time, n_coll)):
            if len(lst) < n:
                lst.extend([0.0] * (n - len(lst)))
            elif len(lst) > n:
                del lst[n:]
        return (self.send_time, self.send_lat, self.send_wire,
                self.coll_step_time)


@dataclass
class ExecutablePlan:
    """A Program lowered to flat integer-indexed arrays.

    Everything the event core touches per action is a list indexed by a
    small integer; the rich objects (``ScheduleOp``, ``Tag``,
    ``CollectiveOp``) survive only in side tables used to materialize
    results after the run.  Instances are produced by :meth:`lower`;
    ``retime`` re-binds the cost columns against a different oracle
    while sharing every structural array.
    """

    program: Program
    #: program-local device ids, in ``program.actions`` iteration order
    #: (device *index* is the id used throughout the arrays)
    devices: tuple[int, ...]
    prefetch: bool

    # -- per-device action streams ---------------------------------------
    codes: tuple[list[int], ...]
    args: tuple[list[int], ...]
    n_actions: int

    # -- compute table (cid) ---------------------------------------------
    comp_ops: tuple[ScheduleOp, ...]
    comp_keys: tuple[ComputeKey, ...]
    comp_device: list[int]
    #: CSR dependency edges, preserving the program's dep order
    dep_ptr: list[int]
    dep_remote: list[int]      # 1 = remote (dep_idx is a slot), 0 = local
    dep_idx: list[int]
    #: resource deltas: bytes pinned at start / released at end
    comp_alloc: list[float]
    comp_free: list[float]

    # -- send table (sid) -------------------------------------------------
    send_src: list[int]
    send_dst: list[int]
    send_tag: list[int]        # index into ``tags``
    send_stage: list[int]
    send_slot: list[int]
    send_nbytes: list[float]

    # -- transfer slots: interned (dst device index, tag) pairs -----------
    n_slots: int

    # -- recv table (rid) -------------------------------------------------
    recv_peer: list[int]
    recv_tag: list[int]
    recv_slot: list[int]

    # -- batched exchanges (bid) ------------------------------------------
    batch_send_ids: tuple[tuple[int, ...], ...]
    batch_recv_ids: tuple[tuple[int, ...], ...]
    batch_exch: list[int]      # interned exchange (tag-set) ids

    # -- collectives (lid) -------------------------------------------------
    coll_ops: tuple[CollectiveOp, ...]
    coll_device: list[int]
    coll_blocking: list[bool]
    coll_count: list[float]
    coll_nsteps: list[int]
    coll_active: list[bool]    # has ring pairs, payload and count > 0
    coll_chunk: list[float]    # nbytes / group size
    #: global-rank ring pairs, for wire interning at bind time
    coll_pairs: tuple[tuple[tuple[int, int], ...], ...]

    # -- interned objects --------------------------------------------------
    tags: tuple[Tag, ...]

    # -- cost binding (None until bound) -----------------------------------
    costs: object | None = None
    comp_cost: list[float] | None = None
    send_time: list[float] | None = None
    send_lat: list[float] | None = None
    coll_step_time: list[float] | None = None
    #: interned contention wires: the old ``frozenset`` global-rank keys
    send_wire: list[int] | None = None
    coll_wires: tuple[tuple[int, ...], ...] | None = None
    n_wires: int = 0
    global_ranks: tuple[int, ...] = ()

    _plan_key: str | None = field(default=None, repr=False)
    _congruence_key: str | None = field(default=None, repr=False)

    # -- shape --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def n_computes(self) -> int:
        return len(self.comp_ops)

    @property
    def bound(self) -> bool:
        """Whether cost columns are resolved (execution needs them)."""
        return self.comp_cost is not None

    def describe(self) -> str:
        return (f"plan[{self.name}]: devices={len(self.devices)} "
                f"actions={self.n_actions} computes={self.n_computes} "
                f"sends={len(self.send_src)} slots={self.n_slots} "
                f"{'bound' if self.bound else 'unbound'}")

    # -- construction --------------------------------------------------------

    @classmethod
    def lower(cls, program: Program, costs=None) -> "ExecutablePlan":
        """Lower ``program`` to flat arrays; bind ``costs`` if given.

        The structural arrays depend on the program alone; a plan
        lowered without an oracle can be bound later (and repeatedly)
        via :meth:`retime` — that is the sweep-cache contract: one
        structural lowering, many cost bindings.
        """
        plan = _lower_structure(cls, program)
        if costs is not None:
            plan = plan.retime(costs)
        return plan

    def retime(self, costs,
               buffers: "RetimeBuffers | None" = None) -> "ExecutablePlan":
        """Bind (or re-bind) the cost columns against ``costs``.

        Returns a new plan sharing every structural array with ``self``
        — only the per-compute durations, per-send transfer seconds and
        latencies, per-collective ring-step times, the global-rank map
        and the wire interning (which lives in global-rank space) are
        recomputed.  This is the cost-only re-timing path sweeps take
        when a cached structure meets a new cluster.

        A program sends along few distinct ``(src, dst, stage)`` edges
        but many times per edge, so the oracle is consulted once per
        edge and the answer fanned out across the column.

        ``buffers`` recycles the allocated columns across calls (see
        :class:`RetimeBuffers`): the returned plan then *aliases* the
        buffer lists and is valid only until the buffers' next use.
        """
        devices = self.devices
        granks = tuple(costs.global_rank(d) for d in devices)

        # Compute durations are resolved lazily, on first execution of
        # each compute: a capacity-aborted run must not pay (or count)
        # oracle lookups for work it never reaches — pinned by the
        # memory-runtime tests.  A completed run still resolves every
        # entry exactly once, and repeated executions of one bound plan
        # reuse the filled column.
        comp_cost: list[float | None] = [None] * len(self.comp_ops)

        wire_ids: dict[frozenset, int] = {}

        def wire(a: int, b: int) -> int:
            key = frozenset((a, b))
            wid = wire_ids.get(key)
            if wid is None:
                wid = len(wire_ids)
                wire_ids[key] = wid
            return wid

        src, dst, stage = self.send_src, self.send_dst, self.send_stage
        n_send = len(src)
        if buffers is None:
            buffers = RetimeBuffers()
        send_time, send_lat, send_wire, coll_step_time = buffers.columns(
            n_send, len(self.coll_ops))
        edges: dict[tuple[int, int, int], tuple[float, float, int]] = {}
        for sid in range(n_send):
            si, di = src[sid], dst[sid]
            key = (si, di, stage[sid])
            hit = edges.get(key)
            if hit is None:
                s, d = devices[si], devices[di]
                hit = (costs.transfer_time(s, d, stage[sid]),
                       costs.link_latency(s, d),
                       wire(granks[si], granks[di]))
                edges[key] = hit
            send_time[sid] = hit[0]
            send_lat[sid] = hit[1]
            send_wire[sid] = hit[2]

        coll_wires = []
        for lid, pairs in enumerate(self.coll_pairs):
            coll_wires.append(tuple(wire(a, b) for a, b in pairs))
            if self.coll_active[lid]:
                chunk = self.coll_chunk[lid]
                coll_step_time[lid] = max(
                    costs.collective_link_time(a, b, chunk)
                    for a, b in pairs
                )
            else:
                coll_step_time[lid] = 0.0

        return dataclasses.replace(
            self,
            costs=costs,
            comp_cost=comp_cost,
            send_time=send_time,
            send_lat=send_lat,
            send_wire=send_wire,
            coll_step_time=coll_step_time,
            coll_wires=tuple(coll_wires),
            n_wires=len(wire_ids),
            global_ranks=granks,
        )

    # -- identity ------------------------------------------------------------

    @property
    def plan_key(self) -> str:
        """Stable content hash of the structural arrays.

        Two programs lowering to byte-identical structure (action
        streams, dependency edges, payload sizes, resource deltas,
        collective descriptors) share a key — independent of Python
        hash seeds, process boundaries and the cost oracle.  This is
        the verification oracle for plan sharing: the analysis plan
        cache reuses one plan per structural parameter key, and the
        tests pin that independently compiled cells it would share
        (same shape, different cluster/capacity) hash equal here —
        equal keys ⇔ interchangeable plans.
        """
        if self._plan_key is None:
            h = hashlib.sha256()

            def feed(part) -> None:
                h.update(repr(part).encode())
                h.update(b";")

            feed(("devices", self.devices, self.prefetch))
            for di in range(len(self.devices)):
                feed(self.codes[di])
                feed(self.args[di])
            feed([(op.kind.value, op.microbatch, op.stage, op.chunk,
                   op.replica, op.device) for op in self.comp_ops])
            feed((self.dep_ptr, self.dep_remote, self.dep_idx))
            feed((self.comp_alloc, self.comp_free))
            feed([(t.kind.value, t.microbatch, t.stage) for t in self.tags])
            feed((self.send_src, self.send_dst, self.send_tag,
                  self.send_stage, self.send_slot, self.send_nbytes))
            feed((self.recv_peer, self.recv_tag, self.recv_slot))
            feed((self.batch_send_ids, self.batch_recv_ids, self.batch_exch))
            feed([(c.kind.value, c.group, c.nbytes, c.stage, c.replica,
                   c.blocking, c.count) for c in self.coll_ops])
            feed([program_static
                  for program_static in sorted(self.program.static_bytes.items())])
            self._plan_key = h.hexdigest()
        return self._plan_key

    @property
    def congruence_key(self) -> str:
        """Stable content hash of the *control-flow* arrays alone.

        A strict widening of :attr:`plan_key`: it covers exactly the
        arrays the event core's control flow and the lockstep stepper's
        event schedule read — action streams, dependency edges,
        transfer slots, batched-exchange membership, collective step
        structure — and deliberately **excludes** every cost-bearing
        array (payload bytes, resource deltas, tags, static residency,
        the rich op/collective descriptors).  Two plans with equal keys
        execute the *identical event sequence* under the uncontended
        driver, whatever their cost columns resolve to; they are the
        "congruent structure groups" the batched runtime stacks into
        one :class:`~repro.runtime.batched.PlanBatch` — e.g. the same
        family/P/B/prefetch with recompute toggled, different models,
        or different collective bucket sizes that only retime.

        Equal ``plan_key`` ⇒ equal ``congruence_key``; never the
        converse.
        """
        if self._congruence_key is None:
            h = hashlib.sha256()

            def feed(part) -> None:
                h.update(repr(part).encode())
                h.update(b";")

            feed(("devices", self.devices, self.prefetch, self.n_slots))
            for di in range(len(self.devices)):
                feed(self.codes[di])
                feed(self.args[di])
            feed(self.comp_device)
            feed((self.dep_ptr, self.dep_remote, self.dep_idx))
            feed((self.send_src, self.send_dst, self.send_slot))
            feed(self.recv_slot)
            feed((self.batch_send_ids, self.batch_recv_ids,
                  self.batch_exch))
            feed((self.coll_device, self.coll_blocking, self.coll_count,
                  self.coll_nsteps, self.coll_active))
            self._congruence_key = h.hexdigest()
        return self._congruence_key

    # -- decoding ------------------------------------------------------------

    def decode_actions(self, device: int) -> list[Action]:
        """Rebuild ``device``'s action list from the arrays alone.

        The inverse of lowering (collectives, which carry no hot-path
        state, are kept as interned objects).  Pinned equal to
        ``program.actions[device]`` by the round-trip tests; the engine
        trainer feeds exactly this to its interpreters, so the order the
        NumPy workers execute *is* the lowered order.
        """
        try:
            di = self.devices.index(device)
        except ValueError:
            raise SchedulingError(
                f"{self.name}: no device {device} in plan"
            ) from None
        tags = self.tags
        out: list[Action] = []
        for code, a in zip(self.codes[di], self.args[di]):
            if code == OP_COMPUTE:
                op = self.comp_ops[a]
                ctor = (ComputeForward if op.kind is OpKind.FORWARD
                        else ComputeBackward)
                out.append(ctor(op.microbatch, op.stage, op.chunk))
            elif code == OP_SEND:
                out.append(self._decode_send(a))
            elif code == OP_RECV:
                out.append(self._decode_recv(a))
            elif code == OP_BATCH:
                out.append(BatchedP2P(
                    sends=tuple(self._decode_send(s)
                                for s in self.batch_send_ids[a]),
                    recvs=tuple(self._decode_recv(r)
                                for r in self.batch_recv_ids[a]),
                ))
            elif code == OP_COLL:
                out.append(self.coll_ops[a])
            elif code == OP_NOOP:
                out.append(Flush() if a == NOOP_FLUSH else OptimizerStep())
            else:  # pragma: no cover - lowering emits only known codes
                raise SchedulingError(f"{self.name}: unknown opcode {code}")
        return out

    def decode(self) -> dict[int, list[Action]]:
        """All device lists, decoded (a full Program round-trip)."""
        return {d: self.decode_actions(d) for d in self.devices}

    def _decode_send(self, sid: int) -> Send:
        return Send(peer=self.devices[self.send_dst[sid]],
                    tag=self.tags[self.send_tag[sid]])

    def _decode_recv(self, rid: int) -> Recv:
        return Recv(peer=self.devices[self.recv_peer[rid]],
                    tag=self.tags[self.recv_tag[rid]])


def _lower_structure(cls, program: Program) -> ExecutablePlan:
    """One pass over the program building every structural array."""
    devices = tuple(program.actions)
    dev_index = {d: i for i, d in enumerate(devices)}

    tags: list[Tag] = []
    tag_ids: dict[Tag, int] = {}

    def intern_tag(tag: Tag) -> int:
        tid = tag_ids.get(tag)
        if tid is None:
            tid = len(tags)
            tag_ids[tag] = tid
            tags.append(tag)
        return tid

    slot_ids: dict[tuple[int, int], int] = {}

    def intern_slot(di: int, tid: int) -> int:
        sid = slot_ids.get((di, tid))
        if sid is None:
            sid = len(slot_ids)
            slot_ids[(di, tid)] = sid
        return sid

    # compute table, in program.ops (= schedule walk) order
    comp_ids: dict[ComputeKey, int] = {}
    comp_ops: list[ScheduleOp] = []
    comp_keys: list[ComputeKey] = []
    comp_device: list[int] = []
    for key, op in program.ops.items():
        comp_ids[key] = len(comp_ops)
        comp_ops.append(op)
        comp_keys.append(key)
        comp_device.append(dev_index[op.device])

    dep_ptr = [0]
    dep_remote: list[int] = []
    dep_idx: list[int] = []
    for cid, key in enumerate(comp_keys):
        consumer_di = comp_device[cid]
        for dep in program.deps.get(key, ()):
            if dep.tag is None:
                dep_remote.append(0)
                dep_idx.append(comp_ids[dep.producer])
            else:
                dep_remote.append(1)
                dep_idx.append(intern_slot(consumer_di,
                                           intern_tag(dep.tag)))
        dep_ptr.append(len(dep_idx))

    comp_alloc = [program.alloc_bytes(key) for key in comp_keys]
    comp_free = [program.free_bytes(key) for key in comp_keys]

    send_src: list[int] = []
    send_dst: list[int] = []
    send_tag: list[int] = []
    send_stage: list[int] = []
    send_slot: list[int] = []
    send_nbytes: list[float] = []

    def intern_send(di: int, send: Send) -> int:
        sid = len(send_src)
        tid = intern_tag(send.tag)
        dst = dev_index[send.peer]
        send_src.append(di)
        send_dst.append(dst)
        send_tag.append(tid)
        send_stage.append(send.tag.stage)
        send_slot.append(intern_slot(dst, tid))
        send_nbytes.append(program.tensor_bytes.get(send.tag, 0.0))
        return sid

    recv_peer: list[int] = []
    recv_tag: list[int] = []
    recv_slot: list[int] = []

    def intern_recv(di: int, recv: Recv) -> int:
        rid = len(recv_peer)
        tid = intern_tag(recv.tag)
        recv_peer.append(dev_index[recv.peer])
        recv_tag.append(tid)
        recv_slot.append(intern_slot(di, tid))
        return rid

    batch_send_ids: list[tuple[int, ...]] = []
    batch_recv_ids: list[tuple[int, ...]] = []
    batch_exch: list[int] = []
    exchange_ids: dict[frozenset, int] = {}

    coll_ops: list[CollectiveOp] = []
    coll_device: list[int] = []
    coll_blocking: list[bool] = []
    coll_count: list[float] = []
    coll_nsteps: list[int] = []
    coll_active: list[bool] = []
    coll_chunk: list[float] = []
    coll_pairs: list[tuple[tuple[int, int], ...]] = []

    codes: list[list[int]] = []
    args: list[list[int]] = []
    n_actions = 0
    for di, device in enumerate(devices):
        dev_codes: list[int] = []
        dev_args: list[int] = []
        for act in program.actions[device]:
            key = compute_key(act)
            if key is not None:
                try:
                    cid = comp_ids[key]
                except KeyError:
                    raise ValidationError(
                        f"{program.name}: action {act} has no compute "
                        "metadata in program.ops"
                    ) from None
                dev_codes.append(OP_COMPUTE)
                dev_args.append(cid)
            elif isinstance(act, Send):
                dev_codes.append(OP_SEND)
                dev_args.append(intern_send(di, act))
            elif isinstance(act, Recv):
                dev_codes.append(OP_RECV)
                dev_args.append(intern_recv(di, act))
            elif isinstance(act, BatchedP2P):
                bid = len(batch_send_ids)
                batch_send_ids.append(tuple(intern_send(di, s)
                                            for s in act.sends))
                batch_recv_ids.append(tuple(intern_recv(di, r)
                                            for r in act.recvs))
                exchange = frozenset(
                    [s.tag for s in act.sends] + [r.tag for r in act.recvs]
                )
                eid = exchange_ids.get(exchange)
                if eid is None:
                    eid = len(exchange_ids)
                    exchange_ids[exchange] = eid
                batch_exch.append(eid)
                dev_codes.append(OP_BATCH)
                dev_args.append(bid)
            elif isinstance(act, CollectiveOp):
                lid = len(coll_ops)
                pairs = ring_pairs(act.group)
                coll_ops.append(act)
                coll_device.append(di)
                coll_blocking.append(act.blocking)
                coll_count.append(float(act.count))
                coll_nsteps.append(ring_step_count(len(act.group)))
                coll_active.append(bool(pairs) and act.nbytes > 0
                                   and act.count > 0)
                coll_chunk.append(
                    act.nbytes / len(act.group) if act.group else 0.0)
                coll_pairs.append(pairs)
                dev_codes.append(OP_COLL)
                dev_args.append(lid)
            elif isinstance(act, Flush):
                dev_codes.append(OP_NOOP)
                dev_args.append(NOOP_FLUSH)
            elif isinstance(act, OptimizerStep):
                dev_codes.append(OP_NOOP)
                dev_args.append(NOOP_STEP)
            else:
                raise SchedulingError(
                    f"{program.name}: unknown action {act!r} in program"
                )
        codes.append(dev_codes)
        args.append(dev_args)
        n_actions += len(dev_codes)

    return cls(
        program=program,
        devices=devices,
        prefetch=program.prefetch,
        codes=tuple(codes),
        args=tuple(args),
        n_actions=n_actions,
        comp_ops=tuple(comp_ops),
        comp_keys=tuple(comp_keys),
        comp_device=comp_device,
        dep_ptr=dep_ptr,
        dep_remote=dep_remote,
        dep_idx=dep_idx,
        comp_alloc=comp_alloc,
        comp_free=comp_free,
        send_src=send_src,
        send_dst=send_dst,
        send_tag=send_tag,
        send_stage=send_stage,
        send_slot=send_slot,
        send_nbytes=send_nbytes,
        n_slots=len(slot_ids),
        recv_peer=recv_peer,
        recv_tag=recv_tag,
        recv_slot=recv_slot,
        batch_send_ids=tuple(batch_send_ids),
        batch_recv_ids=tuple(batch_recv_ids),
        batch_exch=batch_exch,
        coll_ops=tuple(coll_ops),
        coll_device=coll_device,
        coll_blocking=coll_blocking,
        coll_count=coll_count,
        coll_nsteps=coll_nsteps,
        coll_active=coll_active,
        coll_chunk=coll_chunk,
        coll_pairs=tuple(coll_pairs),
        tags=tuple(tags),
    )
