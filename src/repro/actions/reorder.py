"""Recompile a :class:`~repro.actions.program.Program` from an
externally supplied per-device ordering.

The schedule-synthesis searcher (:mod:`repro.synthesis`) explores the
space of per-device *compute orderings* directly — it never goes back
through a :class:`~repro.schedules.base.Schedule`.  This module is the
compile path that makes an ordering executable: given the base program
(which fixes the work set, the dataflow edges and every tensor size)
and, per device, a permutation of that device's **ordering entries** —
compute keys plus asynchronous collectives — it rebuilds the action
lists exactly the way the schedule compiler would have:

1. every compute is preceded by the ``Recv`` of each remote input and
   followed by the ``Send`` of each remote output (derived from
   ``program.deps``, the same facts the original compiler recorded);
2. an asynchronous collective entry binds *before* the pending sends of
   the compute it follows — matching
   :func:`~repro.actions.collectives.with_gradient_sync`'s placement of
   a gradient bucket between a backward and its gradient send;
3. the program's own prefetch-hoisting and batched-P2P passes re-run,
   so a reordered program has the same comm discipline as its base;
4. a trailing ``Flush``/``OptimizerStep`` tail, if the base carries
   one, is re-appended verbatim.

The identity is pinned by tests: for every schedule family (and both
compile-pass settings), ``reorder_program(p, ordering_entries(p))``
reproduces ``p.actions`` action for action — this path and the schedule
compiler are the same function of an ordering.

The rebuilt program **shares** ``ops``, ``deps``, ``tensor_bytes``,
``resident``, ``resources`` and ``static_bytes`` with its base: a
reordering changes only the action streams, so the lowered plan's
compute table (built from ``program.ops`` iteration order) is identical
index-for-index across all candidates of one base — which is what lets
the synthesis search share resolved cost columns instead of re-querying
the oracle per candidate.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence, Union

from ..errors import ValidationError
from ..types import OpKind
from .compiler import batch_opposing, hoist_recvs
from .ops import (
    Action,
    CollectiveOp,
    ComputeBackward,
    ComputeForward,
    Flush,
    OptimizerStep,
    Recv,
    Send,
)
from .program import ComputeKey, Program, compute_key

#: One position in an ordering: a compute key ``(kind, microbatch,
#: stage)`` or an asynchronous :class:`CollectiveOp`.
OrderEntry = Union[ComputeKey, CollectiveOp]


def ordering_entries(program: Program) -> dict[int, list[OrderEntry]]:
    """Extract the per-device ordering entries of a compiled program.

    The entries are the *reorderable* skeleton of the action lists:
    compute keys in device order, with asynchronous collectives
    interleaved where they sit.  Comm actions are derived state (they
    follow their compute), and a trailing ``Flush``/``OptimizerStep``
    run is fixed — neither appears as an entry.

    Programs with *blocking* collectives (TP boundary all-reduces) are
    rejected: those are glued to their compute by construction, so
    there is no ordering freedom to extract.
    """
    out: dict[int, list[OrderEntry]] = {}
    for device, acts in program.actions.items():
        entries: list[OrderEntry] = []
        in_tail = False
        for act in acts:
            if isinstance(act, (Flush, OptimizerStep)):
                in_tail = True
                continue
            if in_tail:
                raise ValidationError(
                    f"{program.name}: device {device} has {act} after "
                    "its Flush/OptimizerStep tail"
                )
            key = compute_key(act)
            if key is not None:
                entries.append(key)
            elif isinstance(act, CollectiveOp):
                if act.blocking:
                    raise ValidationError(
                        f"{program.name}: blocking collective {act} is "
                        "glued to its compute; the program is not "
                        "reorderable"
                    )
                entries.append(act)
        out[device] = entries
    return out


def _device_tail(acts: Sequence[Action]) -> tuple[Action, ...]:
    """The trailing Flush/OptimizerStep run of one device list."""
    tail: list[Action] = []
    for act in reversed(acts):
        if isinstance(act, (Flush, OptimizerStep)):
            tail.append(act)
        else:
            break
    return tuple(reversed(tail))


def _sends_by_producer(program: Program) -> dict[ComputeKey, list[Send]]:
    """For each compute, the ``Send`` actions its retirement triggers.

    Derived purely from the dependency edges: every remote dependency of
    a consumer is a wire the producer's device must send on.  Multiple
    consumers of one tensor are kept in a stable (tag, destination)
    order.
    """
    sends: dict[ComputeKey, list[Send]] = {}
    for consumer, deps in program.deps.items():
        dst = program.ops[consumer].device
        for dep in deps:
            if dep.tag is not None:
                sends.setdefault(dep.producer, []).append(
                    Send(peer=dst, tag=dep.tag))
    for outs in sends.values():
        outs.sort(key=lambda s: (s.tag.kind.value, s.tag.microbatch,
                                 s.tag.stage, s.peer))
    return sends


class Reorderer:
    """Recompiler for many orderings of one base program.

    Construction extracts every base-side fact once — ordering entries,
    per-producer sends, per-compute recvs, the compute actions and the
    device tails — so :meth:`reorder` costs only the rebuild walk plus
    the comm passes.  The schedule-synthesis searcher holds one of
    these per structural cell and pushes thousands of candidates
    through it; :func:`reorder_program` is the one-shot wrapper.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.base_entries = ordering_entries(program)
        self._sends_of = _sends_by_producer(program)
        self._recvs_of: dict[ComputeKey, tuple[Recv, ...]] = {}
        self._compute_of: dict[ComputeKey, Action] = {}
        for key, op in program.ops.items():
            self._recvs_of[key] = tuple(
                Recv(peer=dep.src, tag=dep.tag)
                for dep in program.deps.get(key, ())
                if dep.tag is not None
            )
            ctor = (ComputeForward if key[0] is OpKind.FORWARD
                    else ComputeBackward)
            self._compute_of[key] = ctor(op.microbatch, op.stage,
                                         op.chunk)
        self._tails = {
            device: _device_tail(acts)
            for device, acts in program.actions.items()
        }

    def reorder(
        self,
        orders: Mapping[int, Sequence[OrderEntry]],
        name: str | None = None,
        check: bool = True,
    ) -> Program:
        """Rebuild the program's action lists from ``orders``.

        ``check=False`` skips the permutation validation — for callers
        (the searcher) whose orderings are permutations by
        construction; a non-permutation would silently drop or invent
        work, so only skip when that invariant is structural.
        """
        program = self.program
        if check:
            self._check_permutation(orders)
        new_actions: dict[int, list[Action]] = {}
        sends_of = self._sends_of
        recvs_of = self._recvs_of
        compute_of = self._compute_of
        prefetch = program.prefetch
        batch = program.batch_cross_comm
        for device in self.base_entries:
            acts: list[Action] = []
            pending: tuple[Send, ...] = ()
            for entry in orders[device]:
                if isinstance(entry, CollectiveOp):
                    # An async collective binds before the pending
                    # sends of the compute it follows (gradient buckets
                    # post the moment the gradient is final, ahead of
                    # the P2P send).
                    acts.append(entry)
                    continue
                acts.extend(pending)
                acts.extend(recvs_of[entry])
                acts.append(compute_of[entry])
                pending = sends_of.get(entry, ())
            acts.extend(pending)
            if prefetch:
                acts = hoist_recvs(acts)
            if batch:
                acts = batch_opposing(acts)
            acts.extend(self._tails[device])
            new_actions[device] = acts
        return dataclasses.replace(
            program,
            actions=new_actions,
            name=name if name is not None else program.name,
        )

    def _check_permutation(
        self, orders: Mapping[int, Sequence[OrderEntry]],
    ) -> None:
        program = self.program
        if set(orders) != set(self.base_entries):
            raise ValidationError(
                f"{program.name}: ordering covers devices "
                f"{sorted(orders)}, program has "
                f"{sorted(self.base_entries)}"
            )
        for device, base in self.base_entries.items():
            entries = list(orders[device])
            if sorted(map(repr, entries)) != sorted(map(repr, base)):
                missing = _multiset_diff(base, entries)
                extra = _multiset_diff(entries, base)
                raise ValidationError(
                    f"{program.name}: device {device} ordering is not "
                    f"a permutation of the program's entries"
                    + (f"; missing {missing[:3]}" if missing else "")
                    + (f"; extra {extra[:3]}" if extra else "")
                )


def reorder_program(
    program: Program,
    orders: Mapping[int, Sequence[OrderEntry]],
    name: str | None = None,
) -> Program:
    """Rebuild ``program``'s action lists from per-device orderings.

    ``orders[device]`` must be a permutation of
    ``ordering_entries(program)[device]`` — this function enforces the
    multiset (use :func:`repro.synthesis.check_ordering` beforehand for
    a structured verdict instead of a hard error) but **not** the
    dependency or capacity legality: an illegal permutation compiles
    fine and deadlocks/OOMs at execution, which is exactly what the
    differential fuzz harness exercises.

    The returned program shares every dataflow annotation with the
    base; only ``actions`` (and optionally ``name``) differ.
    """
    return Reorderer(program).reorder(orders, name=name)


def _multiset_diff(a: Sequence[OrderEntry],
                   b: Sequence[OrderEntry]) -> list[str]:
    """Entries of ``a`` not matched in ``b`` (by count), as strings."""
    from collections import Counter

    counts = Counter(map(repr, a))
    counts.subtract(Counter(map(repr, b)))
    return sorted(k for k, n in counts.items() if n > 0)
