"""Compile collectives into the execution IR (paper Secs. 3.2 and 6).

The paper folds Chimera-style model replication into ordinary data
parallelism and argues gradient synchronisation hides inside pipeline
bubbles.  Until this module, the repo *assumed* that claim: every
collective was a closed-form scalar added after simulation, discounted
by a hand-tuned overlap constant.  Here collectives become first-class
compiled actions instead:

* :func:`with_gradient_sync` inserts an asynchronous
  :class:`~repro.actions.ops.CollectiveOp` right after the **last
  backward of every resident (stage, replica)** on each device — the
  moment that stage's gradient is final — so the event core can overlap
  the ring steps with whatever compute the rest of the pipeline still
  has, and the bubble-overlap fraction *falls out of the event loop*.
* :func:`with_tp_sync` inserts a blocking ``CollectiveOp`` after every
  compute action: the Megatron-style tensor-parallel boundary
  all-reduces (two per layer per pass) that sit on the compute critical
  path.

Both transforms operate on an already-compiled
:class:`~repro.actions.program.Program` and return a new one sharing
ops, dependency edges and tensor sizes — collectives are pure additions
to the action lists, exactly like the prefetch and batching passes.

Ring decomposition: an all-reduce of ``nbytes`` over ``D`` ranks splits
the payload into ``D`` chunks of ``nbytes / D`` and runs
``2 * (D - 1)`` synchronised steps (reduce-scatter then all-gather); in
every step each rank forwards one chunk to its ring successor, so a
step lasts as long as the slowest link in the ring.  That is the same
model :func:`repro.cluster.topology.ring_transfer_chain` expresses in
closed form — the parity the timing tests pin down.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

from ..errors import ValidationError
from ..types import OpKind
from .ops import Action, CollectiveKind, CollectiveOp, ComputeBackward, ComputeForward
from .program import Program


def ring_pairs(group: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
    """Consecutive rank pairs of the ring, wraparound included.

    >>> ring_pairs((0, 4, 8))
    ((0, 4), (4, 8), (8, 0))
    >>> ring_pairs((3,))
    ()
    """
    if len(group) < 2:
        return ()
    return tuple(zip(group, group[1:] + group[:1]))


def ring_step_count(group_size: int) -> int:
    """Steps of a ring all-reduce: reduce-scatter + all-gather."""
    return 2 * (group_size - 1) if group_size > 1 else 0


def collectives_in(program: Program) -> list[tuple[int, CollectiveOp]]:
    """All ``(device, CollectiveOp)`` pairs, in device/program order."""
    out: list[tuple[int, CollectiveOp]] = []
    for device in sorted(program.actions):
        for act in program.actions[device]:
            if isinstance(act, CollectiveOp):
                out.append((device, act))
    return out


def _check_groups(program: Program, groups: Mapping[int, tuple[int, ...]],
                  what: str) -> None:
    for device in program.actions:
        group = groups.get(device)
        if group is None:
            raise ValidationError(
                f"{program.name}: no {what} group for device {device}"
            )
        if len(set(group)) != len(group):
            raise ValidationError(
                f"{program.name}: {what} group {group} repeats a rank"
            )


def with_gradient_sync(
    program: Program,
    groups: Mapping[int, tuple[int, ...]],
    grad_bytes: Mapping[int, float],
) -> Program:
    """Compile data-parallel gradient syncs into ``program``.

    ``groups[device]`` is the global-rank ring the device's gradients
    reduce over (its own global rank among them); ``grad_bytes[stage]``
    sizes one replica's gradient shard for that stage.  One asynchronous
    :class:`~repro.actions.ops.CollectiveOp` is inserted immediately
    after the last backward of each resident ``(stage, replica)`` pair —
    per-stage bucketing, as in bucketed DDP, which is what gives the
    early pipeline stages' syncs a chance to overlap trailing compute.

    Groups of fewer than two ranks (D = 1) compile to nothing: the
    program is returned unchanged.
    """
    _check_groups(program, groups, "gradient-sync")
    if all(len(groups[d]) < 2 for d in program.actions):
        return program
    new_actions: dict[int, list[Action]] = {}
    for device, acts in program.actions.items():
        group = tuple(groups[device])
        if len(group) < 2:
            new_actions[device] = list(acts)
            continue
        last: dict[tuple[int, int], int] = {}
        for i, act in enumerate(acts):
            if isinstance(act, ComputeBackward):
                op = program.ops[(OpKind.BACKWARD, act.microbatch, act.stage)]
                last[(act.stage, op.replica)] = i
        inserts: dict[int, list[CollectiveOp]] = {}
        for (stage, replica), i in sorted(last.items(),
                                          key=lambda kv: (kv[1], kv[0])):
            if stage not in grad_bytes:
                raise ValidationError(
                    f"{program.name}: no gradient bytes for stage {stage}"
                )
            inserts.setdefault(i, []).append(CollectiveOp(
                kind=CollectiveKind.GRAD_SYNC, group=group,
                nbytes=float(grad_bytes[stage]), stage=stage,
                replica=replica, blocking=False,
            ))
        out: list[Action] = []
        for i, act in enumerate(acts):
            out.append(act)
            out.extend(inserts.get(i, ()))
        new_actions[device] = out
    return dataclasses.replace(program, actions=new_actions)


def with_tp_sync(
    program: Program,
    groups: Mapping[int, tuple[int, ...]],
    nbytes: float,
    count_per_pass: float,
) -> Program:
    """Compile tensor-parallel boundary all-reduces into ``program``.

    After every compute action a *blocking* collective over the
    device's TP group is inserted: ``count_per_pass`` back-to-back ring
    all-reduces of the ``nbytes`` boundary tensor (2 per layer per
    pass x the stage's layer count; backward mirrors forward).
    Blocking placement *after* the compute is exact: the device clock,
    and every Send the compute feeds, advance past the collective, so
    the makespan matches folding the same seconds into the op duration
    — while the timeline keeps compute and communication distinct.
    """
    _check_groups(program, groups, "tensor-parallel")
    if count_per_pass < 0:
        raise ValidationError("count_per_pass must be >= 0")
    if all(len(groups[d]) < 2 for d in program.actions):
        return program
    new_actions: dict[int, list[Action]] = {}
    for device, acts in program.actions.items():
        group = tuple(groups[device])
        if len(group) < 2:
            new_actions[device] = list(acts)
            continue
        out: list[Action] = []
        for act in acts:
            out.append(act)
            if isinstance(act, (ComputeForward, ComputeBackward)):
                kind = (OpKind.FORWARD if isinstance(act, ComputeForward)
                        else OpKind.BACKWARD)
                op = program.ops[(kind, act.microbatch, act.stage)]
                out.append(CollectiveOp(
                    kind=CollectiveKind.TP_BOUNDARY, group=group,
                    nbytes=float(nbytes), stage=act.stage,
                    replica=op.replica, blocking=True,
                    count=float(count_per_pass),
                ))
        new_actions[device] = out
    return dataclasses.replace(program, actions=new_actions)
