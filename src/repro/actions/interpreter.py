"""Action-list interpreter (the paper's worker-side runtime).

Each worker owns one :class:`Interpreter` bound to an
:class:`Executor` — the object that actually computes and communicates.
The interpreter is deliberately dumb: it walks the list and dispatches.
All scheduling intelligence lives in the compiler/scheduler, which is
the decoupling the paper's runtime design argues for: the same
interpreter executes GPipe, DAPPLE, Chimera or Hanayo programs.

Asynchronous receives: a ``Recv`` action *posts* the receive and
registers the pending tag; the value is awaited lazily when a compute
action needs it.  Combined with the compiler's prefetch pass this gives
the communication/computation overlap of Sec. 4.2 on backends with real
concurrency (the thread engine), and is a no-op on synchronous
executors.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import EngineError
from .ops import (
    Action,
    BatchedP2P,
    CollectiveOp,
    ComputeBackward,
    ComputeForward,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)


class Executor(Protocol):
    """What a backend must provide to run action lists."""

    def compute_forward(self, microbatch: int, stage: int, chunk: int) -> None: ...

    def compute_backward(self, microbatch: int, stage: int, chunk: int) -> None: ...

    def post_send(self, peer: int, tag: Tag) -> None: ...

    def post_recv(self, peer: int, tag: Tag) -> None: ...

    def wait_recv(self, peer: int, tag: Tag) -> None: ...

    def collective(self, op) -> None: ...

    def flush(self) -> None: ...

    def optimizer_step(self) -> None: ...


class Interpreter:
    """Drives one worker's action list against an executor."""

    def __init__(self, device: int, executor: Executor):
        self.device = device
        self.executor = executor
        self._pending: list[tuple[int, Tag]] = []
        self.executed = 0
        #: executed actions in order — the worker-side witness the
        #: program-parity suite compares against the simulator's order
        self.trace: list[Action] = []

    def _drain_pending(self) -> None:
        while self._pending:
            peer, tag = self._pending.pop(0)
            self.executor.wait_recv(peer, tag)

    def run(self, actions: list[Action]) -> int:
        """Execute the whole program; returns the action count executed."""
        for act in actions:
            self.step(act)
        if self._pending:
            raise EngineError(
                f"worker {self.device}: {len(self._pending)} posted receives "
                "never consumed"
            )
        return self.executed

    def step(self, act: Action) -> None:
        ex = self.executor
        if isinstance(act, ComputeForward):
            self._drain_pending()
            ex.compute_forward(act.microbatch, act.stage, act.chunk)
        elif isinstance(act, ComputeBackward):
            self._drain_pending()
            ex.compute_backward(act.microbatch, act.stage, act.chunk)
        elif isinstance(act, Send):
            ex.post_send(act.peer, act.tag)
        elif isinstance(act, Recv):
            ex.post_recv(act.peer, act.tag)
            self._pending.append((act.peer, act.tag))
        elif isinstance(act, BatchedP2P):
            # Group semantics: post everything before waiting anything.
            for r in act.recvs:
                ex.post_recv(r.peer, r.tag)
                self._pending.append((r.peer, r.tag))
            for s in act.sends:
                ex.post_send(s.peer, s.tag)
        elif isinstance(act, CollectiveOp):
            # Collectives span pipelines, so a per-worker executor has
            # nothing local to reduce against: the data-parallel layer
            # (repro.engine.dataparallel) drives them, keyed off the
            # annotated program.
            ex.collective(act)
        elif isinstance(act, Flush):
            self._drain_pending()
            ex.flush()
        elif isinstance(act, OptimizerStep):
            ex.optimizer_step()
        else:
            raise EngineError(f"unknown action {act!r}")
        self.trace.append(act)
        self.executed += 1
