"""Action IR: the instructions workers execute (paper Sec. 4.1).

The paper breaks DeepSpeed-style pipeline instructions "into smaller
granularities" augmented with the target device rank and the local
module (chunk) rank, so one runtime can drive any pipeline algorithm.
These dataclasses are that instruction set; a per-worker ``list[Action]``
is the *action list* the scheduler emits and the interpreter consumes.

Message identity: every tensor in flight is addressed by
``(kind, microbatch, stage)`` where ``kind`` distinguishes activations
(flowing forward) from gradients (flowing backward).  That tag is what
send/recv matching and deadlock detection key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CommKind(enum.Enum):
    ACTIVATION = "act"
    GRADIENT = "grad"


class CollectiveKind(enum.Enum):
    """What a :class:`CollectiveOp` synchronises."""

    #: data-parallel gradient all-reduce after a stage's last backward
    GRAD_SYNC = "grad_sync"
    #: tensor-parallel boundary all-reduces inside a stage pass
    TP_BOUNDARY = "tp_boundary"


@dataclass(frozen=True)
class Tag:
    """Wire identity of one tensor."""

    kind: CommKind
    microbatch: int
    stage: int

    def __str__(self) -> str:
        return f"{self.kind.value}(m{self.microbatch},s{self.stage})"


class Action:
    """Base class; concrete actions below."""

    __slots__ = ()


@dataclass(frozen=True)
class ComputeForward(Action):
    """Run the forward of ``stage`` (local chunk ``chunk``) for a micro-batch."""

    microbatch: int
    stage: int
    chunk: int

    def __str__(self) -> str:
        return f"F(m{self.microbatch},s{self.stage},c{self.chunk})"


@dataclass(frozen=True)
class ComputeBackward(Action):
    """Run the backward of ``stage`` for a micro-batch."""

    microbatch: int
    stage: int
    chunk: int

    def __str__(self) -> str:
        return f"B(m{self.microbatch},s{self.stage},c{self.chunk})"


@dataclass(frozen=True)
class Send(Action):
    """Send the tensor ``tag`` to ``peer`` (non-blocking post)."""

    peer: int
    tag: Tag

    def __str__(self) -> str:
        return f"send[{self.tag}]->d{self.peer}"


@dataclass(frozen=True)
class Recv(Action):
    """Receive the tensor ``tag`` from ``peer`` (blocking wait)."""

    peer: int
    tag: Tag

    def __str__(self) -> str:
        return f"recv[{self.tag}]<-d{self.peer}"


@dataclass(frozen=True)
class BatchedP2P(Action):
    """A ``batch_isend_irecv`` group: all posts issued before any wait.

    Opposing transfers between the same device pair (wave turns, Chimera
    cross-communication) must be grouped on both peers or a rendezvous
    backend deadlocks — the NCCL hazard of Sec. 4.2.
    """

    sends: tuple[Send, ...] = ()
    recvs: tuple[Recv, ...] = ()

    def __str__(self) -> str:
        parts = [str(s) for s in self.sends] + [str(r) for r in self.recvs]
        return "batch{" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class CollectiveOp(Action):
    """One collective over a concrete rank group, ring-decomposed.

    ``group`` holds the *global cluster ranks* participating (the owning
    worker's own global rank included); execution decomposes the
    all-reduce into its ``2 * (len(group) - 1)`` per-chunk ring steps
    over concrete topology routes — see
    :mod:`repro.actions.collectives`.  ``nbytes`` is the full payload
    each participant contributes (the ring moves ``nbytes / D`` chunks).

    ``blocking`` distinguishes the two uses: tensor-parallel boundary
    all-reduces gate the owning worker's next action (they sit on the
    compute critical path), while data-parallel gradient syncs are
    posted asynchronously and only bound the *iteration* end — which is
    exactly what lets them hide inside pipeline bubbles.  ``count``
    scales the collective to ``count`` back-to-back identical rings
    (fractional for per-layer TP all-reduces averaged over a stage).
    """

    kind: CollectiveKind
    group: tuple[int, ...]
    nbytes: float
    stage: int
    replica: int = 0
    blocking: bool = False
    count: float = 1.0

    def __str__(self) -> str:
        mode = "sync" if self.blocking else "async"
        return (f"{self.kind.value}[s{self.stage}]"
                f"@ranks{list(self.group)} ({mode})")


@dataclass(frozen=True)
class OptimizerStep(Action):
    """Apply accumulated gradients (end of a synchronous iteration)."""

    def __str__(self) -> str:
        return "step"


@dataclass(frozen=True)
class Flush(Action):
    """Synchronisation barrier across all workers before the step."""

    def __str__(self) -> str:
        return "flush"


#: One worker's program.
ActionList = list  # list[Action]; alias for signature readability
