"""Action lists: IR, compiler, interpreter, and static validation."""

from .compiler import (
    batch_opposing,
    comm_actions,
    compile_schedule,
    count_messages,
    hoist_recvs,
)
from .collectives import (
    collectives_in,
    ring_pairs,
    ring_step_count,
    with_gradient_sync,
    with_tp_sync,
)
from .interpreter import Executor, Interpreter
from .lowering import ExecutablePlan, RetimeBuffers
from .program import Dependency, Program, compile_program, compute_key
from .reorder import OrderEntry, Reorderer, ordering_entries, reorder_program
from .resources import StageResources
from .ops import (
    Action,
    BatchedP2P,
    CollectiveKind,
    CollectiveOp,
    CommKind,
    ComputeBackward,
    ComputeForward,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)
from .validate import check_deadlock_free, check_matching, validate_actions

__all__ = [
    "Action",
    "BatchedP2P",
    "CollectiveKind",
    "CollectiveOp",
    "CommKind",
    "ComputeBackward",
    "ComputeForward",
    "Dependency",
    "ExecutablePlan",
    "Executor",
    "Flush",
    "Interpreter",
    "OptimizerStep",
    "OrderEntry",
    "Program",
    "Recv",
    "RetimeBuffers",
    "Reorderer",
    "Send",
    "StageResources",
    "Tag",
    "batch_opposing",
    "check_deadlock_free",
    "check_matching",
    "collectives_in",
    "comm_actions",
    "compile_program",
    "compile_schedule",
    "compute_key",
    "count_messages",
    "hoist_recvs",
    "ordering_entries",
    "reorder_program",
    "ring_pairs",
    "ring_step_count",
    "validate_actions",
    "with_gradient_sync",
    "with_tp_sync",
]
