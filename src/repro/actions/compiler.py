"""Compile a schedule into per-worker action lists.

The scheduler on the master node "generates the action list based on a
specific pipeline" (Sec. 4.1).  Compilation is mechanical:

1. Walk each device's op sequence.
2. Before a compute whose producer lives on another device, emit the
   matching ``Recv``; after a compute whose consumer lives elsewhere,
   emit the matching ``Send``.  Local boundaries (wave turns) emit
   nothing — the transform benefit of Sec. 3.2 falls out here.
3. An optional **prefetch pass** hoists each ``Recv`` above the
   preceding compute action (Sec. 4.2's look-ahead), so transport
   overlaps computation when the interpreter posts receives
   asynchronously.
4. An optional **batching pass** fuses a ``Send`` and ``Recv`` that
   target the same peer and are adjacent in the program into one
   ``BatchedP2P`` — the ``batch_isend_irecv`` grouping that avoids the
   rendezvous deadlock at wave turns.
5. Synchronous schedules end with ``Flush`` + ``OptimizerStep``.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..schedules.base import Schedule
from ..types import OpKind, ScheduleOp
from .ops import (
    Action,
    BatchedP2P,
    CommKind,
    ComputeBackward,
    ComputeForward,
    Flush,
    OptimizerStep,
    Recv,
    Send,
    Tag,
)


def _producer_device(schedule: Schedule, op: ScheduleOp) -> dict[Tag, int]:
    """Tags this op consumes, mapped to the producing device."""
    plc = schedule.placement
    needs: dict[Tag, int] = {}
    if op.kind is OpKind.FORWARD:
        if op.stage > 0:
            src = plc.device_of(op.stage - 1, op.replica)
            if src != op.device:
                needs[Tag(CommKind.ACTIVATION, op.microbatch, op.stage - 1)] = src
    else:
        if op.stage < schedule.num_stages - 1:
            src = plc.device_of(op.stage + 1, op.replica)
            if src != op.device:
                needs[Tag(CommKind.GRADIENT, op.microbatch, op.stage + 1)] = src
    return needs


def _consumer_device(schedule: Schedule, op: ScheduleOp) -> dict[Tag, int]:
    """Tags this op produces for other devices, mapped to the consumer."""
    plc = schedule.placement
    sends: dict[Tag, int] = {}
    if op.kind is OpKind.FORWARD:
        if op.stage < schedule.num_stages - 1:
            dst = plc.device_of(op.stage + 1, op.replica)
            if dst != op.device:
                sends[Tag(CommKind.ACTIVATION, op.microbatch, op.stage)] = dst
    else:
        if op.stage > 0:
            dst = plc.device_of(op.stage - 1, op.replica)
            if dst != op.device:
                sends[Tag(CommKind.GRADIENT, op.microbatch, op.stage)] = dst
    return sends


def compile_schedule(
    schedule: Schedule,
    prefetch: bool = True,
    batch_cross_comm: bool = True,
    add_step: bool = True,
) -> dict[int, list[Action]]:
    """Lower ``schedule`` to per-worker action lists."""
    lists: dict[int, list[Action]] = {}
    for device, ops in schedule.device_ops.items():
        actions: list[Action] = []
        for op in ops:
            for tag, src in _producer_device(schedule, op).items():
                actions.append(Recv(peer=src, tag=tag))
            if op.kind is OpKind.FORWARD:
                actions.append(ComputeForward(op.microbatch, op.stage, op.chunk))
            else:
                actions.append(ComputeBackward(op.microbatch, op.stage, op.chunk))
            for tag, dst in _consumer_device(schedule, op).items():
                actions.append(Send(peer=dst, tag=tag))
        if prefetch:
            actions = hoist_recvs(actions)
        if batch_cross_comm:
            actions = batch_opposing(actions)
        if add_step:
            actions.append(Flush())
            actions.append(OptimizerStep())
        lists[device] = actions
    return lists


def hoist_recvs(actions: list[Action]) -> list[Action]:
    """Prefetch pass: move each Recv above the preceding compute.

    Mirrors the paper's look-ahead: "before initiating a slice of
    computation, the processor looks ahead to check the next receive
    instruction and launches the subsequent receive request before the
    current forward/backward propagation."  A recv hops over at most
    one compute action and never over another comm action, keeping
    send/recv relative order across workers intact (safety for
    rendezvous backends).
    """
    out = list(actions)
    i = 1
    while i < len(out):
        act = out[i]
        if isinstance(act, Recv):
            j = i - 1
            if isinstance(out[j], (ComputeForward, ComputeBackward)):
                out[j], out[i] = out[i], out[j]
        i += 1
    return out


def batch_opposing(actions: list[Action]) -> list[Action]:
    """Fuse adjacent Send/Recv with the same peer into one BatchedP2P.

    Only *opposing* pairs (one send, one recv, same peer) are fused —
    exactly the wave-turn exchanges that deadlock a rendezvous backend
    when issued as two ordered blocking calls.
    """
    out: list[Action] = []
    i = 0
    while i < len(actions):
        a = actions[i]
        b = actions[i + 1] if i + 1 < len(actions) else None
        pair = None
        if isinstance(a, Send) and isinstance(b, Recv) and a.peer == b.peer:
            pair = BatchedP2P(sends=(a,), recvs=(b,))
        elif isinstance(a, Recv) and isinstance(b, Send) and a.peer == b.peer:
            pair = BatchedP2P(sends=(b,), recvs=(a,))
        if pair is not None:
            out.append(pair)
            i += 2
        else:
            out.append(a)
            i += 1
    return out


def comm_actions(actions: list[Action]) -> list[Action]:
    """Flatten to the comm-only view (batched groups expanded)."""
    flat: list[Action] = []
    for act in actions:
        if isinstance(act, BatchedP2P):
            flat.extend(act.sends)
            flat.extend(act.recvs)
        elif isinstance(act, (Send, Recv)):
            flat.append(act)
    return flat


def count_messages(lists: dict[int, list[Action]]) -> int:
    """Total cross-device messages (sends) in a compiled program."""
    return sum(
        1
        for actions in lists.values()
        for act in comm_actions(actions)
        if isinstance(act, Send)
    )
