"""Static validation of compiled action lists.

Two properties are checked before anything executes:

* **Matching** — every ``Send`` has exactly one ``Recv`` with the same
  tag on the addressed peer, and vice versa.
* **Deadlock freedom** — executing all workers' programs concurrently
  cannot stall.  We model execution abstractly: computes always
  complete, buffered sends never block, recvs block until the matching
  send has been *issued*.  Under a rendezvous backend sends also block
  until the matching recv is posted, which is the NCCL mode whose wave-
  turn hazard the paper works around with ``batch_isend_irecv``; pass
  ``rendezvous=True`` to check that stricter model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeadlockError, ValidationError
from .ops import Action, BatchedP2P, Recv, Send, Tag


def _flatten(actions: list[Action]) -> list[Action]:
    flat: list[Action] = []
    for act in actions:
        if isinstance(act, BatchedP2P):
            # Group semantics: all posts are issued together; represent
            # as the batch itself so the deadlock model can treat it
            # atomically.
            flat.append(act)
        else:
            flat.append(act)
    return flat


def check_matching(lists: dict[int, list[Action]]) -> None:
    """Every send has a unique matching recv on the peer (and vice versa)."""
    sends: dict[tuple[int, int, Tag], int] = {}
    recvs: dict[tuple[int, int, Tag], int] = {}
    for device, actions in lists.items():
        for act in actions:
            items = (
                list(act.sends) + list(act.recvs)
                if isinstance(act, BatchedP2P) else [act]
            )
            for item in items:
                if isinstance(item, Send):
                    key = (device, item.peer, item.tag)
                    sends[key] = sends.get(key, 0) + 1
                elif isinstance(item, Recv):
                    key = (item.peer, device, item.tag)
                    recvs[key] = recvs.get(key, 0) + 1
    if sends != recvs:
        only_send = {k for k, n in sends.items() if recvs.get(k, 0) != n}
        only_recv = {k for k, n in recvs.items() if sends.get(k, 0) != n}
        sample = list(sorted(only_send | only_recv))[:4]
        raise ValidationError(
            f"unmatched send/recv pairs: {len(only_send | only_recv)}, "
            f"e.g. {[(s, d, str(t)) for s, d, t in sample]}"
        )


def check_deadlock_free(lists: dict[int, list[Action]],
                        rendezvous: bool = False) -> None:
    """Abstract-execute all workers; raise DeadlockError if they stall.

    Buffered model (default): recv blocks on missing send.  Rendezvous
    model: send also blocks until the matching recv is posted —
    ``BatchedP2P`` posts its whole group at once, which is what makes
    opposing wave-turn exchanges safe.
    """
    cursors = {d: 0 for d in lists}
    issued_sends: set[tuple[int, int, Tag]] = set()
    posted_recvs: set[tuple[int, int, Tag]] = set()

    def send_ok(device: int, send: Send, own_recvs: list[Recv]) -> bool:
        if not rendezvous:
            return True
        key = (device, send.peer, send.tag)
        return key in posted_recvs or _peer_recv_posted(send, device)

    def _peer_recv_posted(send: Send, device: int) -> bool:
        return (device, send.peer, send.tag) in posted_recvs

    def recv_ok(device: int, recv: Recv) -> bool:
        return (recv.peer, device, recv.tag) in issued_sends

    total = sum(len(a) for a in lists.values())
    done = 0
    while done < total:
        progressed = False
        for device, actions in lists.items():
            while cursors[device] < len(actions):
                act = actions[cursors[device]]
                if isinstance(act, BatchedP2P):
                    # Post everything in the group, then wait: posts
                    # always succeed; the waits need matching sends.
                    for r in act.recvs:
                        posted_recvs.add((r.peer, device, r.tag))
                    for s in act.sends:
                        issued_sends.add((device, s.peer, s.tag))
                    if not all(recv_ok(device, r) for r in act.recvs):
                        break
                elif isinstance(act, Send):
                    if not send_ok(device, act, []):
                        break
                    issued_sends.add((device, act.peer, act.tag))
                elif isinstance(act, Recv):
                    posted_recvs.add((act.peer, device, act.tag))
                    if not recv_ok(device, act):
                        break
                cursors[device] += 1
                done += 1
                progressed = True
        if not progressed and done < total:
            heads = {
                d: str(lists[d][cursors[d]])
                for d in lists if cursors[d] < len(lists[d])
            }
            raise DeadlockError(
                f"action lists deadlock under "
                f"{'rendezvous' if rendezvous else 'buffered'} comm; "
                f"blocked heads: {heads}"
            )


def validate_actions(lists: dict[int, list[Action]],
                     rendezvous: bool = False) -> None:
    check_matching(lists)
    check_deadlock_free(lists, rendezvous=rendezvous)
