"""The compiled execution IR: one :class:`Program`, every consumer.

The paper's central runtime claim (Sec. 4.1) is that the
scheduler-generated action list fully determines pipeline behavior.
This module makes that literal for the whole library: a ``Schedule`` is
lowered **once** into a :class:`Program` — per-worker action lists plus
the dataflow facts every backend needs — and both executions consume
it:

* the event-driven cost simulator (:mod:`repro.runtime.events`), which
  times the program against a :class:`~repro.runtime.costs.CostOracle`;
* the real NumPy engine (:mod:`repro.engine`), whose interpreter walks
  the same lists over thread workers and P2P channels.

Neither consumer re-derives communication from the schedule, so the
prefetch and batched-P2P semantics the benchmarks measure are — by
construction — exactly what the engine executes.

Beyond the raw lists, compilation grows three annotations:

* **Dependency edges** (:class:`Dependency`): for every compute, the
  producing computes it waits on, each resolved to a device and —
  when the tensor crosses devices — the wire :class:`Tag` a ``Recv``
  delivers.  The simulator times the program from these edges alone.
* **Per-action tensor sizes**: ``tensor_bytes`` maps every in-flight
  tag to its payload size, so trace exporters and contention models
  know what each message weighs.
* **Memory effects** (optional, via :class:`StageResources`): static
  weight/grad/optimizer bytes per resident ``(stage, replica)`` pair —
  ×2 naturally for Chimera's two replicas — plus an activation
  allocation on every forward start and the matching free on the
  backward end, so the program alone determines each device's memory
  trajectory and the event core can enforce a capacity live.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from ..errors import OutOfMemoryError, ValidationError
from ..schedules.base import Schedule
from ..types import OpKind, ScheduleOp
from .compiler import compile_schedule
from .ops import Action, BatchedP2P, CommKind, Recv, Send, Tag
from .resources import StageResources

#: Identity of one compute: ``(kind, microbatch, stage)``.
ComputeKey = tuple  # tuple[OpKind, int, int]


@dataclass(frozen=True)
class Dependency:
    """One dataflow input of a compute action.

    ``producer`` is the compute that makes the tensor, ``src`` the
    device it runs on.  ``tag`` is the wire identity when the tensor
    crosses devices (a matching ``Recv`` exists in the consumer's
    action list); ``None`` marks a local hand-off with no comm action.
    """

    producer: ComputeKey
    src: int
    tag: Tag | None = None

    @property
    def remote(self) -> bool:
        return self.tag is not None


@dataclass
class Program:
    """Per-worker action lists plus the dataflow facts of one iteration.

    The single execution IR: ``actions[d]`` is worker ``d``'s program
    (order is semantics — reordering changes the algorithm under test),
    ``ops``/``deps`` carry the compute metadata the simulator times,
    and ``tensor_bytes`` sizes every in-flight tensor.
    """

    name: str
    num_devices: int
    num_stages: int
    num_microbatches: int
    prefetch: bool
    batch_cross_comm: bool
    actions: dict[int, list[Action]]
    #: compute key -> originating ScheduleOp (device/chunk/replica kept
    #: so timelines, memory tracking and viz stay placement-aware)
    ops: dict[ComputeKey, ScheduleOp] = field(default_factory=dict)
    #: compute key -> dataflow inputs
    deps: dict[ComputeKey, tuple[Dependency, ...]] = field(default_factory=dict)
    #: wire tag -> payload bytes
    tensor_bytes: dict[Tag, float] = field(default_factory=dict)
    #: device -> resident (stage, replica) pairs in chunk order — the
    #: placement facts memory accounting needs, kept so re-annotating
    #: resources never has to re-derive them from a schedule
    resident: dict[int, tuple[tuple[int, int], ...]] = field(
        default_factory=dict)
    #: per-stage byte footprints; None for byte-blind (abstract) runs
    resources: StageResources | None = None
    #: device -> static bytes (weights+grads+optimizer of every resident
    #: stage); empty when the program carries no resources
    static_bytes: dict[int, float] = field(default_factory=dict)

    # -- shape -----------------------------------------------------------

    def device_actions(self, device: int) -> list[Action]:
        return list(self.actions.get(device, ()))

    def action_count(self) -> int:
        return sum(len(acts) for acts in self.actions.values())

    def compute_count(self) -> int:
        return len(self.ops)

    def message_count(self) -> int:
        """Cross-device messages (sends, batched groups expanded)."""
        total = 0
        for acts in self.actions.values():
            for act in acts:
                if isinstance(act, Send):
                    total += 1
                elif isinstance(act, BatchedP2P):
                    total += len(act.sends)
        return total

    def op_for(self, action: Action) -> ScheduleOp:
        """The ScheduleOp behind a compute action."""
        key = compute_key(action)
        if key is None:
            raise ValidationError(f"{action} is not a compute action")
        return self.ops[key]

    # -- memory effects ---------------------------------------------------

    @property
    def tracks_memory(self) -> bool:
        """Whether execution can maintain per-device watermarks."""
        return self.resources is not None

    def with_resources(self, resources: StageResources | None) -> "Program":
        """Re-annotate this program with a different resource model.

        This is how Program-level memory transforms compose — e.g.
        activation recomputation is
        ``program.with_resources(program.resources.with_recompute())``.
        Action lists, dependency edges and tensor sizes are shared with
        the original (they are untouched by memory semantics).
        """
        if resources is not None and resources.num_stages != self.num_stages:
            raise ValidationError(
                f"{self.name}: resources cover {resources.num_stages} "
                f"stages, program has {self.num_stages}"
            )
        return dataclasses.replace(
            self,
            resources=resources,
            static_bytes=_static_bytes(self.resident, resources),
        )

    def alloc_bytes(self, key: ComputeKey) -> float:
        """Bytes a compute pins when it *starts* (forward allocation)."""
        if self.resources is None or key[0] is not OpKind.FORWARD:
            return 0.0
        return self.resources.activation_bytes[key[2]]

    def free_bytes(self, key: ComputeKey) -> float:
        """Bytes a compute releases when it *ends* (backward free)."""
        if self.resources is None or key[0] is not OpKind.BACKWARD:
            return 0.0
        return self.resources.activation_bytes[key[2]]

    def check_static_memory(self, capacity_bytes: int) -> None:
        """O(P) feasibility pre-check: static footprint alone vs capacity.

        Raises :class:`~repro.errors.OutOfMemoryError` for the lowest
        violating device — *before* any event is simulated, which is
        what lets capacity-constrained sweeps reject hopeless cells for
        free.  A program without resources passes vacuously.
        """
        for device in sorted(self.static_bytes):
            static = self.static_bytes[device]
            if static > capacity_bytes:
                raise OutOfMemoryError(device, int(static), capacity_bytes)

    def validate(self, rendezvous: bool = False) -> None:
        """Static matching + deadlock-freedom over the action lists."""
        from .validate import validate_actions

        validate_actions(self.actions, rendezvous=rendezvous)

    def describe(self) -> str:
        return (f"program[{self.name}]: P={self.num_devices} "
                f"S={self.num_stages} B={self.num_microbatches} "
                f"actions={self.action_count()} "
                f"messages={self.message_count()}")


def compute_key(action: Action) -> ComputeKey | None:
    """``(kind, microbatch, stage)`` for a compute action, else ``None``."""
    from .ops import ComputeBackward, ComputeForward

    if isinstance(action, ComputeForward):
        return (OpKind.FORWARD, action.microbatch, action.stage)
    if isinstance(action, ComputeBackward):
        return (OpKind.BACKWARD, action.microbatch, action.stage)
    return None


def _static_bytes(
    resident: dict[int, tuple[tuple[int, int], ...]],
    resources: StageResources | None,
) -> dict[int, float]:
    """Per-device static bytes, summed in chunk order.

    Chunk order matters for bit-identical float accumulation against
    the placement-walking replay (`runtime.memory.static_memory`).
    """
    if resources is None:
        return {}
    return {
        device: sum(resources.weight_bytes[stage]
                    for stage, _replica in pairs)
        for device, pairs in resident.items()
    }


def _dep_tag(dep: ComputeKey) -> Tag:
    """Wire identity of the tensor a dependency's producer emits."""
    kind, microbatch, stage = dep
    comm = CommKind.ACTIVATION if kind is OpKind.FORWARD else CommKind.GRADIENT
    return Tag(comm, microbatch, stage)


def compile_program(
    schedule: Schedule,
    prefetch: bool = True,
    batch_cross_comm: bool = True,
    add_step: bool = False,
    boundary_bytes: float | Callable[[Tag], float] = 1.0,
    resources: StageResources | None = None,
) -> Program:
    """Lower ``schedule`` to the single execution IR.

    ``boundary_bytes`` sizes every in-flight tensor — a flat float for
    abstract-cost runs, or a callable ``Tag -> bytes`` when stage
    boundaries differ.  ``add_step`` appends the ``Flush`` +
    ``OptimizerStep`` tail (off by default: both consumers charge the
    step explicitly).  ``resources`` attaches per-stage memory
    footprints so the compiled program carries its own alloc/free
    effects and static residency bytes (see
    :mod:`repro.actions.resources`).
    """
    if resources is not None and resources.num_stages != schedule.num_stages:
        raise ValidationError(
            f"{schedule.name}: resources cover {resources.num_stages} "
            f"stages, schedule has {schedule.num_stages}"
        )
    lists = compile_schedule(
        schedule, prefetch=prefetch, batch_cross_comm=batch_cross_comm,
        add_step=add_step,
    )

    ops: dict[ComputeKey, ScheduleOp] = {}
    for op in schedule.all_ops():
        key = (op.kind, op.microbatch, op.stage)
        if key in ops:
            raise ValidationError(
                f"{schedule.name}: duplicate compute {op} in schedule"
            )
        ops[key] = op

    deps: dict[ComputeKey, tuple[Dependency, ...]] = {}
    for key, op in ops.items():
        edges = []
        for dep in schedule.dependencies(op):
            try:
                producer = ops[dep]
            except KeyError:
                raise ValidationError(
                    f"{schedule.name}: {op} depends on missing compute "
                    f"{dep[0].short}(m{dep[1]},s{dep[2]})"
                ) from None
            tag = _dep_tag(dep) if producer.device != op.device else None
            edges.append(Dependency(producer=dep, src=producer.device,
                                    tag=tag))
        deps[key] = tuple(edges)

    tensor_bytes: dict[Tag, float] = {}
    size = boundary_bytes if callable(boundary_bytes) else (
        lambda _tag, _b=boundary_bytes: _b
    )
    for acts in lists.values():
        for act in acts:
            sends = (act.sends if isinstance(act, BatchedP2P)
                     else (act,) if isinstance(act, Send) else ())
            for send in sends:
                tensor_bytes[send.tag] = float(size(send.tag))

    resident = {
        device: tuple(schedule.placement.stages_on(device))
        for device in sorted(lists)
    }

    return Program(
        name=schedule.name,
        num_devices=schedule.num_devices,
        num_stages=schedule.num_stages,
        num_microbatches=schedule.num_microbatches,
        prefetch=prefetch,
        batch_cross_comm=batch_cross_comm,
        actions=lists,
        ops=ops,
        deps=deps,
        tensor_bytes=tensor_bytes,
        resident=resident,
        resources=resources,
        static_bytes=_static_bytes(resident, resources),
    )
