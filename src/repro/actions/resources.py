"""Per-stage memory resources compiled into the execution IR.

The paper treats memory as a first-class property of a schedule: Fig. 3
annotates every diagram with weight/activation units, Fig. 8 reports
byte-accurate per-device peaks, and the Sec. 5.3 search rejects OOM
configurations.  This module is the vocabulary that lets a compiled
:class:`~repro.actions.program.Program` carry those semantics itself:

* :class:`StageResources` names the bytes each pipeline stage pins —
  static weights+grads+optimizer state per resident stage, and the
  activation footprint one live micro-batch holds on that stage.
* :func:`compile-time annotation <repro.actions.program.compile_program>`
  turns them into per-action effects: a forward **allocates** its
  stage's activation bytes the instant it starts, the matching backward
  **frees** them the instant it retires, and every resident
  ``(stage, replica)`` pair contributes its static bytes up front —
  which is how Chimera's two replicas pay double weights without any
  scheme-specific code.

The event core (:mod:`repro.runtime.events`) folds these deltas into
live per-device watermarks during execution, so a program fully
determines each device's memory trajectory — no post-hoc replay needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..models.costs import StageCosts


@dataclass(frozen=True)
class StageResources:
    """Byte footprint of every pipeline stage.

    ``weight_bytes[s]`` is the static cost of keeping stage ``s``
    resident (parameters + gradients + optimizer state, the paper's
    ``Mw`` numerator); ``activation_bytes[s]`` is the dynamic cost one
    live micro-batch pins on stage ``s`` between its forward start and
    backward end (the ``Ma`` numerator).  ``boundary_bytes`` is the
    tensor crossing a stage boundary — the residual footprint under
    activation recomputation.
    """

    weight_bytes: tuple[float, ...]
    activation_bytes: tuple[float, ...]
    boundary_bytes: float = 0.0

    def __post_init__(self) -> None:
        if len(self.weight_bytes) != len(self.activation_bytes):
            raise ConfigError(
                f"weight_bytes ({len(self.weight_bytes)} stages) and "
                f"activation_bytes ({len(self.activation_bytes)} stages) "
                "disagree"
            )
        if not self.weight_bytes:
            raise ConfigError("StageResources needs at least one stage")

    @property
    def num_stages(self) -> int:
        return len(self.weight_bytes)

    @classmethod
    def from_stage_costs(cls, costs: "StageCosts") -> "StageResources":
        """Adopt the byte columns of a lowered cost model."""
        return cls(
            weight_bytes=tuple(costs.weight_bytes),
            activation_bytes=tuple(costs.activation_bytes),
            boundary_bytes=float(costs.boundary_bytes),
        )

    def with_recompute(self) -> "StageResources":
        """The activation-checkpointing transform (paper Sec. 6).

        Every stage retains only its boundary input and re-runs its
        forward during the backward pass, so the per-micro-batch
        activation footprint collapses to one boundary tensor.  The
        compute-time side (``T_B`` growing from ``2 T_F`` to ``3 T_F``)
        belongs to the cost oracle, not the resource model — see
        ``repro.models.stage_costs(recompute=True)``.
        """
        return replace(
            self,
            activation_bytes=(self.boundary_bytes,) * self.num_stages,
        )

    def with_recompute_from(self, frontier: int) -> "StageResources":
        """Partial recomputation: checkpoint stages ``>= frontier`` only.

        The schedule-synthesis search moves this boundary as a mutation
        operator: stages before ``frontier`` keep full activations,
        stages at and past it retain only their boundary tensor and
        re-run the forward during the backward (their backward *cost*
        grows by one forward — the synthesis cost wrapper's side of the
        trade).  ``frontier == 0`` recomputes everything
        (:meth:`with_recompute`); ``frontier == num_stages`` recomputes
        nothing.
        """
        if not 0 <= frontier <= self.num_stages:
            raise ConfigError(
                f"recompute frontier {frontier} outside "
                f"[0, {self.num_stages}]"
            )
        return replace(
            self,
            activation_bytes=tuple(
                self.boundary_bytes if stage >= frontier else bytes_
                for stage, bytes_ in enumerate(self.activation_bytes)
            ),
        )
