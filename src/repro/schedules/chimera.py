"""Chimera bidirectional pipelines (Li & Hoefler, SC '21).

Two model replicas live on the same devices with mirrored placements:
the *down* replica maps stage ``s`` to device ``s``, the *up* replica to
device ``P-1-s``.  Half of the micro-batches flow through each replica,
and each replica's computation fills the other's bubbles.  The price is
twice the weight memory — the limitation Hanayo removes.
"""

from __future__ import annotations

from ..config import CostConfig, PipelineConfig
from ..errors import ConfigError
from ..types import OpKind, ScheduleOp
from .base import Schedule
from .greedy import GreedyPolicy, greedy_order
from .placement import MirrorPlacement


def make_chimera_priority(p: int, b: int):
    """Backward-first; forwards prefer the deepest stage of either replica.

    Ties between the two directions are broken *mirror-symmetrically*:
    the lower device half leans toward the down replica and the upper
    half toward the up replica.  This keeps the generated schedule
    invariant under the (device ``d`` ↔ ``P-1-d``, replica 0 ↔ 1,
    micro-batch ``j`` ↔ ``B/2+j``) symmetry — the property the paper's
    Fig. 5 block-swap transform relies on to produce two *identical*
    wave pipelines.
    """
    half_b = b // 2

    def priority(op: ScheduleOp) -> tuple:
        local_mb = op.microbatch - half_b * op.replica
        preferred = 0 if op.device < p / 2 else 1
        tie = 0 if op.replica == preferred else 1
        if op.kind is OpKind.BACKWARD:
            return (0, local_mb, tie, op.stage)
        return (1, -op.stage, local_mb, tie)

    return priority


def chimera_schedule(
    config: PipelineConfig,
    costs: CostConfig | None = None,
    open_cap: int | None = None,
) -> Schedule:
    """Generate the 2-replica bidirectional Chimera schedule.

    Even micro-batch halves: ``0..B/2-1`` ride the down replica,
    ``B/2..B-1`` the up replica (the paper's Fig. 3(c) coloring).
    """
    if config.scheme != "chimera":
        raise ConfigError(f"chimera_schedule got scheme {config.scheme!r}")
    p, b = config.num_devices, config.num_microbatches
    placement = MirrorPlacement(p)
    sched = Schedule.empty("chimera", config, placement)
    half = b // 2
    sched.microbatch_replica = {
        m: (0 if m < half else 1) for m in range(b)
    }
    cap = max(1, p // 2) if open_cap is None else open_cap
    policy = GreedyPolicy(priority=make_chimera_priority(p, b),
                          open_cap=lambda d: cap)
    return greedy_order(sched, policy, costs)
